"""Ablation: Algorithm 2 vs. simulated annealing on the GSD objective.

Triangulates the paper's transfer phase: annealing, seeded with
Algorithm 2's output, exposes how much distance the pairwise-exchange local
optimum leaves on the table."""

import functools

import numpy as np

from repro.analysis import format_table
from repro.cluster.generators import feasible_random_requests, random_pool
from repro.core.placement.annealing import AnnealingConfig, AnnealingGsdSolver
from repro.core.placement.global_opt import GlobalSubOptimizer, total_distance
from repro.core.placement.greedy import OnlineHeuristic
from repro.experiments import paperconfig as cfg
from repro.util.rng import ensure_rng

from benchmarks.conftest import emit


def run_comparison(trials: int = 5):
    totals = {"online": 0.0, "algorithm 2": 0.0, "annealing": 0.0}
    for seed in range(trials):
        rng = ensure_rng(seed)
        pool = random_pool(
            cfg.SIM_POOL, cfg.CATALOG, rng, distance_model=cfg.DISTANCES
        )
        requests = feasible_random_requests(pool, cfg.FIG5_REQUESTS, 20, rng)
        admissible, budget = [], pool.available.copy()
        for r in requests:
            if np.all(r <= budget):
                admissible.append(r)
                budget -= r
        opt = GlobalSubOptimizer(OnlineHeuristic())
        online = opt.place_online(admissible, pool)
        algo2 = opt.optimize_transfers(online, pool.distance_matrix)
        annealed = AnnealingGsdSolver(
            AnnealingConfig(iterations=6000, seed=seed)
        ).place_batch(pool, admissible)
        totals["online"] += total_distance(online)
        totals["algorithm 2"] += total_distance(algo2)
        totals["annealing"] += total_distance(annealed)
    return totals


def test_ablation_annealing_vs_algorithm2(benchmark):
    totals = benchmark.pedantic(
        functools.partial(run_comparison, trials=5), rounds=1, iterations=1
    )
    base = totals["online"]
    rows = [
        [name, value, 100.0 * (base - value) / base]
        for name, value in totals.items()
    ]
    emit(
        "Ablation — GSD solvers over 5 batches of 20 requests",
        format_table(["solver", "total distance", "improvement (%)"], rows),
    )
    assert totals["annealing"] <= totals["algorithm 2"] <= totals["online"]

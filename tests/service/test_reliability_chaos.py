"""Chaos validation: service-placed survivability promises hold under
injected rack failures.

Leases are admitted through the real :class:`PlacementService` path with
rack-failure targets attached; the decisions' ``promised_availability``
(the exact steady-state quorum-survival probability of the committed
spread) is then checked against *measured* availability under seeded
:class:`~repro.cloud.failures.FailureInjector` renewal schedules driven
over the pool's racks. ``RELIABILITY_SMOKE=1`` shrinks the trial count
the same way ``SHARD_SMOKE``/``CHAOS_SMOKE`` shrink the fabric suites.
"""

import os

import numpy as np
import pytest

from repro.cloud.failures import FailureInjector
from repro.cluster import PoolSpec, VMTypeCatalog, random_pool
from repro.core.reliability import SurvivabilityTarget, quorum
from repro.experiments.reliability import measured_availability
from repro.obs import MetricsRegistry
from repro.service import (
    ClusterState,
    DecisionStatus,
    PlaceRequest,
    PlacementService,
    ServiceConfig,
)

SMOKE = os.environ.get("RELIABILITY_SMOKE") == "1"
TRIALS = 2 if SMOKE else 10
HORIZON = 2000.0 if SMOKE else 6000.0
MTBF, MTTR = 5000.0, 50.0
#: Measured availability is a finite-sample estimate of the promise; the
#: injector's all-up start biases it high, but per-trial noise needs slack.
TOLERANCE = 0.02 if SMOKE else 0.01


def make_service(seed=23):
    pool = random_pool(
        PoolSpec(
            racks=4, nodes_per_rack=4, clouds=2, capacity_low=1,
            capacity_high=3,
        ),
        VMTypeCatalog.ec2_default(),
        seed=seed,
    )
    state = ClusterState.from_pool(pool)
    return PlacementService(
        state,
        config=ServiceConfig(batch_window=0.0, enable_transfers=False),
        obs=MetricsRegistry(),
    ), state


def test_service_promises_hold_under_injected_rack_failures():
    service, state = make_service()
    rack_ids = np.asarray(state.topology.rack_ids)
    num_racks = int(np.unique(rack_ids).shape[0])
    rng = np.random.default_rng(5)
    leases = []
    for i in range(8):
        k = int(rng.integers(1, 3))
        demand = tuple(int(d) for d in rng.integers(0, 3, size=state.num_types))
        if sum(demand) < k + 1:
            continue
        ticket = service.submit(
            PlaceRequest(
                demand=demand,
                request_id=100 + i,
                survivability=SurvivabilityTarget(
                    kind="rack", k=k, mtbf=MTBF, mttr=MTTR
                ),
            )
        )
        service.step()
        if not (ticket.done and ticket.decision.placed):
            continue
        report = ticket.decision.survivability
        assert report is not None and report["k"] == k
        matrix = state.leases[100 + i].matrix
        per_node = matrix.sum(axis=1)
        counts = {
            int(r): int(per_node[rack_ids == r].sum())
            for r in np.unique(rack_ids[per_node > 0])
        }
        total = int(matrix.sum())
        assert max(counts.values()) <= report["domain_cap"]
        leases.append(
            (counts, total - quorum(total, k), report["promised_availability"])
        )
    assert leases, "no targeted lease was placed"
    for counts, max_loss, promised in leases:
        measured = []
        for trial in range(TRIALS):
            schedule = FailureInjector(
                mtbf=MTBF,
                mean_repair_time=MTTR,
                horizon=HORIZON,
                seed=900 + trial,
            ).schedule(num_racks)
            measured.append(
                measured_availability(counts, max_loss, schedule, HORIZON)
            )
        assert float(np.mean(measured)) >= promised - TOLERANCE


def test_untargeted_decisions_carry_no_survivability():
    service, _state = make_service(seed=31)
    ticket = service.submit(PlaceRequest(demand=(1, 1, 0), request_id=1))
    service.step()
    assert ticket.done and ticket.decision.placed
    assert ticket.decision.survivability is None


def test_impossible_target_is_refused_at_submit():
    service, _state = make_service(seed=37)
    ticket = service.submit(
        PlaceRequest(
            demand=(1, 1, 0),  # 2 VMs cannot survive 5 rack failures
            request_id=2,
            survivability=SurvivabilityTarget(kind="rack", k=5),
        )
    )
    assert ticket.done
    assert ticket.decision.status == DecisionStatus.REFUSED
    assert "impossible" in ticket.decision.detail

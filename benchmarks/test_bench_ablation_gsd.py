"""Ablation: Algorithm 2 vs. the exact GSD optimum (MILP).

The paper never solves GSD exactly; this bench bounds Algorithm 2's
sub-optimality on a small instance where HiGHS terminates quickly."""

import functools

from repro.analysis import format_table
from repro.experiments.global_experiments import run_gsd_gap

from benchmarks.conftest import emit


def test_ablation_gsd_optimality_gap(benchmark):
    result = benchmark.pedantic(
        functools.partial(run_gsd_gap, num_requests=4), rounds=1, iterations=1
    )
    emit(
        "Ablation — Algorithm 2 vs exact GSD (4 requests, 8 nodes)",
        format_table(
            ["solver", "total distance"],
            [
                ["Algorithm 2 (heuristic + transfers)", result.algo2_total],
                ["GSD MILP (exact)", result.gsd_total],
            ],
        )
        + f"\ngap: {result.gap_pct:.1f}%",
    )
    assert result.algo2_total >= result.gsd_total - 1e-9

"""Algorithm 2: the global sub-optimization algorithm.

Given a batch of requests that current resources can jointly satisfy
(step 1, the queue's ``getRequests``), Algorithm 2:

* step 2 — runs Algorithm 1 (the online heuristic) on each request in order,
  committing each allocation so later requests see reduced availability;
* step 3 — sweeps all allocation pairs with *different* central nodes and
  applies Theorem-2 VM transfers (:func:`repro.core.placement.transfer.transfer_pair`)
  to shrink the summed distance ``Σ_k DC(C^k)``.

The paper runs one pass over pairs (``for i … for j``); we iterate passes to
a fixpoint by default (``max_rounds`` controls it) since later transfers can
enable earlier pairs again. One round with ``max_rounds=1`` reproduces the
paper's literal loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.resources import ResourcePool
from repro.core.placement.base import BatchPlacementAlgorithm, normalize_request
from repro.core.placement.greedy import OnlineHeuristic
from repro.core.placement.transfer import TransferResult, transfer_pair
from repro.core.problem import Allocation
from repro.util.errors import ValidationError


@dataclass
class GlobalOptimizationStats:
    """Diagnostics from one :meth:`GlobalSubOptimizer.place_batch` run."""

    initial_total_distance: float = 0.0
    final_total_distance: float = 0.0
    exchanges: int = 0
    rounds: int = 0

    @property
    def improvement(self) -> float:
        """Absolute distance saved by the transfer phase."""
        return self.initial_total_distance - self.final_total_distance

    @property
    def improvement_ratio(self) -> float:
        """Fraction of the online total saved (0 when nothing was placed)."""
        if self.initial_total_distance == 0:
            return 0.0
        return self.improvement / self.initial_total_distance


class GlobalSubOptimizer(BatchPlacementAlgorithm):
    """Algorithm 2: online placement per request + Theorem-2 transfer phase.

    Parameters
    ----------
    online:
        The single-request algorithm used in step 2 (defaults to
        Algorithm 1 with ``stop="best"``).
    max_rounds:
        Upper bound on pair-sweep passes (1 = the paper's single pass).
    use_paper_transfer:
        Restrict exchanges to the literal Theorem 2 precondition instead of
        the generalized swap search (ablation knob).
    worklist:
        Skip pairs whose allocations are unchanged since they last converged
        (both the generalized and the literal-paper transfer). The transfer
        functions are pure, so recomputing such a pair provably returns the
        same rejected result — skipping it preserves the fixpoint, the
        applied exchanges, and every statistic bit for bit. ``False``
        restores the full O(k²)-per-round re-sweep (ablation/benchmark
        baseline).
    timer:
        Optional :class:`~repro.util.timing.PhaseTimer` for the ``transfer``
        phase; defaults to sharing the online policy's timer so one report
        covers the whole pipeline.
    """

    name = "global-subopt"

    def __init__(
        self,
        online: "OnlineHeuristic | None" = None,
        *,
        max_rounds: int = 10,
        use_paper_transfer: bool = False,
        worklist: bool = True,
        timer=None,
    ) -> None:
        if max_rounds < 1:
            raise ValidationError("max_rounds must be >= 1")
        self.online = online or OnlineHeuristic()
        self.max_rounds = max_rounds
        self.use_paper_transfer = use_paper_transfer
        self.worklist = bool(worklist)
        self.timer = timer if timer is not None else self.online.timer
        self.last_stats = GlobalOptimizationStats()

    # ------------------------------------------------------------------ steps

    def place_online(
        self, requests, pool: ResourcePool, *, obs=None
    ) -> list["Allocation | None"]:
        """Step 2: sequential Algorithm-1 placement on a working copy."""
        work = pool.copy()
        out: list[Allocation | None] = []
        for request in requests:
            alloc = self.online.place(work, request, obs=obs).allocation
            if alloc is not None:
                work.allocate(alloc.matrix)
            out.append(alloc)
        return out

    def optimize_transfers(
        self,
        allocations: list["Allocation | None"],
        dist: np.ndarray,
        *,
        obs=None,
    ) -> list["Allocation | None"]:
        """Step 3: pairwise Theorem-2 transfers to a fixpoint.

        With :attr:`worklist` enabled, each allocation carries a change
        stamp; a pair is recomputed only when at least one side changed
        since the pair last converged (an accepted ``transfer_pair`` result
        is itself a pair fixpoint, so accepted pairs are marked converged at
        their new stamps too). Transfers are pure functions of the two
        allocations, so every skip replaces a provably identical
        recomputation — round count, applied exchanges, and the final
        allocations are exactly those of the full re-sweep.
        """
        from repro.core.placement.transfer import transfer_pair_paper
        from repro.obs.registry import DISTANCE_BUCKETS, ensure_registry

        registry = ensure_registry(obs)
        attempts_total = registry.counter(
            "repro_transfer_attempts_total",
            "Allocation pairs evaluated for a Theorem-2 transfer.",
        )
        applied_total = registry.counter(
            "repro_transfer_applied_total",
            "Pair transfers that improved the summed distance and were applied.",
        )
        exchanges_total = registry.counter(
            "repro_transfer_exchanges_total",
            "Individual VM exchanges applied across all accepted transfers.",
        )
        gain_hist = registry.histogram(
            "repro_transfer_gain_distance",
            "Distance gained per accepted pair transfer.",
            buckets=DISTANCE_BUCKETS,
        )

        allocs = list(allocations)
        live = [i for i, a in enumerate(allocs) if a is not None]
        exchanges = 0
        rounds = 0
        stamps = {i: 0 for i in live}
        converged: dict[tuple[int, int], tuple[int, int]] = {}
        with self.timer.phase("transfer"):
            for _ in range(self.max_rounds):
                rounds += 1
                changed = False
                for ai in range(len(live)):
                    for bi in range(ai + 1, len(live)):
                        i, j = live[ai], live[bi]
                        a1, a2 = allocs[i], allocs[j]
                        if a1.center == a2.center:
                            continue  # paper: "If two requests share the same
                            # central node, do nothing."
                        if (
                            self.worklist
                            and converged.get((i, j)) == (stamps[i], stamps[j])
                        ):
                            continue
                        if self.use_paper_transfer:
                            result = transfer_pair_paper(a1, a2, dist)
                        else:
                            result = transfer_pair(a1, a2, dist)
                        attempts_total.inc()
                        if result.improved and result.gain > 1e-9:
                            allocs[i] = result.first
                            allocs[j] = result.second
                            stamps[i] += 1
                            stamps[j] += 1
                            exchanges += result.exchanges
                            changed = True
                            applied_total.inc()
                            exchanges_total.inc(result.exchanges)
                            gain_hist.observe(result.gain)
                        converged[(i, j)] = (stamps[i], stamps[j])
                if not changed:
                    break
        self.last_stats.exchanges = exchanges
        self.last_stats.rounds = rounds
        return allocs

    # -------------------------------------------------------------- interface

    def _place_batch(self, pool: ResourcePool, requests, *, rng=None, obs=None):
        """Run steps 2 and 3; step 1 (queue admission) lives in
        :class:`repro.cloud.queue.RequestQueue`."""
        self.last_stats = GlobalOptimizationStats()
        allocs = self.place_online(requests, pool, obs=obs)
        placed = [a for a in allocs if a is not None]
        self.last_stats.initial_total_distance = float(
            sum(a.distance for a in placed)
        )
        allocs = self.optimize_transfers(allocs, pool.distance_matrix, obs=obs)
        placed = [a for a in allocs if a is not None]
        self.last_stats.final_total_distance = float(
            sum(a.distance for a in placed)
        )
        return allocs


def total_distance(allocations: list["Allocation | None"]) -> float:
    """Summed ``DC`` over placed allocations (the GSD objective)."""
    return float(sum(a.distance for a in allocations if a is not None))

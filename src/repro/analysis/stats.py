"""Summary statistics used by experiments and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ValidationError


@dataclass(frozen=True, slots=True)
class Summary:
    """Five-number-style summary of a series."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    total: float

    @classmethod
    def of(cls, values) -> "Summary":
        """Summarize any iterable of numbers (must be non-empty)."""
        arr = np.asarray(list(values), dtype=np.float64)
        if arr.size == 0:
            raise ValidationError("cannot summarize an empty series")
        return cls(
            count=int(arr.size),
            mean=float(arr.mean()),
            std=float(arr.std(ddof=0)),
            minimum=float(arr.min()),
            maximum=float(arr.max()),
            total=float(arr.sum()),
        )


def percent_change(baseline: float, improved: float) -> float:
    """Relative improvement of *improved* over *baseline*, in percent.

    Positive when *improved* is smaller (distances: smaller is better).
    Returns 0 for a zero baseline (no improvement measurable).
    """
    if baseline == 0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline


def geometric_mean(values) -> float:
    """Geometric mean of positive values (speedup aggregation)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValidationError("cannot take the geometric mean of an empty series")
    if arr.min() <= 0:
        raise ValidationError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))

"""Process-wide metrics registry: counters, gauges, histograms.

The observability layer the rest of the package instruments against. Design
constraints, in order:

* **Deterministic output.** Exposition (``repro.obs.export``) must be
  byte-stable under seeded runs, so histograms use *fixed* exponential
  buckets chosen at declaration time (never adapted to data), families
  render in sorted-name order, and label sets render in declaration order.
* **Zero overhead when disabled.** Every instrumented call site works
  against the instrument *interface*; :data:`NULL_REGISTRY` hands out a
  shared no-op instrument, so disabled instrumentation costs one attribute
  lookup and an empty method call — no allocation, no locking, no branches
  at the call site.
* **Thread safety.** The placement service mutates metrics from the
  scheduler thread, transport handler threads, and load-generator callbacks
  concurrently; one registry-wide lock covers all mutations (the hot path
  is a counter bump — contention is negligible at service request rates).

Instrument families follow the Prometheus data model: a family has a kind,
a name, optional help text, and optional label names; ``family.labels(...)``
returns (creating on first use) the child instrument for one label-value
combination. A family declared without labels acts as its own single child.
"""

from __future__ import annotations

import bisect
import threading

from repro.util.errors import ValidationError

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


def exponential_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` bucket upper bounds: ``start, start·factor, …`` (Prometheus
    convention; the ``+Inf`` bucket is implicit)."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ValidationError(
            "exponential_buckets needs start > 0, factor > 1, count >= 1"
        )
    return tuple(start * factor**i for i in range(count))


#: Latency buckets: ~10 µs to ~84 s, factor 2. Wide enough for both kernel
#: fills and whole drain cycles; fixed so output is deterministic.
LATENCY_BUCKETS = exponential_buckets(1e-5, 2.0, 23)

#: Cluster-distance buckets (DC values and transfer gains): 1 to 32768.
DISTANCE_BUCKETS = exponential_buckets(1.0, 2.0, 16)

#: Byte-volume buckets: 1 KiB to ~4 TiB, factor 4.
BYTES_BUCKETS = exponential_buckets(1024.0, 4.0, 16)

#: Small-count buckets (batch sizes, attempts): 1 to 1024, factor 2.
COUNT_BUCKETS = exponential_buckets(1.0, 2.0, 11)


class _NullInstrument:
    """Shared do-nothing instrument; every mutator is a no-op.

    ``labels`` returns ``self`` so labeled and unlabeled call sites both
    collapse to nothing. Reads return 0 so the null registry is also safe
    to *report* from.
    """

    __slots__ = ()

    def labels(self, **_kv) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0


NULL_INSTRUMENT = _NullInstrument()


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValidationError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Value that can move both ways."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Cumulative histogram over fixed (declaration-time) bucket bounds."""

    __slots__ = ("_lock", "buckets", "_counts", "_sum", "_count")

    def __init__(self, lock: threading.Lock, buckets: tuple[float, ...]) -> None:
        self._lock = lock
        self.buckets = buckets
        self._counts = [0] * (len(buckets) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs ending at ``+Inf``."""
        out = []
        running = 0
        for bound, n in zip(self.buckets, self._counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), self._count))
        return out


_KIND_FACTORY = {COUNTER: Counter, GAUGE: Gauge}


class MetricFamily:
    """One named metric with zero or more label dimensions."""

    __slots__ = ("kind", "name", "help", "label_names", "buckets", "_lock", "_children")

    def __init__(
        self,
        kind: str,
        name: str,
        help_text: str,
        label_names: tuple[str, ...],
        lock: threading.Lock,
        buckets: "tuple[float, ...] | None" = None,
    ) -> None:
        self.kind = kind
        self.name = name
        self.help = help_text
        self.label_names = label_names
        self.buckets = buckets
        self._lock = lock
        self._children: dict[tuple[str, ...], object] = {}

    def _make_child(self):
        # Each child carries its own lock (lock striping): a busy counter
        # cell never serializes against unrelated instruments. The shared
        # registry lock guards only the children/family maps — never the
        # hot inc/set/observe path. Value reads stay lock-free (a single
        # attribute read is atomic enough for exposition).
        if self.kind == HISTOGRAM:
            return Histogram(threading.Lock(), self.buckets)
        return _KIND_FACTORY[self.kind](threading.Lock())

    def labels(self, **labelvalues):
        """Child instrument for one label-value combination (created lazily)."""
        if set(labelvalues) != set(self.label_names):
            raise ValidationError(
                f"{self.name} expects labels {self.label_names}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[n]) for n in self.label_names)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    def _default(self):
        if self.label_names:
            raise ValidationError(
                f"{self.name} is labeled {self.label_names}; use .labels(...)"
            )
        return self.labels()

    # Unlabeled families act as their own single child.
    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    @property
    def value(self) -> float:
        return self._default().value

    @property
    def count(self) -> int:
        return self._default().count

    @property
    def sum(self) -> float:
        return self._default().sum

    def cumulative(self) -> list[tuple[float, int]]:
        return self._default().cumulative()

    def samples(self) -> list[tuple[tuple[str, ...], object]]:
        """``(label_values, instrument)`` pairs in sorted label order."""
        return sorted(self._children.items(), key=lambda kv: kv[0])


class MetricsRegistry:
    """Container of metric families; the unit of exposition.

    ``counter``/``gauge``/``histogram`` are idempotent declarations: calling
    them again with the same name returns the existing family (and validates
    that the kind and labels agree), so instrumented components can simply
    declare what they need at construction time and share series naturally.
    """

    #: Real registries record; the null registry reports ``False`` so code
    #: can skip *building* expensive observations (never required for
    #: correctness — every instrument call is safe on both).
    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}

    def _declare(
        self,
        kind: str,
        name: str,
        help_text: str,
        labels: tuple[str, ...],
        buckets: "tuple[float, ...] | None" = None,
    ) -> MetricFamily:
        labels = tuple(labels)
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind or family.label_names != labels:
                raise ValidationError(
                    f"metric {name!r} redeclared as {kind}{labels} "
                    f"(was {family.kind}{family.label_names})"
                )
            return family
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(
                    kind, name, help_text, labels, self._lock, buckets
                )
                self._families[name] = family
        return family

    def counter(self, name: str, help: str = "", labels=()) -> MetricFamily:
        return self._declare(COUNTER, name, help, labels)

    def gauge(self, name: str, help: str = "", labels=()) -> MetricFamily:
        return self._declare(GAUGE, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels=(),
        buckets: tuple[float, ...] = LATENCY_BUCKETS,
    ) -> MetricFamily:
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValidationError("histogram buckets must be sorted and unique")
        return self._declare(HISTOGRAM, name, help, labels, tuple(buckets))

    def families(self) -> list[MetricFamily]:
        """All families, sorted by name (the deterministic exposition order)."""
        return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> "MetricFamily | None":
        return self._families.get(name)

    def flatten(self) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
        """Every sample as ``(series_name, ((label, value), ...)) → number``.

        Histograms expand to ``name_bucket`` (with an ``le`` label),
        ``name_sum``, and ``name_count`` series — the exact sample set both
        exposition formats carry, which makes this the comparison key for
        round-trip tests.
        """
        out: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
        for family in self.families():
            for values, inst in family.samples():
                base = tuple(zip(family.label_names, values))
                if family.kind == HISTOGRAM:
                    for bound, cum in inst.cumulative():
                        le = format_bound(bound)
                        out[(family.name + "_bucket", base + (("le", le),))] = float(cum)
                    out[(family.name + "_sum", base)] = float(inst.sum)
                    out[(family.name + "_count", base)] = float(inst.count)
                else:
                    out[(family.name, base)] = float(inst.value)
        return out


class NullRegistry(MetricsRegistry):
    """Registry that records nothing and costs (almost) nothing.

    Declarations return the shared :data:`NULL_INSTRUMENT`; exposition sees
    an empty registry. Pass this (or ``obs=None``, which components map to
    it) to run fully un-instrumented — outputs are bit-identical either way,
    the null registry just skips the bookkeeping.
    """

    enabled = False

    def _declare(self, kind, name, help_text, labels, buckets=None):  # type: ignore[override]
        return NULL_INSTRUMENT

    def histogram(self, name, help="", labels=(), buckets=LATENCY_BUCKETS):  # type: ignore[override]
        return NULL_INSTRUMENT

    def families(self) -> list[MetricFamily]:
        return []

    def get(self, name):
        return None

    def flatten(self):
        return {}


NULL_REGISTRY = NullRegistry()


def ensure_registry(obs: "MetricsRegistry | None") -> MetricsRegistry:
    """Map the conventional ``obs=None`` to the shared null registry."""
    return obs if obs is not None else NULL_REGISTRY


def format_bound(bound: float) -> str:
    """Deterministic ``le`` label for a bucket bound (``+Inf`` for ∞)."""
    if bound == float("inf"):
        return "+Inf"
    return repr(bound)

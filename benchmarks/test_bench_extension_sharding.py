"""Extension bench: sharded placement fabric vs the single service.

The single :class:`~repro.service.server.PlacementService` serializes every
placement behind one lock and one scheduler thread, and each Algorithm-1
sweep scans all ``n`` candidate centers. The sharded fabric cuts the pool
into 8 rack-aligned shards: 8 scheduler threads place concurrently and each
sweep touches ``n/8`` nodes, at the cost of routing and (slightly) less
global affinity information per decision.

Both sides serve the same seeded closed-loop workload (16 in-flight
clients, exponential lease holding times) at 240/480/960 nodes. Per size we
record sustained throughput, acceptance rate, and mean committed ``DC``
into ``benchmarks/results/sharding_bench.json`` (full runs only; smoke runs
— ``SHARDING_BENCH_SMOKE=1`` — shrink everything and leave the committed
numbers alone). The headline acceptance criteria are asserted at 480 nodes
/ 8 shards: ≥ 2× throughput, acceptance within 2 points, mean ``DC``
within 10%.
"""

import functools
import json
import os
from pathlib import Path

from repro.analysis import format_table
from repro.cluster import PoolSpec, VMTypeCatalog, random_pool
from repro.obs import MetricsRegistry
from repro.service import (
    ClusterState,
    LoadGenConfig,
    PlacementService,
    ServiceConfig,
    run_loadgen,
)
from repro.service.shard import FabricConfig, RackGroupPlan, ShardedPlacementFabric

from benchmarks.conftest import emit

SMOKE = os.environ.get("SHARDING_BENCH_SMOKE") == "1"
#: (racks_per_cloud, nodes_per_rack), two clouds — 240/480/960 nodes on
#: full runs.
SIZES = [(2, 4), (2, 8), (4, 8)] if SMOKE else [(8, 15), (16, 15), (16, 30)]
NUM_SHARDS = 2 if SMOKE else 8
NUM_REQUESTS = 30 if SMOKE else 600
CONCURRENCY = 4 if SMOKE else 24
RESULTS_PATH = Path(__file__).parent / "results" / "sharding_bench.json"

CATALOG = VMTypeCatalog.ec2_default()

SERVICE_CONFIG = ServiceConfig(
    batch_window=0.002, max_batch=64, enable_transfers=True, queue_capacity=1024
)


def make_pool(racks: int, nodes_per_rack: int):
    return random_pool(
        PoolSpec(
            racks=racks,
            nodes_per_rack=nodes_per_rack,
            clouds=2,
            capacity_low=1,
            capacity_high=4,
        ),
        CATALOG,
        seed=37,
    )


def loadgen_config() -> LoadGenConfig:
    return LoadGenConfig(
        num_requests=NUM_REQUESTS,
        mode="closed",
        concurrency=CONCURRENCY,
        mean_hold=0.05,
        demand_high=3,
        seed=41,
    )


def run_single(racks: int, nodes_per_rack: int):
    service = PlacementService(
        ClusterState.from_pool(make_pool(racks, nodes_per_rack)),
        config=SERVICE_CONFIG,
        obs=MetricsRegistry(),
    )
    service.start()
    try:
        return run_loadgen(service, loadgen_config())
    finally:
        service.drain()


def run_fabric(racks: int, nodes_per_rack: int):
    fabric = ShardedPlacementFabric(
        make_pool(racks, nodes_per_rack),
        plan=RackGroupPlan(NUM_SHARDS),
        config=FabricConfig(rebalance_interval=0.2, service=SERVICE_CONFIG),
        obs=MetricsRegistry(),
    )
    fabric.start()
    try:
        return run_loadgen(fabric, loadgen_config())
    finally:
        fabric.drain()


def run_comparison():
    records = []
    for racks, nodes_per_rack in SIZES:
        single = run_single(racks, nodes_per_rack)
        fabric = run_fabric(racks, nodes_per_rack)
        records.append(
            {
                "nodes": racks * nodes_per_rack * 2,  # two clouds
                "shards": NUM_SHARDS,
                "requests": NUM_REQUESTS,
                "concurrency": CONCURRENCY,
                "single_throughput_rps": single.throughput,
                "fabric_throughput_rps": fabric.throughput,
                "speedup": (
                    fabric.throughput / single.throughput
                    if single.throughput
                    else 0.0
                ),
                "single_acceptance": single.acceptance_rate,
                "fabric_acceptance": fabric.acceptance_rate,
                "single_mean_dc": single.mean_distance,
                "fabric_mean_dc": fabric.mean_distance,
                "single_p99_ms": single.latency_p99 * 1000,
                "fabric_p99_ms": fabric.latency_p99 * 1000,
            }
        )
    return records


def test_sharded_fabric_scales_throughput(benchmark):
    records = benchmark.pedantic(
        functools.partial(run_comparison), rounds=1, iterations=1
    )
    rows = [
        [
            rec["nodes"],
            f"{rec['single_throughput_rps']:.0f}",
            f"{rec['fabric_throughput_rps']:.0f}",
            f"{rec['speedup']:.2f}x",
            f"{rec['single_acceptance']:.3f}",
            f"{rec['fabric_acceptance']:.3f}",
            f"{rec['single_mean_dc']:.3f}",
            f"{rec['fabric_mean_dc']:.3f}",
        ]
        for rec in records
    ]
    emit(
        f"Extension — sharded fabric ({NUM_SHARDS} shards) vs single service "
        "(closed loop)",
        format_table(
            [
                "nodes",
                "single rps",
                "fabric rps",
                "speedup",
                "single acc",
                "fabric acc",
                "single DC",
                "fabric DC",
            ],
            rows,
        ),
    )
    if not SMOKE:
        RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
        RESULTS_PATH.write_text(
            json.dumps(
                {
                    "shards": NUM_SHARDS,
                    "concurrency": CONCURRENCY,
                    "requests": NUM_REQUESTS,
                    "sizes": records,
                },
                indent=1,
            )
        )
    for rec in records:
        # Nobody loses requests: both sides decide everything submitted.
        assert rec["single_acceptance"] > 0
        assert rec["fabric_acceptance"] > 0
    if not SMOKE:
        # Headline criteria at 480 nodes / 8 shards.
        headline = records[1]
        assert headline["speedup"] >= 2.0
        assert (
            abs(headline["fabric_acceptance"] - headline["single_acceptance"])
            <= 0.02
        )
        assert (
            headline["fabric_mean_dc"]
            <= headline["single_mean_dc"] * 1.10 + 1e-9
        )

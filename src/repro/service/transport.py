"""Blocking TCP transport for the placement service (stdlib only).

One request envelope per frame, one response per frame. Every exchange is::

    {"op": "place", "message": {...PlaceRequest fields...}}
    {"op": "release", "message": {...ReleaseRequest fields...}}
    {"op": "stats"}
    {"op": "checkpoint"}
    {"op": "metrics", "format": "prom"}
    {"op": "shards"}
    {"op": "ping"}

Responses are ``{"ok": true, ...payload...}`` or ``{"ok": false, "error": msg}``.
Placement responses embed the terminal decision; the handler thread blocks on
the service ticket while the scheduler loop works, so clients see exactly one
synchronous round trip per request.

Connections open in line JSON. A client that wants the binary codec sends
``{"op": "hello", "codecs": [...]}`` as its first envelope; the server
answers ``{"ok": true, "codec": <pick>}`` and both ends switch — see
:mod:`repro.service.codec`. Peers that never send a hello (every pre-codec
client) stay on line JSON with byte-identical behavior.

:class:`ServiceEndpoint` wraps a :class:`~repro.service.server.PlacementService`
— or a :class:`~repro.service.shard.ShardedPlacementFabric`; the two share the
serving surface, so every op is shard-transparent — behind the shared
threaded substrate (:class:`~repro.service.transports.TcpServerHandle`);
:class:`ServiceClient` is the matching blocking client. Both are deliberately
minimal — the serving intelligence lives in the service, not the wire.
Canonical construction is via the transport registry
(``resolve_transport("thread").serve(...)/.connect(...)``); the direct
constructors remain for compatibility and warn once per class.

Malformed input (truncated frames, oversized payloads, invalid UTF-8, unknown
ops, envelopes of the wrong shape) always produces a typed
``{"ok": false, "error": ...}`` reply on that connection; nothing a client
sends can take down the accept loop.
"""

from __future__ import annotations

import json
import logging
import socket
import socketserver
import threading
import time

from repro.obs.export import render
from repro.service.api import (
    PlaceRequest,
    ReleaseRequest,
    encode_message,
    decode_message,
)
from repro.service.codec import (
    JsonLineCodec,
    MAX_OP_BYTES,
    SUPPORTED_CODECS,
    choose_codec,
    resolve_codec,
)
from repro.service.server import PlacementService
from repro.service.transports import TcpServerHandle, warn_legacy_construction
from repro.util.errors import ReproError, TransportError, TransportTimeout, ValidationError
from repro.util.retry import TRANSPORT_RETRY, RetryPolicy

_log = logging.getLogger(__name__)

#: How long a handler waits for the scheduler to decide one placement.
DECISION_TIMEOUT = 30.0

#: Default per-operation client socket timeout. Deliberately *above*
#: :data:`DECISION_TIMEOUT` so a healthy-but-slow server answers with its
#: own typed timeout decision before the client tears the connection down;
#: only a truly unresponsive server (dead worker, partition) trips this.
DEFAULT_OP_TIMEOUT = 35.0

#: Hard per-frame byte budget; longer frames are rejected, not parsed.
MAX_LINE_BYTES = MAX_OP_BYTES

#: Ops that are safe to retry on a fresh connection: they carry no
#: state-changing payload, so replaying one can never double-place or
#: double-release.
_READ_ONLY_OPS = frozenset({"ping", "stats", "checkpoint", "shards", "metrics", "hello"})

#: Codec preferences a client accepts.
_CLIENT_CODECS = ("json", "binary", "auto")


# ------------------------------------------------------- envelope dispatch
#
# Shared by the threaded handler here and the asyncio handler in
# :mod:`repro.service.aio`: everything except the *blocking* half of
# ``place`` is transport-independent.


def hello_response(envelope: dict, supported) -> "tuple[dict, str]":
    """Answer a codec-negotiation hello; returns ``(response, chosen)``."""
    chosen = choose_codec(envelope.get("codecs"), supported=tuple(supported))
    return {"ok": True, "codec": chosen, "codecs": list(supported)}, chosen


def submit_place(service, envelope: dict):
    """Decode a ``place`` envelope and submit it; returns the ticket."""
    message = decode_message(
        json.dumps(envelope.get("message", {}) | {"kind": "place"})
    )
    return message, service.submit(message)


def finish_place(service, message, ticket, decision) -> dict:
    """Turn a ticket outcome into the response envelope (or withdraw)."""
    if decision is None:
        # Withdraw the queued request before giving up — otherwise a
        # later release could place it into a lease no client knows
        # about, consuming capacity forever. If cancellation races
        # with a concurrent placement the ticket is already resolved
        # and the real (placed) decision goes back to the client.
        service.cancel(message.request_id)
        decision = ticket.result(timeout=1.0)
    if decision is None:
        raise ValidationError("placement decision timed out")
    return {"ok": True, "decision": json.loads(encode_message(decision))}


def dispatch_sync(service, envelope: dict) -> dict:
    """Handle every op except ``place``/``hello`` (those need the transport)."""
    op = envelope.get("op")
    if op == "ping":
        return {"ok": True, "pong": True}
    if op == "stats":
        return {"ok": True, "stats": service.stats.to_dict()}
    if op == "checkpoint":
        return {"ok": True, "checkpoint": service.checkpoint_doc()}
    if op == "shards":
        return {"ok": True, "shards": service.describe_shards()}
    if op == "metrics":
        fmt = envelope.get("format", "prom")
        return {"ok": True, "format": fmt, "body": render(service.obs, fmt)}
    if op == "release":
        message = decode_message(
            json.dumps(envelope.get("message", {}) | {"kind": "release"})
        )
        response = service.release(message)
        return {"ok": True, "release": json.loads(encode_message(response))}
    raise ValidationError(f"unknown op {op!r}")


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        service: PlacementService = self.server.service  # type: ignore[attr-defined]
        supported = getattr(self.server, "codecs", SUPPORTED_CODECS)
        codec = JsonLineCodec()
        while True:
            switch_to = None
            try:
                envelope = codec.decode_op(self.rfile)
                if envelope is None:
                    return
                if "op" not in envelope:
                    raise ValidationError("envelope must be an object with an 'op'")
                if envelope["op"] == "hello":
                    response, switch_to = hello_response(envelope, supported)
                else:
                    response = self._dispatch(service, envelope)
            except OSError:
                return
            except TransportError as exc:
                # Codec-level failure. Line framing re-syncs at the next
                # newline, so reply and keep going; binary framing cannot,
                # so reply (best effort) and drop the connection.
                if not self._reply(codec, {"ok": False, "error": str(exc)}):
                    return
                if codec.resync_on_error:
                    continue
                return
            except ReproError as exc:
                response = {"ok": False, "error": str(exc)}
            except Exception as exc:  # defensive: never kill the connection
                response = {"ok": False, "error": f"internal error: {exc}"}
            if not self._reply(codec, response):
                return
            if switch_to is not None:
                codec = resolve_codec(switch_to)

    def _reply(self, codec, response: dict) -> bool:
        try:
            self.wfile.write(codec.encode_op(response))
            self.wfile.flush()
            return True
        except (TransportError, OSError):
            return False  # client went away mid-reply; connection is done

    def _dispatch(self, service: PlacementService, envelope: dict) -> dict:
        if envelope["op"] == "place":
            message, ticket = submit_place(service, envelope)
            decision = ticket.result(timeout=DECISION_TIMEOUT)
            return finish_place(service, message, ticket, decision)
        return dispatch_sync(service, envelope)


class ServiceEndpoint:
    """TCP front end for one :class:`PlacementService`.

    ``port=0`` (the default) binds an ephemeral port; read :attr:`address`
    after :meth:`start`. The underlying service's scheduler loop is started
    and stopped together with the endpoint. ``codecs`` restricts what the
    endpoint will negotiate (default: everything this build speaks).
    """

    def __init__(
        self,
        service: PlacementService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        codecs: "tuple[str, ...]" = SUPPORTED_CODECS,
        _via_transport: bool = False,
    ) -> None:
        if not _via_transport:
            warn_legacy_construction(
                type(self), 'resolve_transport("thread").serve(service, ...)'
            )
        self.service = service
        self._handle = TcpServerHandle(
            _Handler,
            host=host,
            port=port,
            context={"service": service, "codecs": tuple(codecs)},
            thread_name="placement-endpoint",
        )

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` pair."""
        return self._handle.address

    def start(self) -> "ServiceEndpoint":
        """Start the service scheduler and the accept loop (idempotent)."""
        if not self._handle.running:
            self.service.start()
            self._handle.start()
        return self

    def stop(self, *, drain: bool = True) -> None:
        """Stop accepting connections; optionally drain the service."""
        self._handle.stop()
        if drain:
            self.service.drain()
        else:
            self.service.stop()

    def __enter__(self) -> "ServiceEndpoint":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class ServiceClient:
    """Blocking envelope client for a serving endpoint (any transport).

    Hardened against an unresponsive server: every operation is bounded by
    ``op_timeout`` (one knob, defaulting to :data:`DEFAULT_OP_TIMEOUT`), so
    a dead shard worker surfaces as a typed
    :class:`~repro.util.errors.TransportTimeout` instead of a hung client.
    Connection-level failures raise
    :class:`~repro.util.errors.TransportError`. Read-only operations are
    retried up to ``retries`` times on a fresh connection with
    ``retry_policy`` backoff; mutating operations (``place``, ``release``)
    are never retried automatically — replaying them could double-commit —
    the caller decides, typically by consulting server state first.

    ``codec`` selects the wire format: ``"json"`` (default — no handshake,
    byte-identical to every prior release), ``"binary"`` (negotiate at
    connect; a server that cannot is a :class:`TransportError`), or
    ``"auto"`` (offer binary, fall back to JSON against older servers).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 10.0,
        op_timeout: "float | None" = None,
        retries: int = 0,
        retry_policy: RetryPolicy = TRANSPORT_RETRY,
        codec: str = "json",
        _via_transport: bool = False,
    ) -> None:
        if not _via_transport:
            warn_legacy_construction(
                type(self), 'resolve_transport("thread").connect(host, port, ...)'
            )
        if retries < 0:
            raise ValidationError("retries must be >= 0")
        if codec not in _CLIENT_CODECS:
            raise ValidationError(
                f"codec must be one of {_CLIENT_CODECS}, got {codec!r}"
            )
        self._address = (host, port)
        self._connect_timeout = timeout
        self._op_timeout = DEFAULT_OP_TIMEOUT if op_timeout is None else op_timeout
        self._retries = retries
        self._retry_policy = retry_policy
        self._codec_pref = codec
        self._codec = JsonLineCodec()
        self._sock: "socket.socket | None" = None
        self._file = None
        self._connect()

    @property
    def codec(self) -> str:
        """The codec this connection negotiated (``"json"`` or ``"binary"``)."""
        return self._codec.name

    def _connect(self) -> None:
        try:
            self._sock = socket.create_connection(
                self._address, timeout=self._connect_timeout
            )
        except socket.timeout as exc:
            raise TransportTimeout(
                f"connect to {self._address} timed out after "
                f"{self._connect_timeout}s"
            ) from exc
        except OSError as exc:
            raise TransportError(f"cannot connect to {self._address}: {exc}") from exc
        self._sock.settimeout(self._op_timeout)
        self._file = self._sock.makefile("rwb")
        self._codec = JsonLineCodec()
        if self._codec_pref != "json":
            self._negotiate()

    def _negotiate(self) -> None:
        offer = ["binary"] if self._codec_pref == "binary" else list(SUPPORTED_CODECS)
        try:
            response = self._call_once({"op": "hello", "codecs": offer})
        except ValidationError as exc:
            # A pre-codec server answers hello with a typed unknown-op error
            # on a healthy connection: fall back (auto) or refuse (binary).
            if self._codec_pref == "auto":
                return
            self._teardown()
            raise TransportError(
                f"server at {self._address} does not support codec "
                f"negotiation: {exc}"
            ) from exc
        chosen = response.get("codec", "json")
        if self._codec_pref == "binary" and chosen != "binary":
            self._teardown()
            raise TransportError(
                f"server at {self._address} negotiated {chosen!r}, "
                "binary required"
            )
        self._codec = resolve_codec(chosen)

    def _teardown(self) -> None:
        # After a timeout or connection error the stream is desynchronized
        # (a late reply would answer the wrong call); drop the connection.
        try:
            if self._file is not None:
                self._file.close()
        except OSError:
            pass
        try:
            if self._sock is not None:
                self._sock.close()
        except OSError:
            pass
        self._file = None
        self._sock = None

    def request(self, envelope: dict) -> dict:
        """One envelope round trip — the :class:`Connection` protocol surface.

        Applies the same retry discipline as the typed helpers: read-only
        ops may retry on a fresh (re-negotiated) connection, mutations never.
        """
        return self._call(envelope)

    def _call(self, envelope: dict) -> dict:
        retryable = envelope.get("op") in _READ_ONLY_OPS
        attempts = 1 + (self._retries if retryable else 0)
        last_exc: "Exception | None" = None
        for attempt in range(1, attempts + 1):
            if self._file is None:
                try:
                    self._connect()
                except TransportError as exc:
                    last_exc = exc
                    if attempt < attempts:
                        time.sleep(self._retry_policy.delay(attempt))
                        continue
                    raise
            try:
                return self._call_once(envelope)
            except (TransportTimeout, TransportError) as exc:
                last_exc = exc
                self._teardown()
                if attempt < attempts:
                    _log.warning(
                        "retrying %s after transport failure (%s), attempt "
                        "%d/%d", envelope.get("op"), exc, attempt, attempts,
                    )
                    time.sleep(self._retry_policy.delay(attempt))
                    continue
                raise
        raise last_exc  # unreachable; keeps the control flow obvious

    def _call_once(self, envelope: dict) -> dict:
        try:
            self._file.write(self._codec.encode_op(envelope))
            self._file.flush()
            response = self._codec.decode_op(self._file)
        except socket.timeout as exc:
            raise TransportTimeout(
                f"op {envelope.get('op')!r} timed out after "
                f"{self._op_timeout}s"
            ) from exc
        except OSError as exc:
            raise TransportError(
                f"connection to {self._address} failed: {exc}"
            ) from exc
        if response is None:
            raise TransportError("server closed the connection")
        if not response.get("ok"):
            raise ValidationError(response.get("error", "unknown server error"))
        return response

    def ping(self) -> bool:
        return bool(self._call({"op": "ping"}).get("pong"))

    def place(self, request: PlaceRequest):
        """Submit a placement and block for its terminal decision."""
        message = json.loads(encode_message(request))
        message.pop("kind")
        response = self._call({"op": "place", "message": message})
        return decode_message(json.dumps(response["decision"]))

    def release(self, request_id: int):
        """Release a lease by id."""
        message = json.loads(encode_message(ReleaseRequest(request_id=request_id)))
        message.pop("kind")
        response = self._call({"op": "release", "message": message})
        return decode_message(json.dumps(response["release"]))

    def stats(self) -> dict:
        return self._call({"op": "stats"})["stats"]

    def checkpoint(self) -> dict:
        """Fetch the server's live checkpoint document."""
        return self._call({"op": "checkpoint"})["checkpoint"]

    def shards(self) -> list:
        """Per-shard summaries (a one-entry list for an unsharded service)."""
        return self._call({"op": "shards"})["shards"]

    def metrics(self, format: str = "prom") -> str:
        """Scrape the server's metrics registry.

        ``format`` is ``"prom"`` (Prometheus exposition text) or ``"json"``
        (one JSON document per metric family, newline-delimited).
        """
        return self._call({"op": "metrics", "format": format})["body"]

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

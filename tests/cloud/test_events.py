"""Tests for the discrete-event queue and leases."""

import pytest

from repro.cloud.events import EventQueue
from repro.cloud.lease import Lease
from repro.cloud.request import TimedRequest
from repro.core.problem import Allocation, VirtualClusterRequest
from repro.util.errors import ValidationError

import numpy as np


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.schedule(5.0, "b")
        q.schedule(1.0, "a")
        q.schedule(3.0, "c")
        assert [q.pop().kind for _ in range(3)] == ["a", "c", "b"]

    def test_fifo_tie_break(self):
        q = EventQueue()
        q.schedule(1.0, "first")
        q.schedule(1.0, "second")
        assert q.pop().kind == "first"
        assert q.pop().kind == "second"

    def test_clock_advances(self):
        q = EventQueue()
        q.schedule(2.5, "x")
        assert q.now == 0.0
        q.pop()
        assert q.now == 2.5

    def test_scheduling_in_past_rejected(self):
        q = EventQueue()
        q.schedule(5.0, "x")
        q.pop()
        with pytest.raises(ValidationError):
            q.schedule(4.0, "y")

    def test_schedule_at_now_allowed(self):
        q = EventQueue()
        q.schedule(5.0, "x")
        q.pop()
        q.schedule(5.0, "y")
        assert q.pop().kind == "y"

    def test_pop_empty_rejected(self):
        with pytest.raises(ValidationError):
            EventQueue().pop()

    def test_peek_time(self):
        q = EventQueue()
        q.schedule(7.0, "x")
        assert q.peek_time() == 7.0
        assert len(q) == 1

    def test_peek_empty_rejected(self):
        with pytest.raises(ValidationError):
            EventQueue().peek_time()

    def test_payload_carried(self):
        q = EventQueue()
        q.schedule(1.0, "x", payload={"k": 1})
        assert q.pop().payload == {"k": 1}

    def test_empty_flag(self):
        q = EventQueue()
        assert q.empty
        q.schedule(1.0, "x")
        assert not q.empty


class TestLease:
    def _lease(self, arrival=0.0, start=2.0, duration=5.0):
        req = TimedRequest(
            request=VirtualClusterRequest(demand=[1]),
            arrival_time=arrival,
            duration=duration,
        )
        alloc = Allocation(matrix=np.array([[1]]), center=0, distance=0.0)
        return Lease(request=req, allocation=alloc, start_time=start)

    def test_end_time(self):
        lease = self._lease(start=2.0, duration=5.0)
        assert lease.end_time == 7.0

    def test_wait_time(self):
        lease = self._lease(arrival=1.0, start=2.5)
        assert lease.wait_time == 1.5

    def test_start_before_arrival_rejected(self):
        with pytest.raises(ValidationError):
            self._lease(arrival=5.0, start=2.0)

"""Failover suite: kill k of n shard workers mid-trace, verify recovery.

The invariants under test (the PR's acceptance bar):

* **no surviving lease lost** — killing a shard never perturbs leases held
  by other shards; the expected ledger (placed minus successfully released)
  matches the fabric's union ledger exactly after recovery;
* **byte-identical restore** — the restored shard's state serializes to
  exactly the checkpoint payload the worker write-ahead replicated before
  the kill, and the whole-fabric checkpoint round-trips byte-identically;
* **degraded routing** — while a shard is down the router never places on
  its nodes, requests only it could serve fail fast as
  ``shard_unavailable``, and in-flight victims re-route to survivors;
* **acceptance recovers** — post-restore traffic is admitted again with no
  ``shard_unavailable`` decisions;
* **supervision is free** — with zero deaths, a supervised run is decision-
  and byte-identical to the plain PR-5 fabric on the same trace.

Everything is manually stepped against an injected fake clock, so kills,
detection, TTL expiry, and restores replay deterministically. Set
``CHAOS_SMOKE=1`` to shrink the traces for CI smoke runs.
"""

import json
import os

import numpy as np
import pytest

from repro.cluster import PoolSpec, VMTypeCatalog, random_pool
from repro.obs import MetricsRegistry
from repro.service import (
    DecisionStatus,
    FabricChaosInjector,
    FabricSupervisor,
    InMemoryCoordinationBackend,
    PlaceRequest,
    ReleaseRequest,
    ServiceConfig,
    SupervisorConfig,
    checkpoint_bytes,
    fabric_from_checkpoint,
)
from repro.service.shard import FabricConfig, RackGroupPlan, ShardedPlacementFabric
from repro.util.errors import ValidationError

CATALOG = VMTypeCatalog.ec2_default()
SMOKE = os.environ.get("CHAOS_SMOKE", "") == "1"
TRACE_LEN = 40 if SMOKE else 90


class FakeClock:
    def __init__(self, t=0.0):
        self.t = float(t)

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt
        return self.t


def make_pool(seed=7, racks=8, nodes_per_rack=3):
    return random_pool(
        PoolSpec(
            racks=racks,
            nodes_per_rack=nodes_per_rack,
            clouds=2,
            capacity_low=1,
            capacity_high=3,
        ),
        CATALOG,
        seed=seed,
    )


def make_fabric(pool, shards=8, **config_kwargs):
    config_kwargs.setdefault("service", ServiceConfig(batch_window=0.0))
    service = config_kwargs.pop("service")
    return ShardedPlacementFabric(
        pool,
        plan=RackGroupPlan(shards),
        config=FabricConfig(service=service, **config_kwargs),
        obs=MetricsRegistry(),
    )


def make_supervised(seed=7, shards=8, clock=None, **sup_kwargs):
    clock = clock or FakeClock()
    pool = make_pool(seed)
    fabric = make_fabric(pool, shards=shards)
    supervisor = FabricSupervisor(
        fabric,
        InMemoryCoordinationBackend(),
        SupervisorConfig(**sup_kwargs) if sup_kwargs else SupervisorConfig(),
        clock=clock,
    )
    return pool, fabric, supervisor, clock


def make_trace(seed, count=TRACE_LEN, num_types=3):
    rng = np.random.default_rng(seed)
    trace = []
    live = []
    for rid in range(count):
        demand = [int(x) for x in rng.integers(0, 3, size=num_types)]
        if sum(demand) == 0:
            demand[rng.integers(0, num_types)] = 1
        trace.append(("place", rid, demand))
        live.append(rid)
        if live and rng.random() < 0.3:
            victim = live.pop(int(rng.integers(0, len(live))))
            trace.append(("release", victim, None))
    return trace


def pump(fabric, rounds=12):
    for _ in range(rounds):
        if not fabric.step_all(now=0.0) and not fabric.queued:
            break


class TraceDriver:
    """Replays a trace, tracking every ticket and successful release."""

    def __init__(self, fabric):
        self.fabric = fabric
        self.tickets = {}
        self.released = set()

    def apply(self, op, rid, demand):
        if op == "place":
            self.tickets[rid] = self.fabric.submit(
                PlaceRequest(request_id=rid, demand=demand)
            )
        elif op == "release":
            response = self.fabric.release(ReleaseRequest(request_id=rid))
            if response.released:
                self.released.add(rid)
        pump(self.fabric)

    def run(self, trace, on_step=None):
        for index, (op, rid, demand) in enumerate(trace):
            self.apply(op, rid, demand)
            if on_step is not None:
                on_step(index)

    def decisions(self):
        return {
            rid: ticket.decision
            for rid, ticket in self.tickets.items()
            if ticket.decision is not None
        }

    def expected_leases(self):
        """Placed and never successfully released → must hold a lease."""
        return {
            rid
            for rid, decision in self.decisions().items()
            if decision.placed and rid not in self.released
        }


def fabric_lease_ids(fabric):
    held = set()
    for shard in fabric.shards:
        held |= set(shard.state.leases)
    return held


def placements_touch_shard(decision, shard):
    nodes = set(int(n) for n in shard.to_global)
    return any(node in nodes for node, _, _ in decision.placements)


class TestSupervisedEquivalence:
    def test_zero_death_run_is_identical_to_plain_fabric(self):
        """Satellite (d): supervision with no chaos changes nothing."""
        trace = make_trace(1101, num_types=make_pool().num_types)

        def run(supervised):
            pool = make_pool(seed=7)
            fabric = make_fabric(pool, shards=8)
            if supervised:
                FabricSupervisor(
                    fabric,
                    InMemoryCoordinationBackend(),
                    SupervisorConfig(),
                    clock=FakeClock(),
                )
            driver = TraceDriver(fabric)
            driver.run(trace)
            fabric.verify_consistency()
            statuses = {
                rid: (d.status, d.placements, d.center, d.distance)
                for rid, d in driver.decisions().items()
            }
            return statuses, fabric.checkpoint_bytes()

        plain_decisions, plain_bytes = run(supervised=False)
        sup_decisions, sup_bytes = run(supervised=True)
        assert sup_decisions == plain_decisions
        assert sup_bytes == plain_bytes

    def test_supervised_run_keeps_backend_in_sync(self):
        pool, fabric, supervisor, clock = make_supervised()
        driver = TraceDriver(fabric)
        driver.run(make_trace(1102, num_types=pool.num_types))
        supervisor.verify_consistency()
        fabric.verify_consistency()
        # Every shard's replicated payload is the live state, byte-exact.
        for worker in supervisor.workers:
            payload = supervisor.backend.get_checkpoint(worker.worker_id)
            assert payload == checkpoint_bytes(worker.service.state).encode("utf-8")


class TestFailoverMidTrace:
    def kill_and_recover(self, kill_shards, *, defer_steps=6, seed=7):
        """Run a trace, kill ``kill_shards`` mid-way, recover, verify."""
        pool, fabric, supervisor, clock = make_supervised(seed=seed)
        trace = make_trace(2000 + len(kill_shards), num_types=pool.num_types)
        half = len(trace) // 2
        driver = TraceDriver(fabric)
        driver.run(trace[:half])

        pre_kill = driver.decisions()
        survivors_before = {
            s.shard_id: dict(s.state.leases)
            for s in fabric.shards
            if s.shard_id not in kill_shards
        }
        payloads = {
            k: supervisor.backend.get_checkpoint(f"shard-{k}")
            for k in kill_shards
        }
        gate_open = {"open": False}
        supervisor.restore_gate = lambda sid, now: gate_open["open"]
        for k in kill_shards:
            supervisor.workers[k].kill()
        clock.advance(1.0)
        events = supervisor.monitor(now=clock.t)
        assert {e.shard_id for e in events} == set(kill_shards)
        assert all(not e.restored for e in events)
        assert fabric.down_shards == frozenset(kill_shards)

        # Degraded serving: run part of the remaining trace with the shards
        # still dead; nothing may be placed on a dead shard's nodes.
        outage_slice = trace[half : half + defer_steps]
        driver.run(outage_slice)
        assert fabric.down_shards == frozenset(kill_shards)
        for rid, decision in driver.decisions().items():
            if rid in pre_kill or not decision.placed:
                continue
            for k in kill_shards:
                assert not placements_touch_shard(decision, fabric.shards[k])

        # Recovery: open the gate, monitor restores from the replicated
        # checkpoint, byte-identically.
        gate_open["open"] = True
        clock.advance(1.0)
        restore_events = supervisor.monitor(now=clock.t)
        assert {e.shard_id for e in restore_events} == set(kill_shards)
        assert all(e.restored for e in restore_events)
        assert fabric.down_shards == frozenset()
        for k in kill_shards:
            assert checkpoint_bytes(fabric.shards[k].state).encode("utf-8") == payloads[k]

        # Finish the trace against the healed fabric.
        driver.run(trace[half + defer_steps :])
        pump(fabric)
        fabric.verify_consistency()
        supervisor.verify_consistency()

        # (a) no lease outside the dead shards lost — survivors' pre-kill
        # leases are still held unless the trace released them later.
        for sid, leases in survivors_before.items():
            shard = fabric.shards[sid]
            for rid in leases:
                if rid in driver.released:
                    continue
                assert fabric.owner_of(rid) is not None, (sid, rid)
        # The expected ledger matches the fabric's union ledger exactly.
        assert fabric_lease_ids(fabric) == driver.expected_leases()
        # (b) the healed fabric checkpoint round-trips byte-identically.
        blob = fabric.checkpoint_bytes()
        restored = fabric_from_checkpoint(json.loads(blob))
        assert restored.checkpoint_bytes() == blob
        return fabric, supervisor, driver, trace

    def test_kill_one_of_eight_mid_trace(self):
        fabric, supervisor, driver, trace = self.kill_and_recover([3])
        assert fabric.stats.shard_deaths == 1
        assert fabric.stats.shard_restores == 1

    def test_kill_two_of_eight_mid_trace(self):
        fabric, supervisor, driver, trace = self.kill_and_recover([1, 6])
        assert fabric.stats.shard_deaths == 2
        assert fabric.stats.shard_restores == 2

    def test_acceptance_recovers_after_restore(self):
        pool, fabric, supervisor, clock = make_supervised()
        driver = TraceDriver(fabric)
        driver.run(make_trace(2201, count=30, num_types=pool.num_types))
        supervisor.workers[0].kill()
        clock.advance(1.0)
        supervisor.monitor(now=clock.t)  # auto-restores (no gate)
        assert fabric.down_shards == frozenset()
        before_placed = fabric.stats.placed
        follow_up = []
        for rid in range(9000, 9000 + 12):
            ticket = fabric.submit(PlaceRequest(request_id=rid, demand=(1, 0, 0)))
            follow_up.append(ticket)
            pump(fabric)
        decisions = [t.decision for t in follow_up if t.decision is not None]
        assert len(decisions) == len(follow_up)
        assert all(
            d.status != DecisionStatus.SHARD_UNAVAILABLE for d in decisions
        )
        assert fabric.stats.placed > before_placed
        fabric.verify_consistency()

    def test_inflight_requests_reroute_to_survivors(self):
        pool, fabric, supervisor, clock = make_supervised()
        # Queue requests without stepping so they are in flight, then kill
        # whichever shards admitted them.
        tickets = {}
        for rid in range(500, 512):
            tickets[rid] = fabric.submit(
                PlaceRequest(request_id=rid, demand=(1, 0, 0))
            )
        owners = {rid: fabric.owner_of(rid) for rid in tickets}
        target = max(
            set(owners.values()) - {None},
            key=lambda sid: sum(1 for o in owners.values() if o == sid),
        )
        victims = [rid for rid, sid in owners.items() if sid == target]
        assert victims, "router should have admitted something to the target"
        supervisor.workers[target].kill()
        gate = {"open": False}
        supervisor.restore_gate = lambda sid, now: gate["open"]
        clock.advance(1.0)
        events = supervisor.monitor(now=clock.t)
        assert events and set(events[0].rerouted) == set(victims)
        pump(fabric)
        for rid in victims:
            decision = tickets[rid].decision
            assert decision is not None
            if decision.placed:
                assert not placements_touch_shard(
                    decision, fabric.shards[target]
                )

    def test_release_on_dead_shard_fails_fast_and_survives_restore(self):
        pool, fabric, supervisor, clock = make_supervised()
        driver = TraceDriver(fabric)
        driver.run(make_trace(2203, count=30, num_types=pool.num_types))
        # Find a shard holding at least one lease and kill it.
        target = max(
            fabric.shards, key=lambda s: s.state.num_leases
        ).shard_id
        held = sorted(fabric.shards[target].state.leases)
        assert held
        gate = {"open": False}
        supervisor.restore_gate = lambda sid, now: gate["open"]
        supervisor.workers[target].kill()
        clock.advance(1.0)
        supervisor.monitor(now=clock.t)
        response = fabric.release(ReleaseRequest(request_id=held[0]))
        assert response.status == DecisionStatus.SHARD_UNAVAILABLE
        assert not fabric.cancel(held[0])
        # verify_consistency reports the stranded leases while degraded...
        with pytest.raises(ValidationError, match="dead shard"):
            fabric.verify_consistency()
        # ...and the supervisor refuses ledger verification too.
        with pytest.raises(ValidationError, match="dead shard"):
            supervisor.verify_consistency()
        gate["open"] = True
        clock.advance(1.0)
        supervisor.monitor(now=clock.t)
        # The stranded lease survived the outage and releases normally now.
        response = fabric.release(ReleaseRequest(request_id=held[0]))
        assert response.released
        fabric.verify_consistency()

    def test_checkpoint_refused_while_degraded(self):
        pool, fabric, supervisor, clock = make_supervised()
        gate = {"open": False}
        supervisor.restore_gate = lambda sid, now: gate["open"]
        supervisor.workers[2].kill()
        clock.advance(1.0)
        supervisor.monitor(now=clock.t)
        with pytest.raises(ValidationError, match="dead shard"):
            fabric.checkpoint_doc()


class TestHeartbeatDetection:
    def test_missed_heartbeats_trigger_failover(self):
        pool, fabric, supervisor, clock = make_supervised(heartbeat_ttl=1.0)
        worker = supervisor.workers[4]
        worker.suppress_until = float("inf")  # partition the heartbeat path
        # The worker still "runs" (not crashed), but its beats never land;
        # every other worker keeps beating normally.
        clock.advance(2.0)
        for other in supervisor.workers:
            other.beat(clock.t)  # no-op for the suppressed worker
        events = supervisor.monitor(now=clock.t)
        assert [e.shard_id for e in events] == [4]
        assert "heartbeat age" in events[0].reason
        assert events[0].restored  # auto-restore, no gate
        assert fabric.down_shards == frozenset()

    def test_short_heartbeat_delay_is_absorbed(self):
        pool, fabric, supervisor, clock = make_supervised(heartbeat_ttl=1.0)
        worker = supervisor.workers[4]
        worker.suppress_until = clock.t + 0.4  # shorter than the TTL
        clock.advance(0.5)
        worker.beat(clock.t)  # delay elapsed; beat lands again
        assert supervisor.monitor(now=clock.t) == []
        assert fabric.down_shards == frozenset()

    def test_worker_incarnation_bumps_on_restore(self):
        pool, fabric, supervisor, clock = make_supervised()
        worker = supervisor.workers[0]
        assert worker.incarnation == 1
        worker.kill()
        clock.advance(1.0)
        supervisor.monitor(now=clock.t)
        assert worker.incarnation == 2
        record = supervisor.backend.workers()[worker.worker_id]
        assert record.incarnation == 2


class TestChaosInjector:
    def test_chaos_schedule_is_seed_deterministic(self):
        _, fabric_a, sup_a, _ = make_supervised(seed=11)
        _, fabric_b, sup_b, _ = make_supervised(seed=11)
        chaos_a = FabricChaosInjector(
            sup_a, mtbf=3.0, mean_repair_time=1.0, horizon=20.0, seed=42
        )
        chaos_b = FabricChaosInjector(
            sup_b, mtbf=3.0, mean_repair_time=1.0, horizon=20.0, seed=42
        )
        assert chaos_a.schedule == chaos_b.schedule
        assert chaos_a.schedule, "renewal schedule should draw kills"

    def test_chaos_trace_keeps_invariants(self):
        pool, fabric, supervisor, clock = make_supervised(seed=13)
        chaos = FabricChaosInjector(
            supervisor,
            mtbf=4.0,
            mean_repair_time=0.5,
            horizon=float(TRACE_LEN) * 0.1,
            heartbeat_delay_probability=0.05,
            heartbeat_delay=0.3,
            seed=99,
        )
        trace = make_trace(3301, num_types=pool.num_types)
        driver = TraceDriver(fabric)
        for index, (op, rid, demand) in enumerate(trace):
            clock.advance(0.1)
            chaos.advance(clock.t)
            supervisor.monitor(now=clock.t)
            driver.apply(op, rid, demand)
        # Drain the outage tail: advance past every repair and re-monitor.
        for _ in range(50):
            if not fabric.down_shards:
                break
            clock.advance(1.0)
            supervisor.monitor(now=clock.t)
        assert fabric.down_shards == frozenset()
        assert chaos.kills >= 1, "chaos run should have killed something"
        pump(fabric)
        fabric.verify_consistency()
        supervisor.verify_consistency()
        # Terminal decision for every submission; none hung.
        for rid, ticket in driver.tickets.items():
            assert ticket.decision is not None, rid
        # No surviving lease lost: expected ledger == fabric ledger, minus
        # leases that died with a shard whose restore dropped nothing (the
        # write-ahead hook replicates every commit, so nothing is dropped).
        assert fabric_lease_ids(fabric) == driver.expected_leases()
        # The healed fabric still serves.
        ticket = fabric.submit(
            PlaceRequest(request_id=777777, demand=(1, 0, 0))
        )
        pump(fabric)
        assert ticket.decision is not None and ticket.decision.placed

    def test_checkpoint_write_faults_are_retried(self):
        pool, fabric, supervisor, clock = make_supervised(seed=17)
        worker = supervisor.workers[0]
        shard = fabric.shards[0]
        baseline = supervisor.backend.get_checkpoint(worker.worker_id)
        # Force every replication to fail, commit a placement on shard 0,
        # and check the backend still holds the pre-fault payload.
        worker.replication_fault = lambda: True
        rid = 8801
        local_demand = (1, 0, 0)
        ticket = None
        for attempt in range(40):
            candidate = rid + attempt
            t = fabric.submit(
                PlaceRequest(request_id=candidate, demand=local_demand)
            )
            pump(fabric)
            d = t.decision
            if d is not None and d.placed and placements_touch_shard(d, shard):
                ticket = t
                break
        assert ticket is not None, "no placement landed on shard 0"
        assert worker.replication_failures > 0
        assert supervisor.backend.get_checkpoint(worker.worker_id) == baseline
        # Clear the fault; the next commit replicates the missed versions.
        worker.replication_fault = None
        fabric.release(ReleaseRequest(request_id=ticket.request_id))
        payload = supervisor.backend.get_checkpoint(worker.worker_id)
        assert payload == checkpoint_bytes(shard.state).encode("utf-8")

    def test_kill_during_repair_window_is_not_double_applied(self):
        pool, fabric, supervisor, clock = make_supervised(seed=19)
        chaos = FabricChaosInjector(
            supervisor,
            failure_probability=1.0,  # one-shot: every worker dies once
            mean_repair_time=5.0,
            horizon=1.0,
            seed=3,
        )
        clock.advance(2.0)
        applied = chaos.advance(clock.t)
        assert len(applied) == len(supervisor.workers)
        again = chaos.advance(clock.t)
        assert again == []

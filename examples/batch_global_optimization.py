#!/usr/bin/env python
"""Batch provisioning: Algorithm 2's global sub-optimization in action.

Drains a queue of twenty random cluster requests two ways — one-by-one with
the online heuristic (Algorithm 1) and as a batch with the global
sub-optimizer (Algorithm 2, Theorem-2 VM transfers) — then verifies the
optimized allocations still fit the pool and reports the distance saved.

Run:  python examples/batch_global_optimization.py
"""

import numpy as np

from repro import OnlineHeuristic, PoolSpec, VMTypeCatalog, random_pool
from repro.analysis import format_series, format_table
from repro.cluster.generators import RequestSpec, feasible_random_requests
from repro.core import GlobalSubOptimizer, total_distance


def main() -> None:
    catalog = VMTypeCatalog.ec2_default()
    pool = random_pool(
        PoolSpec(racks=3, nodes_per_rack=10, capacity_high=2), catalog, seed=5
    )
    requests = feasible_random_requests(
        pool, RequestSpec(low=0, high=5, min_total=6), 20, seed=17
    )
    # Keep a jointly satisfiable batch (the queue's getRequests step).
    batch, budget = [], pool.available.copy()
    for r in requests:
        if np.all(r <= budget):
            batch.append(r)
            budget -= r
    print(f"Admitted {len(batch)} of {len(requests)} requests "
          f"({int(sum(r.sum() for r in batch))} VMs total)\n")

    optimizer = GlobalSubOptimizer(OnlineHeuristic())
    online = optimizer.place_online(batch, pool)
    optimized = optimizer.optimize_transfers(online, pool.distance_matrix)

    print(format_series("online  distances", [a.distance for a in online]))
    print(format_series("global  distances", [a.distance for a in optimized]))

    stats = optimizer.last_stats
    rows = [
        ["online heuristic (Algorithm 1)", total_distance(online), "-"],
        [
            "global sub-optimization (Algorithm 2)",
            total_distance(optimized),
            f"{stats.exchanges} VM exchanges",
        ],
    ]
    print()
    print(format_table(["strategy", "total distance", "work"], rows))

    saved = total_distance(online) - total_distance(optimized)
    pct = 100 * saved / total_distance(online) if total_distance(online) else 0.0
    print(f"\nTheorem-2 transfers saved {saved:g} distance ({pct:.1f}%).")

    # The exchanges are capacity-neutral: the combined allocation still fits.
    combined = sum(a.matrix for a in optimized)
    assert np.all(combined <= pool.remaining), "optimized batch must fit the pool"
    print("Verified: optimized allocations still fit the pool exactly.")


if __name__ == "__main__":
    main()

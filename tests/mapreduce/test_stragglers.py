"""Tests for straggler modeling and speculative execution."""

import numpy as np
import pytest

from repro.cluster import PoolSpec, VMTypeCatalog, random_pool
from repro.core.placement.greedy import OnlineHeuristic
from repro.mapreduce import (
    MapReduceEngine,
    NO_STRAGGLERS,
    StragglerModel,
    VirtualCluster,
    wordcount,
)
from repro.mapreduce.tasks import TaskState
from repro.util.errors import ValidationError
from repro.util.rng import ensure_rng


@pytest.fixture(scope="module")
def cluster():
    catalog = VMTypeCatalog.ec2_default()
    pool = random_pool(
        PoolSpec(racks=3, nodes_per_rack=10, capacity_high=3), catalog, seed=7
    )
    alloc = OnlineHeuristic().place(np.array([8, 6, 2]), pool)
    return VirtualCluster.from_allocation(alloc, pool.distance_matrix, catalog)


@pytest.fixture(scope="module")
def job():
    return wordcount(combiner=False)


HEAVY = StragglerModel(probability=0.15, min_factor=3.0, max_factor=8.0)


class TestStragglerModel:
    def test_disabled_by_default(self):
        assert not NO_STRAGGLERS.enabled
        assert NO_STRAGGLERS.draw(ensure_rng(1)) == 1.0

    def test_probability_one_always_slows(self):
        model = StragglerModel(probability=1.0, min_factor=2.0, max_factor=4.0)
        rng = ensure_rng(2)
        for _ in range(20):
            factor = model.draw(rng)
            assert 2.0 <= factor <= 4.0

    def test_probability_bounds_factor(self):
        model = StragglerModel(probability=0.5, min_factor=2.0, max_factor=2.0)
        rng = ensure_rng(3)
        draws = {model.draw(rng) for _ in range(100)}
        assert draws <= {1.0, 2.0}
        assert len(draws) == 2  # both outcomes occur

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"probability": -0.1},
            {"probability": 1.1},
            {"min_factor": 0.5},
            {"min_factor": 5.0, "max_factor": 2.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            StragglerModel(**kwargs)


class TestEngineWithStragglers:
    def test_stragglers_slow_the_job(self, cluster, job):
        base = MapReduceEngine(cluster, seed=3).run(job, hdfs_seed=5).runtime
        slow = (
            MapReduceEngine(cluster, stragglers=HEAVY, seed=3)
            .run(job, hdfs_seed=5)
            .runtime
        )
        assert slow > base

    def test_speculation_recovers_most_loss(self, cluster, job):
        base = MapReduceEngine(cluster, seed=3).run(job, hdfs_seed=5).runtime
        slow = (
            MapReduceEngine(cluster, stragglers=HEAVY, seed=3)
            .run(job, hdfs_seed=5)
            .runtime
        )
        spec = (
            MapReduceEngine(
                cluster, stragglers=HEAVY, speculative_execution=True, seed=3
            )
            .run(job, hdfs_seed=5)
            .runtime
        )
        assert spec < slow
        # Speculation should claw back at least half of the straggler loss.
        assert (slow - spec) > 0.5 * (slow - base)

    def test_deterministic_given_seed(self, cluster, job):
        def run():
            return (
                MapReduceEngine(
                    cluster, stragglers=HEAVY, speculative_execution=True, seed=9
                )
                .run(job, hdfs_seed=5)
                .runtime
            )

        assert run() == run()

    def test_all_tasks_still_complete(self, cluster, job):
        result = MapReduceEngine(
            cluster, stragglers=HEAVY, speculative_execution=True, seed=4
        ).run(job, hdfs_seed=5)
        assert all(m.state is TaskState.DONE for m in result.map_records)
        assert len(result.map_records) == job.num_maps
        assert len(result.flows) == job.num_maps * job.num_reduces

    def test_each_map_produces_one_flow_per_reducer(self, cluster, job):
        """Backup attempts must not duplicate shuffle flows."""
        result = MapReduceEngine(
            cluster, stragglers=HEAVY, speculative_execution=True, seed=5
        ).run(job, hdfs_seed=5)
        seen = [(f.map_task, f.reduce_task) for f in result.flows]
        assert len(seen) == len(set(seen))

    def test_shuffle_bytes_unchanged_by_speculation(self, cluster, job):
        base = MapReduceEngine(cluster, seed=6).run(job, hdfs_seed=5)
        spec = MapReduceEngine(
            cluster, stragglers=HEAVY, speculative_execution=True, seed=6
        ).run(job, hdfs_seed=5)
        assert spec.total_shuffle_bytes == pytest.approx(base.total_shuffle_bytes)

    def test_speculation_without_stragglers_harmless(self, cluster, job):
        base = MapReduceEngine(cluster, seed=7).run(job, hdfs_seed=5).runtime
        spec = (
            MapReduceEngine(cluster, speculative_execution=True, seed=7)
            .run(job, hdfs_seed=5)
            .runtime
        )
        # Backups of healthy tasks never win earlier than the originals
        # here (same duration, later start), so runtime is unchanged.
        assert spec == pytest.approx(base)

    def test_slot_accounting_survives_cancellations(self, cluster, job):
        """After the job, every slot must have been returned exactly once."""
        engine = MapReduceEngine(
            cluster, stragglers=HEAVY, speculative_execution=True, seed=8
        )
        result = engine.run(job, hdfs_seed=5)
        # Re-running on the same engine instance works only if slot state
        # is reconstructed per run — which it is (local to run()).
        result2 = engine.run(job, hdfs_seed=5)
        assert result2.runtime > 0

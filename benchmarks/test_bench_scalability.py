"""Scalability: placement cost vs. cloud size, kernels vs. reference.

The paper claims O(n²·m) for Algorithm 1. This bench measures wall-clock
growth of the heuristic from 30 to 960 nodes in both implementations — the
retained per-center Python reference loop and the vectorized kernels
(:mod:`repro.core.placement.kernels`) — reports the observed log-log scaling
exponent, and times Algorithm 2's transfer phase on the Fig. 5 batches
against the pre-kernel baseline (``_reference_transfer_pair`` + full O(k²)
re-sweep vs. vectorized ``best_exchange`` + worklist scheduling).

Full runs rewrite ``benchmarks/results/scalability_bench.json`` (the
committed record the perf-smoke CI gate compares against). Smoke runs —
``SCALABILITY_BENCH_SMOKE=1`` — shrink sizes/repeats, keep the 90-node
point (the gate's reference size), and leave the committed numbers alone.
"""

import functools
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.analysis import format_table
from repro.cluster import PoolSpec, random_pool
from repro.cluster.generators import feasible_random_requests
from repro.core.placement import global_opt as gmod
from repro.core.placement import transfer as tmod
from repro.core.placement.exact import solve_sd_exact
from repro.core.placement.global_opt import GlobalSubOptimizer
from repro.core.placement.greedy import OnlineHeuristic
from repro.experiments import paperconfig as cfg

from benchmarks.conftest import emit

SMOKE = os.environ.get("SCALABILITY_BENCH_SMOKE") == "1"
#: (racks, nodes/rack) → 30/90 nodes on smoke, 30/90/240/480/960 on full.
SIZES = (
    [(3, 10), (3, 30)]
    if SMOKE
    else [(3, 10), (3, 30), (6, 40), (12, 40), (16, 60)]
)
#: Placements timed per size (more on small pools where each is cheap).
REPEATS = {30: 20, 90: 10, 240: 5, 480: 3, 960: 2}
TRANSFER_TRIALS = 3 if SMOKE else 10
REQUEST = np.array([8, 8, 4])
RESULTS_PATH = Path(__file__).parent / "results" / "scalability_bench.json"


def _placement_stats_s(
    heuristic: OnlineHeuristic, pool, repeats: int
) -> "tuple[float, float]":
    """(mean, p99) per-placement seconds over *repeats* timed placements."""
    heuristic.place(pool, REQUEST)  # warm-up (builds the topology cache)
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        heuristic.place(pool, REQUEST)
        samples.append(time.perf_counter() - start)
    return float(np.mean(samples)), float(np.percentile(samples, 99))


def run_heuristic_scaling() -> list[dict]:
    records = []
    for racks, nodes in SIZES:
        pool = random_pool(
            PoolSpec(racks=racks, nodes_per_rack=nodes, capacity_high=2),
            cfg.CATALOG,
            seed=5,
            distance_model=cfg.DISTANCES,
        )
        repeats = max(2, REPEATS.get(pool.num_nodes, 2) // (2 if SMOKE else 1))
        kernel_s, kernel_p99_s = _placement_stats_s(
            OnlineHeuristic(use_kernels=True), pool, repeats
        )
        reference_s, reference_p99_s = _placement_stats_s(
            OnlineHeuristic(use_kernels=False), pool, repeats
        )
        records.append(
            {
                "nodes": pool.num_nodes,
                "repeats": repeats,
                "reference_ms": reference_s * 1000,
                "kernel_ms": kernel_s * 1000,
                "reference_p99_ms": reference_p99_s * 1000,
                "kernel_p99_ms": kernel_p99_s * 1000,
                "speedup": reference_s / kernel_s,
            }
        )
    return records


def _scaling_exponent(records: list[dict], key: str) -> float:
    """Least-squares slope of log(time) vs. log(nodes)."""
    xs = np.log([rec["nodes"] for rec in records])
    ys = np.log([rec[key] for rec in records])
    return float(np.polyfit(xs, ys, 1)[0])


def fig5_batches() -> list[tuple[list, np.ndarray]]:
    """Step-2 outputs of the Fig. 5 scenario, one per trial (the transfer
    phase's input), reproducing ``run_fig5``'s chained-seed draws."""
    from repro.util.rng import ensure_rng

    rng = ensure_rng(cfg.MASTER_SEED)
    batches = []
    for _ in range(TRANSFER_TRIALS):
        pool = random_pool(
            cfg.SIM_POOL, cfg.CATALOG, rng, distance_model=cfg.DISTANCES
        )
        requests = feasible_random_requests(
            pool, cfg.FIG5_REQUESTS, cfg.NUM_REQUESTS, rng
        )
        admissible = []
        budget = pool.available.copy()
        for r in requests:
            if np.all(r <= budget):
                admissible.append(r)
                budget -= r
        optimizer = GlobalSubOptimizer(OnlineHeuristic())
        allocs = optimizer.place_online(admissible, pool)
        batches.append((allocs, pool.distance_matrix))
    return batches


def _time_transfers(batches, *, worklist: bool, baseline: bool, repeats=5):
    """Best-of-N wall time for the transfer phase over all batches.

    ``baseline=True`` swaps in the retained pre-kernel pair optimizer
    (per-type ``best_exchange`` loop + ``Allocation``-based recentering) so
    full runs record an honest before/after pair.
    """
    saved = gmod.transfer_pair
    if baseline:
        gmod.transfer_pair = tmod._reference_transfer_pair
    try:
        best = float("inf")
        outs = None
        for _ in range(repeats):
            optimizer = GlobalSubOptimizer(OnlineHeuristic(), worklist=worklist)
            start = time.perf_counter()
            outs = [
                optimizer.optimize_transfers(allocs, dist)
                for allocs, dist in batches
            ]
            best = min(best, time.perf_counter() - start)
    finally:
        gmod.transfer_pair = saved
    return best, outs


def run_transfer_comparison() -> dict:
    batches = fig5_batches()
    baseline_s, baseline_out = _time_transfers(
        batches, worklist=False, baseline=True
    )
    optimized_s, optimized_out = _time_transfers(
        batches, worklist=True, baseline=False
    )
    identical = all(
        (a is None and b is None)
        or (
            a.matrix.tobytes() == b.matrix.tobytes()
            and a.center == b.center
            and a.distance == b.distance
        )
        for before, after in zip(baseline_out, optimized_out)
        for a, b in zip(before, after)
    )
    return {
        "trials": TRANSFER_TRIALS,
        "baseline_ms": baseline_s * 1000,
        "optimized_ms": optimized_s * 1000,
        "speedup": baseline_s / optimized_s,
        "identical_results": identical,
    }


def test_scalability_kernels_vs_reference(benchmark):
    records = run_heuristic_scaling()
    exponents = {
        "reference": _scaling_exponent(records, "reference_ms"),
        "kernel": _scaling_exponent(records, "kernel_ms"),
    }
    rows = [
        [
            rec["nodes"],
            f"{rec['reference_ms']:.2f}",
            f"{rec['kernel_ms']:.2f}",
            f"{rec['speedup']:.1f}x",
        ]
        for rec in records
    ]
    emit(
        "Scalability — Algorithm 1 time per placement, reference vs. kernels",
        format_table(
            ["nodes", "reference (ms)", "kernels (ms)", "speedup"], rows
        )
        + f"\nobserved scaling exponents: reference n^{exponents['reference']:.2f}, "
        f"kernels n^{exponents['kernel']:.2f}",
    )
    transfer = run_transfer_comparison()
    emit(
        "Scalability — Algorithm 2 transfer phase on the Fig. 5 batches",
        f"baseline {transfer['baseline_ms']:.2f} ms  optimized "
        f"{transfer['optimized_ms']:.2f} ms  speedup {transfer['speedup']:.2f}x  "
        f"identical results: {transfer['identical_results']}",
    )
    # The worklist scheduler may only skip provably identical recomputation.
    assert transfer["identical_results"]
    # Growth stays well below cubic (the O(n²) regime plus sort overhead).
    assert exponents["kernel"] < 3.0
    if not SMOKE:
        # Acceptance: ≥5x per-placement at 480 nodes, ≥3x transfer phase.
        by_nodes = {rec["nodes"]: rec for rec in records}
        assert by_nodes[480]["speedup"] >= 5.0
        assert transfer["speedup"] >= 3.0
        RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
        RESULTS_PATH.write_text(
            json.dumps(
                {
                    "request": REQUEST.tolist(),
                    "stop": "best",
                    "heuristic": records,
                    "scaling_exponents": exponents,
                    "transfer": transfer,
                },
                indent=1,
            )
        )

    # Register one size with pytest-benchmark for the history table.
    pool = random_pool(
        PoolSpec(racks=3, nodes_per_rack=10, capacity_high=2),
        cfg.CATALOG,
        seed=5,
        distance_model=cfg.DISTANCES,
    )
    heuristic = OnlineHeuristic()
    benchmark(functools.partial(heuristic.place, REQUEST, pool))


def test_scalability_exact(benchmark):
    pool = random_pool(
        PoolSpec(racks=6, nodes_per_rack=20, capacity_high=2),
        cfg.CATALOG,
        seed=6,
        distance_model=cfg.DISTANCES,
    )
    request = np.array([8, 8, 4])
    alloc = benchmark(functools.partial(solve_sd_exact, request, pool))
    assert alloc is not None

"""Chaos injection for the supervised fabric: worker kills, delays, faults.

:class:`FabricChaosInjector` drives three failure modes against a
:class:`~repro.service.supervisor.FabricSupervisor`, all drawn from one
seeded RNG so a chaos run replays exactly:

* **worker kills** — the kill schedule is drawn by the cloud layer's
  :class:`~repro.cloud.failures.FailureInjector` (PR 1's renewal MTBF/MTTR
  machinery, pointed at *workers* instead of nodes): each worker alternates
  exponential up-times and repair times, or fails at most once in one-shot
  mode. A due kill calls :meth:`~repro.service.supervisor.ShardWorker.kill`
  — the worker fences like a crashed process — and the event's
  ``recover_time`` gates the supervisor's restore (MTTR: the replacement
  "process" takes that long to come up).
* **heartbeat delays** — with ``heartbeat_delay_probability`` per advance
  per live worker, beats are suppressed for ``heartbeat_delay`` seconds,
  modeling GC pauses and partitions on the control path. Delays shorter
  than the supervisor's heartbeat TTL are absorbed; longer ones escalate
  into a (spurious but safe) failover.
* **checkpoint write faults** — with ``checkpoint_fault_probability`` per
  replication attempt, the write to the backend raises. The worker keeps
  its previous replicated version, so the next commit retries and the
  backend never holds a torn copy; recovery simply restores a slightly
  older — still internally consistent — ledger.

Drive it manually (``advance(now)`` between trace steps) for deterministic
tests, with the supervisor's ``monitor(now)`` interleaved by the caller.

The injector is duck-typed over the supervisor: pointed at a
:class:`~repro.service.proc.supervisor.ProcSupervisor`, a due kill
delivers a **real SIGKILL** to the shard's child process (via
:meth:`~repro.service.proc.supervisor.ProcWorkerProxy.kill`) and recovery
is an actual respawn-from-replicated-checkpoint. The heartbeat-delay and
checkpoint-fault knobs are in-process-only (the parent cannot reach into a
child's heartbeat loop) — leave them at zero for proc fabrics.
"""

from __future__ import annotations

import logging

from repro.cloud.failures import FailureEvent, FailureInjector
from repro.util.errors import ValidationError
from repro.util.rng import ensure_rng

_log = logging.getLogger(__name__)


class FabricChaosInjector:
    """Deterministic chaos schedule over a supervised fabric's workers.

    Parameters
    ----------
    supervisor:
        The supervisor — :class:`~repro.service.supervisor.FabricSupervisor`
        or :class:`~repro.service.proc.supervisor.ProcSupervisor` — whose
        workers are the blast radius. The injector installs itself as the
        supervisor's ``restore_gate`` so kills honor their drawn repair
        times.
    mtbf / mean_repair_time / failure_probability / horizon:
        Forwarded to :class:`~repro.cloud.failures.FailureInjector` —
        ``mtbf=None`` selects the one-shot regime (each worker dies at most
        once inside the horizon with ``failure_probability``).
    heartbeat_delay_probability / heartbeat_delay:
        Per-advance, per-live-worker chance of suppressing beats, and for
        how long.
    checkpoint_fault_probability:
        Per-attempt chance that a checkpoint replication write raises.
    seed:
        Seeds both the kill schedule and the delay/fault draws.
    """

    def __init__(
        self,
        supervisor,
        *,
        mtbf: "float | None" = None,
        mean_repair_time: float = 2.0,
        failure_probability: float = 0.5,
        horizon: float = 10.0,
        heartbeat_delay_probability: float = 0.0,
        heartbeat_delay: float = 0.5,
        checkpoint_fault_probability: float = 0.0,
        seed=None,
    ) -> None:
        if not (0.0 <= heartbeat_delay_probability <= 1.0):
            raise ValidationError(
                "heartbeat_delay_probability must be in [0, 1]"
            )
        if heartbeat_delay <= 0:
            raise ValidationError("heartbeat_delay must be > 0")
        if not (0.0 <= checkpoint_fault_probability <= 1.0):
            raise ValidationError(
                "checkpoint_fault_probability must be in [0, 1]"
            )
        self.supervisor = supervisor
        self.heartbeat_delay_probability = heartbeat_delay_probability
        self.heartbeat_delay = heartbeat_delay
        self.checkpoint_fault_probability = checkpoint_fault_probability
        self._rng = ensure_rng(seed)
        injector = FailureInjector(
            failure_probability=failure_probability,
            horizon=horizon,
            mean_repair_time=mean_repair_time,
            mtbf=mtbf,
            seed=self._rng,
        )
        self.schedule: list[FailureEvent] = injector.schedule(
            len(supervisor.workers)
        )
        self._cursor = 0
        self.kills = 0
        self.heartbeat_delays = 0
        #: shard id → time its current outage's repair completes.
        self._repair_until: dict[int, float] = {}
        if checkpoint_fault_probability > 0.0:
            for worker in supervisor.workers:
                worker.replication_fault = self._draw_fault
        supervisor.restore_gate = self.restore_gate

    def _draw_fault(self) -> bool:
        return bool(self._rng.random() < self.checkpoint_fault_probability)

    # -------------------------------------------------------------- driving

    @property
    def pending(self) -> int:
        """Scheduled kill events not yet applied."""
        return len(self.schedule) - self._cursor

    def advance(self, now: float) -> "list[FailureEvent]":
        """Apply every scheduled kill due at or before *now*; draw delays.

        Returns the kill events applied this call. Kills against a worker
        that is already dead are dropped (the schedule merged overlaps per
        worker, but a prior kill may still be awaiting restore).
        """
        applied: list[FailureEvent] = []
        while (
            self._cursor < len(self.schedule)
            and self.schedule[self._cursor].fail_time <= now
        ):
            event = self.schedule[self._cursor]
            self._cursor += 1
            worker = self.supervisor.workers[event.node_id]
            if worker.crashed or worker.shard_id in self.supervisor.fabric.down_shards:
                continue
            worker.kill()
            self._repair_until[worker.shard_id] = event.recover_time
            self.kills += 1
            applied.append(event)
            _log.info(
                "chaos: killed %s at t=%.3f (repair at t=%.3f)",
                worker.worker_id, now, event.recover_time,
            )
        if self.heartbeat_delay_probability > 0.0:
            for worker in self.supervisor.workers:
                if worker.crashed:
                    continue
                if self._rng.random() < self.heartbeat_delay_probability:
                    worker.suppress_until = max(
                        worker.suppress_until, now + self.heartbeat_delay
                    )
                    self.heartbeat_delays += 1
        return applied

    def restore_gate(self, shard_id: int, now: float) -> bool:
        """Supervisor hook: a killed shard may restore once repaired."""
        return now >= self._repair_until.get(shard_id, float("-inf"))

    def __repr__(self) -> str:
        return (
            f"FabricChaosInjector(scheduled={len(self.schedule)}, "
            f"applied={self.kills}, pending={self.pending}, "
            f"delays={self.heartbeat_delays})"
        )

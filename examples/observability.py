#!/usr/bin/env python
"""The observability layer end to end: serve, load, scrape, cross-check.

Starts an instrumented :class:`PlacementService` over a random pool, drives
it with the seeded open-loop load generator, then scrapes the registry three
ways — in-process, over the TCP ``metrics`` op in both exposition formats,
and through the ``repro obs`` CLI verb — and proves they all agree with the
load report: every placed/refused/rejected count in the report is a counter
delta in the registry, both wire formats parse to the identical sample map,
and a second scrape is byte-identical (nothing ran in between).

Run:  python examples/observability.py
"""

from repro import PoolSpec, VMTypeCatalog, random_pool
from repro.analysis import format_table
from repro.cli import main as repro_main
from repro.core import OnlineHeuristic
from repro.obs import (
    MetricsRegistry,
    flatten_sorted,
    parse_json_lines,
    parse_prometheus,
)
from repro.service import (
    ClusterState,
    LoadGenConfig,
    PlacementService,
    ServiceClient,
    ServiceConfig,
    ServiceEndpoint,
    run_loadgen,
)


def main() -> None:
    catalog = VMTypeCatalog.ec2_default()
    pool = random_pool(
        PoolSpec(racks=3, nodes_per_rack=10, capacity_high=3), catalog, seed=9
    )
    obs = MetricsRegistry()
    service = PlacementService(
        ClusterState.from_pool(pool),
        policy=OnlineHeuristic(),
        config=ServiceConfig(batch_window=0.002, max_batch=16),
        obs=obs,
    )

    with ServiceEndpoint(service) as endpoint:
        host, port = endpoint.address
        print(f"service with live registry on {host}:{port}")

        # --- drive it with the seeded load generator (records into `obs`).
        report = run_loadgen(
            service,
            LoadGenConfig(
                num_requests=120, rate=1500.0, mean_hold=0.02,
                demand_high=3, seed=42,
            ),
        )
        print(
            f"loadgen: {report.submitted} submitted, {report.placed} placed, "
            f"{report.refused} refused, {report.rejected} rejected"
        )

        # --- scrape over the wire, both formats.
        with ServiceClient(host, port) as client:
            prom_text = client.metrics()
            json_text = client.metrics(format="json")
            prom_again = client.metrics()
        prom = parse_prometheus(prom_text)
        js = parse_json_lines(json_text)

        # 1. Both formats carry the identical sample map, and both match the
        #    in-process registry.
        assert prom == js, "prom and json expositions disagree"
        assert prom == flatten_sorted(obs), "wire scrape != in-process registry"
        # 2. Deterministic: an idle service scrapes byte-identically.
        assert prom_text == prom_again, "idle re-scrape changed"
        # 3. The load report is a view of the same counters.
        for status, expected in (
            ("placed", report.placed),
            ("refused", report.refused),
            ("rejected", report.rejected),
        ):
            got = prom.get(
                ("repro_loadgen_decisions_total", (("status", status),)), 0.0
            )
            assert got == expected, f"{status}: registry {got} != report {expected}"
        # 4. Core serving series exist and are self-consistent.
        admitted = prom[
            ("repro_service_admissions_total", (("outcome", "admitted"),))
        ]
        assert admitted >= report.placed
        assert prom[("repro_service_wait_seconds_count", ())] == report.placed
        assert prom[("repro_placement_requests_total",
                     (("algorithm", "online-heuristic"), ("outcome", "placed")))]

        # --- the CLI verb reads the same endpoint.
        print("\n$ python -m repro obs --port", port)
        assert repro_main(["obs", "--host", host, "--port", str(port)]) == 0

    counters = [
        (name, ",".join(f"{k}={v}" for k, v in labels), int(value))
        for (name, labels), value in sorted(prom.items())
        if name.endswith("_total") and value
    ]
    print()
    print(format_table(["series", "labels", "count"], counters,
                       title="non-zero counters"))
    print("\nall scrapes agree: in-process == prom == json == report")


if __name__ == "__main__":
    main()

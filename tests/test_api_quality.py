"""API-quality gates: every public item documented, exports resolvable.

These meta-tests keep the library release-grade as it grows: ``__all__``
entries must resolve, public modules/classes/functions must carry
docstrings, and the package must not leak private names through its public
namespaces.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.util",
    "repro.cluster",
    "repro.core",
    "repro.core.placement",
    "repro.cloud",
    "repro.mapreduce",
    "repro.analysis",
    "repro.experiments",
]


def iter_all_modules():
    seen = set()
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        yield pkg
        for info in pkgutil.iter_modules(pkg.__path__, prefix=pkg_name + "."):
            if info.name.endswith("__main__"):
                continue  # importing it runs the CLI
            if info.name not in seen:
                seen.add(info.name)
                yield importlib.import_module(info.name)


@pytest.mark.parametrize("pkg_name", PACKAGES)
def test_all_exports_resolve(pkg_name):
    pkg = importlib.import_module(pkg_name)
    exported = getattr(pkg, "__all__", [])
    for name in exported:
        assert hasattr(pkg, name), f"{pkg_name}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("pkg_name", PACKAGES)
def test_no_private_names_in_all(pkg_name):
    pkg = importlib.import_module(pkg_name)
    for name in getattr(pkg, "__all__", []):
        assert not name.startswith("_"), f"{pkg_name} exports private {name!r}"


def test_every_module_has_a_docstring():
    undocumented = [
        m.__name__ for m in iter_all_modules() if not (m.__doc__ or "").strip()
    ]
    assert undocumented == []


def test_every_public_class_and_function_documented():
    undocumented = []
    for module in iter_all_modules():
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export; documented at its home
            if not (obj.__doc__ or "").strip():
                undocumented.append(f"{module.__name__}.{name}")
    assert undocumented == []


def test_public_methods_documented():
    undocumented = []
    for module in iter_all_modules():
        for cls_name, cls in vars(module).items():
            if cls_name.startswith("_") or not inspect.isclass(cls):
                continue
            if getattr(cls, "__module__", None) != module.__name__:
                continue
            for meth_name, meth in vars(cls).items():
                if meth_name.startswith("_"):
                    continue
                func = getattr(meth, "__func__", meth)
                if not inspect.isfunction(func) and not isinstance(
                    meth, (classmethod, staticmethod)
                ):
                    continue
                # getdoc() walks the MRO, so an override inherits its
                # interface's contract documentation.
                if not (inspect.getdoc(getattr(cls, meth_name)) or "").strip():
                    undocumented.append(
                        f"{module.__name__}.{cls_name}.{meth_name}"
                    )
    assert undocumented == []


def test_version_exposed():
    assert repro.__version__
    major = int(repro.__version__.split(".")[0])
    assert major >= 1

"""Ablation: end-to-end placement-policy comparison.

The paper's thesis in one table: affinity-aware placement yields the
shortest cluster distance AND the fastest MapReduce runtime, against four
affinity-blind provider policies."""

import functools

from repro.analysis import format_table
from repro.experiments.ablations import run_policy_comparison, run_scheduler_ablation

from benchmarks.conftest import emit


def test_ablation_placement_policies(benchmark):
    rows = benchmark.pedantic(run_policy_comparison, rounds=1, iterations=1)
    emit(
        "Ablation — placement policy, one 14-VM request + WordCount",
        format_table(
            ["policy", "cluster distance", "runtime (s)"],
            [[r.policy, r.mean_distance, r.runtime] for r in rows],
        ),
    )
    by = {r.policy: r for r in rows}
    assert by["online-heuristic"].mean_distance == min(r.mean_distance for r in rows)


def test_ablation_map_schedulers(benchmark):
    rows = benchmark.pedantic(run_scheduler_ablation, rounds=1, iterations=1)
    emit(
        "Ablation — map scheduler on the distance-14 cluster",
        format_table(
            ["scheduler", "runtime (s)", "non-data-local maps"],
            [[r.scheduler, r.runtime, r.non_data_local_maps] for r in rows],
        ),
    )
    by = {r.scheduler: r for r in rows}
    assert by["locality"].non_data_local_maps <= by["fifo"].non_data_local_maps

"""Network transfer-time model over the cluster distance matrix.

Section I of the paper identifies the three MapReduce data-exchange phases
(DFS→map, map→reduce shuffle, reduce→DFS) and argues network latency between
VM placements dominates them. This module converts pairwise VM *distance*
(the affinity metric) into *transfer time*: each distance band maps to an
effective bandwidth, and same-node transfers bypass the network entirely.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.util.errors import ValidationError


class DistanceBand(enum.IntEnum):
    """Discrete distance levels between two VMs (Section II's d-levels)."""

    SAME_NODE = 0
    SAME_RACK = 1
    CROSS_RACK = 2
    CROSS_CLOUD = 3


def classify_band(distance: float, intra_rack: float, inter_rack: float) -> DistanceBand:
    """Map a raw distance value to its band under a hierarchical model."""
    if distance <= 0:
        return DistanceBand.SAME_NODE
    if distance <= intra_rack:
        return DistanceBand.SAME_RACK
    if distance <= inter_rack:
        return DistanceBand.CROSS_RACK
    return DistanceBand.CROSS_CLOUD


@dataclass(frozen=True, slots=True)
class NetworkModel:
    """Per-band effective bandwidths (bytes/second) plus per-transfer latency.

    Defaults approximate a 1 GbE datacenter fabric with 4:1 oversubscription
    at the aggregation layer: disk-speed "transfers" on the same node, full
    line rate in-rack, a quarter of it across racks, and a tenth across
    clouds. Absolute values only set the time scale; the paper's claims are
    about relative runtimes.
    """

    same_node_bps: float = 400e6
    same_rack_bps: float = 100e6
    cross_rack_bps: float = 25e6
    cross_cloud_bps: float = 10e6
    latency_per_transfer_s: float = 0.01

    def __post_init__(self) -> None:
        rates = (
            self.same_node_bps,
            self.same_rack_bps,
            self.cross_rack_bps,
            self.cross_cloud_bps,
        )
        if min(rates) <= 0:
            raise ValidationError("all bandwidths must be positive")
        if not (
            self.same_node_bps
            >= self.same_rack_bps
            >= self.cross_rack_bps
            >= self.cross_cloud_bps
        ):
            raise ValidationError(
                "bandwidths must be monotone: same_node >= same_rack >= "
                "cross_rack >= cross_cloud"
            )
        if self.latency_per_transfer_s < 0:
            raise ValidationError("latency must be >= 0")

    def bandwidth(self, band: DistanceBand) -> float:
        """Effective bandwidth for one transfer in *band*."""
        return {
            DistanceBand.SAME_NODE: self.same_node_bps,
            DistanceBand.SAME_RACK: self.same_rack_bps,
            DistanceBand.CROSS_RACK: self.cross_rack_bps,
            DistanceBand.CROSS_CLOUD: self.cross_cloud_bps,
        }[band]

    @classmethod
    def from_tiers(
        cls,
        tier_latencies,
        *,
        rack_bps: float = 100e6,
        latency_per_transfer_s: float = 0.01,
    ) -> "NetworkModel":
        """Derive a network model from measured distance tiers.

        Bridges :func:`repro.cluster.measurement.infer_distance_matrix` to
        the MapReduce simulator: effective bandwidth scales inversely with
        measured latency (the bandwidth-delay heuristic), anchored so the
        first (intra-rack) tier runs at *rack_bps*. With one tier, cross
        bands reuse it (flat fabric); extra tiers map in order to
        cross-rack and cross-cloud.
        """
        tiers = sorted(float(t) for t in np.atleast_1d(np.asarray(tier_latencies)))
        if not tiers or tiers[0] <= 0:
            raise ValidationError("tier latencies must be positive")
        base = tiers[0]
        scaled = [rack_bps * base / t for t in tiers]
        rack = scaled[0]
        cross_rack = scaled[1] if len(scaled) > 1 else scaled[0]
        cross_cloud = scaled[2] if len(scaled) > 2 else cross_rack / 2.5
        return cls(
            same_node_bps=max(rack * 4, rack),
            same_rack_bps=rack,
            cross_rack_bps=min(cross_rack, rack),
            cross_cloud_bps=min(cross_cloud, min(cross_rack, rack)),
            latency_per_transfer_s=latency_per_transfer_s,
        )

    def transfer_time(self, num_bytes: float, band: DistanceBand) -> float:
        """Seconds to move *num_bytes* across one link in *band*.

        Zero-byte transfers still pay the per-transfer latency (connection
        setup), except degenerate same-node "transfers" of zero bytes which
        are free.
        """
        if num_bytes < 0:
            raise ValidationError(f"num_bytes must be >= 0, got {num_bytes}")
        if band == DistanceBand.SAME_NODE and num_bytes == 0:
            return 0.0
        return self.latency_per_transfer_s + num_bytes / self.bandwidth(band)

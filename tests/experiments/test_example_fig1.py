"""Tests for the Section III.A worked example (Fig. 1)."""

import numpy as np
import pytest

from repro.core.problem import Allocation
from repro.experiments.example_fig1 import (
    REQUEST,
    build_example_pool,
    example_allocations,
    run,
)


class TestExamplePool:
    def test_two_racks(self):
        pool = build_example_pool()
        assert pool.topology.num_racks == 2

    def test_no_single_node_fits(self):
        pool = build_example_pool()
        assert not np.any(np.all(pool.remaining >= REQUEST[None, :], axis=1))


class TestExampleAllocations:
    def test_all_serve_the_request(self):
        pool = build_example_pool()
        for ex in example_allocations():
            assert ex.matrix.sum(axis=0).tolist() == REQUEST.tolist()
            assert np.all(ex.matrix <= pool.remaining)

    @pytest.mark.parametrize("d1,d2", [(1.0, 2.0), (1.0, 3.0), (2.0, 5.0)])
    def test_symbolic_distances_hold(self, d1, d2):
        """DC values reduce to the paper's closed forms for any d1 < d2."""
        pool = build_example_pool(d1=d1, d2=d2)
        dist = pool.distance_matrix
        for ex in example_allocations():
            alloc = Allocation.from_matrix(ex.matrix, dist)
            expected = ex.expected_d1_coeff * d1 + ex.expected_d2_coeff * d2
            assert alloc.distance == pytest.approx(expected), ex.label

    def test_dc1_dc2_are_mirrors(self):
        result = run()
        assert result.distances[0] == result.distances[1]
        assert result.centers[0] != result.centers[1]


class TestRun:
    def test_optimum_beats_all_examples(self):
        result = run()
        assert result.optimal_distance <= min(result.distances)

    def test_optimal_value(self):
        # Center takes (2,2,1); remaining 2 mediums from same-rack peers.
        assert run().optimal_distance == pytest.approx(2.0)

    def test_labels(self):
        assert run().labels == ("DC1", "DC2", "DC3", "DC4")

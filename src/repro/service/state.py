"""Incremental cluster state for the online placement service.

A long-lived allocator cannot afford to rebuild pool state per request:
constructing a :class:`~repro.cluster.resources.ResourcePool` stacks the
capacity matrix and rebuilds the O(n²) distance matrix, and a stateless
server would additionally have to replay every active lease to recover ``C``.
:class:`ClusterState` keeps all of that warm across allocate/release
operations:

* ``L = M − C`` (free capacity) is updated in place instead of recomputed,
* the per-type availability vector ``A`` and per-rack free aggregates are
  maintained incrementally,
* the distance matrix is inherited (cached) from the pool construction and
  never rebuilt,
* every active allocation is tracked in a lease ledger keyed by request id so
  releases arrive as ids on the wire, not matrices,
* a monotonically increasing version stamps every mutation, giving cheap
  versioned snapshots (and letting a checkpoint say exactly which state it
  captured).

``ClusterState`` *is a* ``ResourcePool``, so every placement algorithm in
:mod:`repro.core.placement` runs against it unchanged — the differential
guarantee that the service places exactly like a direct
:class:`~repro.core.placement.greedy.OnlineHeuristic` call falls out of this.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.distance import DistanceModel
from repro.cluster.resources import ResourcePool
from repro.cluster.topology import Topology
from repro.cluster.vmtypes import VMTypeCatalog
from repro.core.problem import Allocation
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class StateSnapshot:
    """A point-in-time capture of a :class:`ClusterState`.

    ``allocated`` is a defensive copy of ``C``; ``leases`` maps request id to
    the :class:`~repro.core.problem.Allocation` held at capture time
    (allocations are immutable, so sharing them is safe).
    ``lease_targets`` carries the survivability targets of the (usually
    few) leases that have one — immutable, shared like the allocations.
    """

    version: int
    allocated: np.ndarray
    leases: dict[int, Allocation]
    lease_targets: dict = None  # dict[int, SurvivabilityTarget]; None ≡ {}

    def __post_init__(self) -> None:
        if self.lease_targets is None:
            object.__setattr__(self, "lease_targets", {})


class ClusterState(ResourcePool):
    """A :class:`ResourcePool` with incremental aggregates and a lease ledger.

    All mutation goes through :meth:`allocate`/:meth:`release` (raw matrices)
    or :meth:`allocate_lease`/:meth:`release_lease` (ledger-tracked); both
    paths keep the cached free-capacity matrix, availability vector, and
    per-rack aggregates exact and bump :attr:`version`.
    """

    def __init__(
        self,
        topology: Topology,
        catalog: VMTypeCatalog,
        *,
        distance_model: DistanceModel | None = None,
        allocated: np.ndarray | None = None,
        cache=None,
    ) -> None:
        super().__init__(
            topology,
            catalog,
            distance_model=distance_model,
            allocated=allocated,
            cache=cache,
        )
        self._rack_ids = np.asarray(topology.rack_ids, dtype=np.int64)
        self._num_racks = topology.num_racks
        self._leases: dict[int, Allocation] = {}
        self._lease_targets: dict[int, object] = {}
        self._lease_sum = np.zeros_like(self._alloc)
        self._version = 0
        self._rebuild_aggregates()

    @classmethod
    def from_pool(cls, pool: ResourcePool) -> "ClusterState":
        """Adopt an existing pool's topology, catalog, and allocations."""
        return cls(
            pool.topology,
            pool.catalog,
            distance_model=pool.distance_model,
            allocated=pool.allocated,
            cache=pool.topology_cache,
        )

    # ----------------------------------------------------------- aggregates

    def _rebuild_aggregates(self) -> None:
        self._free = self._max - self._alloc
        self._avail = self._free.sum(axis=0)
        rack_free = np.zeros((self._num_racks, self.num_types), dtype=np.int64)
        np.add.at(rack_free, self._rack_ids, self._free)
        self._rack_free = rack_free

    @property
    def remaining(self) -> np.ndarray:
        """``L`` from the incremental cache (read-only view, no recompute)."""
        v = self._free.view()
        v.flags.writeable = False
        return v

    @property
    def available(self) -> np.ndarray:
        """``A`` from the incremental cache (copy)."""
        return self._avail.copy()

    @property
    def rack_free(self) -> np.ndarray:
        """Per-rack free capacity (num_racks × m, read-only view)."""
        v = self._rack_free.view()
        v.flags.writeable = False
        return v

    @property
    def version(self) -> int:
        """Mutation counter; bumps on every allocate/release/restore."""
        return self._version

    # ------------------------------------------------------------- mutation

    def allocate(self, allocation: np.ndarray) -> None:
        super().allocate(allocation)
        a = np.asarray(allocation, dtype=np.int64)
        self._free -= a
        self._avail -= a.sum(axis=0)
        np.subtract.at(self._rack_free, self._rack_ids, a)
        self._version += 1

    def release(self, allocation: np.ndarray) -> None:
        super().release(allocation)
        a = np.asarray(allocation, dtype=np.int64)
        self._free += a
        self._avail += a.sum(axis=0)
        np.add.at(self._rack_free, self._rack_ids, a)
        self._version += 1

    def restore(self, snapshot: np.ndarray) -> None:
        super().restore(snapshot)
        self._rebuild_aggregates()
        self._version += 1

    # ---------------------------------------------------------------- leases

    @property
    def leases(self) -> dict[int, Allocation]:
        """Active allocations by request id (shallow copy of the ledger)."""
        return dict(self._leases)

    @property
    def num_leases(self) -> int:
        return len(self._leases)

    def has_lease(self, request_id: int) -> bool:
        """Whether *request_id* currently holds an active lease."""
        return request_id in self._leases

    def lease_target(self, request_id: int):
        """The :class:`~repro.core.reliability.SurvivabilityTarget` attached
        to *request_id*'s lease, or ``None`` (the common case)."""
        return self._lease_targets.get(request_id)

    @property
    def lease_targets(self) -> dict:
        """Targets of survivability-constrained leases (shallow copy)."""
        return dict(self._lease_targets)

    def allocate_lease(
        self, request_id: int, allocation: Allocation, *, survivability=None
    ) -> None:
        """Commit *allocation* and record it under *request_id*.

        ``survivability`` records the request's target with the lease so
        rebalancing can leave constrained leases alone and checkpoints can
        restore the constraint.
        """
        if request_id in self._leases:
            raise ValidationError(
                f"request {request_id} already holds an active lease"
            )
        self.allocate(allocation.matrix)
        self._leases[request_id] = allocation
        if survivability is not None:
            self._lease_targets[request_id] = survivability
        self._lease_sum += allocation.matrix

    def release_lease(self, request_id: int) -> Allocation:
        """Free the allocation held by *request_id* and return it."""
        allocation = self._leases.pop(request_id, None)
        if allocation is None:
            raise ValidationError(f"no active lease for request {request_id}")
        self._lease_targets.pop(request_id, None)
        self.release(allocation.matrix)
        self._lease_sum -= allocation.matrix
        return allocation

    def swap_lease(self, request_id: int, allocation: Allocation) -> Allocation:
        """Replace the lease of *request_id* with *allocation* atomically.

        Used by the batch transfer phase: the old matrix is released before
        the new one is committed, so capacity-neutral exchanges always fit.
        Returns the previous allocation; on a failed commit the old lease is
        reinstated and the error propagates. The lease's survivability
        target (if any) survives the swap.
        """
        target = self._lease_targets.get(request_id)
        old = self.release_lease(request_id)
        try:
            self.allocate_lease(request_id, allocation, survivability=target)
        except Exception:
            self.allocate_lease(request_id, old, survivability=target)
            raise
        return old

    def adopt_lease(
        self, request_id: int, allocation: Allocation, *, survivability=None
    ) -> None:
        """Register a lease already counted in ``C`` (checkpoint restore).

        Unlike :meth:`allocate_lease` this does *not* mutate capacity — the
        allocation must already be part of the ``allocated`` matrix the state
        was constructed with. Coverage is checked *cumulatively*: the adopted
        leases together may never claim more of a slot than ``C`` holds, so a
        corrupt checkpoint fails here rather than leaving a ledger that no
        longer sums to ``C``.
        """
        if request_id in self._leases:
            raise ValidationError(
                f"request {request_id} already holds an active lease"
            )
        if np.any(self._lease_sum + allocation.matrix > self._alloc):
            raise ValidationError(
                f"adopted lease {request_id} is not covered by the allocated matrix"
            )
        self._leases[request_id] = allocation
        if survivability is not None:
            self._lease_targets[request_id] = survivability
        self._lease_sum += allocation.matrix

    # ------------------------------------------------------------- snapshots

    def snapshot_state(self) -> StateSnapshot:
        """Capture version, ``C``, and the lease ledger."""
        return StateSnapshot(
            version=self._version,
            allocated=self._alloc.copy(),
            leases=dict(self._leases),
            lease_targets=dict(self._lease_targets),
        )

    def restore_state(self, snapshot: StateSnapshot) -> None:
        """Reset to a :meth:`snapshot_state` capture (version included)."""
        self.restore(snapshot.allocated)
        self._leases = dict(snapshot.leases)
        self._lease_targets = dict(snapshot.lease_targets)
        self._lease_sum = np.zeros_like(self._alloc)
        for allocation in self._leases.values():
            self._lease_sum += allocation.matrix
        self._version = snapshot.version

    def copy(self) -> "ClusterState":
        """Deep copy sharing the immutable topology/catalog/distances."""
        clone = ClusterState(
            self._topology,
            self._catalog,
            distance_model=self._model,
            allocated=self._alloc,
            cache=self.topology_cache,
        )
        clone._leases = dict(self._leases)
        clone._lease_targets = dict(self._lease_targets)
        clone._lease_sum = self._lease_sum.copy()
        clone._version = self._version
        return clone

    # ---------------------------------------------------------- verification

    def verify_consistency(self, *, check_leases: bool = True) -> None:
        """Assert every incremental aggregate matches a from-scratch rescan.

        Raises :class:`ValidationError` on any divergence. With
        ``check_leases`` (the default) the summed lease matrices must equal
        ``C`` exactly — true whenever all traffic goes through the ledger.
        """
        expected_free = self._max - self._alloc
        if not np.array_equal(self._free, expected_free):
            raise ValidationError("incremental free-capacity matrix diverged")
        if not np.array_equal(self._avail, expected_free.sum(axis=0)):
            raise ValidationError("incremental availability vector diverged")
        rack_free = np.zeros((self._num_racks, self.num_types), dtype=np.int64)
        np.add.at(rack_free, self._rack_ids, expected_free)
        if not np.array_equal(self._rack_free, rack_free):
            raise ValidationError("incremental per-rack aggregates diverged")
        total = np.zeros_like(self._alloc)
        for allocation in self._leases.values():
            total += allocation.matrix
        if not np.array_equal(total, self._lease_sum):
            raise ValidationError("incremental lease-sum matrix diverged")
        if check_leases and not np.array_equal(total, self._alloc):
            raise ValidationError("lease ledger does not sum to C")
        orphaned = set(self._lease_targets) - set(self._leases)
        if orphaned:
            raise ValidationError(
                f"survivability targets without leases: {sorted(orphaned)}"
            )

    def __repr__(self) -> str:
        return (
            f"ClusterState(nodes={self.num_nodes}, types={self.num_types}, "
            f"leases={len(self._leases)}, version={self._version}, "
            f"allocated={int(self._alloc.sum())}/{int(self._max.sum())})"
        )

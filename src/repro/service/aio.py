"""Asyncio serving endpoint: one event loop multiplexing every client.

The thread-per-connection endpoint spends its tail latency in the scheduler
*and* in the transport: hundreds of handler threads contending for the GIL,
per-connection stacks, and a wake-up storm every time a batch resolves. This
endpoint serves the identical envelope protocol from a single event loop in
one dedicated thread:

* **multiplexed connections** — every client socket is a reader task on the
  same loop; no per-connection thread, no handler-thread wake-up storms.
* **strict per-connection ordering** — responses flow through a per-
  connection FIFO writer task, so a blocking one-op-at-a-time client sees
  exactly the thread endpoint's semantics, while a pipelining client gets
  replies in submission order.
* **bounded buffers and backpressure** — each connection caps decoded ops
  awaiting responses (``max_pending_ops``); past the cap the reader simply
  stops reading, letting TCP flow control push back on the client. Writes
  go through ``drain()`` against bounded transport write buffers
  (``write_buffer_bytes``), so one slow consumer cannot balloon memory.
* **codec negotiation** — the same ``hello`` exchange as the threaded
  endpoint (see :mod:`repro.service.codec`); the reader switches its sans-IO
  decoder immediately, the writer after flushing the hello reply.
* **cross-connection admission batching** — placements arriving on *any*
  connection within one loop tick are submitted together through the
  service's ``submit_batch`` (when it has one: the sharded fabric routes
  the whole batch in one vectorized screening pass), instead of one
  router/lock round per request.

Scheduling still happens in the service's own thread(s); the loop thread
only decodes, submits, and encodes. Ticket resolution crosses back onto the
loop via ``call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading

from repro.service.api import decode_message, encode_message
from repro.service.codec import (
    JsonLineCodec,
    SUPPORTED_CODECS,
    resolve_codec,
)
from repro.service.transport import (
    DECISION_TIMEOUT,
    dispatch_sync,
    hello_response,
    submit_place,
)
from repro.util.errors import ReproError, TransportError, ValidationError

_log = logging.getLogger(__name__)

__all__ = ["AioServiceEndpoint"]

#: Per-connection cap on decoded-but-unanswered ops; past it the reader
#: stops consuming bytes and TCP backpressure reaches the client.
DEFAULT_MAX_PENDING_OPS = 256

#: High-water mark for each connection's kernel-side write buffer.
DEFAULT_WRITE_BUFFER_BYTES = 256 * 1024

_CLOSE = object()


class _Connection:
    """Per-connection state: decoder, response FIFO, backpressure gate."""

    def __init__(self, endpoint: "AioServiceEndpoint", reader, writer) -> None:
        self.endpoint = endpoint
        self.reader = reader
        self.writer = writer
        self.codec = JsonLineCodec()
        self.decoder = self.codec.decoder()
        self.responses: "asyncio.Queue" = asyncio.Queue()
        self.pending = 0
        self.room = asyncio.Event()
        self.room.set()
        self.closing = False

    def track(self) -> None:
        self.pending += 1
        if self.pending >= self.endpoint.max_pending_ops:
            self.room.clear()

    def untrack(self) -> None:
        self.pending -= 1
        if self.pending < self.endpoint.max_pending_ops:
            self.room.set()


class AioServiceEndpoint:
    """Asyncio front end for one placement service or sharded fabric.

    Drop-in for :class:`~repro.service.transport.ServiceEndpoint`: same
    constructor shape, same ``start``/``stop``/``address`` surface, same
    envelope protocol on the wire — any :class:`ServiceClient` (either
    codec) talks to it unchanged. Canonical construction is
    ``resolve_transport("aio").serve(service, ...)``.
    """

    def __init__(
        self,
        service,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        codecs: "tuple[str, ...]" = SUPPORTED_CODECS,
        max_pending_ops: int = DEFAULT_MAX_PENDING_OPS,
        write_buffer_bytes: int = DEFAULT_WRITE_BUFFER_BYTES,
    ) -> None:
        if max_pending_ops < 1:
            raise ValidationError("max_pending_ops must be >= 1")
        self.service = service
        self.codecs = tuple(codecs)
        self.max_pending_ops = max_pending_ops
        self.write_buffer_bytes = write_buffer_bytes
        self._host = host
        self._port = port
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._thread: "threading.Thread | None" = None
        self._server: "asyncio.AbstractServer | None" = None
        self._address: "tuple[str, int] | None" = None
        self._conn_tasks: "set[asyncio.Task]" = set()
        self._batch: "list[tuple]" = []

    # ------------------------------------------------------------ lifecycle

    @property
    def address(self) -> "tuple[str, int]":
        if self._address is None:
            raise TransportError("endpoint is not started")
        return self._address

    def start(self) -> "AioServiceEndpoint":
        if self._thread is not None and self._thread.is_alive():
            return self
        self.service.start()
        self._loop = asyncio.new_event_loop()
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            self._loop.call_soon(started.set)
            self._loop.run_forever()

        self._thread = threading.Thread(
            target=run, name="placement-aio-loop", daemon=True
        )
        self._thread.start()
        started.wait(timeout=5.0)
        future = asyncio.run_coroutine_threadsafe(self._open_server(), self._loop)
        try:
            future.result(timeout=10.0)
        except Exception:
            self._stop_loop()
            raise
        return self

    async def _open_server(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        self._address = self._server.sockets[0].getsockname()[:2]

    def stop(self, *, drain: bool = True) -> None:
        if self._loop is not None and self._thread is not None and self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(self._close_server(), self._loop)
            try:
                future.result(timeout=10.0)
            except Exception:  # pragma: no cover - defensive teardown
                pass
            self._stop_loop()
        if drain:
            self.service.drain()
        else:
            self.service.stop()

    async def _close_server(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()

    def _stop_loop(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._loop is not None:
            self._loop.close()
            self._loop = None

    def __enter__(self) -> "AioServiceEndpoint":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ----------------------------------------------------------- connection

    async def _handle_connection(self, reader, writer) -> None:
        try:
            writer.transport.set_write_buffer_limits(high=self.write_buffer_bytes)
        except (AttributeError, RuntimeError):  # pragma: no cover - exotic transports
            pass
        conn = _Connection(self, reader, writer)
        handler_task = asyncio.current_task()
        writer_task = asyncio.create_task(self._write_responses(conn))
        for task in (handler_task, writer_task):
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            await self._read_ops(conn)
        except asyncio.CancelledError:
            pass  # endpoint shutdown cancelled us; exit the handler cleanly
        except Exception:  # pragma: no cover - defensive: reader never escapes
            _log.exception("aio connection reader failed")
        finally:
            conn.responses.put_nowait(_CLOSE)
            try:
                await writer_task
            except asyncio.CancelledError:
                pass
            writer.close()

    async def _read_ops(self, conn: _Connection) -> None:
        while True:
            await conn.room.wait()
            data = await conn.reader.read(1 << 16)
            if not data:
                return  # EOF; bytes stuck mid-frame are owed no reply
            conn.decoder.feed(data)
            while True:
                try:
                    envelope = conn.decoder.next_op()
                except TransportError as exc:
                    conn.track()
                    await conn.responses.put({"ok": False, "error": str(exc)})
                    if conn.codec.resync_on_error:
                        continue  # line decoder re-synced at the newline
                    conn.closing = True
                    return
                if envelope is None:
                    break
                self._handle_envelope(conn, envelope)
                if conn.closing:
                    return

    def _handle_envelope(self, conn: _Connection, envelope: dict) -> None:
        conn.track()
        try:
            if "op" not in envelope:
                raise ValidationError("envelope must be an object with an 'op'")
            op = envelope["op"]
            if op == "hello":
                response, chosen = hello_response(envelope, self.codecs)
                if chosen != conn.codec.name:
                    # Reader switches now (subsequent bytes arrive in the new
                    # codec); the writer switches after flushing this reply.
                    residual = conn.decoder.take_buffered()
                    conn.codec = resolve_codec(chosen)
                    conn.decoder = conn.codec.decoder()
                    conn.decoder.feed(residual)
                    conn.responses.put_nowait(("switch", response, chosen))
                else:
                    conn.responses.put_nowait(response)
                return
            if op == "place":
                self._enqueue_place(conn, envelope)
                return
            conn.responses.put_nowait(dispatch_sync(self.service, envelope))
        except ReproError as exc:
            conn.responses.put_nowait({"ok": False, "error": str(exc)})
        except Exception as exc:  # defensive: never kill the connection
            conn.responses.put_nowait({"ok": False, "error": f"internal error: {exc}"})

    # -------------------------------------------------------------- placing

    def _enqueue_place(self, conn: _Connection, envelope: dict) -> None:
        """Queue a placement into this loop tick's cross-connection batch.

        The response slot (an asyncio future) enters the connection's FIFO
        immediately, preserving reply order; the submission itself is
        deferred to :meth:`_flush_batch` so every placement that arrived in
        the same tick — across all connections — goes through one
        ``submit_batch`` routing pass.
        """
        slot = self._loop.create_future()
        conn.responses.put_nowait(("place", slot))
        if not self._batch:
            self._loop.call_soon(self._flush_batch)
        self._batch.append((conn, envelope, slot))

    def _flush_batch(self) -> None:
        batch, self._batch = self._batch, []
        if not batch:
            return
        submit_batch = getattr(self.service, "submit_batch", None)
        if submit_batch is not None and len(batch) > 1:
            self._submit_many(batch, submit_batch)
        else:
            for conn, envelope, slot in batch:
                self._submit_one(conn, envelope, slot)

    def _submit_many(self, batch, submit_batch) -> None:
        messages = []
        decoded = []
        for conn, envelope, slot in batch:
            try:
                message = decode_message(
                    json.dumps(envelope.get("message", {}) | {"kind": "place"})
                )
            except ReproError as exc:
                self._resolve_slot(slot, {"ok": False, "error": str(exc)})
                continue
            messages.append(message)
            decoded.append((conn, message, slot))
        if not messages:
            return
        try:
            tickets = submit_batch(messages)
        except ReproError as exc:
            for conn, message, slot in decoded:
                self._resolve_slot(slot, {"ok": False, "error": str(exc)})
            return
        for (conn, message, slot), ticket in zip(decoded, tickets):
            self._bridge_ticket(message, ticket, slot)

    def _submit_one(self, conn: _Connection, envelope: dict, slot) -> None:
        try:
            message, ticket = submit_place(self.service, envelope)
        except ReproError as exc:
            self._resolve_slot(slot, {"ok": False, "error": str(exc)})
            return
        except Exception as exc:  # defensive
            self._resolve_slot(slot, {"ok": False, "error": f"internal error: {exc}"})
            return
        self._bridge_ticket(message, ticket, slot)

    def _bridge_ticket(self, message, ticket, slot) -> None:
        """Resolve *slot* with the ticket's decision, from any thread."""
        loop = self._loop
        timeout_handle = None

        def deliver(decision) -> None:
            if slot.done():
                return
            if timeout_handle is not None:
                timeout_handle.cancel()
            slot.set_result(
                {"ok": True, "decision": json.loads(encode_message(decision))}
            )

        def on_decision(decision) -> None:
            try:
                loop.call_soon_threadsafe(deliver, decision)
            except RuntimeError:  # loop already closed at shutdown
                pass

        def on_timeout() -> None:
            if slot.done():
                return
            # Withdraw before giving up so an unobserved lease can never be
            # granted later; a cancel/placement race resolves the ticket
            # with the real decision and `deliver` wins.
            self.service.cancel(message.request_id)
            loop.call_later(1.0, give_up)

        def give_up() -> None:
            if not slot.done():
                slot.set_result(
                    {"ok": False, "error": "placement decision timed out"}
                )

        timeout_handle = loop.call_later(DECISION_TIMEOUT, on_timeout)
        ticket.add_done_callback(on_decision)

    def _resolve_slot(self, slot, doc: dict) -> None:
        if not slot.done():
            slot.set_result(doc)

    # -------------------------------------------------------------- writing

    async def _write_responses(self, conn: _Connection) -> None:
        codec = conn.codec
        while True:
            item = await conn.responses.get()
            if item is _CLOSE:
                return
            switch_to = None
            if isinstance(item, tuple):
                if item[0] == "switch":
                    _, doc, switch_to = item
                else:  # ("place", future)
                    doc = await item[1]
            else:
                doc = item
            try:
                conn.writer.write(codec.encode_op(doc))
                await conn.writer.drain()
            except (ConnectionError, OSError, TransportError):
                conn.closing = True
                return
            finally:
                conn.untrack()
            if switch_to is not None:
                codec = resolve_codec(switch_to)

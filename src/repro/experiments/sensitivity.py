"""Sensitivity sweeps: where do the paper's conclusions hold?

The paper evaluates one distance ratio (d2/d1 = 2), one pool load, and one
network. These sweeps map the conclusions' validity region:

* :func:`sweep_distance_ratio` — how the online/global improvement and the
  heuristic-vs-random-center gap scale as inter-rack distance grows
  relative to intra-rack (d2/d1 from 1.5 to 8);
* :func:`sweep_pool_load` — how much Algorithm 2 recovers as the batch
  load approaches pool capacity (transfers need contention to matter);
* :func:`sweep_oversubscription` — how the Fig. 7 runtime-vs-distance slope
  steepens as the cross-rack network degrades (1:1 → 16:1
  oversubscription).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.distance import DistanceModel
from repro.cluster.generators import (
    PoolSpec,
    RequestSpec,
    feasible_random_requests,
    random_pool,
)
from repro.core.placement.baselines import random_center_distance
from repro.core.placement.global_opt import GlobalSubOptimizer, total_distance
from repro.core.placement.greedy import OnlineHeuristic
from repro.experiments import paperconfig as cfg
from repro.experiments.mapreduce_experiments import build_cluster, experiment_job
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.network import NetworkModel
from repro.util.errors import ValidationError
from repro.util.rng import ensure_rng


@dataclass(frozen=True, slots=True)
class RatioPoint:
    """One d2/d1 setting's outcomes."""

    ratio: float
    global_improvement_pct: float
    random_center_penalty: float  # mean extra distance of a random center


def sweep_distance_ratio(
    ratios=(1.5, 2.0, 4.0, 8.0), *, seed: int = cfg.MASTER_SEED, trials: int = 5
) -> list[RatioPoint]:
    """Sweep the inter/intra-rack distance ratio."""
    out: list[RatioPoint] = []
    for ratio in ratios:
        if ratio <= 1.0:
            raise ValidationError("ratio must exceed 1 (d1 < d2)")
        model = DistanceModel(
            intra_rack=1.0, inter_rack=float(ratio), inter_cloud=float(ratio) * 2
        )
        rng = ensure_rng(seed)
        online_total = global_total = 0.0
        penalties = []
        for _ in range(trials):
            pool = random_pool(cfg.SIM_POOL, cfg.CATALOG, rng, distance_model=model)
            requests = feasible_random_requests(
                pool, cfg.FIG5_REQUESTS, cfg.NUM_REQUESTS, rng
            )
            admissible, budget = [], pool.available.copy()
            for r in requests:
                if np.all(r <= budget):
                    admissible.append(r)
                    budget -= r
            opt = GlobalSubOptimizer(OnlineHeuristic())
            online = opt.place_online(admissible, pool)
            optimized = opt.optimize_transfers(online, pool.distance_matrix)
            online_total += total_distance(online)
            global_total += total_distance(optimized)
            for alloc in online:
                if alloc is None:
                    continue
                rand, _ = random_center_distance(alloc, pool.distance_matrix, rng)
                penalties.append(rand - alloc.distance)
        improvement = (
            100.0 * (online_total - global_total) / online_total
            if online_total
            else 0.0
        )
        out.append(
            RatioPoint(
                ratio=float(ratio),
                global_improvement_pct=improvement,
                random_center_penalty=float(np.mean(penalties)),
            )
        )
    return out


@dataclass(frozen=True, slots=True)
class LoadPoint:
    """One load level's Algorithm 2 outcome."""

    load_fraction: float
    online_total: float
    global_total: float
    improvement_pct: float


def sweep_pool_load(
    loads=(0.3, 0.5, 0.7, 0.9), *, seed: int = cfg.MASTER_SEED, trials: int = 5
) -> list[LoadPoint]:
    """Sweep the fraction of pool capacity the batch consumes."""
    out: list[LoadPoint] = []
    for load in loads:
        if not (0 < load <= 1):
            raise ValidationError("load must be in (0, 1]")
        rng = ensure_rng(seed)
        online_total = global_total = 0.0
        for _ in range(trials):
            pool = random_pool(
                cfg.SIM_POOL, cfg.CATALOG, rng, distance_model=cfg.DISTANCES
            )
            target = int(pool.available.sum() * load)
            admissible, budget = [], pool.available.copy()
            taken = 0
            while taken < target:
                r = feasible_random_requests(pool, cfg.FIG5_REQUESTS, 1, rng)[0]
                if np.all(r <= budget):
                    admissible.append(r)
                    budget -= r
                    taken += int(r.sum())
                else:
                    break
            opt = GlobalSubOptimizer(OnlineHeuristic())
            online = opt.place_online(admissible, pool)
            optimized = opt.optimize_transfers(online, pool.distance_matrix)
            online_total += total_distance(online)
            global_total += total_distance(optimized)
        improvement = (
            100.0 * (online_total - global_total) / online_total
            if online_total
            else 0.0
        )
        out.append(
            LoadPoint(
                load_fraction=float(load),
                online_total=online_total,
                global_total=global_total,
                improvement_pct=improvement,
            )
        )
    return out


@dataclass(frozen=True, slots=True)
class OversubscriptionPoint:
    """One oversubscription level's runtime-vs-distance slope."""

    oversubscription: float
    runtimes: tuple[float, ...]  # per FIG7 distance, ascending
    spread_penalty_pct: float  # runtime(d=22) vs runtime(d=8)


def sweep_oversubscription(
    factors=(1.0, 4.0, 16.0), *, seed: int = 52
) -> list[OversubscriptionPoint]:
    """Sweep cross-rack bandwidth degradation (rack bw / factor)."""
    job = experiment_job()
    out: list[OversubscriptionPoint] = []
    for factor in factors:
        if factor < 1.0:
            raise ValidationError("oversubscription factor must be >= 1")
        network = NetworkModel(
            same_node_bps=400e6,
            same_rack_bps=100e6,
            cross_rack_bps=100e6 / factor,
            cross_cloud_bps=100e6 / (factor * 2.5),
        )
        runtimes = []
        for idx, distance in enumerate(cfg.FIG7_DISTANCES):
            cluster = build_cluster(distance)
            engine = MapReduceEngine(
                cluster, network=network, reducer_policy="slots", seed=seed + idx
            )
            runtimes.append(engine.run(job, hdfs_seed=seed + idx).runtime)
        penalty = 100.0 * (runtimes[-1] - runtimes[0]) / runtimes[0]
        out.append(
            OversubscriptionPoint(
                oversubscription=float(factor),
                runtimes=tuple(runtimes),
                spread_penalty_pct=penalty,
            )
        )
    return out

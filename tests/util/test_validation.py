"""Tests for structural validation helpers."""

import numpy as np
import pytest

from repro.util.errors import ValidationError
from repro.util.validation import (
    as_int_matrix,
    as_int_vector,
    check_nonnegative,
    check_shape,
    check_square,
    check_symmetric,
    check_zero_diagonal,
)


class TestAsIntVector:
    def test_list_coerced(self):
        v = as_int_vector([1, 2, 3])
        assert v.dtype == np.int64
        assert v.tolist() == [1, 2, 3]

    def test_float_integers_accepted(self):
        assert as_int_vector([1.0, 2.0]).tolist() == [1, 2]

    def test_fractional_rejected(self):
        with pytest.raises(ValidationError):
            as_int_vector([1.5, 2.0])

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            as_int_vector([1, -1])

    def test_matrix_rejected(self):
        with pytest.raises(ValidationError):
            as_int_vector([[1, 2]])

    def test_length_enforced(self):
        with pytest.raises(ValidationError):
            as_int_vector([1, 2], length=3)

    def test_length_accepted(self):
        assert as_int_vector([1, 2, 3], length=3).shape == (3,)

    def test_returns_copy(self):
        src = np.array([1, 2, 3], dtype=np.int64)
        out = as_int_vector(src)
        out[0] = 99
        assert src[0] == 1

    def test_non_numeric_rejected(self):
        with pytest.raises(ValidationError):
            as_int_vector(["a", "b"])


class TestAsIntMatrix:
    def test_coerced(self):
        m = as_int_matrix([[1, 2], [3, 4]])
        assert m.dtype == np.int64

    def test_vector_rejected(self):
        with pytest.raises(ValidationError):
            as_int_matrix([1, 2])

    def test_shape_enforced(self):
        with pytest.raises(ValidationError):
            as_int_matrix([[1, 2]], shape=(2, 2))

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            as_int_matrix([[1, -2]])

    def test_fractional_rejected(self):
        with pytest.raises(ValidationError):
            as_int_matrix([[0.5]])


class TestChecks:
    def test_nonnegative_ok(self):
        check_nonnegative(np.array([0, 1]))

    def test_nonnegative_fails(self):
        with pytest.raises(ValidationError):
            check_nonnegative(np.array([-1]))

    def test_shape_ok(self):
        check_shape(np.zeros((2, 3)), (2, 3))

    def test_shape_fails(self):
        with pytest.raises(ValidationError):
            check_shape(np.zeros((2, 3)), (3, 2))

    def test_square_ok(self):
        check_square(np.zeros((3, 3)))

    def test_square_fails(self):
        with pytest.raises(ValidationError):
            check_square(np.zeros((2, 3)))

    def test_symmetric_ok(self):
        m = np.array([[0.0, 1.0], [1.0, 0.0]])
        check_symmetric(m)

    def test_symmetric_fails(self):
        with pytest.raises(ValidationError):
            check_symmetric(np.array([[0.0, 1.0], [2.0, 0.0]]))

    def test_zero_diagonal_ok(self):
        check_zero_diagonal(np.array([[0.0, 1.0], [1.0, 0.0]]))

    def test_zero_diagonal_fails(self):
        with pytest.raises(ValidationError):
            check_zero_diagonal(np.eye(2))

"""Sharded placement fabric: rack-aligned partitions of one pool.

See :mod:`repro.service.shard.plan` (how the pool is cut),
:mod:`repro.service.shard.router` (who serves each request first), and
:mod:`repro.service.shard.fabric` (the serving surface gluing N
:class:`~repro.service.server.PlacementService` workers together).
"""

from repro.service.shard.fabric import (
    FABRIC_CHECKPOINT_VERSION,
    FabricConfig,
    FabricStats,
    RebalanceReport,
    Shard,
    ShardedPlacementFabric,
    fabric_from_checkpoint,
    load_fabric_checkpoint,
    save_fabric_checkpoint,
)
from repro.service.shard.plan import (
    ByRackPlan,
    CapacityBalancedPlan,
    ExplicitPlan,
    RackGroupPlan,
    ShardAssignment,
    ShardPlan,
    assignment_from_racks,
    resolve_plan,
    shard_topology,
)
from repro.service.shard.router import RouteResult, ShardRouter, estimate_dc

__all__ = [
    "FABRIC_CHECKPOINT_VERSION",
    "ByRackPlan",
    "CapacityBalancedPlan",
    "ExplicitPlan",
    "FabricConfig",
    "FabricStats",
    "RackGroupPlan",
    "RebalanceReport",
    "RouteResult",
    "Shard",
    "ShardAssignment",
    "ShardPlan",
    "ShardRouter",
    "ShardedPlacementFabric",
    "assignment_from_racks",
    "estimate_dc",
    "fabric_from_checkpoint",
    "load_fabric_checkpoint",
    "resolve_plan",
    "save_fabric_checkpoint",
    "shard_topology",
]

"""Tests for checkpoint/restore: byte-identical round trips, versioning."""

import json

import numpy as np
import pytest

from repro.cluster import PoolSpec, VMTypeCatalog, random_pool
from repro.service import (
    CHECKPOINT_VERSION,
    ClusterState,
    PlaceRequest,
    PlacementService,
    ServiceConfig,
    checkpoint_bytes,
    checkpoint_to_dict,
    load_checkpoint,
    save_checkpoint,
    state_from_checkpoint,
)
from repro.util.errors import ValidationError


@pytest.fixture
def busy_state() -> ClusterState:
    """A state with a realistic mix of live leases placed by the service."""
    catalog = VMTypeCatalog.ec2_default()
    pool = random_pool(
        PoolSpec(racks=3, nodes_per_rack=6, capacity_high=3), catalog, seed=3
    )
    state = ClusterState.from_pool(pool)
    service = PlacementService(state, config=ServiceConfig(max_batch=16))
    rng = np.random.default_rng(17)
    for i in range(12):
        demand = rng.integers(0, 3, size=state.num_types)
        if demand.sum() == 0:
            demand[0] = 1
        service.submit(
            PlaceRequest(
                demand=tuple(int(d) for d in demand), request_id=500 + i
            )
        )
    service.step()
    assert state.num_leases > 0
    return state


class TestRoundTrip:
    def test_restore_reproduces_state(self, busy_state):
        doc = checkpoint_to_dict(busy_state)
        restored = state_from_checkpoint(doc)
        assert restored.version == busy_state.version
        assert restored.num_leases == busy_state.num_leases
        assert np.array_equal(restored.allocated, busy_state.allocated)
        assert np.array_equal(restored.remaining, busy_state.remaining)
        assert np.array_equal(
            restored.distance_matrix, busy_state.distance_matrix
        )
        for request_id, lease in busy_state.leases.items():
            twin = restored.leases[request_id]
            assert np.array_equal(twin.matrix, lease.matrix)
            assert twin.center == lease.center
            assert twin.distance == lease.distance
        restored.verify_consistency()

    def test_checkpoint_is_byte_identical_after_restore(self, busy_state):
        first = checkpoint_bytes(busy_state)
        restored = state_from_checkpoint(json.loads(first))
        second = checkpoint_bytes(restored)
        assert first == second

    def test_file_round_trip(self, busy_state, tmp_path):
        path = tmp_path / "state.json"
        save_checkpoint(path, busy_state)
        restored = load_checkpoint(path)
        assert checkpoint_bytes(restored) == path.read_text()
        restored.verify_consistency()

    def test_empty_state_round_trips(self, paper_pool):
        state = ClusterState.from_pool(paper_pool)
        restored = state_from_checkpoint(checkpoint_to_dict(state))
        assert restored.num_leases == 0
        assert checkpoint_bytes(restored) == checkpoint_bytes(state)


class TestValidation:
    def test_unknown_version_rejected(self, busy_state):
        doc = checkpoint_to_dict(busy_state)
        doc["version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(ValidationError):
            state_from_checkpoint(doc)

    def test_missing_version_rejected(self, busy_state):
        doc = checkpoint_to_dict(busy_state)
        del doc["version"]
        with pytest.raises(ValidationError):
            state_from_checkpoint(doc)

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError):
            load_checkpoint(path)

    def test_lease_not_covered_by_allocated_rejected(self, busy_state):
        doc = checkpoint_to_dict(busy_state)
        # Claim an extra VM the allocated matrix doesn't account for.
        doc["leases"][0]["placements"][0][2] += 1
        with pytest.raises(ValidationError):
            state_from_checkpoint(doc)

"""Pairwise VM transfer between two allocations (Algorithm 2, step 3).

The paper's ``transfer`` method exchanges VM positions between two virtual
clusters with different central nodes so their summed distance shrinks
(Theorem 2). This module implements it as a steepest-descent exchange search:
at each step, take the same-type VM swap with the largest positive gain
(:func:`repro.core.theorems.swap_gain`), then re-optimize both centers, and
repeat until no improving exchange exists.

Every exchange is capacity-neutral (combined per-node, per-type usage is
unchanged), so applying transfers never breaks pool feasibility.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.problem import Allocation
from repro.core.theorems import apply_theorem2_exchange
from repro.util.errors import ValidationError


@dataclass(frozen=True, slots=True)
class TransferResult:
    """Outcome of optimizing one allocation pair."""

    first: Allocation
    second: Allocation
    gain: float
    exchanges: int

    @property
    def improved(self) -> bool:
        return self.exchanges > 0


def best_exchange(
    m1: np.ndarray,
    m2: np.ndarray,
    dist: np.ndarray,
    x: int,
    y: int,
    *,
    tol: float = 1e-9,
) -> "tuple[int, int, int, float] | None":
    """Find the highest-gain same-type exchange between two allocations.

    Returns ``(u, v, vm_type, gain)`` — cluster 1 moves a type-``vm_type``
    VM from ``u`` to ``v``, cluster 2 the reverse — or ``None`` when no
    exchange has positive gain.

    Vectorized across *all* VM types at once: since the gain
    ``phi[u] − phi[v]`` does not depend on the type, the per-type maximum is
    ``max(phi over cluster-1 holders) − min(phi over cluster-2 holders)`` —
    two masked reductions over the allocation matrices instead of a per-type
    Python loop with an outer-difference matrix. Float subtraction is
    monotone, so this picks exactly the value the per-type matrix max would;
    the winning ``(u, v)`` pair is then re-derived inside the single winning
    type with the reference argmax, preserving tie-breaking bit for bit
    (smallest type achieving the maximum gain, then first row-major pair).
    """
    # Per-node swap potentials: phi1[u] = D_ux − D_uy is what cluster 1
    # saves (per VM) by vacating u, and cluster 2 loses by occupying it.
    phi = dist[:, x] - dist[:, y]
    give = np.where(m1 > 0, phi[:, None], -np.inf).max(axis=0)
    gain_ceiling = give - np.where(m2 > 0, phi[:, None], np.inf).min(axis=0)
    j = int(np.argmax(gain_ceiling))  # first type attaining the max
    if not (gain_ceiling[j] > tol):
        return None
    us = np.flatnonzero(m1[:, j] > 0)
    vs = np.flatnonzero(m2[:, j] > 0)
    gains = phi[us][:, None] - phi[vs][None, :]
    idx = np.unravel_index(np.argmax(gains), gains.shape)
    return (int(us[idx[0]]), int(vs[idx[1]]), j, float(gains[idx]))


def _reference_best_exchange(
    m1: np.ndarray,
    m2: np.ndarray,
    dist: np.ndarray,
    x: int,
    y: int,
    *,
    tol: float = 1e-9,
) -> "tuple[int, int, int, float] | None":
    """The original per-type loop of :func:`best_exchange`.

    Kept as the executable specification the vectorized version is
    property-tested against (identical tuples on every input). The gain
    ``(D_ux − D_vx) + (D_vy − D_uy)`` is an outer sum over candidate source
    and destination nodes, evaluated per VM type.
    """
    m = m1.shape[1]
    best: "tuple[int, int, int, float] | None" = None
    phi = dist[:, x] - dist[:, y]
    for j in range(m):
        us = np.flatnonzero(m1[:, j] > 0)
        vs = np.flatnonzero(m2[:, j] > 0)
        if us.size == 0 or vs.size == 0:
            continue
        # gain[u, v] = phi[u] − phi[v]
        gains = phi[us][:, None] - phi[vs][None, :]
        idx = np.unravel_index(np.argmax(gains), gains.shape)
        g = float(gains[idx])
        if g > tol and (best is None or g > best[3]):
            best = (int(us[idx[0]]), int(vs[idx[1]]), j, g)
    return best


def transfer_pair(
    a1: Allocation,
    a2: Allocation,
    dist: np.ndarray,
    *,
    recenter: bool = True,
    max_exchanges: int = 10_000,
    tol: float = 1e-9,
) -> TransferResult:
    """Greedily exchange VMs between *a1* and *a2* until no gain remains.

    With ``recenter=True`` (default) each allocation's central node is
    re-optimized after the exchange search converges and the search restarts
    if recentering changed a center — matching Algorithm 2's intent of
    minimizing the *true* summed ``DC``.

    The recenter check computes the center-distance vectors directly
    (``counts @ D`` + first-minimum argmin — the exact
    :func:`~repro.core.distance.cluster_distance` expression) instead of
    constructing throwaway :class:`Allocation` objects, whose validation
    dominated the Algorithm-2 transfer phase. The original formulation is
    retained as :func:`_reference_transfer_pair` and property-tested to
    return bit-identical results.
    """
    m1 = a1.matrix.copy()
    m2 = a2.matrix.copy()
    x, y = a1.center, a2.center
    start = a1.distance + a2.distance
    exchanges = 0
    totals: "tuple[np.ndarray, np.ndarray] | None" = None
    while exchanges < max_exchanges:
        step = best_exchange(m1, m2, dist, x, y, tol=tol)
        if step is None:
            if not recenter:
                break
            t1 = m1.sum(axis=1).astype(np.float64) @ dist
            t2 = m2.sum(axis=1).astype(np.float64) @ dist
            nx, ny = int(np.argmin(t1)), int(np.argmin(t2))
            if nx == x and ny == y:
                totals = (t1, t2)
                break
            x, y = nx, ny
            continue
        u, v, j, _gain = step
        m1, m2 = apply_theorem2_exchange(m1, m2, u, v, j)
        exchanges += 1
    else:
        raise ValidationError(
            f"transfer_pair did not converge in {max_exchanges} exchanges"
        )
    if recenter:
        t1, t2 = totals
        out1 = Allocation(matrix=m1, center=x, distance=float(t1[x]))
        out2 = Allocation(matrix=m2, center=y, distance=float(t2[y]))
    else:
        out1 = Allocation.with_center(m1, dist, x)
        out2 = Allocation.with_center(m2, dist, y)
    return TransferResult(
        first=out1,
        second=out2,
        gain=start - (out1.distance + out2.distance),
        exchanges=exchanges,
    )


def _reference_transfer_pair(
    a1: Allocation,
    a2: Allocation,
    dist: np.ndarray,
    *,
    recenter: bool = True,
    max_exchanges: int = 10_000,
    tol: float = 1e-9,
) -> TransferResult:
    """The original :func:`transfer_pair` with ``Allocation``-based
    recentering, kept as the executable specification (and the pre-kernel
    benchmark baseline). ``Allocation.from_matrix`` applies the same
    ``counts @ D`` + first-minimum argmin the fast path inlines, so both
    produce bit-identical results."""
    m1 = a1.matrix.copy()
    m2 = a2.matrix.copy()
    x, y = a1.center, a2.center
    start = a1.distance + a2.distance
    exchanges = 0
    while exchanges < max_exchanges:
        step = _reference_best_exchange(m1, m2, dist, x, y, tol=tol)
        if step is None:
            if not recenter:
                break
            new1 = Allocation.from_matrix(m1, dist)
            new2 = Allocation.from_matrix(m2, dist)
            if new1.center == x and new2.center == y:
                break
            x, y = new1.center, new2.center
            continue
        u, v, j, _gain = step
        m1, m2 = apply_theorem2_exchange(m1, m2, u, v, j)
        exchanges += 1
    else:
        raise ValidationError(
            f"transfer_pair did not converge in {max_exchanges} exchanges"
        )
    if recenter:
        out1 = Allocation.from_matrix(m1, dist)
        out2 = Allocation.from_matrix(m2, dist)
    else:
        out1 = Allocation.with_center(m1, dist, x)
        out2 = Allocation.with_center(m2, dist, y)
    return TransferResult(
        first=out1,
        second=out2,
        gain=start - (out1.distance + out2.distance),
        exchanges=exchanges,
    )


def transfer_pair_paper(
    a1: Allocation, a2: Allocation, dist: np.ndarray, *, max_exchanges: int = 10_000
) -> TransferResult:
    """The literal Theorem-2 special case: only exchanges where cluster 1's
    VM sits on cluster 2's central node (``u = y``).

    Provided for ablation against the generalized :func:`transfer_pair`;
    strictly weaker (it can only fire when the geometric precondition holds).
    """
    m1 = a1.matrix.copy()
    m2 = a2.matrix.copy()
    x, y = a1.center, a2.center
    start = a1.distance + a2.distance
    exchanges = 0
    improved = True
    while improved and exchanges < max_exchanges:
        improved = False
        for j in range(m1.shape[1]):
            if m1[y, j] <= 0:
                continue
            ks = np.flatnonzero(m2[:, j] > 0)
            if ks.size == 0:
                continue
            deltas = dist[x, ks] - dist[x, y] - dist[y, ks]
            best = int(np.argmin(deltas))
            if deltas[best] < -1e-9:
                k = int(ks[best])
                m1, m2 = apply_theorem2_exchange(m1, m2, y, k, j)
                exchanges += 1
                improved = True
                break
    out1 = Allocation.with_center(m1, dist, x)
    out2 = Allocation.with_center(m2, dist, y)
    return TransferResult(
        first=out1,
        second=out2,
        gain=start - (out1.distance + out2.distance),
        exchanges=exchanges,
    )

"""Bounded request queue with FIFO and priority disciplines.

Implements the paper's ``getRequests(Q, A)`` (Algorithm 2, step 1): return
the requests in the queue that the available resources ``A`` can meet,
"according to some related priority strategies based on the queue, e.g.,
FIFO". Requests that individually exceed availability are skipped (they keep
waiting); admitted requests consume availability for the remainder of the
scan so the returned batch is *jointly* satisfiable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.cloud.request import TimedRequest
from repro.util.errors import ValidationError


class QueueDiscipline:
    """Queue ordering strategies for admission scans."""

    FIFO = "fifo"
    PRIORITY = "priority"

    ALL = (FIFO, PRIORITY)


class RequestQueue:
    """Bounded waiting queue of :class:`TimedRequest` objects.

    Parameters
    ----------
    capacity:
        Maximum queued requests ("the length of the wait queue is limited");
        submissions beyond it are rejected.
    discipline:
        ``"fifo"`` (arrival order) or ``"priority"`` (ascending priority,
        ties by arrival order).
    """

    def __init__(self, capacity: int = 64, discipline: str = QueueDiscipline.FIFO) -> None:
        if capacity < 1:
            raise ValidationError("queue capacity must be >= 1")
        if discipline not in QueueDiscipline.ALL:
            raise ValidationError(
                f"unknown discipline {discipline!r}; expected one of {QueueDiscipline.ALL}"
            )
        self.capacity = capacity
        self.discipline = discipline
        # Each entry carries its own submission sequence number so duplicate
        # request ids (resubmissions) stay individually ordered — a shared
        # id → seq map would be corrupted by cancel-then-drain interleavings.
        self._items: deque[tuple[int, TimedRequest]] = deque()
        self._seq = 0

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(self._ordered())

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    def submit(self, request: TimedRequest) -> bool:
        """Enqueue *request*; returns ``False`` when the queue is full."""
        if self.is_full:
            return False
        self._items.append((self._seq, request))
        self._seq += 1
        return True

    def cancel(self, request_id: int) -> bool:
        """Remove a queued request ("users can also cancel their jobs").

        Removes the oldest queued entry with *request_id*; later entries
        sharing the id (resubmissions) keep their place.
        """
        for entry in self._items:
            if entry[1].request_id == request_id:
                self._items.remove(entry)
                return True
        return False

    def _ordered(self) -> list[TimedRequest]:
        entries = list(self._items)
        if self.discipline == QueueDiscipline.PRIORITY:
            entries.sort(key=lambda e: (e[1].priority, e[0]))
        return [request for _, request in entries]

    def peek_admissible(self, available: np.ndarray) -> list[TimedRequest]:
        """The paper's ``getRequests``: a jointly satisfiable batch.

        Scans the queue in discipline order; each request whose demand fits
        the *remaining* availability is admitted and its demand deducted.
        Does not modify the queue — call :meth:`remove_batch` after the batch
        is successfully placed.
        """
        budget = np.asarray(available, dtype=np.int64).copy()
        batch: list[TimedRequest] = []
        for item in self._ordered():
            if np.all(item.demand <= budget):
                batch.append(item)
                budget -= item.demand
        return batch

    def remove_batch(self, batch: list[TimedRequest]) -> None:
        """Dequeue every request in *batch* (after successful placement).

        Matches one queue entry per batch member, oldest first, so duplicate
        ids don't over-remove resubmitted requests.
        """
        counts: dict[int, int] = {}
        for request in batch:
            counts[request.request_id] = counts.get(request.request_id, 0) + 1
        kept: deque[tuple[int, TimedRequest]] = deque()
        for entry in self._items:
            rid = entry[1].request_id
            if counts.get(rid, 0) > 0:
                counts[rid] -= 1
            else:
                kept.append(entry)
        self._items = kept

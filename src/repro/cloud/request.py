"""Timed cluster requests for the cloud simulator.

Section III.C of the paper frames provisioning as a queue process: requests
arrive at random times, occupy resources for a (generally unknown) service
time, and wait in a bounded queue when resources are short.
:class:`TimedRequest` augments the core request vector with this temporal
metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.problem import VirtualClusterRequest
from repro.util.errors import ValidationError
from repro.util.rng import ensure_rng


@dataclass(frozen=True)
class TimedRequest:
    """A request with arrival time, service duration, and priority.

    ``priority`` orders the priority queue discipline (lower value = served
    first); FIFO ignores it.
    """

    request: VirtualClusterRequest
    arrival_time: float
    duration: float
    priority: int = 0

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ValidationError("arrival_time must be >= 0")
        if self.duration <= 0:
            raise ValidationError("duration must be > 0")

    @property
    def demand(self) -> np.ndarray:
        return self.request.demand

    @property
    def request_id(self) -> int:
        return self.request.request_id


def poisson_workload(
    num_requests: int,
    num_types: int,
    *,
    mean_interarrival: float = 10.0,
    mean_duration: float = 100.0,
    demand_low: int = 0,
    demand_high: int = 4,
    seed=None,
) -> list[TimedRequest]:
    """Generate a Poisson-arrival workload with exponential service times.

    Matches the paper's simulation description: "the simulated requests will
    arrive and their job will finish randomly". Demands are drawn uniformly
    per type in ``[demand_low, demand_high]`` with all-zero vectors redrawn.
    """
    if num_requests < 0:
        raise ValidationError("num_requests must be >= 0")
    if mean_interarrival <= 0 or mean_duration <= 0:
        raise ValidationError("mean_interarrival and mean_duration must be > 0")
    rng = ensure_rng(seed)
    out: list[TimedRequest] = []
    t = 0.0
    for _ in range(num_requests):
        t += float(rng.exponential(mean_interarrival))
        while True:
            demand = rng.integers(demand_low, demand_high + 1, size=num_types)
            if demand.sum() > 0:
                break
        out.append(
            TimedRequest(
                request=VirtualClusterRequest(demand=demand),
                arrival_time=t,
                duration=float(rng.exponential(mean_duration)) + 1e-9,
            )
        )
    return out

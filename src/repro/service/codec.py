"""Envelope codecs for the serving and worker wires: line JSON and binary.

Every transport in the package exchanges *envelopes* — small JSON-shaped
dicts (``{"op": ..., "message": {...}}`` requests, ``{"ok": true, ...}``
replies). A :class:`Codec` owns the byte representation of one envelope:

* :class:`JsonLineCodec` — one compact UTF-8 JSON document per ``\\n``
  terminated line. This is the historical serving format; every peer
  understands it, and it remains the default.
* :class:`BinaryCodec` — length-prefixed msgpack-style frames: a one-byte
  magic, a 4-byte big-endian payload length, and a compact tagged binary
  encoding of the envelope. Strings are not escaped, numbers are not
  rendered to decimal, and ``bytes`` values (checkpoint blobs) embed
  verbatim instead of forcing a text round trip. Typically 2-4x smaller
  and materially cheaper to encode/decode than line JSON for the hot
  ``place``/``decision``/``release``/heartbeat ops.

Codecs are negotiated, never assumed: a connection opens in line JSON, the
client offers its codecs in a hello (the serving transport's ``hello`` op,
or the ``codecs`` capability in :func:`repro.service.wire.send_hello`), and
the server answers with its pick. A peer that never offers — any pre-codec
client — simply stays on line JSON; nothing about the legacy exchange
changed.

Each codec exposes the blocking file-object surface the threaded
transports use (``encode_op``/``decode_op``) *and* a sans-IO incremental
:meth:`Codec.decoder` (``feed`` bytes, iterate decoded envelopes) that the
asyncio transport drives from its protocol callbacks. Both surfaces share
one parser, so fault behavior (oversize frames, truncation, garbage) is
identical on every transport.
"""

from __future__ import annotations

import json
import struct

from repro.util.errors import TransportError, ValidationError

#: Hard byte budget for one encoded envelope (either codec). Matches the
#: serving transport's historical per-line budget.
MAX_OP_BYTES = 1 << 20

#: First byte of every binary frame. Deliberately outside ASCII JSON's
#: starting characters ('{', digits, whitespace) so a peer that was never
#: switched to binary fails fast with a typed error, not a JSON parse of
#: garbage.
BINARY_MAGIC = 0xB1

# ----------------------------------------------------------- binary packing
#
# msgpack-inspired tag set, reduced to exactly the value shapes JSON
# envelopes use (plus bytes). Not msgpack on the wire — this needs no
# external library and no compatibility promises beyond this package.

_T_NONE = 0xC0
_T_FALSE = 0xC2
_T_TRUE = 0xC3
_T_INT64 = 0xD3  # >q
_T_BIGINT = 0xC7  # >I byte-length + signed big-endian two's complement
_T_FLOAT64 = 0xCB  # >d
_T_STR = 0xDB  # >I byte-length + UTF-8
_T_BYTES = 0xC6  # >I byte-length + raw
_T_LIST = 0xDC  # >I element count
_T_DICT = 0xDF  # >I pair count; keys must be str

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


def pack(obj) -> bytes:
    """Encode one JSON-shaped value (plus ``bytes``) to compact binary.

    Tuples encode as lists, mirroring what a JSON round trip would do, so
    a document decoded from either codec compares equal.
    """
    out = bytearray()
    _pack_into(out, obj)
    return bytes(out)


def _pack_into(out: bytearray, obj) -> None:
    if obj is None:
        out.append(_T_NONE)
    elif obj is True:
        out.append(_T_TRUE)
    elif obj is False:
        out.append(_T_FALSE)
    elif isinstance(obj, int):
        if _INT64_MIN <= obj <= _INT64_MAX:
            out.append(_T_INT64)
            out += struct.pack(">q", obj)
        else:
            raw = obj.to_bytes((obj.bit_length() + 8) // 8, "big", signed=True)
            out.append(_T_BIGINT)
            out += struct.pack(">I", len(raw))
            out += raw
    elif isinstance(obj, float):
        out.append(_T_FLOAT64)
        out += struct.pack(">d", obj)
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        out.append(_T_STR)
        out += struct.pack(">I", len(raw))
        out += raw
    elif isinstance(obj, (bytes, bytearray, memoryview)):
        raw = bytes(obj)
        out.append(_T_BYTES)
        out += struct.pack(">I", len(raw))
        out += raw
    elif isinstance(obj, (list, tuple)):
        out.append(_T_LIST)
        out += struct.pack(">I", len(obj))
        for item in obj:
            _pack_into(out, item)
    elif isinstance(obj, dict):
        out.append(_T_DICT)
        out += struct.pack(">I", len(obj))
        for key, value in obj.items():
            if not isinstance(key, str):
                raise ValidationError(
                    f"binary codec requires str keys, got {type(key).__name__}"
                )
            raw = key.encode("utf-8")
            out.append(_T_STR)
            out += struct.pack(">I", len(raw))
            out += raw
            _pack_into(out, value)
    else:
        raise ValidationError(
            f"binary codec cannot encode {type(obj).__name__} values"
        )


def unpack(data: bytes):
    """Decode one :func:`pack` payload; rejects trailing garbage."""
    obj, offset = _unpack_from(data, 0)
    if offset != len(data):
        raise TransportError(
            f"binary payload has {len(data) - offset} trailing byte(s)"
        )
    return obj


def _need(data: bytes, offset: int, n: int) -> int:
    end = offset + n
    if end > len(data):
        raise TransportError("truncated binary payload")
    return end


def _unpack_from(data: bytes, offset: int):
    end = _need(data, offset, 1)
    tag = data[offset]
    offset = end
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_INT64:
        end = _need(data, offset, 8)
        return struct.unpack_from(">q", data, offset)[0], end
    if tag == _T_FLOAT64:
        end = _need(data, offset, 8)
        return struct.unpack_from(">d", data, offset)[0], end
    if tag in (_T_STR, _T_BYTES, _T_BIGINT):
        end = _need(data, offset, 4)
        length = struct.unpack_from(">I", data, offset)[0]
        offset = end
        end = _need(data, offset, length)
        raw = data[offset:end]
        if tag == _T_BYTES:
            return bytes(raw), end
        if tag == _T_BIGINT:
            return int.from_bytes(raw, "big", signed=True), end
        try:
            return raw.decode("utf-8"), end
        except UnicodeDecodeError as exc:
            raise TransportError(f"binary string is not valid UTF-8: {exc}") from exc
    if tag == _T_LIST:
        end = _need(data, offset, 4)
        count = struct.unpack_from(">I", data, offset)[0]
        offset = end
        items = []
        for _ in range(count):
            item, offset = _unpack_from(data, offset)
            items.append(item)
        return items, offset
    if tag == _T_DICT:
        end = _need(data, offset, 4)
        count = struct.unpack_from(">I", data, offset)[0]
        offset = end
        doc = {}
        for _ in range(count):
            key, offset = _unpack_from(data, offset)
            if not isinstance(key, str):
                raise TransportError("binary dict key is not a string")
            doc[key], offset = _unpack_from(data, offset)
        return doc, offset
    raise TransportError(f"unknown binary tag 0x{tag:02X}")


# ----------------------------------------------------------------- decoders


class _LineDecoder:
    """Sans-IO incremental decoder for :class:`JsonLineCodec`.

    An overlong line is discarded in bounded memory (never buffered whole):
    the decoder drops bytes until the terminating newline, then raises the
    oversize error exactly once — leaving the stream re-synced at the next
    frame, matching the blocking :meth:`JsonLineCodec.decode_op`.
    """

    def __init__(self, max_bytes: int) -> None:
        self._buf = bytearray()
        self._max = max_bytes
        self._discarding = False

    def feed(self, data: bytes) -> None:
        self._buf += data

    def next_op(self) -> "dict | None":
        """One decoded envelope, or ``None`` until more bytes arrive."""
        idx = self._buf.find(b"\n")
        if self._discarding:
            if idx < 0:
                self._buf.clear()
                return None
            del self._buf[: idx + 1]
            self._discarding = False
            raise TransportError(f"frame exceeds {self._max} bytes")
        if idx < 0:
            if len(self._buf) > self._max:
                self._buf.clear()
                self._discarding = True
            return None
        raw = bytes(self._buf[:idx])
        del self._buf[: idx + 1]
        if len(raw) > self._max:
            raise TransportError(f"frame exceeds {self._max} bytes")
        if not raw.strip():
            return self.next_op()
        return _parse_json_envelope(raw)

    @property
    def buffered(self) -> int:
        return len(self._buf)

    def take_buffered(self) -> bytes:
        """Drain and return undecoded bytes (used across a codec switch)."""
        raw = bytes(self._buf)
        self._buf.clear()
        return raw


class _FrameDecoder:
    """Sans-IO incremental decoder for :class:`BinaryCodec`."""

    def __init__(self, max_bytes: int) -> None:
        self._buf = bytearray()
        self._max = max_bytes

    def feed(self, data: bytes) -> None:
        self._buf += data

    def next_op(self) -> "dict | None":
        if len(self._buf) < 5:
            return None
        if self._buf[0] != BINARY_MAGIC:
            raise TransportError(
                f"expected binary frame magic 0x{BINARY_MAGIC:02X}, "
                f"got 0x{self._buf[0]:02X}"
            )
        (length,) = struct.unpack_from(">I", self._buf, 1)
        if length > self._max:
            raise TransportError(f"frame of {length} bytes exceeds {self._max}")
        if len(self._buf) < 5 + length:
            return None
        payload = bytes(self._buf[5 : 5 + length])
        del self._buf[: 5 + length]
        doc = unpack(payload)
        if not isinstance(doc, dict):
            raise TransportError("binary envelope must decode to an object")
        return doc

    @property
    def buffered(self) -> int:
        return len(self._buf)

    def take_buffered(self) -> bytes:
        """Drain and return undecoded bytes (used across a codec switch)."""
        raw = bytes(self._buf)
        self._buf.clear()
        return raw


def _parse_json_envelope(raw: bytes) -> dict:
    try:
        doc = json.loads(raw.decode("utf-8"))
    except UnicodeDecodeError as exc:
        raise TransportError("frame is not valid UTF-8") from exc
    except json.JSONDecodeError as exc:
        raise TransportError(f"not a valid envelope: {exc}") from exc
    if not isinstance(doc, dict):
        raise TransportError("envelope must be a JSON object")
    return doc


# ------------------------------------------------------------------- codecs


class JsonLineCodec:
    """Newline-delimited compact JSON — the historical serving format."""

    name = "json"

    #: Line framing re-syncs at every newline, so a decode failure on one
    #: frame leaves the stream usable: servers may reply with a typed error
    #: and keep the connection. Binary framing cannot (no sync marker).
    resync_on_error = True

    def __init__(self, max_bytes: int = MAX_OP_BYTES) -> None:
        self.max_bytes = max_bytes

    def encode_op(self, doc: dict) -> bytes:
        raw = (json.dumps(doc, separators=(",", ":")) + "\n").encode("utf-8")
        if len(raw) > self.max_bytes:
            raise TransportError(
                f"frame of {len(raw)} bytes exceeds {self.max_bytes}"
            )
        return raw

    def decode_op(self, rfile) -> "dict | None":
        """Blocking read of one envelope; ``None`` on clean EOF."""
        while True:
            raw = rfile.readline(self.max_bytes + 1)
            if not raw:
                return None
            if len(raw) > self.max_bytes:
                if not raw.endswith(b"\n"):
                    # Discard the oversized line's tail in bounded chunks so
                    # the stream is re-synced at the next frame boundary —
                    # the overlong frame is rejected without buffering it.
                    while True:
                        chunk = rfile.readline(1 << 16)
                        if not chunk or chunk.endswith(b"\n"):
                            break
                raise TransportError(f"frame exceeds {self.max_bytes} bytes")
            if not raw.strip():
                continue
            return _parse_json_envelope(raw.rstrip(b"\n"))

    def decoder(self) -> _LineDecoder:
        return _LineDecoder(self.max_bytes)


class BinaryCodec:
    """Length-prefixed compact binary frames (see module docstring)."""

    name = "binary"
    resync_on_error = False

    def __init__(self, max_bytes: int = MAX_OP_BYTES) -> None:
        self.max_bytes = max_bytes

    def encode_op(self, doc: dict) -> bytes:
        if not isinstance(doc, dict):
            raise ValidationError("binary codec encodes dict envelopes only")
        payload = pack(doc)
        if len(payload) > self.max_bytes:
            raise TransportError(
                f"frame of {len(payload)} bytes exceeds {self.max_bytes}"
            )
        return struct.pack(">BI", BINARY_MAGIC, len(payload)) + payload

    def decode_op(self, rfile) -> "dict | None":
        header = rfile.read(5)
        if not header:
            return None
        if len(header) != 5:
            raise TransportError("truncated binary frame header")
        magic, length = struct.unpack(">BI", header)
        if magic != BINARY_MAGIC:
            raise TransportError(
                f"expected binary frame magic 0x{BINARY_MAGIC:02X}, "
                f"got 0x{magic:02X}"
            )
        if length > self.max_bytes:
            raise TransportError(f"frame of {length} bytes exceeds {self.max_bytes}")
        payload = rfile.read(length)
        if payload is None or len(payload) != length:
            raise TransportError(
                f"truncated binary frame: wanted {length} bytes, got "
                f"{0 if not payload else len(payload)}"
            )
        doc = unpack(payload)
        if not isinstance(doc, dict):
            raise TransportError("binary envelope must decode to an object")
        return doc

    def decoder(self) -> _FrameDecoder:
        return _FrameDecoder(self.max_bytes)


#: Codec registry, in server preference order: a server offered several
#: codecs picks the first of these the client also speaks.
CODECS: dict[str, type] = {"binary": BinaryCodec, "json": JsonLineCodec}

#: What this build speaks, most-preferred first.
SUPPORTED_CODECS: tuple[str, ...] = tuple(CODECS)


def resolve_codec(codec, max_bytes: int = MAX_OP_BYTES):
    """Map a codec name (or pass through an instance) to a codec object."""
    if isinstance(codec, (JsonLineCodec, BinaryCodec)):
        return codec
    factory = CODECS.get(str(codec))
    if factory is None:
        raise ValidationError(
            f"unknown codec {codec!r}; expected one of {sorted(CODECS)}"
        )
    return factory(max_bytes=max_bytes)


def choose_codec(offered, supported: tuple[str, ...] = SUPPORTED_CODECS) -> str:
    """Server-side pick: the most-preferred *supported* codec also *offered*.

    Falls back to ``"json"`` when the peer offered nothing usable — the one
    codec every release of this package has ever spoken.
    """
    offered = [str(name) for name in (offered or ())]
    for name in supported:
        if name in offered:
            return name
    return "json"

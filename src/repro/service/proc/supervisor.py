"""ProcSupervisor: failure detection and respawn for out-of-process shards.

Mirrors :class:`~repro.service.supervisor.FabricSupervisor`'s surface
(``monitor`` / ``restore`` / ``start`` / ``stop`` / ``stranded_leases`` /
``verify_consistency`` / ``workers`` / ``events``) but supervises *real
processes*: liveness is judged first by the child process itself
(``ProcWorkerHandle.alive``) and then by heartbeat age in the shared —
typically networked — coordination backend, so a SIGKILL'd worker is
detected even when the parent's handle still looks healthy (e.g. a worker
wedged after losing its coordination link). Recovery respawns a fresh
child from the replicated checkpoint via
:meth:`~repro.service.proc.fabric.ProcFabric.respawn_worker`, which
enforces byte-identical restoration.

Chaos compatibility: :class:`ProcWorkerProxy` gives
:class:`~repro.service.chaos.FabricChaosInjector` the duck-typed
``kill()`` / ``crashed`` / ``suppress_until`` / ``replication_fault``
surface it drives, except that ``kill()`` here delivers an actual SIGKILL
and the two chaos hooks are inert (a parent cannot reach into a child's
heartbeat loop — point the injector's heartbeat/checkpoint fault knobs at
zero for proc fabrics).
"""

from __future__ import annotations

import json
import logging
import threading
import time

from repro.service.checkpoint import checkpoint_bytes, state_from_checkpoint
from repro.service.coord import CoordinationBackend, InMemoryCoordinationBackend
from repro.service.supervisor import FailoverEvent, SupervisorConfig
from repro.util.errors import TransportError, ValidationError

_log = logging.getLogger(__name__)


class ProcWorkerProxy:
    """Chaos/driver-facing stand-in for one out-of-process shard worker.

    The real supervision state lives in the child and the fabric handle;
    this proxy only carries what the chaos injector and the monitor sweep
    need to address the worker by shard.
    """

    def __init__(self, fabric, shard_id: int) -> None:
        self.fabric = fabric
        self.shard_id = shard_id
        self.worker_id = f"shard-{shard_id}"
        self._forced = False
        self._backend = None
        #: Inert out-of-process (see module docstring); kept so the chaos
        #: injector's attribute writes don't explode.
        self.suppress_until = float("-inf")
        self.replication_fault = None

    @property
    def handle(self):
        return self.fabric.handles[self.shard_id]

    @property
    def crashed(self) -> bool:
        return self._forced or not self.handle.alive

    @crashed.setter
    def crashed(self, value: bool) -> None:
        self._forced = bool(value)

    @property
    def incarnation(self) -> int:
        """The backend's registration generation for this worker id."""
        if self._backend is None:
            return 0
        record = self._backend.workers().get(self.worker_id)
        return 0 if record is None else int(record.incarnation)

    def bind_backend(self, backend) -> None:
        self._backend = backend

    def kill(self) -> None:
        """SIGKILL the child process — no cleanup, no deregistration."""
        self._forced = True
        self.handle.kill()

    def __repr__(self) -> str:
        return (
            f"ProcWorkerProxy(shard={self.shard_id}, "
            f"crashed={self.crashed})"
        )


class ProcSupervisor:
    """Watches a :class:`ProcFabric`'s children and respawns the dead ones.

    Parameters
    ----------
    fabric:
        The proc fabric. Its children must share *backend* (construct the
        fabric with ``coord_url`` pointing at the same coordination server
        this supervisor's backend client talks to) — heartbeats and
        replicated checkpoints written by the children are what the
        monitor reads.
    backend:
        Coordination backend client. Defaults to a fresh in-memory backend,
        which is only useful for fabrics without ``coord_url`` where
        liveness degenerates to process-aliveness (no heartbeat TTLs, no
        checkpoint respawn).
    config / clock:
        Detection tunables; the clock must be comparable to the children's
        heartbeat clock, i.e. the wall clock (children beat with
        ``time.time()``).
    restore_gate:
        Optional ``(shard_id, now) -> bool`` deferring respawn (the chaos
        injector models repair time through it).
    """

    def __init__(
        self,
        fabric,
        backend: "CoordinationBackend | None" = None,
        config: "SupervisorConfig | None" = None,
        *,
        clock=time.time,
        restore_gate=None,
    ) -> None:
        self.fabric = fabric
        self.backend = backend if backend is not None else InMemoryCoordinationBackend()
        self.config = config or fabric.supervisor_config
        self.clock = clock
        self.restore_gate = restore_gate
        self.obs = fabric.obs
        self.events: list[FailoverEvent] = []
        self._mlock = threading.Lock()
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None
        self._m_up = self.obs.gauge(
            "repro_fabric_worker_up",
            "1 while the shard's worker is believed alive, 0 while dead.",
            labels=("shard",),
        )
        self._m_hb_age = self.obs.gauge(
            "repro_fabric_heartbeat_age_seconds",
            "Seconds since each worker's last recorded heartbeat.",
            labels=("shard",),
        )
        self.workers: list[ProcWorkerProxy] = []
        for shard in fabric.shards:
            proxy = ProcWorkerProxy(fabric, shard.shard_id)
            proxy.bind_backend(self.backend)
            self._m_up.labels(shard=str(shard.shard_id)).set(1)
            self.workers.append(proxy)
        self._coordinated = fabric.coord_url is not None

    # ------------------------------------------------------------- monitor

    def heartbeat_age(self, worker_id: str, now: float) -> float:
        last = self.backend.last_beat(worker_id)
        return float("inf") if last is None else max(0.0, now - last)

    def monitor(self, now: "float | None" = None) -> list[FailoverEvent]:
        """One detection + recovery sweep; returns the failover events.

        Detection order per shard: the handle's own process liveness (a
        SIGKILL shows up here within one sweep), then — when coordinated —
        the heartbeat TTL in the backend (catches wedged-but-running
        children). Down shards get a respawn retry each sweep, so a gated
        or checkpoint-less death recovers as soon as it can.
        """
        with self._mlock:
            if now is None:
                now = float(self.clock())
            down = self.fabric.down_shards
            events: list[FailoverEvent] = []
            for proxy in self.workers:
                shard_id = proxy.shard_id
                label = str(shard_id)
                if shard_id in down:
                    self._m_up.labels(shard=label).set(0)
                    if self._try_restore(shard_id, now):
                        events.append(
                            FailoverEvent(
                                shard_id=shard_id,
                                worker_id=proxy.worker_id,
                                reason="deferred restore",
                                detected_at=now,
                                restored=True,
                                incarnation=proxy.incarnation,
                            )
                        )
                    continue
                reason = None
                if proxy.crashed:
                    code = self.fabric.handles[shard_id].exitcode
                    reason = f"child process dead (exit code {code})"
                elif self._coordinated:
                    age = self.heartbeat_age(proxy.worker_id, now)
                    self._m_hb_age.labels(shard=label).set(
                        0.0 if age == float("inf") else age
                    )
                    if age > self.config.heartbeat_ttl:
                        reason = (
                            f"heartbeat age {age:.3f}s > "
                            f"ttl {self.config.heartbeat_ttl}s"
                        )
                if reason is None:
                    self._m_up.labels(shard=label).set(1)
                    continue
                proxy.crashed = True
                rerouted = self.fabric.mark_shard_down(shard_id, reason=reason)
                self._m_up.labels(shard=label).set(0)
                restored = self._try_restore(shard_id, now)
                events.append(
                    FailoverEvent(
                        shard_id=shard_id,
                        worker_id=proxy.worker_id,
                        reason=reason,
                        detected_at=now,
                        rerouted=tuple(rerouted),
                        restored=restored,
                        incarnation=proxy.incarnation,
                    )
                )
            self.events.extend(events)
            return events

    def _try_restore(self, shard_id: int, now: float) -> bool:
        if not self.config.auto_restore:
            return False
        gate = self.restore_gate
        if gate is not None and not gate(shard_id, now):
            return False
        return self.restore(shard_id, now=now)

    # ------------------------------------------------------------- restore

    def restore(self, shard_id: int, now: "float | None" = None) -> bool:
        """Respawn a dead shard's child from its replicated checkpoint.

        Returns False (shard stays quarantined, fabric serves degraded)
        when no checkpoint exists or the spawn fails; raises if the payload
        is corrupt — a torn copy must never be silently adopted.
        """
        proxy = self.workers[shard_id]
        payload = self.backend.get_checkpoint(proxy.worker_id)
        if payload is None:
            _log.error(
                "no replicated checkpoint for %s; shard stays down",
                proxy.worker_id,
            )
            return False
        # Corruption check up front: a payload that doesn't round-trip is a
        # hard error, while a spawn failure below is retried next sweep.
        state = state_from_checkpoint(json.loads(payload))
        if checkpoint_bytes(state).encode("utf-8") != payload:
            raise ValidationError(
                f"replicated checkpoint for {proxy.worker_id} does not "
                "round-trip to its payload"
            )
        try:
            self.fabric.respawn_worker(shard_id, payload)
        except (TransportError, OSError):
            _log.exception(
                "respawn of shard %d failed; will retry next sweep", shard_id
            )
            return False
        proxy.crashed = False
        self._m_up.labels(shard=str(shard_id)).set(1)
        self._m_hb_age.labels(shard=str(shard_id)).set(0.0)
        _log.warning(
            "shard %d respawned from replicated checkpoint (%d leases)",
            shard_id, state.num_leases,
        )
        return True

    # ----------------------------------------------------------- lifecycle

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Start the background monitor thread (idempotent)."""
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._monitor_loop, name="proc-supervisor", daemon=True
        )
        self._thread.start()

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.config.monitor_interval):
            try:
                self.monitor()
            except Exception:
                # The supervisor must never take the fabric down with it.
                _log.exception("proc supervisor monitor sweep failed")

    def stop(self) -> None:
        """Stop the monitor thread; the fabric and children keep running."""
        self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=5.0)
        self._thread = None

    # -------------------------------------------------------- introspection

    def stranded_leases(self, now: "float | None" = None):
        """Backend lease records whose owner let the TTL lapse (at-risk)."""
        if now is None:
            now = float(self.clock())
        return self.backend.expired_leases(now)

    def verify_consistency(self) -> None:
        """Cross-check the backend's lease ledger against the fabric.

        Forces a replication + heartbeat on every live child first (their
        ledger sync is heartbeat-paced), then requires the same bidirectional
        ledger↔fabric agreement as the in-process supervisor. Requires a
        healthy fabric (no shard down).
        """
        down = self.fabric.down_shards
        if down:
            raise ValidationError(
                f"cannot verify ledger with dead shard(s) {sorted(down)}"
            )
        if not self._coordinated:
            raise ValidationError(
                "ledger verification needs a coordinated fabric "
                "(construct it with coord_url)"
            )
        self.fabric.sync_workers()
        ledger = self.backend.leases()
        by_worker = {p.worker_id: p.shard_id for p in self.workers}
        for rid, record in ledger.items():
            shard_id = by_worker.get(record.owner)
            if shard_id is None:
                raise ValidationError(
                    f"ledger lease {rid} owned by unknown worker "
                    f"{record.owner!r}"
                )
            if self.fabric.owner_of(rid) != shard_id:
                raise ValidationError(
                    f"ledger lease {rid} owned by {record.owner!r} but the "
                    f"fabric places it on shard {self.fabric.owner_of(rid)}"
                )
        for proxy in self.workers:
            held = set(
                self.fabric.fetch_worker_state(proxy.shard_id).leases
            )
            for rid in held:
                record = ledger.get(rid)
                if record is None or record.owner != proxy.worker_id:
                    raise ValidationError(
                        f"fabric lease {rid} on shard {proxy.shard_id} is "
                        "missing from (or mis-owned in) the backend ledger"
                    )

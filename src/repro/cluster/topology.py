"""Hierarchical datacenter topology: clouds → racks → nodes.

Section II of the paper defines node-to-node distance by position in this
hierarchy: 0 on the same node, ``d1`` within a rack, ``d2`` across racks,
``d3`` across clouds. :class:`Topology` is the immutable structural model the
distance matrix (:mod:`repro.cluster.distance`) is derived from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.node import PhysicalNode
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class Rack:
    """A rack: a set of node ids sharing a top-of-rack switch."""

    rack_id: int
    cloud_id: int
    node_ids: tuple[int, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if not self.node_ids:
            raise ValidationError(f"rack {self.rack_id} must contain at least one node")
        if not self.name:
            object.__setattr__(self, "name", f"R{self.rack_id}")

    def __len__(self) -> int:
        return len(self.node_ids)


@dataclass(frozen=True)
class Cloud:
    """A cloud (data center / LAN): a set of rack ids."""

    cloud_id: int
    rack_ids: tuple[int, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if not self.rack_ids:
            raise ValidationError(f"cloud {self.cloud_id} must contain at least one rack")
        if not self.name:
            object.__setattr__(self, "name", f"DC{self.cloud_id}")


class Topology:
    """Immutable cloud → rack → node hierarchy.

    Construct via :meth:`build` (regular shapes) or by passing explicit
    :class:`PhysicalNode` objects. The node list order defines global node
    indices used by every matrix in the package.
    """

    def __init__(self, nodes: "list[PhysicalNode] | tuple[PhysicalNode, ...]") -> None:
        nodes = tuple(nodes)
        if not nodes:
            raise ValidationError("Topology requires at least one node")
        for i, node in enumerate(nodes):
            if node.node_id != i:
                raise ValidationError(
                    f"node at position {i} has node_id {node.node_id}; "
                    "node_ids must equal list positions"
                )
        m = len(nodes[0].capacity)
        for node in nodes:
            if len(node.capacity) != m:
                raise ValidationError(
                    "all nodes must have capacity vectors of equal length"
                )
        self._nodes = nodes
        self._rack_of = np.array([n.rack_id for n in nodes], dtype=np.int64)
        self._cloud_of = np.array([n.cloud_id for n in nodes], dtype=np.int64)

        racks: dict[int, list[int]] = {}
        rack_cloud: dict[int, int] = {}
        for node in nodes:
            racks.setdefault(node.rack_id, []).append(node.node_id)
            prev = rack_cloud.setdefault(node.rack_id, node.cloud_id)
            if prev != node.cloud_id:
                raise ValidationError(
                    f"rack {node.rack_id} spans clouds {prev} and {node.cloud_id}"
                )
        self._racks = tuple(
            Rack(rack_id=r, cloud_id=rack_cloud[r], node_ids=tuple(ids))
            for r, ids in sorted(racks.items())
        )
        clouds: dict[int, list[int]] = {}
        for rack in self._racks:
            clouds.setdefault(rack.cloud_id, []).append(rack.rack_id)
        self._clouds = tuple(
            Cloud(cloud_id=c, rack_ids=tuple(rids)) for c, rids in sorted(clouds.items())
        )

    # ------------------------------------------------------------------ build

    @classmethod
    def build(
        cls,
        racks_per_cloud: "int | list[int]",
        nodes_per_rack: int,
        capacity: "np.ndarray | list[int]",
        *,
        clouds: int = 1,
    ) -> "Topology":
        """Build a regular topology with uniform per-node *capacity*.

        Parameters
        ----------
        racks_per_cloud:
            Racks in each cloud (an int, or one int per cloud).
        nodes_per_rack:
            Nodes in every rack.
        capacity:
            Per-type capacity row shared by all nodes.
        clouds:
            Number of clouds (default 1 — the paper's simulations use one).
        """
        if clouds < 1:
            raise ValidationError("clouds must be >= 1")
        if nodes_per_rack < 1:
            raise ValidationError("nodes_per_rack must be >= 1")
        if isinstance(racks_per_cloud, int):
            per_cloud = [racks_per_cloud] * clouds
        else:
            per_cloud = list(racks_per_cloud)
            if len(per_cloud) != clouds:
                raise ValidationError(
                    f"racks_per_cloud has {len(per_cloud)} entries for {clouds} clouds"
                )
        cap = np.asarray(capacity, dtype=np.int64)
        nodes: list[PhysicalNode] = []
        rack_id = 0
        node_id = 0
        for cloud_id, nracks in enumerate(per_cloud):
            if nracks < 1:
                raise ValidationError("each cloud must contain at least one rack")
            for _ in range(nracks):
                for _ in range(nodes_per_rack):
                    nodes.append(
                        PhysicalNode(
                            node_id=node_id,
                            rack_id=rack_id,
                            cloud_id=cloud_id,
                            capacity=cap.copy(),
                        )
                    )
                    node_id += 1
                rack_id += 1
        return cls(nodes)

    # ------------------------------------------------------------- accessors

    @property
    def nodes(self) -> tuple[PhysicalNode, ...]:
        return self._nodes

    @property
    def racks(self) -> tuple[Rack, ...]:
        return self._racks

    @property
    def clouds(self) -> tuple[Cloud, ...]:
        return self._clouds

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_racks(self) -> int:
        return len(self._racks)

    @property
    def num_clouds(self) -> int:
        return len(self._clouds)

    @property
    def num_types(self) -> int:
        """Length of per-node capacity vectors (``m`` in the paper)."""
        return len(self._nodes[0].capacity)

    @property
    def rack_ids(self) -> np.ndarray:
        """Vector mapping node id → rack id (read-only view)."""
        v = self._rack_of.view()
        v.flags.writeable = False
        return v

    @property
    def cloud_ids(self) -> np.ndarray:
        """Vector mapping node id → cloud id (read-only view)."""
        v = self._cloud_of.view()
        v.flags.writeable = False
        return v

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self):
        return iter(self._nodes)

    def __getitem__(self, node_id: int) -> PhysicalNode:
        return self._nodes[node_id]

    def __repr__(self) -> str:
        return (
            f"Topology(clouds={self.num_clouds}, racks={self.num_racks}, "
            f"nodes={self.num_nodes})"
        )

    # ------------------------------------------------------------- relations

    def rack_of(self, node_id: int) -> int:
        """Rack id containing *node_id*."""
        return int(self._rack_of[node_id])

    def cloud_of(self, node_id: int) -> int:
        """Cloud id containing *node_id*."""
        return int(self._cloud_of[node_id])

    def same_rack(self, a: int, b: int) -> bool:
        """True if nodes *a* and *b* share a rack."""
        return bool(self._rack_of[a] == self._rack_of[b])

    def same_cloud(self, a: int, b: int) -> bool:
        """True if nodes *a* and *b* share a cloud."""
        return bool(self._cloud_of[a] == self._cloud_of[b])

    def rack_members(self, rack_id: int) -> tuple[int, ...]:
        """Node ids in rack *rack_id*."""
        return self._racks[rack_id].node_ids

    def peers_in_rack(self, node_id: int) -> tuple[int, ...]:
        """Other node ids sharing *node_id*'s rack."""
        return tuple(
            i for i in self.rack_members(self.rack_of(node_id)) if i != node_id
        )

    def capacity_matrix(self) -> np.ndarray:
        """The full ``M`` matrix (n × m), one capacity row per node."""
        return np.stack([n.capacity for n in self._nodes]).astype(np.int64)

    def to_networkx(self):
        """Export the hierarchy as a ``networkx`` tree graph.

        Node names: ``"cloud:{c}"``, ``"rack:{r}"``, ``"node:{i}"``; edges
        carry no weights (distances come from the distance model). Useful for
        visualization and for cross-checking the distance matrix against
        shortest-path hop counts.
        """
        import networkx as nx

        g = nx.Graph()
        root = "core"
        g.add_node(root, kind="core")
        for cloud in self._clouds:
            cname = f"cloud:{cloud.cloud_id}"
            g.add_node(cname, kind="cloud")
            g.add_edge(root, cname)
            for rid in cloud.rack_ids:
                rname = f"rack:{rid}"
                g.add_node(rname, kind="rack")
                g.add_edge(cname, rname)
                for nid in self._racks[rid].node_ids:
                    nname = f"node:{nid}"
                    g.add_node(nname, kind="node")
                    g.add_edge(rname, nname)
        return g

"""Tests for the exhaustive enumerator."""

import numpy as np
import pytest

from repro.core.placement.bruteforce import (
    BruteForcePlacement,
    enumerate_allocations,
    solve_sd_bruteforce,
)
from repro.util.errors import InfeasibleRequestError, ValidationError

from tests.conftest import make_pool


class TestEnumerate:
    def test_counts_single_type(self):
        # 2 VMs over caps [1, 1, 1]: C(3,2) = 3 allocations.
        remaining = np.array([[1], [1], [1]])
        allocs = list(enumerate_allocations(np.array([2]), remaining))
        assert len(allocs) == 3

    def test_counts_with_slack(self):
        # 1 VM over caps [2, 2]: 2 ways.
        remaining = np.array([[2], [2]])
        assert len(list(enumerate_allocations(np.array([1]), remaining))) == 2

    def test_cartesian_product_across_types(self):
        # Type 0: 1 VM, 2 ways; type 1: 1 VM, 2 ways -> 4 allocations.
        remaining = np.array([[1, 1], [1, 1]])
        allocs = list(enumerate_allocations(np.array([1, 1]), remaining))
        assert len(allocs) == 4

    def test_every_allocation_feasible_and_exact(self):
        remaining = np.array([[2, 1], [1, 1], [1, 0]])
        demand = np.array([2, 1])
        for alloc in enumerate_allocations(demand, remaining):
            assert np.all(alloc <= remaining)
            assert np.array_equal(alloc.sum(axis=0), demand)

    def test_allocations_unique(self):
        remaining = np.array([[2, 1], [2, 1]])
        allocs = [tuple(a.flatten()) for a in enumerate_allocations(np.array([2, 1]), remaining)]
        assert len(allocs) == len(set(allocs))

    def test_limit_guard(self):
        remaining = np.full((8, 2), 3, dtype=np.int64)
        with pytest.raises(ValidationError):
            list(enumerate_allocations(np.array([8, 8]), remaining, limit=10))

    def test_zero_demand_type_allowed(self):
        remaining = np.array([[1, 1], [1, 1]])
        allocs = list(enumerate_allocations(np.array([1, 0]), remaining))
        assert len(allocs) == 2
        for a in allocs:
            assert a[:, 1].sum() == 0


class TestSolveBruteforce:
    def test_single_node_zero(self):
        pool = make_pool(2, 2, capacity=(2, 2, 1))
        assert solve_sd_bruteforce([1, 1, 1], pool).distance == 0.0

    def test_infeasible_raises(self):
        pool = make_pool(1, 1, capacity=(1, 1, 1))
        with pytest.raises(InfeasibleRequestError):
            solve_sd_bruteforce([2, 0, 0], pool)

    def test_wait_returns_none(self):
        pool = make_pool(1, 1, capacity=(1, 0, 0))
        pool.allocate(np.array([[1, 0, 0]]))
        assert solve_sd_bruteforce([1, 0, 0], pool) is None

    def test_adapter(self):
        pool = make_pool(2, 2)
        alloc = BruteForcePlacement(limit=100_000).place([2, 1, 0], pool)
        assert alloc is not None
        assert alloc.demand.tolist() == [2, 1, 0]

"""The paper's experiment configuration constants (Section V).

Simulation setup (V.A): a cloud of 3 racks × 10 nodes, identical intra-rack
distances and identical inter-rack distances, randomly distributed instances
per node, and twenty randomly generated requests.

Experimental setup (V.B): distance between VMs on the same node is 0, nodes
in the same rack 1, nodes in different racks 2; the WordCount job runs 32 map
tasks and 1 reduce task on virtual clusters of equal capability but different
topologies.
"""

from __future__ import annotations

from repro.cluster.distance import DistanceModel
from repro.cluster.generators import PoolSpec, RequestSpec
from repro.cluster.vmtypes import VMTypeCatalog

#: Simulation cloud shape (Section V.A). Per-node capacities of 0–2
#: instances per type keep requests multi-node, as in the paper's figures
#: (whose heuristic distances are consistently nonzero).
SIM_POOL = PoolSpec(racks=3, nodes_per_rack=10, clouds=1, capacity_low=0, capacity_high=2)

#: Number of simulated requests (Section V.A: "Twenty requests are simulated").
NUM_REQUESTS = 20

#: Distance weights (Section V.B): same rack = 1, different racks = 2.
DISTANCES = DistanceModel(intra_rack=1.0, inter_rack=2.0, inter_cloud=4.0)

#: Fig. 5 scenario: "the same request configurations as the previous
#: simulations" — clusters of roughly 8–16 VMs, creating real contention
#: against the ~60-VM pool.
FIG5_REQUESTS = RequestSpec(low=0, high=6, min_total=8)

#: Fig. 6 scenario: "a request sequence with a relatively small number of
#: VMs" — clusters of 2–6 VMs.
FIG6_REQUESTS = RequestSpec(low=0, high=2, min_total=2)

#: Default VM catalog: the paper's Table I.
CATALOG = VMTypeCatalog.ec2_default()

#: Paper-reported improvements of Algorithm 2 over Algorithm 1 (Section V.A):
#: "it makes the sum of distances decrease by 2%" (Fig. 5 scenario) and
#: "by 12%" (Fig. 6 scenario). Used in EXPERIMENTS.md comparisons.
PAPER_FIG5_IMPROVEMENT_PCT = 2.0
PAPER_FIG6_IMPROVEMENT_PCT = 12.0

#: The WordCount experiment's task counts (Section V.B: "There are 32 map
#: tasks and 1 reduce task in this experiment").
WORDCOUNT_MAPS = 32
WORDCOUNT_REDUCES = 1

#: Cluster-affinity values of the four virtual-cluster topologies in
#: Figs. 7–8. The paper reports distances including 14 and 16 (the inversion
#: pair); full series reconstructed as evenly spread affinities reachable
#: with a 16-VM cluster under d1=1, d2=2.
FIG7_DISTANCES = (8, 14, 16, 22)

#: Master seed for all paper experiments; per-figure seeds derive from it.
MASTER_SEED = 20120924  # CLUSTER 2012 conference date

"""Nestable phase timers for hot-path instrumentation.

The placement hot path (admission → center sweep → fill → transfer) needs
to answer "where does the time actually go?" without paying for the answer
when nobody is asking. :class:`PhaseTimer` provides that:

* **Nestable** — phases opened inside other phases attribute their duration
  to themselves; the parent's *self* time excludes child time, so the
  self-time breakdown over all phases always sums to the total wall time
  spent inside root phases (no double counting).
* **Zero overhead when disabled** — ``timer.phase(name)`` returns a shared
  no-op context manager when the timer is disabled: one attribute check and
  no allocation, cheap enough to leave in per-request code permanently.

A timer is owned by one thread at a time (the placement scheduler); the
accounting stack is not synchronized. Re-entering the *same* phase name
recursively double-counts its inclusive time (self time stays correct);
the hot path never recurses a phase, so this is documented rather than
defended against.

Usage::

    timer = PhaseTimer(enabled=True)
    with timer.phase("step"):
        with timer.phase("admission"):
            ...
        with timer.phase("center_sweep"):
            with timer.phase("fill"):
                ...
    timer.breakdown()   # {"step": s0, "admission": s1, "center_sweep": s2, "fill": s3}
    timer.total()       # s0 + s1 + s2 + s3 == wall time inside "step"
"""

from __future__ import annotations

import time


class _NullPhase:
    """Shared no-op context manager returned by disabled timers."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_PHASE = _NullPhase()


class _Phase:
    """One live phase measurement (context manager)."""

    __slots__ = ("_timer", "_name", "_start", "_child")

    def __init__(self, timer: "PhaseTimer", name: str) -> None:
        self._timer = timer
        self._name = name
        self._start = 0.0
        self._child = 0.0

    def __enter__(self) -> "_Phase":
        self._timer._stack.append(self)
        self._child = 0.0
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        duration = time.perf_counter() - self._start
        timer = self._timer
        timer._stack.pop()
        timer._self[self._name] = (
            timer._self.get(self._name, 0.0) + duration - self._child
        )
        timer._incl[self._name] = timer._incl.get(self._name, 0.0) + duration
        timer._count[self._name] = timer._count.get(self._name, 0) + 1
        parent = None
        if timer._stack:
            timer._stack[-1]._child += duration
            parent = timer._stack[-1]._name
        else:
            timer._root_total += duration
        if timer.observer is not None:
            timer.observer(self._name, self._start, duration, parent)
        return False


class PhaseTimer:
    """Accumulating phase timer; see the module docstring for semantics."""

    __slots__ = (
        "enabled",
        "observer",
        "_stack",
        "_self",
        "_incl",
        "_count",
        "_root_total",
    )

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        #: Optional callback ``(name, start, duration, parent)`` fired on
        #: every phase exit while the timer is enabled. Trace-span recording
        #: (``repro.obs.spans``) layers on this hook; it must not raise.
        self.observer = None
        self._stack: list[_Phase] = []
        self._self: dict[str, float] = {}
        self._incl: dict[str, float] = {}
        self._count: dict[str, int] = {}
        self._root_total = 0.0

    def phase(self, name: str):
        """Context manager timing one phase (no-op while disabled)."""
        if not self.enabled:
            return _NULL_PHASE
        return _Phase(self, name)

    def reset(self) -> None:
        """Drop all accumulated measurements (the enabled flag is kept)."""
        self._stack.clear()
        self._self.clear()
        self._incl.clear()
        self._count.clear()
        self._root_total = 0.0

    # ------------------------------------------------------------- reporting

    def breakdown(self) -> dict[str, float]:
        """Per-phase *self* seconds (child phases excluded); sums to
        :meth:`total` by construction."""
        return dict(self._self)

    def inclusive(self) -> dict[str, float]:
        """Per-phase inclusive seconds (children included)."""
        return dict(self._incl)

    def counts(self) -> dict[str, int]:
        """How many times each phase was entered."""
        return dict(self._count)

    def total(self) -> float:
        """Wall seconds spent inside root (outermost) phases."""
        return self._root_total

    def report(self) -> dict:
        """JSON-ready summary: total plus per-phase self/inclusive/count."""
        return {
            "total_s": self._root_total,
            "phases": {
                name: {
                    "self_s": self._self[name],
                    "inclusive_s": self._incl[name],
                    "count": self._count[name],
                }
                for name in self._self
            },
        }

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"PhaseTimer({state}, phases={len(self._self)}, total={self._root_total:.6f}s)"

"""Tests for the hierarchical distance model and matrix construction."""

import numpy as np
import pytest

from repro.cluster.distance import (
    DistanceModel,
    PAPER_EXPERIMENT_DISTANCES,
    build_distance_matrix,
    hop_distance_matrix,
    satisfies_triangle_inequality,
    validate_distance_matrix,
)
from repro.cluster.topology import Topology
from repro.util.errors import ValidationError


class TestDistanceModel:
    def test_paper_weights(self):
        assert PAPER_EXPERIMENT_DISTANCES.intra_rack == 1.0
        assert PAPER_EXPERIMENT_DISTANCES.inter_rack == 2.0

    def test_ordering_enforced(self):
        with pytest.raises(ValidationError):
            DistanceModel(intra_rack=2.0, inter_rack=1.0)

    def test_zero_intra_rack_rejected(self):
        # Paper requires 0 < d1.
        with pytest.raises(ValidationError):
            DistanceModel(intra_rack=0.0, inter_rack=1.0, inter_cloud=2.0)

    def test_point_distances(self):
        topo = Topology.build(2, 2, capacity=[1], clouds=2)
        m = DistanceModel(intra_rack=1, inter_rack=2, inter_cloud=5)
        assert m.distance(topo, 0, 0) == 0.0
        assert m.distance(topo, 0, 1) == 1.0
        assert m.distance(topo, 0, 2) == 2.0
        assert m.distance(topo, 0, 4) == 5.0


class TestBuildDistanceMatrix:
    @pytest.fixture
    def topo(self):
        return Topology.build(2, 2, capacity=[1], clouds=2)  # 8 nodes

    def test_diagonal_zero(self, topo):
        d = build_distance_matrix(topo)
        assert np.all(np.diag(d) == 0)

    def test_symmetric(self, topo):
        d = build_distance_matrix(topo)
        assert np.array_equal(d, d.T)

    def test_tier_values(self, topo):
        d = build_distance_matrix(topo, DistanceModel(1, 2, 4))
        assert d[0, 1] == 1  # same rack
        assert d[0, 2] == 2  # same cloud, other rack
        assert d[0, 4] == 4  # other cloud

    def test_matches_pointwise_model(self, topo):
        model = DistanceModel(1, 3, 9)
        d = build_distance_matrix(topo, model)
        for a in range(topo.num_nodes):
            for b in range(topo.num_nodes):
                assert d[a, b] == model.distance(topo, a, b)

    def test_triangle_inequality(self, topo):
        d = build_distance_matrix(topo, DistanceModel(1, 2, 4))
        assert satisfies_triangle_inequality(d)

    def test_triangle_violation_detected(self):
        d = np.array(
            [
                [0.0, 1.0, 5.0],
                [1.0, 0.0, 1.0],
                [5.0, 1.0, 0.0],
            ]
        )
        assert not satisfies_triangle_inequality(d)


class TestValidateDistanceMatrix:
    def test_valid_passes_and_copies(self):
        src = np.array([[0.0, 1.0], [1.0, 0.0]])
        out = validate_distance_matrix(src)
        out[0, 1] = 9
        assert src[0, 1] == 1.0

    def test_asymmetric_rejected(self):
        with pytest.raises(ValidationError):
            validate_distance_matrix([[0, 1], [2, 0]])

    def test_nonzero_diagonal_rejected(self):
        with pytest.raises(ValidationError):
            validate_distance_matrix([[1, 1], [1, 0]])

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            validate_distance_matrix([[0, -1], [-1, 0]])


class TestHopDistance:
    def test_values(self):
        topo = Topology.build(2, 2, capacity=[1], clouds=2)
        d = hop_distance_matrix(topo)
        assert d[0, 0] == 0
        assert d[0, 1] == 2
        assert d[0, 2] == 4
        assert d[0, 4] == 6

    def test_same_ordering_as_model(self):
        """Hop distances must rank node pairs identically to DistanceModel."""
        topo = Topology.build(2, 3, capacity=[1], clouds=2)
        hier = build_distance_matrix(topo, DistanceModel(1, 2, 4))
        hops = hop_distance_matrix(topo)
        # Monotone relation: sorting pairs by either metric gives same order.
        assert np.array_equal(np.sign(hier[0] - hier[1]), np.sign(hops[0] - hops[1]))

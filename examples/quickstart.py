#!/usr/bin/env python
"""Quickstart: provision an affinity-optimized virtual cluster.

Builds a small cloud (3 racks x 10 nodes, EC2-like instance types), places a
virtual-cluster request with the paper's online heuristic (Algorithm 1), and
compares it against the exact shortest-distance optimum and two
affinity-blind baselines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    OnlineHeuristic,
    PoolSpec,
    RandomPlacement,
    StripedPlacement,
    VMTypeCatalog,
    random_pool,
    solve_sd_exact,
)
from repro.analysis import format_table


def main() -> None:
    catalog = VMTypeCatalog.ec2_default()
    pool = random_pool(
        PoolSpec(racks=3, nodes_per_rack=10, capacity_high=2), catalog, seed=7
    )
    print(f"Cloud: {pool.topology}")
    print(f"Available VMs per type {catalog.names}: {pool.available.tolist()}")

    # Request 4 small, 6 medium, 2 large instances.
    request = np.array([4, 6, 2])
    print(f"\nRequest: {dict(zip(catalog.names, request.tolist()))}")

    rows = []
    for name, algo in [
        ("online heuristic (Algorithm 1)", OnlineHeuristic()),
        ("random placement", RandomPlacement(seed=1)),
        ("striped across racks", StripedPlacement()),
    ]:
        alloc = algo.place(pool, request).allocation
        rows.append([name, alloc.distance, alloc.center, alloc.num_nodes_used])

    exact = solve_sd_exact(request, pool)
    rows.append(["exact SD optimum", exact.distance, exact.center, exact.num_nodes_used])

    print()
    print(
        format_table(
            ["strategy", "cluster distance", "central node", "nodes used"],
            rows,
            title="Affinity of the provisioned virtual cluster (lower = better):",
        )
    )

    best = OnlineHeuristic().place(pool, request).allocation
    print("\nCommitting the heuristic's allocation to the pool...")
    pool.allocate(best.matrix)
    print(f"Pool utilization is now {pool.utilization:.1%}")
    from repro.cluster import render_allocation

    print("\nWhere the VMs landed (*) marks the central node:")
    print(render_allocation(pool.topology, best.matrix, center=best.center))


if __name__ == "__main__":
    main()

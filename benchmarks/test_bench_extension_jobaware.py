"""Extension bench: job-aware provisioning vs. always-compact.

The paper's future-work integration of provisioning with MapReduce
characteristics: for shuffle-heavy jobs the compact (shortest-distance)
cluster wins; for scan-heavy jobs a spread cluster wins despite worse
affinity. Validated against the discrete-event engine."""

import functools

import numpy as np

from repro.analysis import format_table
from repro.cluster import PoolSpec, VMTypeCatalog, random_pool
from repro.core.placement.exact import solve_sd_exact
from repro.core.placement.jobaware import JobAwarePlacement, spread_fill
from repro.mapreduce import MapReduceEngine, VirtualCluster, grep, sort, wordcount

from benchmarks.conftest import emit

DEMAND = np.array([4, 6, 2])


def build():
    catalog = VMTypeCatalog.ec2_default()
    pool = random_pool(
        PoolSpec(racks=3, nodes_per_rack=10, capacity_high=3), catalog, seed=9
    )
    return catalog, pool


def engine_runtime(job, alloc, pool, catalog):
    cluster = VirtualCluster.from_allocation(alloc, pool.distance_matrix, catalog)
    return MapReduceEngine(cluster, disk_contention=1.0, seed=3).run(
        job, hdfs_seed=3
    ).runtime


def test_jobaware_provisioning(benchmark):
    catalog, pool = build()
    ja = JobAwarePlacement(sort())
    benchmark(functools.partial(ja.place, DEMAND, pool))

    rows = []
    compact = solve_sd_exact(DEMAND, pool)
    spread = spread_fill(DEMAND, pool)
    for job in (sort(), wordcount(combiner=False), grep()):
        chosen = JobAwarePlacement(job).place(pool, DEMAND).allocation
        rt_compact = engine_runtime(job, compact, pool, catalog)
        rt_spread = engine_runtime(job, spread, pool, catalog)
        rt_chosen = engine_runtime(job, chosen, pool, catalog)
        rows.append(
            [
                job.name,
                job.map_selectivity,
                rt_compact,
                rt_spread,
                rt_chosen,
                "compact" if chosen.distance == compact.distance else "spread",
            ]
        )
    emit(
        "Extension — job-aware provisioning (engine-measured runtimes, s)",
        format_table(
            ["job", "selectivity", "compact", "spread", "chosen", "choice"],
            rows,
        ),
    )
    for row in rows:
        # The chosen allocation is never worse than either fixed strategy.
        assert row[4] <= min(row[2], row[3]) + 1e-9

"""The Section III.A worked example (Fig. 1).

A request for two V1, four V2, and one V3 against a two-rack cloud; the
paper computes the distances of four hand-picked allocations:

* ``DC1 = 2·d1 + d2`` (central node N1),
* ``DC2 = 2·d1 + d2`` (central node N2),
* ``DC3 = 2·d2``,
* ``DC4 = d1 + 2·d2``.

This module reconstructs a two-rack pool on which such allocations exist and
evaluates the four choices plus the exact optimum, demonstrating the ``DC``
machinery end to end. It doubles as executable documentation: the unit tests
assert the symbolic forms above.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.distance import DistanceModel
from repro.cluster.resources import ResourcePool
from repro.cluster.vmtypes import VMTypeCatalog
from repro.core.placement.exact import solve_sd_exact
from repro.core.problem import Allocation

#: The example request: two V1, four V2, one V3.
REQUEST = np.array([2, 4, 1])


def build_example_pool(
    *, d1: float = 1.0, d2: float = 2.0
) -> ResourcePool:
    """A two-rack cloud able to host all four example allocations.

    Rack 1 holds nodes N0–N2, rack 2 holds N3–N5; per-node capacities
    (2 small, 2 medium, 1 large) are tight enough that no single node hosts
    the whole request, so the SD optimum is non-trivial.
    """
    catalog = VMTypeCatalog.ec2_default()
    rows = []
    for node, rack in [(0, 0), (1, 0), (2, 0), (3, 1), (4, 1), (5, 1)]:
        for tname, count in (("small", 2), ("medium", 2), ("large", 1)):
            rows.append((rack, node, tname, count))
    return ResourcePool.from_table(
        rows,
        catalog,
        distance_model=DistanceModel(intra_rack=d1, inter_rack=d2, inter_cloud=d2 * 2),
    )


@dataclass(frozen=True, slots=True)
class ExampleAllocation:
    """One of the paper's four allocation choices."""

    label: str
    matrix: np.ndarray
    expected_d1_coeff: int
    expected_d2_coeff: int


def example_allocations() -> list[ExampleAllocation]:
    """The four allocations of Section III.A, as matrices on the example pool.

    The paper's matrices are typeset ambiguously, so we reconstruct layouts
    whose distances reduce to the published symbolic forms (rows = N0…N5,
    columns = V1, V2, V3):

    * ``C1`` = 2·d1 + d2: four VMs on the central node N0, two on same-rack
      N1 (2·d1), one on cross-rack N3 (d2).
    * ``C2`` = 2·d1 + d2: the mirror layout centered on N1.
    * ``C3`` = 2·d2: five VMs on N0, two on cross-rack N3.
    * ``C4`` = d1 + 2·d2: four VMs on N0, one on N1, two on N3.
    """
    c1 = np.zeros((6, 3), dtype=np.int64)
    c1[0] = [2, 1, 1]  # four VMs on the center N0
    c1[1] = [0, 2, 0]  # two same-rack VMs
    c1[3] = [0, 1, 0]  # one cross-rack VM
    c2 = np.zeros((6, 3), dtype=np.int64)
    c2[1] = [2, 1, 1]  # mirror: center N1
    c2[0] = [0, 2, 0]
    c2[3] = [0, 1, 0]
    c3 = np.zeros((6, 3), dtype=np.int64)
    c3[0] = [2, 2, 1]  # five VMs on N0
    c3[3] = [0, 2, 0]  # two cross-rack VMs
    c4 = np.zeros((6, 3), dtype=np.int64)
    c4[0] = [2, 1, 1]
    c4[1] = [0, 1, 0]
    c4[3] = [0, 2, 0]
    return [
        ExampleAllocation("DC1", c1, expected_d1_coeff=2, expected_d2_coeff=1),
        ExampleAllocation("DC2", c2, expected_d1_coeff=2, expected_d2_coeff=1),
        ExampleAllocation("DC3", c3, expected_d1_coeff=0, expected_d2_coeff=2),
        ExampleAllocation("DC4", c4, expected_d1_coeff=1, expected_d2_coeff=2),
    ]


@dataclass(frozen=True)
class Fig1Result:
    """Distances of the four example allocations plus the true optimum."""

    labels: tuple[str, ...]
    distances: tuple[float, ...]
    centers: tuple[int, ...]
    optimal_distance: float


def run(*, d1: float = 1.0, d2: float = 2.0) -> Fig1Result:
    """Evaluate the four example allocations and the exact SD optimum."""
    pool = build_example_pool(d1=d1, d2=d2)
    dist = pool.distance_matrix
    labels, distances, centers = [], [], []
    for ex in example_allocations():
        alloc = Allocation.from_matrix(ex.matrix, dist)
        labels.append(ex.label)
        distances.append(alloc.distance)
        centers.append(alloc.center)
    best = solve_sd_exact(REQUEST, pool)
    return Fig1Result(
        labels=tuple(labels),
        distances=tuple(distances),
        centers=tuple(centers),
        optimal_distance=best.distance,
    )

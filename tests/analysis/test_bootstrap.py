"""Tests for bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.analysis.bootstrap import (
    ConfidenceInterval,
    bootstrap_improvement_pct,
    bootstrap_mean,
)
from repro.util.errors import ValidationError


class TestBootstrapMean:
    def test_estimate_is_sample_mean(self):
        ci = bootstrap_mean([1.0, 2.0, 3.0], seed=1)
        assert ci.estimate == pytest.approx(2.0)

    def test_interval_brackets_estimate(self):
        ci = bootstrap_mean(np.random.default_rng(2).normal(10, 2, 50), seed=2)
        assert ci.low <= ci.estimate <= ci.high

    def test_interval_contains_true_mean_usually(self):
        rng = np.random.default_rng(3)
        hits = 0
        for trial in range(20):
            sample = rng.normal(5.0, 1.0, 40)
            ci = bootstrap_mean(sample, seed=trial)
            if 5.0 in ci:
                hits += 1
        assert hits >= 16  # ~95% nominal; allow slack

    def test_tighter_with_more_data(self):
        rng = np.random.default_rng(4)
        small = bootstrap_mean(rng.normal(0, 1, 10), seed=4)
        large = bootstrap_mean(rng.normal(0, 1, 1000), seed=4)
        assert (large.high - large.low) < (small.high - small.low)

    def test_deterministic(self):
        data = [1.0, 5.0, 3.0, 2.0]
        assert bootstrap_mean(data, seed=7) == bootstrap_mean(data, seed=7)

    def test_single_value_degenerate(self):
        ci = bootstrap_mean([4.0], seed=1)
        assert ci.low == ci.high == ci.estimate == 4.0

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            bootstrap_mean([])

    def test_invalid_confidence_rejected(self):
        with pytest.raises(ValidationError):
            bootstrap_mean([1.0], confidence=1.0)

    def test_str_rendering(self):
        s = str(bootstrap_mean([1.0, 2.0], seed=1))
        assert "95% CI" in s


class TestBootstrapImprovement:
    def test_point_estimate(self):
        base = [10.0, 10.0]
        imp = [9.0, 9.0]
        ci = bootstrap_improvement_pct(base, imp, seed=1)
        assert ci.estimate == pytest.approx(10.0)
        assert 10.0 in ci

    def test_no_improvement_centered_at_zero(self):
        base = [5.0, 7.0, 3.0]
        ci = bootstrap_improvement_pct(base, base, seed=2)
        assert ci.estimate == 0.0
        assert 0.0 in ci

    def test_paired_resampling_detects_consistent_gain(self):
        """A small but perfectly consistent gain excludes zero."""
        rng = np.random.default_rng(5)
        base = rng.uniform(8, 12, 40)
        imp = base * 0.97  # consistent 3% win
        ci = bootstrap_improvement_pct(base, imp, seed=5)
        assert ci.low > 0.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValidationError):
            bootstrap_improvement_pct([1.0], [1.0, 2.0])

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValidationError):
            bootstrap_improvement_pct([0.0], [0.0])

    def test_fig5_style_series_has_positive_improvement(self):
        """End-to-end: the Fig. 5 comparison's gain is bootstrap-solid."""
        from repro.experiments.global_experiments import run_fig5

        result = run_fig5(trials=5)
        ci = bootstrap_improvement_pct(
            result.online_distances, result.global_distances, seed=9
        )
        assert ci.estimate > 0.0
        assert ci.high > ci.low

"""Ablation studies for the design choices DESIGN.md calls out.

Beyond the paper's own figures, these experiments quantify:

* **Heuristic optimality** — Algorithm 1 (best-center mode) vs. the exact
  transportation solver and the MILP, plus the cost of the literal
  ``stop="first"`` mode.
* **Transfer generality** — Algorithm 2 with the literal Theorem-2 exchange
  vs. the generalized swap search.
* **Placement policies end-to-end** — mean cluster distance and MapReduce
  runtime across the heuristic and the affinity-blind baselines.
* **Scheduler locality** — MapReduce runtime under locality-aware, FIFO,
  random, and delay scheduling on a fixed cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.generators import feasible_random_requests, random_pool
from repro.core.placement.baselines import (
    BestFitPlacement,
    FirstFitPlacement,
    RandomPlacement,
    StripedPlacement,
)
from repro.core.placement.exact import solve_sd_exact
from repro.core.placement.global_opt import GlobalSubOptimizer, total_distance
from repro.core.placement.greedy import OnlineHeuristic
from repro.experiments import paperconfig as cfg
from repro.experiments.mapreduce_experiments import (
    experiment_job,
    experiment_network,
)
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.scheduler import (
    DelayScheduler,
    FifoScheduler,
    LocalityAwareScheduler,
    RandomScheduler,
)
from repro.mapreduce.vmcluster import VirtualCluster
from repro.util.rng import ensure_rng


@dataclass(frozen=True)
class HeuristicGapResult:
    """Algorithm 1 vs. the exact optimum over a request series."""

    exact_total: float
    best_mode_total: float
    first_mode_total: float

    @property
    def best_mode_gap_pct(self) -> float:
        if self.exact_total == 0:
            return 0.0
        return 100.0 * (self.best_mode_total - self.exact_total) / self.exact_total

    @property
    def first_mode_gap_pct(self) -> float:
        if self.exact_total == 0:
            return 0.0
        return 100.0 * (self.first_mode_total - self.exact_total) / self.exact_total


def run_heuristic_gap(
    *, seed: int = cfg.MASTER_SEED, num_requests: int = cfg.NUM_REQUESTS
) -> HeuristicGapResult:
    """Measure Algorithm 1's gap to the exact SD optimum, per mode.

    Each request is placed against the same fresh pool state by all three
    solvers (no commits), isolating per-request quality from sequence
    effects.
    """
    rng = ensure_rng(seed)
    pool = random_pool(cfg.SIM_POOL, cfg.CATALOG, rng, distance_model=cfg.DISTANCES)
    requests = feasible_random_requests(pool, cfg.FIG5_REQUESTS, num_requests, rng)
    best_mode = OnlineHeuristic(stop="best")
    first_mode = OnlineHeuristic(stop="first", center_order="random", seed=rng)
    exact_total = best_total = first_total = 0.0
    for demand in requests:
        exact = solve_sd_exact(demand, pool)
        if exact is None:
            continue
        exact_total += exact.distance
        best_total += best_mode.place(pool, demand).distance
        first_total += first_mode.place(pool, demand).distance
    return HeuristicGapResult(
        exact_total=exact_total,
        best_mode_total=best_total,
        first_mode_total=first_total,
    )


@dataclass(frozen=True)
class TransferAblationResult:
    """Generalized vs. literal Theorem-2 transfer in Algorithm 2."""

    online_total: float
    paper_transfer_total: float
    general_transfer_total: float

    @property
    def paper_improvement_pct(self) -> float:
        if self.online_total == 0:
            return 0.0
        return 100.0 * (self.online_total - self.paper_transfer_total) / self.online_total

    @property
    def general_improvement_pct(self) -> float:
        if self.online_total == 0:
            return 0.0
        return (
            100.0
            * (self.online_total - self.general_transfer_total)
            / self.online_total
        )


def run_transfer_ablation(
    *,
    seed: int = cfg.MASTER_SEED,
    num_requests: int = cfg.NUM_REQUESTS,
    trials: int = 5,
) -> TransferAblationResult:
    """Compare Algorithm 2's transfer variants over identical batches."""
    rng = ensure_rng(seed)
    online_total = paper_total = general_total = 0.0
    for _ in range(trials):
        pool = random_pool(cfg.SIM_POOL, cfg.CATALOG, rng, distance_model=cfg.DISTANCES)
        requests = feasible_random_requests(pool, cfg.FIG5_REQUESTS, num_requests, rng)
        admissible = []
        budget = pool.available.copy()
        for r in requests:
            if np.all(r <= budget):
                admissible.append(r)
                budget -= r
        paper_opt = GlobalSubOptimizer(OnlineHeuristic(), use_paper_transfer=True)
        general_opt = GlobalSubOptimizer(OnlineHeuristic(), use_paper_transfer=False)
        online = paper_opt.place_online(admissible, pool)
        online_total += total_distance(online)
        paper_total += total_distance(
            paper_opt.optimize_transfers(online, pool.distance_matrix)
        )
        general_total += total_distance(
            general_opt.optimize_transfers(online, pool.distance_matrix)
        )
    return TransferAblationResult(
        online_total=online_total,
        paper_transfer_total=paper_total,
        general_transfer_total=general_total,
    )


@dataclass(frozen=True)
class PolicyRow:
    """One placement policy's affinity and end-to-end job runtime."""

    policy: str
    mean_distance: float
    runtime: float


def run_policy_comparison(
    *, seed: int = cfg.MASTER_SEED, demand=(4, 8, 2)
) -> list[PolicyRow]:
    """Affinity and WordCount runtime per placement policy on one request.

    The end-to-end story of the paper: affinity-aware placement produces a
    shorter-distance cluster, which runs the same MapReduce job faster than
    clusters produced by affinity-blind policies.
    """
    rng = ensure_rng(seed)
    demand = np.asarray(demand, dtype=np.int64)
    policies = [
        ("online-heuristic", OnlineHeuristic()),
        ("first-fit", FirstFitPlacement()),
        ("best-fit", BestFitPlacement()),
        ("random", RandomPlacement(seed=rng)),
        ("striped", StripedPlacement()),
    ]
    rows: list[PolicyRow] = []
    job = experiment_job()
    network = experiment_network()
    for name, policy in policies:
        pool = random_pool(
            cfg.SIM_POOL, cfg.CATALOG, seed, distance_model=cfg.DISTANCES
        )
        alloc = policy.place(pool, demand).allocation
        cluster = VirtualCluster.from_allocation(
            alloc, pool.distance_matrix, cfg.CATALOG
        )
        engine = MapReduceEngine(cluster, network=network, seed=seed)
        result = engine.run(job, hdfs_seed=seed)
        rows.append(
            PolicyRow(policy=name, mean_distance=alloc.distance, runtime=result.runtime)
        )
    return rows


@dataclass(frozen=True)
class SchedulerRow:
    """One map scheduler's locality and runtime on a fixed cluster."""

    scheduler: str
    runtime: float
    non_data_local_maps: int


def run_scheduler_ablation(
    *, seed: int = cfg.MASTER_SEED, distance: int = 14
) -> list[SchedulerRow]:
    """MapReduce runtime under different map schedulers, fixed topology."""
    from repro.experiments.mapreduce_experiments import build_cluster

    cluster = build_cluster(distance)
    job = experiment_job()
    network = experiment_network()
    schedulers = [
        ("locality", LocalityAwareScheduler()),
        ("fifo", FifoScheduler()),
        ("random", RandomScheduler(seed=seed)),
        ("delay", DelayScheduler(max_skips=3)),
    ]
    rows: list[SchedulerRow] = []
    for name, sched in schedulers:
        engine = MapReduceEngine(
            cluster, network=network, scheduler=sched, seed=seed
        )
        result = engine.run(job, hdfs_seed=seed)
        rows.append(
            SchedulerRow(
                scheduler=name,
                runtime=result.runtime,
                non_data_local_maps=result.locality().non_data_local_maps,
            )
        )
    return rows

"""Task records: map tasks, reduce tasks, and their locality classification.

The paper's Fig. 8 counts "non data-local map tasks" and "non local shuffle
processes" — these records carry exactly that classification, per task and
per shuffle flow.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.mapreduce.network import DistanceBand
from repro.util.errors import ValidationError


class TaskState(enum.Enum):
    """Lifecycle of a simulated task."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"


@dataclass
class MapTaskRecord:
    """One map task's execution record."""

    task_id: int
    block_id: int
    vm_id: int = -1
    source_vm: int = -1
    locality: "DistanceBand | None" = None
    start_time: float = -1.0
    finish_time: float = -1.0
    input_bytes: int = 0
    output_bytes: float = 0.0
    state: TaskState = TaskState.PENDING
    attempts: int = 1

    @property
    def duration(self) -> float:
        if self.state is not TaskState.DONE:
            raise ValidationError(f"map task {self.task_id} not finished")
        return self.finish_time - self.start_time

    @property
    def data_local(self) -> bool:
        """True when the task read its split from its own VM/node."""
        return self.locality == DistanceBand.SAME_NODE

    @property
    def rack_local(self) -> bool:
        return self.locality == DistanceBand.SAME_RACK


@dataclass
class ShuffleFlow:
    """One map→reduce partition transfer."""

    map_task: int
    reduce_task: int
    src_vm: int
    dst_vm: int
    size_bytes: float
    band: DistanceBand
    start_time: float = -1.0
    finish_time: float = -1.0
    attempts: int = 0
    cancelled: bool = False

    @property
    def local(self) -> bool:
        """True when the flow never crossed a rack boundary (the paper's
        "local shuffle": same node or same rack)."""
        return self.band <= DistanceBand.SAME_RACK

    @property
    def node_local(self) -> bool:
        return self.band == DistanceBand.SAME_NODE


@dataclass
class ReduceTaskRecord:
    """One reduce task's execution record."""

    task_id: int
    vm_id: int = -1
    start_time: float = -1.0
    shuffle_finish_time: float = -1.0
    finish_time: float = -1.0
    input_bytes: float = 0.0
    output_bytes: float = 0.0
    state: TaskState = TaskState.PENDING
    attempts: int = 1
    flows: list[ShuffleFlow] = field(default_factory=list)

    @property
    def shuffle_time(self) -> float:
        if self.shuffle_finish_time < 0:
            raise ValidationError(f"reduce task {self.task_id} shuffle not finished")
        return self.shuffle_finish_time - self.start_time

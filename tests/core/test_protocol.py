"""Shared compliance tests for the one-call placement protocol.

Every single-request algorithm must honor
``place(pool, request, *, rng=None, obs=None) -> PlacementResult`` with the
paper's admission semantics, accept the deprecated ``place(request, pool)``
order with a once-per-class warning, and produce bit-identical allocations
whether instrumented or not. Batch algorithms must honor the analogous
``place_batch(pool, requests, *, rng=None, obs=None)``.
"""

import warnings

import numpy as np
import pytest

from repro.cluster.vmtypes import VMTypeCatalog
from repro.cluster import PoolSpec, random_pool
from repro.core.placement import base as base_mod
from repro.core.placement.annealing import AnnealingConfig, AnnealingGsdSolver
from repro.core.placement.baselines import (
    BestFitPlacement,
    FirstFitPlacement,
    RandomPlacement,
    StripedPlacement,
)
from repro.core.placement.base import PlacementAlgorithm, PlacementResult
from repro.core.placement.bruteforce import BruteForcePlacement
from repro.core.placement.exact import ExactPlacement
from repro.core.placement.global_opt import GlobalSubOptimizer
from repro.core.placement.greedy import OnlineHeuristic
from repro.core.placement.ilp import MilpPlacement
from repro.core.placement.jobaware import JobAwarePlacement
from repro.mapreduce.job import MB, MapReduceJob
from repro.obs.registry import MetricsRegistry
from repro.util.errors import InfeasibleRequestError, ValidationError

SINGLE_ALGORITHMS = [
    pytest.param(lambda: OnlineHeuristic(), id="online-heuristic"),
    pytest.param(lambda: OnlineHeuristic(stop="first"), id="online-first"),
    pytest.param(lambda: FirstFitPlacement(), id="first-fit"),
    pytest.param(lambda: BestFitPlacement(), id="best-fit"),
    pytest.param(lambda: RandomPlacement(seed=0), id="random"),
    pytest.param(lambda: StripedPlacement(), id="striped"),
    pytest.param(lambda: ExactPlacement(), id="exact"),
    pytest.param(lambda: BruteForcePlacement(), id="bruteforce"),
    pytest.param(lambda: MilpPlacement(), id="milp"),
    pytest.param(
        lambda: JobAwarePlacement(
            MapReduceJob(name="wc", input_bytes=64 * MB, block_size=16 * MB)
        ),
        id="jobaware",
    ),
]

BATCH_ALGORITHMS = [
    pytest.param(lambda: GlobalSubOptimizer(), id="global-subopt"),
    pytest.param(
        lambda: AnnealingGsdSolver(AnnealingConfig(iterations=50, seed=0)),
        id="annealing",
    ),
]


@pytest.fixture
def pool():
    return random_pool(
        PoolSpec(racks=2, nodes_per_rack=4, capacity_high=3),
        VMTypeCatalog.ec2_default(),
        seed=11,
    )


DEMAND = [2, 3, 1]


@pytest.fixture(autouse=True)
def _fresh_warning_state():
    saved = set(base_mod._legacy_warned)
    base_mod._legacy_warned.clear()
    yield
    base_mod._legacy_warned.clear()
    base_mod._legacy_warned.update(saved)


@pytest.mark.parametrize("factory", SINGLE_ALGORITHMS)
class TestSingleProtocol:
    def test_new_order_returns_placement_result(self, factory, pool):
        result = factory().place(pool, DEMAND)
        assert isinstance(result, PlacementResult)
        assert result.placed and bool(result)
        assert np.array_equal(
            result.allocation.matrix.sum(axis=0), np.asarray(DEMAND)
        )
        assert result.algorithm == factory().name
        assert result.elapsed >= 0.0
        assert result.metrics["placed"] == 1
        assert result.distance == result.allocation.distance
        assert result.center == result.allocation.center

    def test_wait_outcome(self, factory, pool):
        # More than current availability but under max capacity: must wait.
        pool = pool.copy()
        matrix = pool.remaining.copy()
        matrix[0] = 0
        pool.allocate(matrix)
        demand = np.asarray(pool.remaining.sum(axis=0)) + 1
        if pool.exceeds_max_capacity(demand):
            pytest.skip("pool too tight to express a wait for this layout")
        result = factory().place(pool, demand)
        assert isinstance(result, PlacementResult)
        assert not result.placed and not bool(result)
        assert result.center is None
        assert np.isnan(result.distance)

    def test_refuse_raises(self, factory, pool):
        demand = pool.max_capacity.sum(axis=0) + 1
        with pytest.raises(InfeasibleRequestError):
            factory().place(pool, demand)

    def test_legacy_order_warns_once_and_matches(self, factory, pool):
        algo = factory()
        new = algo.place(pool, DEMAND)
        with pytest.warns(DeprecationWarning, match="argument order"):
            legacy = factory().place(DEMAND, pool)
        assert not isinstance(legacy, PlacementResult)
        assert np.array_equal(legacy.matrix, new.allocation.matrix)
        # Second legacy call from the same class stays silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            factory().place(DEMAND, pool)

    def test_obs_is_bit_identical(self, factory, pool):
        bare = factory().place(pool, DEMAND, obs=None)
        registry = MetricsRegistry()
        observed = factory().place(pool, DEMAND, obs=registry)
        assert np.array_equal(bare.allocation.matrix, observed.allocation.matrix)
        assert bare.distance == observed.distance
        assert bare.center == observed.center
        flat = registry.flatten()
        key = (
            "repro_placement_requests_total",
            (("algorithm", factory().name), ("outcome", "placed")),
        )
        assert flat[key] == 1.0

    def test_non_pool_arguments_rejected(self, factory, pool):
        with pytest.raises(ValidationError):
            factory().place(DEMAND, DEMAND)
        with pytest.raises(ValidationError):
            factory().place(pool)


@pytest.mark.parametrize("factory", BATCH_ALGORITHMS)
class TestBatchProtocol:
    def test_new_order(self, factory, pool):
        batch = [[1, 1, 0], [0, 2, 1]]
        allocs = factory().place_batch(pool, batch)
        assert len(allocs) == 2
        assert all(a is not None for a in allocs)

    def test_legacy_order_warns_once_and_matches(self, factory, pool):
        batch = [[1, 1, 0], [0, 2, 1]]
        new = factory().place_batch(pool, batch)
        with pytest.warns(DeprecationWarning, match="argument order"):
            legacy = factory().place_batch(batch, pool)
        for a, b in zip(new, legacy):
            assert np.array_equal(a.matrix, b.matrix)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            factory().place_batch(batch, pool)

    def test_obs_is_bit_identical(self, factory, pool):
        batch = [[1, 1, 0], [0, 2, 1], [2, 0, 0]]
        bare = factory().place_batch(pool, batch, obs=None)
        observed = factory().place_batch(pool, batch, obs=MetricsRegistry())
        for a, b in zip(bare, observed):
            assert np.array_equal(a.matrix, b.matrix)

    def test_non_pool_arguments_rejected(self, factory, pool):
        with pytest.raises(ValidationError):
            factory().place_batch([[1, 0, 0]], [[1, 0, 0]])


class TestPlacementResult:
    def test_repr_mentions_state(self, pool):
        placed = OnlineHeuristic().place(pool, DEMAND)
        assert "online-heuristic" in repr(placed)
        waiting = PlacementResult(allocation=None, algorithm="x")
        assert "waiting" in repr(waiting)

    def test_place_and_commit_updates_pool(self, pool):
        pool = pool.copy()
        before = pool.remaining.sum()
        result = OnlineHeuristic().place_and_commit(pool, DEMAND)
        assert isinstance(result, PlacementResult)
        assert pool.remaining.sum() == before - sum(DEMAND)

    def test_subclass_must_implement_hook(self):
        with pytest.raises(TypeError):

            class Incomplete(PlacementAlgorithm):
                pass

            Incomplete()

"""Process-wide observability: metrics registry, trace spans, exposition.

The package has three small modules:

* :mod:`repro.obs.registry` — counters/gauges/histograms with fixed
  exponential buckets, label families, and a zero-overhead null registry;
* :mod:`repro.obs.spans` — trace spans layered on the phase timer's
  observer hook;
* :mod:`repro.obs.export` — deterministic Prometheus-text and line-JSON
  exposition plus parsers for both.

Instrumented components take ``obs: MetricsRegistry | None = None``;
``None`` means the shared :data:`NULL_REGISTRY` (record nothing, change
nothing — placement outputs are bit-identical either way).
"""

from repro.obs.export import (
    flatten_sorted,
    parse_json_lines,
    parse_prometheus,
    render,
    to_json_lines,
    to_prometheus,
)
from repro.obs.registry import (
    BYTES_BUCKETS,
    COUNT_BUCKETS,
    DISTANCE_BUCKETS,
    LATENCY_BUCKETS,
    MetricsRegistry,
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    NullRegistry,
    ensure_registry,
    exponential_buckets,
)
from repro.obs.spans import Span, SpanRecorder

__all__ = [
    "BYTES_BUCKETS",
    "COUNT_BUCKETS",
    "DISTANCE_BUCKETS",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "NULL_REGISTRY",
    "NullRegistry",
    "Span",
    "SpanRecorder",
    "ensure_registry",
    "exponential_buckets",
    "flatten_sorted",
    "parse_json_lines",
    "parse_prometheus",
    "render",
    "to_json_lines",
    "to_prometheus",
]

"""Tests for the pairwise Theorem-2 transfer machinery."""

import numpy as np
import pytest

from repro.core.problem import Allocation
from repro.core.placement.transfer import (
    best_exchange,
    transfer_pair,
    transfer_pair_paper,
)


def two_rack_dist(per_rack=3, d1=1.0, d2=2.0):
    n = 2 * per_rack
    rack = np.repeat([0, 1], per_rack)
    d = np.where(rack[:, None] == rack[None, :], d1, d2)
    np.fill_diagonal(d, 0.0)
    return d


@pytest.fixture
def dist():
    return two_rack_dist()


def crossed_pair(dist):
    """Two clusters each holding one VM in the *other* cluster's rack —
    the canonical improvable configuration."""
    m1 = np.zeros((6, 1), dtype=np.int64)
    m1[0, 0] = 2  # center rack A
    m1[3, 0] = 1  # stray in rack B
    m2 = np.zeros((6, 1), dtype=np.int64)
    m2[4, 0] = 2  # center rack B
    m2[1, 0] = 1  # stray in rack A
    return Allocation.from_matrix(m1, dist), Allocation.from_matrix(m2, dist)


class TestBestExchange:
    def test_finds_crossed_swap(self, dist):
        a1, a2 = crossed_pair(dist)
        step = best_exchange(a1.matrix, a2.matrix, dist, a1.center, a2.center)
        assert step is not None
        u, v, j, gain = step
        assert j == 0
        assert gain > 0
        # Cluster 1 vacates its rack-B stray; cluster 2 vacates its rack-A stray.
        assert u == 3 and v == 1

    def test_no_gain_returns_none(self, dist):
        m1 = np.zeros((6, 1), dtype=np.int64)
        m1[0, 0] = 2
        m2 = np.zeros((6, 1), dtype=np.int64)
        m2[4, 0] = 2
        a1 = Allocation.from_matrix(m1, dist)
        a2 = Allocation.from_matrix(m2, dist)
        assert best_exchange(m1, m2, dist, a1.center, a2.center) is None

    def test_type_mismatch_blocks_swap(self, dist):
        """Only same-type VMs may be exchanged."""
        m1 = np.zeros((6, 2), dtype=np.int64)
        m1[0, 0] = 2
        m1[3, 0] = 1  # type 0 stray
        m2 = np.zeros((6, 2), dtype=np.int64)
        m2[4, 1] = 2
        m2[1, 1] = 1  # type 1 stray
        # Crossed strays exist but types differ; still, a same-type pair may
        # exist between stray and home VMs. Verify any returned swap is
        # within a single type and has positive gain.
        step = best_exchange(m1, m2, dist, 0, 4)
        if step is not None:
            u, v, j, gain = step
            assert m1[u, j] > 0 and m2[v, j] > 0
            assert gain > 0


class TestTransferPair:
    def test_improves_crossed_pair(self, dist):
        a1, a2 = crossed_pair(dist)
        before = a1.distance + a2.distance
        result = transfer_pair(a1, a2, dist)
        after = result.first.distance + result.second.distance
        assert result.improved
        assert after < before
        assert result.gain == pytest.approx(before - after)

    def test_crossed_pair_fully_consolidates(self, dist):
        a1, a2 = crossed_pair(dist)
        result = transfer_pair(a1, a2, dist)
        # Each cluster ends with all VMs in its own rack: distance d1 each.
        assert result.first.distance + result.second.distance == pytest.approx(2.0)

    def test_preserves_demands(self, dist):
        a1, a2 = crossed_pair(dist)
        result = transfer_pair(a1, a2, dist)
        assert np.array_equal(result.first.demand, a1.demand)
        assert np.array_equal(result.second.demand, a2.demand)

    def test_capacity_neutral(self, dist):
        a1, a2 = crossed_pair(dist)
        combined = a1.matrix + a2.matrix
        result = transfer_pair(a1, a2, dist)
        assert np.array_equal(result.first.matrix + result.second.matrix, combined)

    def test_no_improvement_when_already_optimal(self, dist):
        m1 = np.zeros((6, 1), dtype=np.int64)
        m1[0, 0] = 3
        m2 = np.zeros((6, 1), dtype=np.int64)
        m2[4, 0] = 3
        result = transfer_pair(
            Allocation.from_matrix(m1, dist), Allocation.from_matrix(m2, dist), dist
        )
        assert not result.improved
        assert result.gain == 0.0

    def test_never_increases_total(self, dist):
        rng = np.random.default_rng(5)
        for _ in range(30):
            m1 = np.zeros((6, 2), dtype=np.int64)
            m2 = np.zeros((6, 2), dtype=np.int64)
            for m in (m1, m2):
                for _ in range(4):
                    m[rng.integers(0, 6), rng.integers(0, 2)] += 1
            a1 = Allocation.from_matrix(m1, dist)
            a2 = Allocation.from_matrix(m2, dist)
            result = transfer_pair(a1, a2, dist)
            assert (
                result.first.distance + result.second.distance
                <= a1.distance + a2.distance + 1e-9
            )

    def test_without_recenter_keeps_centers(self, dist):
        a1, a2 = crossed_pair(dist)
        result = transfer_pair(a1, a2, dist, recenter=False)
        assert result.first.center == a1.center
        assert result.second.center == a2.center


class TestTransferPairPaper:
    def test_fires_on_literal_precondition(self, dist):
        """Cluster 1 holds a VM on cluster 2's center node."""
        m1 = np.zeros((6, 1), dtype=np.int64)
        m1[0, 0] = 2
        m1[4, 0] = 1  # sits exactly on cluster 2's center
        m2 = np.zeros((6, 1), dtype=np.int64)
        m2[4, 0] = 1
        m2[1, 0] = 1  # cluster 2's stray in rack A
        a1 = Allocation.with_center(m1, dist, 0)
        a2 = Allocation.with_center(m2, dist, 4)
        result = transfer_pair_paper(a1, a2, dist)
        assert result.improved
        assert result.gain > 0

    def test_general_at_least_as_good_as_paper(self, dist):
        rng = np.random.default_rng(7)
        for _ in range(20):
            m1 = np.zeros((6, 2), dtype=np.int64)
            m2 = np.zeros((6, 2), dtype=np.int64)
            for m in (m1, m2):
                for _ in range(5):
                    m[rng.integers(0, 6), rng.integers(0, 2)] += 1
            a1 = Allocation.from_matrix(m1, dist)
            a2 = Allocation.from_matrix(m2, dist)
            paper = transfer_pair_paper(a1, a2, dist)
            general = transfer_pair(a1, a2, dist)
            assert (
                general.first.distance + general.second.distance
                <= paper.first.distance + paper.second.distance + 1e-9
            )

"""Extension bench: incremental service state vs. per-request full rescan.

The point of :class:`~repro.service.state.ClusterState` is that a long-lived
allocator never rebuilds pool state: ``L``, ``A``, and the O(n²) distance
matrix stay warm across requests. The honest baseline is what a *stateless*
placement server has to do instead — reconstruct the :class:`ResourcePool`
(which rebuilds the distance matrix) and replay the active-lease ledger on
every request before it can place.

Both sides run the same Algorithm-1 policy over the same seeded request
stream at three pool sizes, releasing leases beyond a sliding window so
utilization stays bounded. Mean and p99 decision latency per size go into
``benchmarks/results/service_bench.json`` (rewritten on full runs; smoke
runs — ``SERVICE_BENCH_SMOKE=1`` — shrink the sizes and leave the committed
numbers alone).
"""

import functools
import json
import os
import time
from collections import deque
from pathlib import Path

import numpy as np

from repro.analysis import format_table
from repro.analysis.stats import percentiles
from repro.cluster import PoolSpec, ResourcePool, VMTypeCatalog, random_pool
from repro.core import OnlineHeuristic
from repro.service import (
    ClusterState,
    PlaceRequest,
    PlacementService,
    ReleaseRequest,
    ServiceConfig,
)

from benchmarks.conftest import emit

SMOKE = os.environ.get("SERVICE_BENCH_SMOKE") == "1"
#: (racks, nodes_per_rack) — 30/90/240 nodes on full runs.
SIZES = [(2, 4), (3, 6), (4, 8)] if SMOKE else [(3, 10), (6, 15), (12, 20)]
NUM_REQUESTS = 15 if SMOKE else 60
WINDOW = 12  # active leases kept; older ones are released
RESULTS_PATH = Path(__file__).parent / "results" / "service_bench.json"


def request_demands(num_types: int, count: int, seed: int):
    rng = np.random.default_rng(seed)
    demands = []
    for _ in range(count):
        while True:
            demand = rng.integers(0, 3, size=num_types)
            if demand.sum() > 0:
                break
        demands.append(tuple(int(d) for d in demand))
    return demands


def run_incremental(pool: ResourcePool, demands) -> list[float]:
    """Decision latencies through the service's warm ClusterState."""
    service = PlacementService(
        ClusterState.from_pool(pool),
        config=ServiceConfig(max_batch=1, enable_transfers=False),
    )
    latencies: list[float] = []
    active: deque[int] = deque()
    for i, demand in enumerate(demands):
        start = time.perf_counter()
        ticket = service.submit(PlaceRequest(demand=demand, request_id=i))
        service.step()
        latencies.append(time.perf_counter() - start)
        if ticket.done and ticket.decision.placed:
            active.append(i)
        elif not ticket.done:
            # Unsatisfiable right now — drop it from the queue so it does
            # not linger into later steps (the naive side drops it too).
            service.cancel(i)
        while len(active) > WINDOW:
            service.release(ReleaseRequest(request_id=active.popleft()))
    return latencies


def run_naive(pool: ResourcePool, demands) -> list[float]:
    """Decision latencies for a stateless per-request full-rescan server."""
    heuristic = OnlineHeuristic()
    ledger: dict[int, np.ndarray] = {}
    latencies: list[float] = []
    active: deque[int] = deque()
    for i, demand in enumerate(demands):
        start = time.perf_counter()
        fresh = ResourcePool(
            pool.topology, pool.catalog, distance_model=pool.distance_model
        )
        for matrix in ledger.values():
            fresh.allocate(matrix)
        allocation = (
            heuristic.place(fresh, list(demand))
            if fresh.can_satisfy(np.asarray(demand))
            else None
        )
        latencies.append(time.perf_counter() - start)
        if allocation is not None:
            ledger[i] = allocation.matrix
            active.append(i)
        while len(active) > WINDOW:
            del ledger[active.popleft()]
    return latencies


def run_comparison():
    catalog = VMTypeCatalog.ec2_default()
    records = []
    for racks, nodes_per_rack in SIZES:
        pool = random_pool(
            PoolSpec(racks=racks, nodes_per_rack=nodes_per_rack,
                     capacity_high=4),
            catalog,
            seed=29,
        )
        demands = request_demands(pool.num_types, NUM_REQUESTS, seed=31)
        naive = run_naive(pool, demands)
        incremental = run_incremental(pool, demands)
        naive_p = percentiles(naive, points=(50.0, 99.0))
        inc_p = percentiles(incremental, points=(50.0, 99.0))
        records.append(
            {
                "nodes": pool.num_nodes,
                "requests": NUM_REQUESTS,
                "naive_mean_ms": float(np.mean(naive)) * 1000,
                "naive_p50_ms": naive_p[50.0] * 1000,
                "naive_p99_ms": naive_p[99.0] * 1000,
                "incremental_mean_ms": float(np.mean(incremental)) * 1000,
                "incremental_p50_ms": inc_p[50.0] * 1000,
                "incremental_p99_ms": inc_p[99.0] * 1000,
                "speedup": float(np.mean(naive) / np.mean(incremental)),
            }
        )
    return records


def test_incremental_state_beats_full_rescan(benchmark):
    records = benchmark.pedantic(
        functools.partial(run_comparison), rounds=1, iterations=1
    )
    rows = [
        [
            rec["nodes"],
            f"{rec['naive_mean_ms']:.3f}",
            f"{rec['naive_p99_ms']:.3f}",
            f"{rec['incremental_mean_ms']:.3f}",
            f"{rec['incremental_p99_ms']:.3f}",
            f"{rec['speedup']:.1f}x",
        ]
        for rec in records
    ]
    emit(
        "Extension — placement service: incremental state vs. full rescan",
        format_table(
            [
                "nodes",
                "rescan mean (ms)",
                "rescan p99 (ms)",
                "service mean (ms)",
                "service p99 (ms)",
                "speedup",
            ],
            rows,
        ),
    )
    if not SMOKE:
        RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
        RESULTS_PATH.write_text(
            json.dumps({"window": WINDOW, "sizes": records}, indent=1)
        )
    # The incremental state must win where it matters: the largest pool,
    # where the naive side's O(n²) distance rebuild dominates.
    largest = records[-1]
    assert largest["incremental_mean_ms"] < largest["naive_mean_ms"]
    # And the advantage should grow with pool size, not shrink.
    assert records[-1]["speedup"] >= records[0]["speedup"] * 0.5

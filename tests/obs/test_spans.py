"""SpanRecorder over the PhaseTimer observer hook."""

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.spans import Span, SpanRecorder
from repro.util.errors import ValidationError
from repro.util.timing import PhaseTimer


class TestSpanRecorder:
    def test_attach_records_phase_exits(self):
        registry = MetricsRegistry()
        recorder = SpanRecorder(registry)
        timer = PhaseTimer()
        recorder.attach(timer)
        assert timer.enabled
        with timer.phase("outer"):
            with timer.phase("inner"):
                pass
        names = [s.name for s in recorder.spans()]
        assert names == ["inner", "outer"]  # exits fire inner-first
        inner = recorder.spans()[0]
        assert inner.parent == "outer"
        assert recorder.spans()[1].parent is None

    def test_histogram_receives_observations(self):
        registry = MetricsRegistry()
        recorder = SpanRecorder(registry)
        timer = recorder.attach(PhaseTimer())
        with timer.phase("fill"):
            pass
        fam = registry.get("repro_phase_seconds")
        assert fam.labels(phase="fill").count == 1

    def test_ring_is_bounded(self):
        recorder = SpanRecorder(MetricsRegistry(), max_spans=3)
        for i in range(10):
            recorder.record(f"p{i}", 0.0, 0.001, None)
        assert len(recorder) == 3
        assert [s.name for s in recorder.spans()] == ["p7", "p8", "p9"]

    def test_detach_stops_recording(self):
        recorder = SpanRecorder(MetricsRegistry())
        timer = recorder.attach(PhaseTimer())
        recorder.detach(timer)
        with timer.phase("quiet"):
            pass
        assert len(recorder) == 0

    def test_detach_leaves_foreign_observer(self):
        recorder = SpanRecorder(MetricsRegistry())
        timer = PhaseTimer()
        other = lambda *a: None  # noqa: E731
        timer.observer = other
        recorder.detach(timer)
        assert timer.observer is other

    def test_clear(self):
        recorder = SpanRecorder(MetricsRegistry())
        recorder.record("p", 0.0, 0.1, None)
        recorder.clear()
        assert recorder.spans() == []

    def test_invalid_max_spans(self):
        with pytest.raises(ValidationError):
            SpanRecorder(MetricsRegistry(), max_spans=0)

    def test_span_to_dict(self):
        span = Span("fill", 1.0, 0.25, "sweep")
        assert span.to_dict() == {
            "name": "fill",
            "start": 1.0,
            "duration": 0.25,
            "parent": "sweep",
        }

    def test_disabled_timer_emits_nothing(self):
        recorder = SpanRecorder(MetricsRegistry())
        timer = PhaseTimer()
        timer.observer = recorder.record  # attached but not enabled
        with timer.phase("skipped"):
            pass
        assert len(recorder) == 0

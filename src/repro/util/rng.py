"""Deterministic random-number handling.

Every stochastic component in this package takes a ``seed`` argument that may
be ``None`` (fresh entropy), an integer, or an existing
:class:`numpy.random.Generator`. :func:`ensure_rng` normalizes all three so
experiments can pin seeds end to end and regenerate identical figures.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def ensure_rng(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Parameters
    ----------
    seed:
        ``None`` (OS entropy), an ``int``, a ``numpy.random.SeedSequence``, or
        an existing ``Generator`` (returned unchanged so callers can thread a
        single stream through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed, n: int) -> list[np.random.Generator]:
    """Split *seed* into *n* independent generators.

    Used by batch experiments that run *n* trials in a loop but must keep the
    trials statistically independent and individually reproducible.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of rngs: {n}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's own stream.
        seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]

"""Reservation-based scheduling with conservative backfill.

Section III.C notes that service times are unknowable "except that users
adopt the reservation way and tell the cloud provider how long the
resources will be occupied". This module exploits exactly that knowledge:

* :class:`ResourceTimeline` — a step function of future per-type
  availability, built from the active leases' known end times;
* :class:`BackfillPlanner` — conservative backfill: queued requests are
  *reserved* at their earliest feasible start in queue order, so a large
  head-of-line request can never be starved by later arrivals (the
  fairness hole of the plain provider's greedy drain), while small later
  requests still start immediately whenever they fit around the
  reservations;
* :class:`ReservingCloudProvider` — a provider whose queue drain follows
  the plan, starting exactly the requests whose reserved time has come.

Availability only changes at lease departures, so re-planning at every
departure keeps the plan exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.provider import CloudProvider
from repro.cloud.request import TimedRequest
from repro.cluster.resources import ResourcePool
from repro.util.errors import ValidationError
from repro.util.validation import as_int_vector


class ResourceTimeline:
    """Step function ``t → available per-type capacity`` from *now* on.

    Breakpoints are stored sorted; the availability vector at a breakpoint
    applies until the next one, and the final segment extends to infinity.
    """

    def __init__(self, now: float, initial_available: np.ndarray) -> None:
        initial = as_int_vector(initial_available, name="initial availability")
        self._times: list[float] = [now]
        self._avail: list[np.ndarray] = [initial.copy()]

    @classmethod
    def from_provider_state(
        cls, pool: ResourcePool, active_leases, now: float
    ) -> "ResourceTimeline":
        """Build the timeline implied by active leases' end times."""
        timeline = cls(now, pool.available)
        for lease in active_leases:
            end = max(lease.end_time, now)
            timeline.add_release(end, lease.allocation.demand)
        return timeline

    # ------------------------------------------------------------- internals

    def _segment_index(self, t: float) -> int:
        """Index of the segment containing time *t*."""
        idx = 0
        for i, bp in enumerate(self._times):
            if bp <= t + 1e-12:
                idx = i
            else:
                break
        return idx

    def _ensure_breakpoint(self, t: float) -> int:
        """Insert a breakpoint at *t* (no-op if present); returns its index."""
        for i, bp in enumerate(self._times):
            if abs(bp - t) <= 1e-12:
                return i
            if bp > t:
                self._times.insert(i, t)
                self._avail.insert(i, self._avail[i - 1].copy())
                return i
        self._times.append(t)
        self._avail.append(self._avail[-1].copy())
        return len(self._times) - 1

    # -------------------------------------------------------------- queries

    @property
    def breakpoints(self) -> list[float]:
        return list(self._times)

    def available_at(self, t: float) -> np.ndarray:
        """Availability vector in effect at time *t*."""
        if t < self._times[0] - 1e-12:
            raise ValidationError(f"time {t} precedes the timeline start")
        return self._avail[self._segment_index(t)].copy()

    def fits(self, demand, start: float, duration: float) -> bool:
        """True when *demand* fits throughout ``[start, start + duration)``."""
        d = np.asarray(demand)
        end = start + duration
        # Walk every segment overlapping [start, end): from the one
        # containing start, while the segment begins before end.
        i = self._segment_index(start)
        while i < len(self._times) and self._times[i] < end - 1e-12:
            if np.any(d > self._avail[i]):
                return False
            i += 1
        return True

    def earliest_fit(self, demand, duration: float, *, after: "float | None" = None) -> float:
        """Earliest start ≥ *after* at which *demand* fits for *duration*.

        Candidates are the timeline's breakpoints (availability only changes
        there). Raises when the demand never fits (exceeds total capacity).
        """
        after = self._times[0] if after is None else max(after, self._times[0])
        candidates = [after] + [t for t in self._times if t > after]
        for t in candidates:
            if self.fits(demand, t, duration):
                return t
        raise ValidationError(
            f"demand {np.asarray(demand).tolist()} never fits the timeline"
        )

    # ------------------------------------------------------------- mutation

    def add_release(self, t: float, demand) -> None:
        """Capacity *demand* becomes available from time *t* on."""
        d = as_int_vector(demand, name="release demand")
        idx = self._ensure_breakpoint(t)
        for i in range(idx, len(self._avail)):
            self._avail[i] += d

    def reserve(self, demand, start: float, duration: float) -> None:
        """Consume *demand* over ``[start, start + duration)``."""
        d = as_int_vector(demand, name="reserved demand")
        if not self.fits(d, start, duration):
            raise ValidationError("reservation does not fit the timeline")
        end = start + duration
        i0 = self._ensure_breakpoint(start)
        i1 = self._ensure_breakpoint(end)
        for i in range(i0, i1):
            self._avail[i] -= d


@dataclass(frozen=True, slots=True)
class PlannedStart:
    """One queued request's reserved start time."""

    request: TimedRequest
    start: float

    @property
    def request_id(self) -> int:
        return self.request.request_id


class BackfillPlanner:
    """Conservative backfill: reserve every queued request in queue order."""

    def plan(
        self,
        queued: "list[TimedRequest]",
        timeline: ResourceTimeline,
        now: float,
    ) -> list[PlannedStart]:
        """Reserve each request at its earliest feasible start.

        Mutates *timeline* (callers build a fresh one per planning round).
        Queue order is reservation priority: later requests plan around
        earlier reservations, so they may start sooner than an earlier
        *blocked* request, but can never delay it.
        """
        plan: list[PlannedStart] = []
        for request in queued:
            start = timeline.earliest_fit(
                request.demand, request.duration, after=now
            )
            timeline.reserve(request.demand, start, request.duration)
            plan.append(PlannedStart(request=request, start=start))
        return plan


class ReservingCloudProvider(CloudProvider):
    """A provider whose queue drain follows the backfill plan.

    Unlike the base provider's greedy drain (which simply skips requests
    that do not fit *now* — aggressive backfilling that can starve large
    requests), this drain starts exactly the requests whose reserved start
    has arrived, guaranteeing each request a start no later than its
    FIFO reservation.
    """

    def __init__(self, pool: ResourcePool, policy, **kwargs) -> None:
        super().__init__(pool, policy, **kwargs)
        self.planner = BackfillPlanner()
        self.last_plan: list[PlannedStart] = []

    def submit(self, request: TimedRequest, now: float):
        """Arrivals may backfill immediately around existing reservations.

        The base provider strictly queues behind a non-empty queue; here a
        new request whose reservation lands at *now* (it fits around every
        earlier request's reservation) starts right away. Only the new
        request can newly become startable between departures — the rest of
        the queue was already planned at the last drain.
        """
        lease = super().submit(request, now)
        if lease is not None:
            return lease
        if not any(r.request_id == request.request_id for r in self.queue):
            return None  # refused or queue-rejected
        timeline = ResourceTimeline.from_provider_state(
            self.pool, self.active.values(), now
        )
        plan = self.planner.plan(list(self.queue), timeline, now)
        mine = next(
            p for p in plan if p.request_id == request.request_id
        )
        if mine.start > now + 1e-9:
            return None
        alloc = self.policy.place(self.pool, request.request).allocation
        if alloc is None:
            return None
        self.queue.remove_batch([request])
        return self._start_lease(request, alloc, now)

    def drain_queue(self, now: float):
        """Plan the whole queue, then start the requests whose time has come."""
        queued = list(self.queue)
        if not queued:
            self.last_plan = []
            return []
        timeline = ResourceTimeline.from_provider_state(
            self.pool, self.active.values(), now
        )
        self.last_plan = self.planner.plan(queued, timeline, now)
        started = []
        placed_requests = []
        for planned in self.last_plan:
            if planned.start > now + 1e-9:
                continue
            alloc = self.policy.place(self.pool, planned.request.request).allocation
            if alloc is None:
                continue  # plan said it fits; placement may still decline
            started.append(self._start_lease(planned.request, alloc, now))
            placed_requests.append(planned.request)
        self.queue.remove_batch(placed_requests)
        return started

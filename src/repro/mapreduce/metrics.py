"""Job results and locality metrics (the paper's Fig. 7/8 measurements)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mapreduce.network import DistanceBand
from repro.mapreduce.tasks import MapTaskRecord, ReduceTaskRecord, ShuffleFlow


@dataclass(frozen=True, slots=True)
class LocalityReport:
    """Counts behind Fig. 8: map data locality and shuffle locality."""

    total_maps: int
    data_local_maps: int
    rack_local_maps: int
    remote_maps: int
    total_flows: int
    node_local_flows: int
    rack_local_flows: int
    remote_flows: int

    @property
    def non_data_local_maps(self) -> int:
        """Fig. 8's first series: maps that read their split over the network."""
        return self.total_maps - self.data_local_maps

    @property
    def non_local_flows(self) -> int:
        """Fig. 8's second series: shuffle transfers leaving the map's node."""
        return self.total_flows - self.node_local_flows

    @property
    def data_local_fraction(self) -> float:
        return self.data_local_maps / self.total_maps if self.total_maps else 0.0

    @property
    def local_shuffle_fraction(self) -> float:
        return self.node_local_flows / self.total_flows if self.total_flows else 0.0


@dataclass
class RecoveryReport:
    """Fault-recovery accounting for one job run under injected faults.

    Attached to :class:`JobResult` when the engine ran with an enabled
    :class:`~repro.mapreduce.faults.TaskFaultModel`; ``None`` otherwise so
    failure-free results stay identical to the seed engine's.
    """

    map_failures: int = 0
    reduce_failures: int = 0
    fetch_failures: int = 0
    vm_deaths: int = 0
    #: Completed map outputs lost to a VM death (each forces a re-run).
    maps_invalidated: int = 0
    #: Reducers moved off a dead VM (each re-fetches its whole shuffle).
    reducers_relocated: int = 0
    #: Simulated seconds spent in attempts/fetches that did not complete.
    wasted_time: float = 0.0
    #: Histogram: number of execution attempts -> count of map tasks.
    map_attempts: dict[int, int] = field(default_factory=dict)
    #: Histogram: number of execution attempts -> count of reduce tasks.
    reduce_attempts: dict[int, int] = field(default_factory=dict)

    @property
    def total_task_failures(self) -> int:
        return self.map_failures + self.reduce_failures

    @property
    def total_faults(self) -> int:
        return (
            self.map_failures
            + self.reduce_failures
            + self.fetch_failures
            + self.vm_deaths
        )

    def to_metrics(self, registry) -> None:
        """Export every field through the unified ``repro_stats`` gauge
        (``source="mapreduce_recovery"``). The attempt histograms flatten to
        ``map_attempts_<n>`` / ``reduce_attempts_<n>`` fields; see
        docs/OBSERVABILITY.md for the full mapping.
        """
        gauge = registry.gauge(
            "repro_stats",
            "Unified stats-object export; one series per source and field.",
            labels=("source", "field"),
        )

        def put(name: str, value) -> None:
            gauge.labels(source="mapreduce_recovery", field=name).set(float(value))

        for name in (
            "map_failures",
            "reduce_failures",
            "fetch_failures",
            "vm_deaths",
            "maps_invalidated",
            "reducers_relocated",
            "wasted_time",
        ):
            put(name, getattr(self, name))
        put("total_task_failures", self.total_task_failures)
        put("total_faults", self.total_faults)
        for n, count in self.map_attempts.items():
            put(f"map_attempts_{n}", count)
        for n, count in self.reduce_attempts.items():
            put(f"reduce_attempts_{n}", count)


@dataclass
class JobResult:
    """Complete record of one simulated job execution."""

    job_name: str
    cluster_affinity: float
    runtime: float
    map_records: list[MapTaskRecord] = field(default_factory=list)
    reduce_records: list[ReduceTaskRecord] = field(default_factory=list)
    #: Present only for runs with fault injection enabled.
    recovery: "RecoveryReport | None" = None

    @property
    def flows(self) -> list[ShuffleFlow]:
        return [f for r in self.reduce_records for f in r.flows]

    @property
    def map_phase_finish(self) -> float:
        """Instant the last map task completed."""
        return max((m.finish_time for m in self.map_records), default=0.0)

    @property
    def shuffle_finish(self) -> float:
        """Instant the last shuffle fetch completed."""
        return max((r.shuffle_finish_time for r in self.reduce_records), default=0.0)

    @property
    def total_shuffle_bytes(self) -> float:
        return float(sum(f.size_bytes for f in self.flows))

    def slowdown_vs(self, baseline_runtime: float) -> float:
        """Failure-induced slowdown relative to a failure-free run
        (1.0 = no slowdown)."""
        if baseline_runtime <= 0:
            raise ValueError("baseline_runtime must be > 0")
        return self.runtime / baseline_runtime

    def bytes_by_band(self) -> dict[DistanceBand, float]:
        """Shuffle bytes moved per distance band (traffic breakdown)."""
        out = {band: 0.0 for band in DistanceBand}
        for f in self.flows:
            out[f.band] += f.size_bytes
        return out

    def locality(self) -> LocalityReport:
        """Summarize task and flow locality (Fig. 8 rows)."""
        maps = self.map_records
        flows = self.flows
        return LocalityReport(
            total_maps=len(maps),
            data_local_maps=sum(1 for m in maps if m.locality == DistanceBand.SAME_NODE),
            rack_local_maps=sum(1 for m in maps if m.locality == DistanceBand.SAME_RACK),
            remote_maps=sum(
                1 for m in maps if m.locality is not None and m.locality >= DistanceBand.CROSS_RACK
            ),
            total_flows=len(flows),
            node_local_flows=sum(1 for f in flows if f.band == DistanceBand.SAME_NODE),
            rack_local_flows=sum(1 for f in flows if f.band == DistanceBand.SAME_RACK),
            remote_flows=sum(1 for f in flows if f.band >= DistanceBand.CROSS_RACK),
        )

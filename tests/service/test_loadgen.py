"""Tests for the open- and closed-loop load generators."""

import pytest

from repro.cluster import PoolSpec, VMTypeCatalog, random_pool
from repro.service import (
    ClusterState,
    LoadGenConfig,
    PlacementService,
    ServiceConfig,
    run_loadgen,
)
from repro.service.loadgen import CLOSED_EVENTS, CLOSED_LOOP, MODES, OPEN_LOOP
from repro.util.errors import ValidationError


def make_service() -> PlacementService:
    catalog = VMTypeCatalog.ec2_default()
    pool = random_pool(
        PoolSpec(racks=3, nodes_per_rack=8, capacity_high=3), catalog, seed=11
    )
    return PlacementService(
        ClusterState.from_pool(pool),
        config=ServiceConfig(batch_window=0.001),
    )


@pytest.mark.parametrize("mode", list(MODES))
def test_loadgen_reaches_steady_state(mode):
    service = make_service()
    service.start()
    try:
        report = run_loadgen(
            service,
            LoadGenConfig(
                num_requests=40,
                mode=mode,
                rate=2000.0,
                concurrency=4,
                mean_hold=0.005,
                demand_high=2,
                seed=42,
            ),
        )
    finally:
        service.stop()
    assert report.mode == mode
    assert report.submitted == 40
    terminal = (
        report.placed
        + report.refused
        + report.rejected
        + report.timed_out
        + report.dropped
    )
    assert terminal == 40
    assert report.placed > 0
    assert 0.0 < report.acceptance_rate <= 1.0
    assert report.throughput > 0.0
    assert report.latency_p50 <= report.latency_p95 <= report.latency_p99
    assert report.mean_distance >= 0.0
    # The releaser returned every placed lease: pool back to empty.
    assert service.state.num_leases == 0
    service.state.verify_consistency()


def test_profile_breakdown_sums_to_total():
    catalog = VMTypeCatalog.ec2_default()
    # capacity_high=2 < demand_low=3 ⇒ no single node can host a request, so
    # every placement goes through the candidate-center sweep (and batches
    # through the transfer phase), exercising all profiled phases.
    pool = random_pool(
        PoolSpec(racks=3, nodes_per_rack=8, capacity_high=2), catalog, seed=11
    )
    service = PlacementService(
        ClusterState.from_pool(pool),
        config=ServiceConfig(batch_window=0.001),
    )
    service.start()
    try:
        report = run_loadgen(
            service,
            LoadGenConfig(
                num_requests=30,
                rate=2000.0,
                mean_hold=0.005,
                demand_low=3,
                demand_high=3,
                seed=3,
                profile=True,
            ),
        )
    finally:
        service.stop()
    profile = report.profile
    assert profile is not None
    assert profile["total_s"] > 0.0
    # Self times partition the wall time inside step(): no double counting,
    # nothing unattributed.
    assert sum(p["self_s"] for p in profile["phases"].values()) == pytest.approx(
        profile["total_s"], rel=1e-9
    )
    assert "step" in profile["phases"]
    assert "admission" in profile["phases"]
    assert "center_sweep" in profile["phases"]
    for doc in profile["phases"].values():
        assert doc["inclusive_s"] >= doc["self_s"] >= 0.0
    assert report.to_dict()["profile"] == profile


def test_profile_disabled_by_default():
    service = make_service()
    service.start()
    try:
        report = run_loadgen(
            service,
            LoadGenConfig(num_requests=5, rate=5000.0, mean_hold=0.001, seed=1),
        )
    finally:
        service.stop()
    assert report.profile is None
    assert not service.timer.enabled


def test_client_timeouts_counted_and_requests_withdrawn():
    # A service whose batch window never elapses decides nothing; the
    # generator's per-request deadline must fire, count the miss, and
    # cancel the orphaned submission instead of hanging on it.
    catalog = VMTypeCatalog.ec2_default()
    pool = random_pool(
        PoolSpec(racks=2, nodes_per_rack=4, capacity_high=3), catalog, seed=5
    )
    service = PlacementService(
        ClusterState.from_pool(pool),
        config=ServiceConfig(batch_window=60.0),
    )
    service.start()
    try:
        report = run_loadgen(
            service,
            LoadGenConfig(
                num_requests=4,
                rate=5000.0,
                mean_hold=0.001,
                decision_timeout=0.2,
                seed=9,
            ),
        )
    finally:
        service.stop()
    assert report.client_timeouts == 4
    assert report.placed == 0
    assert report.unavailable == 0
    assert service.queued == 0  # every timed-out request was withdrawn
    assert service.state.num_leases == 0


def test_closed_drivers_apply_the_identical_workload():
    """``closed`` and ``closed-events`` run the same seeded trace.

    The events driver exists so tail percentiles stop measuring harness
    GIL interference — it must not change *what* is offered: same demands,
    same request count, and (on a service that accepts everything) the
    same placements committed.
    """
    reports = {}
    for mode in (CLOSED_LOOP, CLOSED_EVENTS):
        service = make_service()
        service.start()
        try:
            reports[mode] = run_loadgen(
                service,
                LoadGenConfig(
                    num_requests=30,
                    mode=mode,
                    concurrency=4,
                    mean_hold=0.005,
                    demand_high=2,
                    seed=42,
                ),
            )
        finally:
            service.stop()
    threads, events = reports[CLOSED_LOOP], reports[CLOSED_EVENTS]
    assert events.submitted == threads.submitted == 30
    assert events.placed == threads.placed
    assert events.client_timeouts == threads.client_timeouts == 0


def test_closed_events_timeouts_counted_and_requests_withdrawn():
    # Mirror of the threaded-closed timeout test for the events driver: a
    # service that never decides must trip the driver's deadline, and every
    # outstanding submission must be withdrawn, not leaked.
    catalog = VMTypeCatalog.ec2_default()
    pool = random_pool(
        PoolSpec(racks=2, nodes_per_rack=4, capacity_high=3), catalog, seed=5
    )
    service = PlacementService(
        ClusterState.from_pool(pool),
        config=ServiceConfig(batch_window=60.0),
    )
    service.start()
    try:
        report = run_loadgen(
            service,
            LoadGenConfig(
                num_requests=4,
                mode=CLOSED_EVENTS,
                concurrency=8,
                mean_hold=0.001,
                decision_timeout=0.2,
                seed=9,
            ),
        )
    finally:
        service.stop()
    assert report.client_timeouts == 4
    assert report.placed == 0
    assert service.queued == 0  # every timed-out request was withdrawn
    assert service.state.num_leases == 0


def test_loadgen_requires_running_service():
    service = make_service()
    with pytest.raises(ValidationError):
        run_loadgen(service, LoadGenConfig(num_requests=1))


def test_report_to_dict_has_derived_fields():
    service = make_service()
    service.start()
    try:
        report = run_loadgen(
            service,
            LoadGenConfig(
                num_requests=5, rate=5000.0, mean_hold=0.001, seed=1
            ),
        )
    finally:
        service.stop()
    doc = report.to_dict()
    assert doc["acceptance_rate"] == report.acceptance_rate
    assert doc["throughput"] == report.throughput
    assert set(doc) >= {"submitted", "placed", "latency_p99", "mean_distance"}


def test_seeded_workloads_are_reproducible():
    from repro.service.loadgen import _random_demands
    from repro.util.rng import ensure_rng

    config = LoadGenConfig(num_requests=20, seed=7)
    a = _random_demands(config, 3, ensure_rng(7))
    b = _random_demands(config, 3, ensure_rng(7))
    assert a == b
    assert all(sum(d) > 0 for d in a)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"mode": "sawtooth"},
        {"num_requests": 0},
        {"rate": 0.0},
        {"mean_hold": 0.0},
        {"concurrency": 0},
        {"demand_low": 3, "demand_high": 2},
    ],
)
def test_invalid_config_rejected(kwargs):
    with pytest.raises(ValidationError):
        LoadGenConfig(**kwargs)

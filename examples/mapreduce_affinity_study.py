#!/usr/bin/env python
"""MapReduce affinity study: how cluster distance shapes job runtime.

Provisions virtual clusters of identical capability but different affinities
(the Fig. 7/8 topologies), then runs the workload library (WordCount, Sort,
Grep) on each and reports runtime plus data/shuffle locality — showing that
shuffle-heavy jobs are the ones that pay for poor affinity.

Run:  python examples/mapreduce_affinity_study.py
"""

from repro.analysis import format_table
from repro.experiments import build_cluster, experiment_network, paperconfig
from repro.mapreduce import MapReduceEngine, grep, sort, wordcount


def main() -> None:
    network = experiment_network()
    jobs = [
        wordcount(combiner=False),
        sort(num_reduces=4),
        grep(),
    ]
    for job in jobs:
        rows = []
        for distance in paperconfig.FIG7_DISTANCES:
            cluster = build_cluster(distance)
            engine = MapReduceEngine(cluster, network=network, seed=13)
            result = engine.run(job, hdfs_seed=13)
            loc = result.locality()
            rows.append(
                [
                    distance,
                    result.runtime,
                    f"{loc.data_local_fraction:.0%}",
                    f"{loc.local_shuffle_fraction:.0%}",
                    result.total_shuffle_bytes / (1024 * 1024),
                ]
            )
        print(
            format_table(
                [
                    "cluster distance",
                    "runtime (s)",
                    "data-local maps",
                    "local shuffle",
                    "shuffle (MiB)",
                ],
                rows,
                title=(
                    f"{job.name}: {job.num_maps} maps, {job.num_reduces} "
                    f"reduce(s), map selectivity {job.map_selectivity}"
                ),
            )
        )
        print()
    print(
        "Sort (selectivity 1.0) is hit hardest by distance; Grep (0.01)\n"
        "barely notices — affinity matters in proportion to shuffle volume."
    )


if __name__ == "__main__":
    main()

"""Failure injection and a self-healing cloud provider.

Combines the future-work machinery into the serving path: a
:class:`FailureInjector` schedules node failures and recoveries, and a
:class:`ResilientCloudProvider` reacts to them —

* on failure, every lease with VMs on the dead node is repaired in place
  via :func:`repro.core.migration.plan_repair` (surviving VMs stay, lost
  VMs are re-placed with minimum cluster distance); leases that cannot be
  repaired are terminated and their requests re-queued — up to a bounded
  ``max_resubmits`` retry budget per request, after which the request is
  rejected;
* on recovery, the node rejoins the pool and a queue drain runs.

The injector supports two regimes: the original *one-shot* schedule (each
node fails at most once per run) and a *renewal* MTBF/MTTR process
(``mtbf=...``) where nodes fail repeatedly with exponential up-times and
repair times. Either regime can add *rack-correlated bursts*
(``rack_burst_probability``): a failing node takes its whole rack down with
it, modeling top-of-rack switch and power-domain failures — the reliability
scenario that motivates the rack-spread placement constraint in
:class:`repro.core.placement.greedy.OnlineHeuristic`.

The event simulator (:class:`repro.cloud.simulator.CloudSimulator`) gains
two event kinds for this; :class:`FailureSimulator` wires everything up and
can forward node deaths into jobs running on affected leases via its
``on_lease_failure`` hook (see :mod:`repro.experiments.fault_recovery`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.util.events import EventQueue
from repro.cloud.lease import Lease
from repro.cloud.provider import CloudProvider
from repro.cloud.request import TimedRequest
from repro.cloud.simulator import ARRIVAL, DEPARTURE, SimulationResult, UtilizationSample
from repro.cluster.dynamics import DynamicResourcePool
from repro.core.migration import apply_repair, plan_repair
from repro.util.errors import ValidationError
from repro.util.rng import ensure_rng

NODE_FAILURE = "node_failure"
NODE_RECOVERY = "node_recovery"


@dataclass(frozen=True, slots=True)
class FailureEvent:
    """One scheduled failure with its recovery time."""

    node_id: int
    fail_time: float
    recover_time: float

    def __post_init__(self) -> None:
        if self.recover_time <= self.fail_time:
            raise ValidationError("recovery must follow failure")


class FailureInjector:
    """Draws a random failure/recovery schedule for a pool's nodes.

    Two regimes:

    * **One-shot** (default, ``mtbf=None``): each node independently fails
      with ``failure_probability`` at a uniform time within the horizon and
      stays down for an exponential repair time — at most one failure per
      node per run.
    * **Renewal** (``mtbf`` set): each node alternates exponential up-times
      (mean ``mtbf``) and exponential down-times (mean ``mean_repair_time``)
      for the whole horizon, so nodes can fail repeatedly — the standard
      MTBF/MTTR availability model.

    Either regime can be made *rack-correlated*: with
    ``rack_burst_probability``, each drawn failure escalates into a full
    rack outage — every rack peer goes down at the same instant with its
    own repair draw. Overlapping failures of the same node are merged so
    the schedule never double-fails a node.
    """

    def __init__(
        self,
        *,
        failure_probability: float = 0.1,
        horizon: float = 1000.0,
        mean_repair_time: float = 200.0,
        mtbf: "float | None" = None,
        rack_burst_probability: float = 0.0,
        seed=None,
    ) -> None:
        if not (0.0 <= failure_probability <= 1.0):
            raise ValidationError("failure_probability must be in [0, 1]")
        if horizon <= 0 or mean_repair_time <= 0:
            raise ValidationError("horizon and mean_repair_time must be > 0")
        if mtbf is not None and mtbf <= 0:
            raise ValidationError("mtbf must be > 0 when set")
        if not (0.0 <= rack_burst_probability <= 1.0):
            raise ValidationError("rack_burst_probability must be in [0, 1]")
        self.failure_probability = failure_probability
        self.horizon = horizon
        self.mean_repair_time = mean_repair_time
        self.mtbf = mtbf
        self.rack_burst_probability = rack_burst_probability
        self._rng = ensure_rng(seed)

    def _repair(self) -> float:
        return float(self._rng.exponential(self.mean_repair_time)) + 1e-6

    def _primary_failures(self, num_nodes: int) -> list[FailureEvent]:
        events: list[FailureEvent] = []
        if self.mtbf is None:
            for node in range(num_nodes):
                if self._rng.random() < self.failure_probability:
                    t = float(self._rng.uniform(0, self.horizon))
                    events.append(
                        FailureEvent(
                            node_id=node, fail_time=t, recover_time=t + self._repair()
                        )
                    )
            return events
        for node in range(num_nodes):
            t = float(self._rng.exponential(self.mtbf))
            while t < self.horizon:
                repair = self._repair()
                events.append(
                    FailureEvent(node_id=node, fail_time=t, recover_time=t + repair)
                )
                t = t + repair + float(self._rng.exponential(self.mtbf))
        return events

    @staticmethod
    def _merge_per_node(events: list[FailureEvent]) -> list[FailureEvent]:
        """Drop failures that would start while the node is still down."""
        per_node: dict[int, list[FailureEvent]] = {}
        for ev in events:
            per_node.setdefault(ev.node_id, []).append(ev)
        merged: list[FailureEvent] = []
        for node in sorted(per_node):
            last_recover = -np.inf
            for ev in sorted(per_node[node], key=lambda e: e.fail_time):
                if ev.fail_time < last_recover:
                    continue  # node is already down; the outages overlap
                merged.append(ev)
                last_recover = ev.recover_time
        return merged

    def schedule(
        self, num_nodes: int, *, rack_ids: "np.ndarray | list[int] | None" = None
    ) -> list[FailureEvent]:
        """Draw the failure schedule for *num_nodes* nodes.

        ``rack_ids`` (node id → rack id, e.g. ``topology.rack_ids``) is
        required when ``rack_burst_probability > 0``.
        """
        primaries = self._primary_failures(num_nodes)
        if self.rack_burst_probability > 0.0:
            if rack_ids is None:
                raise ValidationError(
                    "rack_burst_probability > 0 requires rack_ids"
                )
            racks = np.asarray(rack_ids, dtype=np.int64)
            if racks.shape != (num_nodes,):
                raise ValidationError(
                    f"rack_ids must have one entry per node ({num_nodes})"
                )
            bursts: list[FailureEvent] = []
            for ev in primaries:
                if self._rng.random() >= self.rack_burst_probability:
                    continue
                for peer in np.flatnonzero(racks == racks[ev.node_id]):
                    if int(peer) == ev.node_id:
                        continue
                    bursts.append(
                        FailureEvent(
                            node_id=int(peer),
                            fail_time=ev.fail_time,
                            recover_time=ev.fail_time + self._repair(),
                        )
                    )
            return self._merge_per_node(primaries + bursts)
        if self.mtbf is None:
            return primaries  # already one per node, in node order
        return self._merge_per_node(primaries)


@dataclass
class RepairStats:
    """Outcomes of failure handling."""

    failures: int = 0
    recoveries: int = 0
    leases_repaired: int = 0
    leases_lost: int = 0
    vms_migrated: int = 0
    migration_bytes: float = 0.0
    #: Requests dropped because their lease died more than ``max_resubmits``
    #: times (the retry budget ran out).
    requeue_rejected: int = 0

    def to_metrics(self, registry) -> None:
        """Export every field through the unified ``repro_stats`` gauge
        (``source="cloud_repairs"``); see docs/OBSERVABILITY.md."""
        gauge = registry.gauge(
            "repro_stats",
            "Unified stats-object export; one series per source and field.",
            labels=("source", "field"),
        )
        for name in self.__dataclass_fields__:
            gauge.labels(source="cloud_repairs", field=name).set(
                float(getattr(self, name))
            )


class ResilientCloudProvider(CloudProvider):
    """A provider over a :class:`DynamicResourcePool` that repairs leases.

    Requires the dynamic pool (failure handling needs ``fail_node`` /
    ``evict_node``); everything else behaves like :class:`CloudProvider`.

    ``max_resubmits`` bounds how many times one request may be re-queued
    after unrepairable failures; past the budget the request is counted as
    rejected (``stats.queue_rejected`` and ``repair_stats.requeue_rejected``)
    instead of churning forever under sustained failures.
    """

    def __init__(
        self, pool: DynamicResourcePool, policy, *, max_resubmits: int = 3, **kwargs
    ) -> None:
        if not isinstance(pool, DynamicResourcePool):
            raise ValidationError(
                "ResilientCloudProvider requires a DynamicResourcePool"
            )
        if max_resubmits < 0:
            raise ValidationError("max_resubmits must be >= 0")
        super().__init__(pool, policy, **kwargs)
        self.max_resubmits = max_resubmits
        self.repair_stats = RepairStats()
        self._resubmits: dict[int, int] = {}

    def on_node_failure(self, node_id: int, now: float) -> list[TimedRequest]:
        """Handle a node failure: repair affected leases, re-queue the rest.

        Returns the requests whose leases could not be repaired (re-queued
        with their original durations while their retry budget lasts).
        """
        self.repair_stats.failures += 1
        self.pool.fail_node(node_id)
        lost_requests: list[TimedRequest] = []
        for lease in list(self.active.values()):
            if lease.allocation.matrix[node_id].sum() == 0:
                continue
            plan = plan_repair(lease.allocation, self.pool, [node_id])
            if plan is None:
                # Unrepairable: evict, drop the lease, re-queue the request.
                self.pool.evict_node(node_id)
                survivors = lease.allocation.matrix.copy()
                survivors[node_id] = 0
                self.pool.release(survivors)
                del self.active[lease.request_id]
                self.repair_stats.leases_lost += 1
                lost_requests.append(lease.request)
                resubmits = self._resubmits.get(lease.request_id, 0)
                if resubmits >= self.max_resubmits:
                    self.repair_stats.requeue_rejected += 1
                    self.stats.queue_rejected += 1
                    continue
                self._resubmits[lease.request_id] = resubmits + 1
                if not self.queue.submit(lease.request):
                    self.stats.queue_rejected += 1
                continue
            apply_repair(plan, self.pool, [node_id])
            repaired = Lease(
                request=lease.request,
                allocation=plan.after,
                start_time=lease.start_time,
            )
            self.active[lease.request_id] = repaired
            self.repair_stats.leases_repaired += 1
            self.repair_stats.vms_migrated += plan.num_moves
            self.repair_stats.migration_bytes += plan.cost_bytes
        return lost_requests

    def on_node_recovery(self, node_id: int, now: float) -> list[Lease]:
        """Bring a node back and drain the queue onto the new capacity."""
        self.repair_stats.recoveries += 1
        self.pool.recover_node(node_id)
        return self.drain_queue(now)


class FailureSimulator:
    """Event loop combining workload churn with node failures/recoveries.

    ``on_lease_failure(lease, node_id, now)`` is invoked for every active
    lease touching a failing node *before* the provider repairs or evicts
    it — the hook through which cloud-layer node deaths propagate into
    MapReduce jobs executing on those leases (map task-level VM deaths with
    :func:`repro.experiments.fault_recovery.vm_deaths_from_failures`).
    """

    def __init__(
        self,
        provider: ResilientCloudProvider,
        failures: list[FailureEvent],
        *,
        on_lease_failure: "Callable[[Lease, int, float], None] | None" = None,
    ) -> None:
        self.provider = provider
        self.failures = list(failures)
        self.on_lease_failure = on_lease_failure

    def run(self, workload: list[TimedRequest]) -> SimulationResult:
        """Process arrivals, departures, failures, and recoveries to completion."""
        events = EventQueue()
        for req in workload:
            events.schedule(req.arrival_time, ARRIVAL, req)
        for f in self.failures:
            events.schedule(f.fail_time, NODE_FAILURE, f.node_id)
            events.schedule(f.recover_time, NODE_RECOVERY, f.node_id)

        provider = self.provider
        result = SimulationResult(
            stats=provider.stats, repairs=provider.repair_stats
        )
        # A request can be placed more than once when an unrepairable
        # failure kills its lease and it is re-queued. Each placement is a
        # new *generation* with its own departure event; departures of dead
        # generations are ignored so a re-placed lease neither departs early
        # (old event firing on the new lease) nor leaks (no event at all).
        generation: dict[int, int] = {}

        def record_lease(lease: Lease) -> None:
            result.distances.append(lease.allocation.distance)
            result.waits.append(lease.wait_time)
            gen = generation.get(lease.request_id, 0) + 1
            generation[lease.request_id] = gen
            events.schedule(lease.end_time, DEPARTURE, (lease.request_id, gen))

        while not events.empty:
            ev = events.pop()
            now = ev.time
            if ev.kind == ARRIVAL:
                lease = provider.submit(ev.payload, now)
                if lease is not None:
                    record_lease(lease)
            elif ev.kind == DEPARTURE:
                request_id, gen = ev.payload
                if (
                    generation.get(request_id) == gen
                    and request_id in provider.active
                ):
                    for lease in provider.release(request_id, now):
                        record_lease(lease)
            elif ev.kind == NODE_FAILURE:
                if self.on_lease_failure is not None:
                    for lease in list(provider.active.values()):
                        if lease.allocation.matrix[ev.payload].sum() > 0:
                            self.on_lease_failure(lease, ev.payload, now)
                provider.on_node_failure(ev.payload, now)
            elif ev.kind == NODE_RECOVERY:
                for lease in provider.on_node_recovery(ev.payload, now):
                    record_lease(lease)
            else:  # pragma: no cover - defensive
                raise ValidationError(f"unknown event kind {ev.kind!r}")
            result.utilization.append(
                UtilizationSample(
                    time=now,
                    utilization=provider.utilization,
                    queued=len(provider.queue),
                    active=len(provider.active),
                )
            )
            result.makespan = now
        return result

"""Fabric-level survivability: capability-aware routing and checkpointing.

The issue's fabric acceptance criteria:

* the router never ranks a shard that can *never* satisfy a request's
  survivability target (too few failure domains, or the spread cannot fit
  within the shard's maximum capacity) — such shards are refused, not
  spilled over to;
* fabric checkpoints carry each lease's target and round-trip
  byte-identically, and target-free fabrics emit checkpoints with no
  ``survivability`` keys at all (wire/disk compatibility).
"""

import json

import numpy as np

from repro.cluster import PoolSpec, VMTypeCatalog, random_pool
from repro.core.reliability import SurvivabilityTarget, spread_budget
from repro.obs import MetricsRegistry
from repro.service import DecisionStatus, PlaceRequest, ServiceConfig
from repro.service.shard import (
    ByRackPlan,
    FabricConfig,
    RackGroupPlan,
    ShardedPlacementFabric,
    fabric_from_checkpoint,
)

CATALOG = VMTypeCatalog.ec2_default()


def make_pool(seed=7, racks=4, nodes_per_rack=4, clouds=2, capacity_high=3):
    return random_pool(
        PoolSpec(
            racks=racks,
            nodes_per_rack=nodes_per_rack,
            clouds=clouds,
            capacity_low=1,
            capacity_high=capacity_high,
        ),
        CATALOG,
        seed=seed,
    )


def make_fabric(pool=None, plan=None, **fabric_kwargs):
    pool = pool or make_pool()
    fabric_kwargs.setdefault("service", ServiceConfig(batch_window=0.0))
    service = fabric_kwargs.pop("service")
    return ShardedPlacementFabric(
        pool,
        plan=plan or RackGroupPlan(2),
        config=FabricConfig(service=service, **fabric_kwargs),
        obs=MetricsRegistry(),
    )


def pump(fabric, rounds=50):
    decisions = []
    for _ in range(rounds):
        got = fabric.step_all(now=0.0)
        decisions.extend(got)
        if not got and not fabric.queued:
            break
    return decisions


class TestCapabilityRouting:
    def test_single_rack_shards_are_refused_for_spread_targets(self):
        """ByRackPlan shards own one rack each: any binding rack-spread is
        structurally impossible there, so the router must refuse every
        shard rather than rank one and waste an admission round trip."""
        pool = make_pool(racks=2, clouds=1)
        fabric = make_fabric(pool, plan=ByRackPlan())
        router = fabric._router
        demand = np.array([2, 1, 0])
        target = SurvivabilityTarget(kind="rack", k=1)  # cap 1 < total 3
        result = router.route(demand, target=target)
        assert result.ranked == ()
        assert set(result.refused) == set(range(fabric.num_shards))
        plain = router.route(demand)
        assert plain.ranked  # the same demand untargeted routes fine

    def test_mixed_capability_ranks_only_capable_shards(self):
        """Uneven rack groups: the 1-rack shard is refused for a k=1
        target, the multi-rack shards stay rankable."""
        pool = make_pool(racks=3, clouds=1, nodes_per_rack=4)
        fabric = make_fabric(pool, plan=RackGroupPlan(2))
        router = fabric._router
        rack_counts = [
            int(np.unique(shard.state.topology.rack_ids).shape[0])
            for shard in fabric._shards
        ]
        assert sorted(rack_counts) == [1, 2]
        lone = rack_counts.index(1)
        demand = np.array([2, 2, 0])
        target = SurvivabilityTarget(kind="rack", k=1)
        result = router.route(demand, target=target)
        assert lone in result.refused
        assert lone not in result.ranked
        assert result.ranked  # the 2-rack shard can satisfy the spread

    def test_fabric_places_on_capable_shard_and_enforces_cap(self):
        pool = make_pool(racks=3, clouds=1, nodes_per_rack=4)
        fabric = make_fabric(pool, plan=RackGroupPlan(2))
        target = SurvivabilityTarget(kind="rack", k=1, mtbf=900.0, mttr=100.0)
        ticket = fabric.submit(
            PlaceRequest(demand=(2, 2, 0), request_id=1, survivability=target)
        )
        pump(fabric)
        assert ticket.done and ticket.decision.placed
        report = ticket.decision.survivability
        assert report is not None
        assert report["max_domain_vms"] <= spread_budget(4, 1)
        shard = fabric.owner_of(1)
        counts = np.zeros(64, dtype=np.int64)
        matrix = fabric._shards[shard].state.leases[1].matrix
        np.add.at(
            counts,
            np.asarray(fabric._shards[shard].state.topology.rack_ids),
            matrix.sum(axis=1),
        )
        assert counts.max() <= spread_budget(4, 1)

    def test_no_capable_shard_yields_target_refusal_detail(self):
        pool = make_pool(racks=2, clouds=1)
        fabric = make_fabric(pool, plan=ByRackPlan())
        ticket = fabric.submit(
            PlaceRequest(
                demand=(2, 1, 0),
                request_id=2,
                survivability=SurvivabilityTarget(kind="rack", k=1),
            )
        )
        pump(fabric)
        assert ticket.done
        assert ticket.decision.status == DecisionStatus.REFUSED
        assert "survivability" in ticket.decision.detail


class TestCheckpointTargets:
    def _fabric_with_leases(self):
        fabric = make_fabric()
        target = SurvivabilityTarget(kind="rack", k=1, mtbf=900.0, mttr=100.0)
        t1 = fabric.submit(
            PlaceRequest(demand=(2, 1, 0), request_id=11, survivability=target)
        )
        t2 = fabric.submit(PlaceRequest(demand=(1, 1, 1), request_id=12))
        pump(fabric)
        assert t1.done and t1.decision.placed
        assert t2.done and t2.decision.placed
        return fabric, target

    def test_round_trip_is_byte_identical_and_preserves_targets(self):
        fabric, target = self._fabric_with_leases()
        doc = fabric.checkpoint_doc()
        restored = fabric_from_checkpoint(doc, obs=MetricsRegistry())
        assert json.dumps(restored.checkpoint_doc(), indent=1) == json.dumps(
            doc, indent=1
        )
        shard = restored.owner_of(11)
        assert restored._shards[shard].state.lease_target(11) == target
        assert restored._shards[restored.owner_of(12)].state.lease_target(12) is None

    def test_target_free_checkpoints_have_no_survivability_keys(self):
        fabric = make_fabric()
        ticket = fabric.submit(PlaceRequest(demand=(1, 1, 0), request_id=21))
        pump(fabric)
        assert ticket.done and ticket.decision.placed
        assert "survivability" not in json.dumps(fabric.checkpoint_doc())

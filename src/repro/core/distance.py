"""Virtual-cluster distance ``DC`` (Definition 1) and central-node search.

Definition 1 of the paper: given an allocation matrix ``C`` and node distance
matrix ``D``, the distance of the virtual cluster is

    DC(C) = min_k Σ_i (Σ_j C_ij) · D_ik

i.e. the smallest total VM-weighted distance to any *central node* ``N_k``.
The whole sweep over centers is one matrix-vector product
``counts @ D`` followed by ``argmin`` — O(n²) with a tiny constant.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ValidationError


def _node_counts(allocation: np.ndarray) -> np.ndarray:
    """Per-node VM counts from either a (n × m) matrix or a length-n vector."""
    arr = np.asarray(allocation)
    if arr.ndim == 2:
        return arr.sum(axis=1)
    if arr.ndim == 1:
        return arr
    raise ValidationError(
        f"allocation must be a matrix or per-node count vector, got ndim={arr.ndim}"
    )


def center_distances(allocation: np.ndarray, dist: np.ndarray) -> np.ndarray:
    """Total VM-weighted distance to every candidate center.

    Returns a length-``n`` vector whose ``k``-th entry is
    ``Σ_i counts[i] · D[i, k]`` — the Fig. 4 curve for one allocation.
    """
    counts = _node_counts(allocation)
    d = np.asarray(dist, dtype=np.float64)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise ValidationError(f"distance matrix must be square, got {d.shape}")
    if counts.shape[0] != d.shape[0]:
        raise ValidationError(
            f"allocation covers {counts.shape[0]} nodes but D is {d.shape[0]}×{d.shape[1]}"
        )
    return counts.astype(np.float64) @ d


def cluster_distance(allocation: np.ndarray, dist: np.ndarray) -> tuple[float, int]:
    """``DC(C)`` and the central node realizing it (Definition 1).

    Ties are broken toward the smallest node index, which keeps results
    deterministic across runs.
    """
    totals = center_distances(allocation, dist)
    k = int(np.argmin(totals))
    return float(totals[k]), k


def distance_with_center(
    allocation: np.ndarray, dist: np.ndarray, center: int
) -> float:
    """VM-weighted distance of ``C`` measured from a *forced* center.

    Used by the Fig. 2 comparison (best center vs. a randomly chosen one)
    and the Fig. 4 center sweep.
    """
    totals = center_distances(allocation, dist)
    if not (0 <= center < totals.shape[0]):
        raise ValidationError(f"center {center} out of range [0, {totals.shape[0]})")
    return float(totals[center])


def best_centers(allocation: np.ndarray, dist: np.ndarray, *, tol: float = 1e-9) -> np.ndarray:
    """All node indices achieving the minimum distance (the paper notes the
    central node "is not unique")."""
    totals = center_distances(allocation, dist)
    return np.flatnonzero(totals <= totals.min() + tol)

"""Tests for the failure-aware dynamic resource pool."""

import numpy as np
import pytest

from repro.cluster.dynamics import DynamicResourcePool
from repro.cluster.topology import Topology
from repro.cluster.vmtypes import VMTypeCatalog
from repro.core.placement.exact import solve_sd_exact
from repro.core.placement.greedy import OnlineHeuristic
from repro.util.errors import CapacityError, ValidationError


@pytest.fixture
def pool():
    topo = Topology.build(2, 3, capacity=[2, 2, 1])  # 6 nodes
    return DynamicResourcePool(topo, VMTypeCatalog.ec2_default())


class TestFailure:
    def test_failed_node_offers_nothing(self, pool):
        pool.fail_node(0)
        assert pool.remaining[0].sum() == 0
        assert not pool.is_active(0)
        assert pool.num_active_nodes == 5

    def test_fail_returns_lost_row(self, pool):
        a = np.zeros((6, 3), dtype=np.int64)
        a[0] = [1, 2, 0]
        pool.allocate(a)
        lost = pool.fail_node(0)
        assert lost.tolist() == [1, 2, 0]

    def test_double_failure_rejected(self, pool):
        pool.fail_node(1)
        with pytest.raises(ValidationError):
            pool.fail_node(1)

    def test_out_of_range_rejected(self, pool):
        with pytest.raises(ValidationError):
            pool.fail_node(99)

    def test_recover_restores_capacity(self, pool):
        pool.fail_node(2)
        pool.recover_node(2)
        assert pool.is_active(2)
        assert pool.remaining[2].tolist() == [2, 2, 1]

    def test_recover_live_node_rejected(self, pool):
        with pytest.raises(ValidationError):
            pool.recover_node(0)

    def test_max_capacity_shrinks(self, pool):
        before = pool.max_capacity.sum()
        pool.fail_node(0)
        assert pool.max_capacity.sum() == before - 5

    def test_exceeds_max_capacity_sees_failures(self, pool):
        # 12 smalls fit only while all 6 nodes live.
        assert not pool.exceeds_max_capacity([12, 0, 0])
        pool.fail_node(0)
        assert pool.exceeds_max_capacity([12, 0, 0])

    def test_allocate_on_failed_node_rejected(self, pool):
        pool.fail_node(0)
        a = np.zeros((6, 3), dtype=np.int64)
        a[0, 0] = 1
        with pytest.raises(CapacityError):
            pool.allocate(a)


class TestDistances:
    def test_failed_node_unreachable(self, pool):
        pool.fail_node(3)
        d = pool.distance_matrix
        assert d[3, 0] == DynamicResourcePool.UNREACHABLE
        assert d[0, 3] == DynamicResourcePool.UNREACHABLE
        assert d[3, 3] == 0.0

    def test_static_matrix_unchanged(self, pool):
        static_before = pool.static_distance_matrix.copy()
        pool.fail_node(3)
        assert np.array_equal(pool.static_distance_matrix, static_before)

    def test_live_distances_unchanged(self, pool):
        pool.fail_node(5)
        assert pool.distance_matrix[0, 1] == 1.0
        assert pool.distance_matrix[0, 3] == 2.0


class TestPlacementRoutesAroundFailures:
    def test_heuristic_avoids_failed_nodes(self, pool):
        pool.fail_node(0)
        pool.fail_node(1)
        alloc = OnlineHeuristic().place([4, 2, 1], pool)
        assert alloc is not None
        assert alloc.matrix[0].sum() == 0
        assert alloc.matrix[1].sum() == 0

    def test_exact_avoids_failed_nodes(self, pool):
        pool.fail_node(2)
        alloc = solve_sd_exact([4, 2, 1], pool)
        assert alloc.matrix[2].sum() == 0

    def test_failure_degrades_affinity(self, pool):
        """Killing rack-A nodes forces cross-rack placement."""
        before = solve_sd_exact([6, 0, 0], pool).distance
        pool.fail_node(2)  # rack A loses a node
        after = solve_sd_exact([6, 0, 0], pool).distance
        assert after >= before


class TestEviction:
    def test_evict_clears_row(self, pool):
        a = np.zeros((6, 3), dtype=np.int64)
        a[1] = [2, 1, 0]
        pool.allocate(a)
        pool.fail_node(1)
        evicted = pool.evict_node(1)
        assert evicted.tolist() == [2, 1, 0]
        assert pool.allocated[1].sum() == 0

    def test_lost_vms_reports_stranded(self, pool):
        a = np.zeros((6, 3), dtype=np.int64)
        a[1] = [2, 0, 0]
        a[4] = [1, 0, 0]
        pool.allocate(a)
        pool.fail_node(1)
        stranded = pool.lost_vms()
        assert stranded[1].tolist() == [2, 0, 0]
        assert stranded[4].sum() == 0


class TestReconfiguration:
    def test_grow_capacity(self, pool):
        pool.reconfigure_node(0, [4, 4, 2])
        assert pool.remaining[0].tolist() == [4, 4, 2]

    def test_shrink_below_allocation_overcommits(self, pool):
        a = np.zeros((6, 3), dtype=np.int64)
        a[0] = [2, 0, 0]
        pool.allocate(a)
        pool.reconfigure_node(0, [1, 1, 1])
        # Over-committed: nothing more offered, allocation still tracked.
        assert pool.remaining[0, 0] == 0
        assert pool.allocated[0, 0] == 2

    def test_reconfigure_failed_node_rejected(self, pool):
        pool.fail_node(0)
        with pytest.raises(ValidationError):
            pool.reconfigure_node(0, [1, 1, 1])


class TestCopy:
    def test_copy_carries_liveness(self, pool):
        pool.fail_node(0)
        pool.reconfigure_node(1, [9, 9, 9])
        clone = pool.copy()
        assert not clone.is_active(0)
        assert clone.remaining[1].tolist() == [9, 9, 9]

    def test_copy_is_independent(self, pool):
        clone = pool.copy()
        clone.fail_node(0)
        assert pool.is_active(0)

"""Versioned length-prefixed line-JSON framing for inter-process links.

The TCP serving transport (:mod:`repro.service.transport`) speaks bare
newline-delimited JSON because its payloads are small, text-only envelopes.
The process fabric and the networked coordination backend need two things
that format cannot give:

* **length prefixes** — a checkpoint payload is replicated byte-for-byte;
  embedding arbitrary bytes inside a JSON string would force an encoding
  round trip, and the recovery invariant is *byte identity*. Every frame
  here declares its JSON size up front, and may carry an opaque binary
  *blob* after the JSON document whose length the document declares.
* **versioning** — the two ends of the wire are different processes (and,
  for the coordination server, potentially different hosts/releases). Every
  connection opens with a ``hello`` frame carrying the protocol name and
  version; a mismatch is a typed error before any operation flows.

Frame layout (all lengths are ASCII decimals)::

    <json-length>\\n<json-bytes>\\n[<blob-bytes>]

``json-bytes`` is a compact UTF-8 JSON object. When the frame carries a
blob, the JSON object contains ``"_blob": <blob-length>`` and exactly that
many raw bytes follow the newline. Malformed frames (oversized, truncated,
non-numeric prefix, invalid JSON) raise :class:`~repro.util.errors.
TransportError`; a clean EOF before any byte of a frame returns ``None``
from :func:`read_frame` so connection shutdown is distinguishable from
corruption.

**Codec negotiation.** The hello handshake doubles as a capability
exchange: a dialing peer lists the codecs it speaks via
``send_hello(..., codecs=offer_codecs())``, and the answering peer picks
one with :func:`negotiate_codec` and names it in its reply hello
(``codec="binary"``). After the hellos — which are always legacy line-JSON
frames, so any two releases can complete the handshake — both ends switch
their op streams to the agreed codec via :func:`read_op`/:func:`write_op`.
A peer that offers nothing, or an answer that names no codec, leaves the
connection on the legacy framing unchanged.
"""

from __future__ import annotations

import json

from repro.service.codec import (
    BinaryCodec,
    SUPPORTED_CODECS,
    choose_codec,
)
from repro.util.errors import TransportError

#: Protocol identity carried in every hello frame.
PROTOCOL_NAME = "repro-wire"
PROTOCOL_VERSION = 1

#: Hard byte budget for one frame's JSON document.
MAX_JSON_BYTES = 1 << 20
#: Hard byte budget for one frame's binary blob (checkpoints dominate).
MAX_BLOB_BYTES = 64 << 20
#: Longest accepted length-prefix line (decimal digits + newline).
_MAX_PREFIX = 16


def write_frame(wfile, doc: dict, blob: "bytes | None" = None) -> None:
    """Write one frame — *doc* as compact JSON, plus an optional blob."""
    if blob is not None:
        if len(blob) > MAX_BLOB_BYTES:
            raise TransportError(
                f"blob of {len(blob)} bytes exceeds {MAX_BLOB_BYTES}"
            )
        doc = {**doc, "_blob": len(blob)}
    payload = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_JSON_BYTES:
        raise TransportError(
            f"frame of {len(payload)} bytes exceeds {MAX_JSON_BYTES}"
        )
    wfile.write(b"%d\n" % len(payload))
    wfile.write(payload)
    wfile.write(b"\n")
    if blob is not None:
        wfile.write(blob)
    wfile.flush()


def _read_exact(rfile, n: int) -> bytes:
    data = rfile.read(n)
    if data is None or len(data) != n:
        raise TransportError(
            f"truncated frame: wanted {n} bytes, got {0 if not data else len(data)}"
        )
    return data


def read_frame(rfile) -> "tuple[dict, bytes | None] | None":
    """Read one frame; returns ``(doc, blob)`` or ``None`` on clean EOF."""
    prefix = rfile.readline(_MAX_PREFIX)
    if not prefix:
        return None
    if not prefix.endswith(b"\n"):
        raise TransportError(f"oversized or unterminated length prefix {prefix!r}")
    try:
        length = int(prefix)
    except ValueError as exc:
        raise TransportError(f"non-numeric length prefix {prefix!r}") from exc
    if not 0 <= length <= MAX_JSON_BYTES:
        raise TransportError(f"frame length {length} outside [0, {MAX_JSON_BYTES}]")
    payload = _read_exact(rfile, length)
    if _read_exact(rfile, 1) != b"\n":
        raise TransportError("frame payload not newline-terminated")
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TransportError(f"frame payload is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise TransportError("frame payload must be a JSON object")
    blob_len = doc.pop("_blob", None)
    if blob_len is None:
        return doc, None
    if not isinstance(blob_len, int) or not 0 <= blob_len <= MAX_BLOB_BYTES:
        raise TransportError(f"invalid blob length {blob_len!r}")
    return doc, _read_exact(rfile, blob_len)


# ------------------------------------------------------------------- codecs

#: Budget for one binary op frame: the same JSON document budget as the
#: legacy framing, plus room for an embedded checkpoint blob.
_BINARY_OP_BYTES = MAX_JSON_BYTES + MAX_BLOB_BYTES + 64


def offer_codecs() -> "list[str]":
    """What a dialing peer should advertise in its hello (`codecs=`)."""
    return list(SUPPORTED_CODECS)


def negotiate_codec(hello: dict) -> str:
    """Answering side: pick the codec for this connection from a peer hello.

    Returns ``"json"`` for any peer that advertised nothing — exactly the
    legacy behavior, so old workers and old fabrics interoperate with new
    ones in either direction.
    """
    return choose_codec(hello.get("codecs"))


def resolve_wire_codec(codec):
    """Map a negotiated codec name to the object :func:`read_op` expects.

    ``None``/``"json"`` mean the legacy line-JSON framing (returned as
    ``None`` so callers can branch cheaply); ``"binary"`` returns a
    :class:`~repro.service.codec.BinaryCodec` sized for checkpoint blobs.
    """
    if codec is None or codec == "json" or getattr(codec, "name", None) == "json":
        return None
    if isinstance(codec, BinaryCodec):
        return codec
    if codec == "binary":
        return BinaryCodec(max_bytes=_BINARY_OP_BYTES)
    raise TransportError(f"unknown wire codec {codec!r}")


def write_op(wfile, doc: dict, blob: "bytes | None" = None, *, codec=None) -> None:
    """Write one op frame in the connection's negotiated codec.

    With no codec (or ``"json"``) this is exactly :func:`write_frame`. In
    binary, the blob embeds natively as a ``bytes`` value — no separate
    length prefix, no text round trip — under the same ``_blob`` key the
    legacy framing reserves.
    """
    codec = resolve_wire_codec(codec)
    if codec is None:
        write_frame(wfile, doc, blob)
        return
    if blob is not None:
        if len(blob) > MAX_BLOB_BYTES:
            raise TransportError(
                f"blob of {len(blob)} bytes exceeds {MAX_BLOB_BYTES}"
            )
        doc = {**doc, "_blob": bytes(blob)}
    wfile.write(codec.encode_op(doc))
    wfile.flush()


def read_op(rfile, *, codec=None) -> "tuple[dict, bytes | None] | None":
    """Read one op frame in the negotiated codec; ``None`` on clean EOF."""
    codec = resolve_wire_codec(codec)
    if codec is None:
        return read_frame(rfile)
    doc = codec.decode_op(rfile)
    if doc is None:
        return None
    blob = doc.pop("_blob", None)
    if blob is None:
        return doc, None
    if not isinstance(blob, bytes) or len(blob) > MAX_BLOB_BYTES:
        raise TransportError("invalid embedded blob in binary frame")
    return doc, blob


# ---------------------------------------------------------------- handshake

def send_hello(wfile, role: str, **extra) -> None:
    """Open a connection: announce protocol name/version and our *role*."""
    write_frame(
        wfile,
        {"proto": PROTOCOL_NAME, "v": PROTOCOL_VERSION, "role": role, **extra},
    )


def expect_hello(rfile, role: "str | None" = None) -> dict:
    """Read and validate the peer's hello; returns the full hello document.

    Raises :class:`TransportError` on EOF, protocol-name mismatch, version
    mismatch, or (when *role* is given) an unexpected peer role.
    """
    frame = read_frame(rfile)
    if frame is None:
        raise TransportError("connection closed before hello")
    doc, _ = frame
    if doc.get("proto") != PROTOCOL_NAME:
        raise TransportError(f"unexpected protocol {doc.get('proto')!r}")
    if doc.get("v") != PROTOCOL_VERSION:
        raise TransportError(
            f"protocol version mismatch: peer speaks {doc.get('v')!r}, "
            f"this end speaks {PROTOCOL_VERSION}"
        )
    if role is not None and doc.get("role") != role:
        raise TransportError(
            f"expected peer role {role!r}, got {doc.get('role')!r}"
        )
    return doc


def rpc(
    rfile,
    wfile,
    doc: dict,
    blob: "bytes | None" = None,
    *,
    codec=None,
) -> "tuple[dict, bytes | None]":
    """One request/response exchange; raises on transport or server error.

    The reply convention matches the serving transport: ``{"ok": true, ...}``
    on success, ``{"ok": false, "error": msg}`` on a server-side failure
    (surfaced as :class:`TransportError` so callers treat it uniformly).
    *codec* is the connection's negotiated codec (``None`` = legacy JSON).
    """
    write_op(wfile, doc, blob, codec=codec)
    frame = read_op(rfile, codec=codec)
    if frame is None:
        raise TransportError("peer closed the connection mid-exchange")
    reply, reply_blob = frame
    if not reply.get("ok"):
        raise TransportError(
            f"op {doc.get('op')!r} failed: {reply.get('error', 'unknown error')}"
        )
    return reply, reply_blob

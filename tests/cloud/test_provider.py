"""Tests for the cloud provider (pool + queue + policy)."""

import numpy as np
import pytest

from repro.cloud.provider import CloudProvider
from repro.cloud.queue import RequestQueue
from repro.cloud.request import TimedRequest
from repro.core.placement.global_opt import GlobalSubOptimizer
from repro.core.placement.greedy import OnlineHeuristic
from repro.core.problem import VirtualClusterRequest
from repro.util.errors import ValidationError

from tests.conftest import make_pool


def timed(demand, arrival=0.0, duration=10.0):
    return TimedRequest(
        request=VirtualClusterRequest(demand=list(demand)),
        arrival_time=arrival,
        duration=duration,
    )


@pytest.fixture
def provider():
    return CloudProvider(make_pool(2, 3, capacity=(2, 1, 1)), OnlineHeuristic())


class TestSubmit:
    def test_immediate_placement(self, provider):
        lease = provider.submit(timed([2, 1, 0]), now=0.0)
        assert lease is not None
        assert provider.stats.placed == 1
        assert provider.pool.allocated.sum() == 3

    def test_refusal_over_max_capacity(self, provider):
        lease = provider.submit(timed([99, 0, 0]), now=0.0)
        assert lease is None
        assert provider.stats.refused == 1
        assert len(provider.queue) == 0

    def test_queueing_when_short(self, provider):
        # Exhaust type-0 capacity (12 smalls total).
        assert provider.submit(timed([12, 0, 0]), now=0.0) is not None
        lease = provider.submit(timed([1, 0, 0]), now=1.0)
        assert lease is None
        assert len(provider.queue) == 1
        assert provider.stats.placed == 1

    def test_queue_overflow_rejected(self):
        provider = CloudProvider(
            make_pool(1, 1, capacity=(1, 0, 0)),
            OnlineHeuristic(),
            queue=RequestQueue(capacity=1),
        )
        provider.submit(timed([1, 0, 0]), now=0.0)  # placed
        provider.submit(timed([1, 0, 0]), now=0.0)  # queued
        provider.submit(timed([1, 0, 0]), now=0.0)  # queue full
        assert provider.stats.queue_rejected == 1

    def test_fifo_fairness_no_overtaking(self, provider):
        """While anything is queued, new arrivals must also queue."""
        provider.submit(timed([12, 0, 0]), now=0.0)
        provider.submit(timed([6, 0, 0]), now=1.0)  # queued (no capacity)
        lease = provider.submit(timed([0, 1, 0]), now=2.0)  # would fit, but...
        assert lease is None
        assert len(provider.queue) == 2


class TestRelease:
    def test_release_returns_capacity(self, provider):
        lease = provider.submit(timed([2, 1, 0]), now=0.0)
        provider.release(lease.request_id, now=5.0)
        assert provider.pool.allocated.sum() == 0
        assert provider.stats.completed == 1

    def test_release_unknown_rejected(self, provider):
        with pytest.raises(ValidationError):
            provider.release(12345, now=0.0)

    def test_release_drains_queue(self, provider):
        first = provider.submit(timed([12, 0, 0]), now=0.0)
        provider.submit(timed([2, 0, 0], arrival=1.0), now=1.0)  # queued
        started = provider.release(first.request_id, now=2.0)
        assert len(started) == 1
        assert started[0].wait_time == pytest.approx(1.0)
        assert len(provider.queue) == 0

    def test_drain_respects_capacity(self, provider):
        first = provider.submit(timed([12, 0, 0]), now=0.0)
        provider.submit(timed([10, 0, 0], arrival=1.0), now=1.0)
        provider.submit(timed([10, 0, 0], arrival=1.5), now=1.5)
        started = provider.release(first.request_id, now=2.0)
        # Only one of the 10-VM requests fits in the freed 12.
        assert len(started) == 1
        assert len(provider.queue) == 1


class TestBatchPolicy:
    def test_batch_drain_uses_algorithm2(self):
        pool = make_pool(2, 3, capacity=(2, 1, 1))
        provider = CloudProvider(
            pool,
            OnlineHeuristic(),
            batch_policy=GlobalSubOptimizer(),
        )
        first = provider.submit(timed([12, 0, 0]), now=0.0)
        provider.submit(timed([3, 0, 0], arrival=1.0), now=1.0)
        provider.submit(timed([3, 0, 0], arrival=1.0), now=1.0)
        started = provider.release(first.request_id, now=2.0)
        assert len(started) == 2
        assert provider.pool.allocated.sum() == 6

    def test_batch_allocations_committed_once(self):
        pool = make_pool(2, 2, capacity=(2, 0, 0))
        provider = CloudProvider(
            pool, OnlineHeuristic(), batch_policy=GlobalSubOptimizer()
        )
        first = provider.submit(timed([8, 0, 0]), now=0.0)
        provider.submit(timed([4, 0, 0], arrival=1.0), now=1.0)
        provider.release(first.request_id, now=2.0)
        assert provider.pool.allocated.sum() == 4


class TestStats:
    def test_mean_distance_over_placed(self, provider):
        provider.submit(timed([1, 0, 0]), now=0.0)
        provider.submit(timed([0, 1, 0]), now=0.0)
        assert provider.stats.mean_distance == 0.0  # both single-node

    def test_empty_stats(self, provider):
        assert provider.stats.mean_distance == 0.0
        assert provider.stats.mean_wait == 0.0

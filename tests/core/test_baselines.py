"""Tests for the affinity-blind baseline placements."""

import numpy as np
import pytest

from repro.core.placement.baselines import (
    BestFitPlacement,
    FirstFitPlacement,
    RandomPlacement,
    StripedPlacement,
    random_center_distance,
)
from repro.core.placement.greedy import OnlineHeuristic
from repro.util.errors import InfeasibleRequestError

from tests.conftest import make_pool

ALL_BASELINES = [
    FirstFitPlacement,
    BestFitPlacement,
    lambda: RandomPlacement(seed=3),
    StripedPlacement,
]


@pytest.mark.parametrize("factory", ALL_BASELINES)
class TestCommonContract:
    def test_demand_met(self, factory):
        pool = make_pool(3, 3, capacity=(2, 1, 1))
        alloc = factory().place([4, 2, 2], pool)
        assert alloc.demand.tolist() == [4, 2, 2]
        assert np.all(alloc.matrix <= pool.remaining)

    def test_pool_unchanged(self, factory):
        pool = make_pool(3, 3, capacity=(2, 1, 1))
        factory().place([4, 2, 2], pool)
        assert pool.allocated.sum() == 0

    def test_infeasible_raises(self, factory):
        pool = make_pool(1, 1, capacity=(1, 1, 1))
        with pytest.raises(InfeasibleRequestError):
            factory().place([2, 0, 0], pool)

    def test_wait_returns_none(self, factory):
        pool = make_pool(1, 1, capacity=(1, 0, 0))
        pool.allocate(np.array([[1, 0, 0]]))
        assert factory().place([1, 0, 0], pool) is None


class TestFirstFit:
    def test_fills_in_index_order(self):
        pool = make_pool(2, 2, capacity=(2, 0, 0))
        alloc = FirstFitPlacement().place([3, 0, 0], pool)
        assert alloc.matrix[:, 0].tolist() == [2, 1, 0, 0]


class TestBestFit:
    def test_prefers_most_loaded(self):
        pool = make_pool(1, 3, capacity=(3, 0, 0))
        # Preload node 1 so it has least remaining (most loaded).
        pre = np.zeros((3, 3), dtype=np.int64)
        pre[1, 0] = 2
        pool.allocate(pre)
        alloc = BestFitPlacement().place([1, 0, 0], pool)
        assert alloc.matrix[1, 0] == 1

    def test_skips_empty_nodes(self):
        pool = make_pool(1, 2, capacity=(2, 0, 0))
        pre = np.zeros((2, 3), dtype=np.int64)
        pre[0, 0] = 2  # node 0 exhausted (remaining 0)
        pool.allocate(pre)
        alloc = BestFitPlacement().place([1, 0, 0], pool)
        assert alloc.matrix[1, 0] == 1


class TestRandom:
    def test_deterministic_given_seed(self):
        pool = make_pool(3, 3, capacity=(2, 1, 1))
        a = RandomPlacement(seed=9).place([4, 2, 1], pool)
        b = RandomPlacement(seed=9).place([4, 2, 1], pool)
        assert np.array_equal(a.matrix, b.matrix)

    def test_spreads_more_than_heuristic_on_average(self):
        pool = make_pool(3, 5, capacity=(1, 1, 1))
        demand = [5, 5, 3]
        heur = OnlineHeuristic().place(demand, pool).distance
        rand = np.mean(
            [RandomPlacement(seed=s).place(demand, pool).distance for s in range(10)]
        )
        assert rand >= heur


class TestStriped:
    def test_uses_every_rack_when_possible(self):
        pool = make_pool(3, 2, capacity=(2, 0, 0))
        alloc = StripedPlacement().place([3, 0, 0], pool)
        racks = {pool.topology.rack_of(int(i)) for i in alloc.used_nodes}
        assert len(racks) == 3

    def test_worst_or_equal_affinity_vs_heuristic(self):
        pool = make_pool(3, 4, capacity=(2, 1, 1))
        demand = [6, 3, 2]
        striped = StripedPlacement().place(demand, pool).distance
        heur = OnlineHeuristic().place(demand, pool).distance
        assert striped >= heur

    def test_handles_rack_exhaustion(self):
        # Rack 0 can host type 0; racks 1-2 cannot after depletion.
        pool = make_pool(3, 1, capacity=(2, 0, 0))
        pre = np.zeros((3, 3), dtype=np.int64)
        pre[1, 0] = 2
        pre[2, 0] = 2
        pool.allocate(pre)
        alloc = StripedPlacement().place([2, 0, 0], pool)
        assert alloc.matrix[0, 0] == 2


class TestRandomCenterDistance:
    def test_never_below_optimal(self):
        pool = make_pool(3, 3, capacity=(1, 1, 1))
        alloc = OnlineHeuristic().place([4, 2, 1], pool)
        for seed in range(10):
            d, center = random_center_distance(alloc, pool.distance_matrix, seed)
            assert d >= alloc.distance
            assert 0 <= center < pool.num_nodes

    def test_deterministic(self):
        pool = make_pool(3, 3, capacity=(1, 1, 1))
        alloc = OnlineHeuristic().place([4, 2, 1], pool)
        a = random_center_distance(alloc, pool.distance_matrix, 4)
        b = random_center_distance(alloc, pool.distance_matrix, 4)
        assert a == b

"""Client-side fault handling: op timeouts, typed errors, bounded retries.

These tests stand up tiny hand-rolled TCP listeners (hung, flaky, always-
closing) rather than a real :class:`ServiceEndpoint`, because the behaviors
under test are exactly the ones a healthy endpoint never exhibits.
"""

import socket
import threading

import pytest

from repro.service import PlaceRequest, ServiceClient
from repro.util.errors import TransportError, TransportTimeout


def listener():
    srv = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    srv.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    srv.bind(("127.0.0.1", 0))
    srv.listen(8)
    return srv


def spawn(target, *args):
    thread = threading.Thread(target=target, args=args, daemon=True)
    thread.start()
    return thread


class TestOpTimeout:
    def test_hung_server_raises_transport_timeout(self):
        srv = listener()
        conns = []

        def hang():
            try:
                while True:
                    conn, _ = srv.accept()
                    conns.append(conn)  # accept, read nothing, answer nothing
            except OSError:
                return

        spawn(hang)
        try:
            client = ServiceClient(*srv.getsockname(), op_timeout=0.2)
            with pytest.raises(TransportTimeout, match="timed out after 0.2"):
                client.ping()
            client.close()
        finally:
            srv.close()
            for conn in conns:
                conn.close()

    def test_connection_refused_raises_transport_error(self):
        srv = listener()
        address = srv.getsockname()
        srv.close()  # nothing listens here any more
        with pytest.raises(TransportError, match="cannot connect"):
            ServiceClient(*address, timeout=1.0)

    def test_timeout_is_a_transport_error(self):
        # Callers can catch the broad class and still tell the cases apart.
        assert issubclass(TransportTimeout, TransportError)


class TestRetries:
    def test_read_only_op_retries_on_fresh_connection(self):
        srv = listener()
        accepts = []

        def flaky():
            # Close the first two connections without a byte, then speak the
            # protocol on the third: a retrying client should get through.
            try:
                for index in range(3):
                    conn, _ = srv.accept()
                    accepts.append(index)
                    if index < 2:
                        conn.close()
                        continue
                    f = conn.makefile("rwb")
                    f.readline()
                    f.write(b'{"ok": true, "pong": true}\n')
                    f.flush()
                    conn.close()
            except OSError:
                return

        spawn(flaky)
        try:
            client = ServiceClient(*srv.getsockname(), retries=3)
            assert client.ping()
            assert len(accepts) == 3
            client.close()
        finally:
            srv.close()

    def test_mutating_op_is_never_retried(self):
        srv = listener()
        accepts = []

        def always_close():
            try:
                while True:
                    conn, _ = srv.accept()
                    accepts.append(conn)
                    conn.close()
            except OSError:
                return

        spawn(always_close)
        try:
            client = ServiceClient(*srv.getsockname(), retries=3)
            with pytest.raises(TransportError):
                client.place(PlaceRequest(demand=(1, 0, 0), request_id=1))
            # One connection for the constructor, none for a place retry:
            # replaying a mutation could double-commit, so the client must
            # surface the failure instead of retrying it.
            assert len(accepts) == 1
            client.close()
        finally:
            srv.close()

    def test_negative_retries_rejected(self):
        from repro.util.errors import ValidationError

        with pytest.raises(ValidationError, match="retries"):
            ServiceClient("127.0.0.1", 1, retries=-1)

"""End-to-end tests for the TCP transport: endpoint + client."""

import json
import socket
import time

import numpy as np
import pytest

from repro.cluster import PoolSpec, VMTypeCatalog, random_pool
from repro.service import (
    ClusterState,
    DecisionStatus,
    PlaceRequest,
    PlacementService,
    ServiceClient,
    ServiceConfig,
    ServiceEndpoint,
    state_from_checkpoint,
)
from repro.service import transport
from repro.util.errors import ValidationError


@pytest.fixture
def endpoint():
    catalog = VMTypeCatalog.ec2_default()
    pool = random_pool(
        PoolSpec(racks=2, nodes_per_rack=6, capacity_high=3), catalog, seed=23
    )
    service = PlacementService(
        ClusterState.from_pool(pool),
        config=ServiceConfig(batch_window=0.001),
    )
    with ServiceEndpoint(service) as ep:
        yield ep


@pytest.fixture
def client(endpoint):
    host, port = endpoint.address
    with ServiceClient(host, port) as c:
        yield c


def test_ping(client):
    assert client.ping()


def test_place_release_round_trip(endpoint, client):
    decision = client.place(PlaceRequest(demand=(1, 1, 0), request_id=777))
    assert decision.placed
    assert decision.request_id == 777
    assert endpoint.service.state.num_leases == 1
    response = client.release(777)
    assert response.released
    assert response.freed_vms == 2
    assert endpoint.service.state.num_leases == 0


def test_release_unknown_lease(client):
    response = client.release(424242)
    assert not response.released


def test_stats_reflect_traffic(client):
    client.place(PlaceRequest(demand=(1, 0, 0), request_id=801))
    stats = client.stats()
    assert stats["submitted"] == 1
    assert stats["placed"] == 1
    assert stats["acceptance_rate"] == 1.0


def test_checkpoint_over_the_wire(endpoint, client):
    client.place(PlaceRequest(demand=(2, 1, 0), request_id=802))
    doc = client.checkpoint()
    restored = state_from_checkpoint(doc)
    assert restored.num_leases == 1
    assert np.array_equal(
        restored.allocated, endpoint.service.state.allocated
    )


def test_concurrent_clients(endpoint):
    host, port = endpoint.address
    clients = [ServiceClient(host, port) for _ in range(4)]
    try:
        decisions = [
            c.place(PlaceRequest(demand=(1, 0, 0), request_id=900 + i))
            for i, c in enumerate(clients)
        ]
    finally:
        for c in clients:
            c.close()
    assert all(d.placed for d in decisions)
    assert endpoint.service.state.num_leases == 4


def test_malformed_envelope_gets_error_response(endpoint):
    host, port = endpoint.address
    with socket.create_connection((host, port), timeout=5.0) as sock:
        f = sock.makefile("rwb")
        for bad in (b"not json\n", b'{"no_op": 1}\n', b'{"op": "warp"}\n'):
            f.write(bad)
            f.flush()
            response = json.loads(f.readline())
            assert response["ok"] is False
            assert response["error"]


def test_client_raises_on_server_error(client):
    with pytest.raises(ValidationError):
        client._call({"op": "warp"})


def test_handler_timeout_cancels_queued_request(endpoint, client, monkeypatch):
    # Regression: when the handler gave up waiting, the request stayed
    # queued and a later release could place it into a lease no client
    # knew about. Now the handler withdraws it and reports `cancelled`.
    monkeypatch.setattr(transport, "DECISION_TIMEOUT", 0.2)
    service = endpoint.service
    state = service.state
    with service._lock:
        saturation = state.remaining.copy()
        state.allocate(saturation)  # starve the request so the wait times out
    decision = client.place(PlaceRequest(demand=(1, 0, 0), request_id=950))
    assert decision.status == DecisionStatus.CANCELLED
    assert service.queued == 0
    with service._lock:
        state.release(saturation)
    time.sleep(0.3)  # give the background loop a chance to misbehave
    assert not state.has_lease(950)

"""Out-of-process shard workers: one spawned child per shard, one wire.

The package splits along the process boundary:

* :mod:`repro.service.proc.worker` — the child entrypoint
  (:func:`~repro.service.proc.worker.worker_main`): runs one shard's
  :class:`~repro.service.server.PlacementService` and answers the fabric's
  RPCs over the :mod:`repro.service.wire` framing;
* :mod:`repro.service.proc.fabric` — :class:`~repro.service.proc.fabric.
  ProcFabric`, the parent-side front end, duck-type compatible with
  :class:`~repro.service.shard.fabric.ShardedPlacementFabric` so loadgen,
  the CLI, the TCP transport, and the differential suite run unchanged;
* :mod:`repro.service.proc.supervisor` — :class:`~repro.service.proc.
  supervisor.ProcSupervisor`, which watches real heartbeats in a
  (typically networked) coordination backend, SIGKILL-detects via process
  liveness and TTLs, and respawns workers from replicated checkpoints.
"""

from repro.service.proc.fabric import ProcFabric, ProcWorkerHandle
from repro.service.proc.supervisor import ProcSupervisor, ProcWorkerProxy
from repro.service.proc.worker import worker_main

__all__ = [
    "ProcFabric",
    "ProcSupervisor",
    "ProcWorkerHandle",
    "ProcWorkerProxy",
    "worker_main",
]

"""Tests for the nestable phase timers (repro.util.timing)."""

import time

import pytest

from repro.util import PhaseTimer
from repro.util.timing import _NULL_PHASE


class TestDisabled:
    def test_disabled_phase_is_shared_noop(self):
        timer = PhaseTimer(enabled=False)
        assert timer.phase("a") is _NULL_PHASE
        assert timer.phase("b") is _NULL_PHASE

    def test_disabled_records_nothing(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            with timer.phase("b"):
                pass
        assert timer.breakdown() == {}
        assert timer.inclusive() == {}
        assert timer.counts() == {}
        assert timer.total() == 0.0

    def test_default_is_disabled(self):
        assert not PhaseTimer().enabled


class TestAccounting:
    def test_single_phase(self):
        timer = PhaseTimer(enabled=True)
        with timer.phase("work"):
            time.sleep(0.005)
        assert timer.counts() == {"work": 1}
        assert timer.breakdown()["work"] >= 0.004
        assert timer.breakdown()["work"] == timer.inclusive()["work"]
        assert timer.total() == pytest.approx(timer.breakdown()["work"])

    def test_nested_self_time_excludes_children(self):
        timer = PhaseTimer(enabled=True)
        with timer.phase("outer"):
            time.sleep(0.004)
            with timer.phase("inner"):
                time.sleep(0.004)
        self_times = timer.breakdown()
        incl = timer.inclusive()
        assert incl["outer"] >= self_times["outer"] + self_times["inner"]
        assert self_times["inner"] >= 0.003
        # outer's self time excludes the inner sleep
        assert self_times["outer"] < incl["outer"] - 0.003

    def test_breakdown_sums_to_total(self):
        timer = PhaseTimer(enabled=True)
        for _ in range(3):
            with timer.phase("step"):
                with timer.phase("admission"):
                    time.sleep(0.001)
                with timer.phase("sweep"):
                    with timer.phase("fill"):
                        time.sleep(0.001)
        assert sum(timer.breakdown().values()) == pytest.approx(
            timer.total(), rel=1e-9
        )
        assert timer.counts() == {"step": 3, "admission": 3, "sweep": 3, "fill": 3}

    def test_sibling_roots_accumulate_total(self):
        timer = PhaseTimer(enabled=True)
        with timer.phase("a"):
            pass
        with timer.phase("b"):
            pass
        assert timer.total() == pytest.approx(
            timer.breakdown()["a"] + timer.breakdown()["b"]
        )

    def test_exception_still_closes_phase(self):
        timer = PhaseTimer(enabled=True)
        with pytest.raises(RuntimeError):
            with timer.phase("boom"):
                raise RuntimeError("x")
        assert timer.counts() == {"boom": 1}
        assert timer._stack == []


class TestLifecycle:
    def test_reset_keeps_enabled_flag(self):
        timer = PhaseTimer(enabled=True)
        with timer.phase("a"):
            pass
        timer.reset()
        assert timer.enabled
        assert timer.breakdown() == {}
        assert timer.total() == 0.0

    def test_report_shape(self):
        timer = PhaseTimer(enabled=True)
        with timer.phase("a"):
            with timer.phase("b"):
                pass
        report = timer.report()
        assert set(report) == {"total_s", "phases"}
        assert set(report["phases"]) == {"a", "b"}
        for doc in report["phases"].values():
            assert set(doc) == {"self_s", "inclusive_s", "count"}
        assert report["total_s"] == pytest.approx(
            sum(p["self_s"] for p in report["phases"].values())
        )

    def test_repr_mentions_state(self):
        assert "disabled" in repr(PhaseTimer())
        assert "enabled" in repr(PhaseTimer(enabled=True))

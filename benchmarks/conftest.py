"""Benchmark-suite helpers.

Each benchmark regenerates one paper table/figure: it times the experiment
with pytest-benchmark and prints the same rows/series the paper reports so
the output is directly comparable (see EXPERIMENTS.md for the side-by-side).
"""

from __future__ import annotations


def emit(title: str, body: str) -> None:
    """Print a labelled result block that survives pytest's capture (-s not
    required; pytest-benchmark prints its table after capture ends, and
    these blocks are shown with `-rA` or on failure; run with `-s` to stream
    them live)."""
    print(f"\n=== {title} ===\n{body}\n", flush=True)

"""Perf-regression gate: placement kernels AND the serving path.

Three gates, each comparing a live measurement against committed baseline
numbers in ``benchmarks/results/``:

* **kernel** — per-placement latency of ``OnlineHeuristic(stop="best")``
  with kernels enabled at the 90-node reference size, against the
  committed mean and p99 in ``scalability_bench.json``. A hot path can
  regress in the tail alone (a stray allocation, a cache that misses
  every Nth call) while the mean still squeaks under a mean-only gate,
  so both must hold.
* **serving** — closed-loop p99 of the sharded fabric at 480 nodes /
  8 shards under the event-driven driver (the tail methodology of
  ``docs/PERF.md``), against the ``fabric events`` record committed in
  ``serving_tail_bench.json``. The live tail must also stay strictly
  below the *pre-audit* fabric p99 recorded in ``sharding_bench.json`` —
  the serving path must never fall back to the old lock-shadowed tail.
* **proc** — closed-loop p99 of the out-of-process fabric at 240 nodes /
  4 workers against the ``proc_p99_ms`` record in ``proc_bench.json``
  (skippable with ``--skip-proc``; it spawns worker processes and is the
  slowest gate).

Tails are noisier than means on shared CI runners, so each tail gate
takes a generous default factor; regressions this gate is meant to catch
(a lock reintroduced on the admission path, an accidental O(n) in the
codec) blow through far larger multiples.

Run from the repo root::

    PYTHONPATH=src:. python benchmarks/check_perf_regression.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.cluster import PoolSpec, random_pool
from repro.core.placement.greedy import OnlineHeuristic
from repro.experiments import paperconfig as cfg

RESULTS_DIR = Path(__file__).parent / "results"
SCALABILITY_PATH = RESULTS_DIR / "scalability_bench.json"
SERVING_TAIL_PATH = RESULTS_DIR / "serving_tail_bench.json"
SHARDING_PATH = RESULTS_DIR / "sharding_bench.json"
PROC_PATH = RESULTS_DIR / "proc_bench.json"
GATE_NODES = 90
SERVING_GATE_NODES = 480
PROC_GATE_NODES = 240
REQUEST = np.array([8, 8, 4])


def measure_kernel(repeats: int) -> "tuple[float, float]":
    """(mean, p99) per-placement latency (ms) at the kernel gate size."""
    pool = random_pool(
        PoolSpec(racks=3, nodes_per_rack=30, capacity_high=2),
        cfg.CATALOG,
        seed=5,
        distance_model=cfg.DISTANCES,
    )
    heuristic = OnlineHeuristic(stop="best", use_kernels=True)
    heuristic.place(pool, REQUEST)  # warm-up (builds the topology cache)
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        heuristic.place(pool, REQUEST)
        samples.append(time.perf_counter() - start)
    return (
        float(np.mean(samples)) * 1000,
        float(np.percentile(samples, 99)) * 1000,
    )


def measure_serving() -> float:
    """Live fabric closed-events p99 (ms) at the serving gate size.

    Reuses the committed bench's exact methodology (pool seed, plan,
    service config, workload seed) so the comparison is like-for-like.
    """
    from benchmarks.test_bench_extension_serving_tail import run_fabric

    report = run_fabric("closed-events", 1)
    return report.latency_p99 * 1000


def measure_proc() -> float:
    """Live proc-fabric closed-loop p99 (ms) at the proc gate size."""
    from benchmarks.test_bench_extension_proc import run_proc

    report = run_proc(8, 15)  # 240 nodes, two clouds
    return report.latency_p99 * 1000


def _record_by_nodes(doc: dict, key: str, nodes: int) -> "dict | None":
    return next(
        (rec for rec in doc.get(key, []) if rec.get("nodes") == nodes), None
    )


def _missing(path: Path, what: str) -> int:
    print(
        f"error: {what} missing from {path}; re-run the full bench",
        file=sys.stderr,
    )
    return 2


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="fail when live kernel mean exceeds committed x this "
        "(default 2.0)",
    )
    parser.add_argument(
        "--p99-factor",
        type=float,
        default=3.0,
        help="fail when live kernel p99 exceeds committed x this "
        "(default 3.0)",
    )
    parser.add_argument(
        "--serving-p99-factor",
        type=float,
        default=4.0,
        help="fail when live serving p99 exceeds committed x this "
        "(default 4.0 — end-to-end tails swing more than kernel tails)",
    )
    parser.add_argument(
        "--proc-p99-factor",
        type=float,
        default=4.0,
        help="fail when live proc p99 exceeds committed x this "
        "(default 4.0)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=50,
        help="placements timed for the kernel measurement (default 50; the "
        "tail estimate needs more samples than a mean does)",
    )
    parser.add_argument(
        "--skip-serving",
        action="store_true",
        help="skip the serving-path gate (fabric closed-loop run)",
    )
    parser.add_argument(
        "--skip-proc",
        action="store_true",
        help="skip the proc-fabric gate (spawns worker processes; the "
        "slowest gate)",
    )
    args = parser.parse_args(argv)

    checks: list[tuple[str, float, float, float]] = []

    # ------------------------------------------------------------- kernel
    committed = json.loads(SCALABILITY_PATH.read_text())
    by_nodes = {rec["nodes"]: rec for rec in committed["heuristic"]}
    baseline = by_nodes.get(GATE_NODES)
    if baseline is None:
        return _missing(SCALABILITY_PATH, f"{GATE_NODES}-node record")
    if "kernel_p99_ms" not in baseline:
        return _missing(
            SCALABILITY_PATH, f"kernel_p99_ms in the {GATE_NODES}-node record"
        )
    kernel_mean, kernel_p99 = measure_kernel(args.repeats)
    checks.append(
        ("kernel mean", kernel_mean, baseline["kernel_ms"], args.factor)
    )
    checks.append(
        ("kernel p99", kernel_p99, baseline["kernel_p99_ms"], args.p99_factor)
    )

    # ------------------------------------------------------------ serving
    if not args.skip_serving:
        if not SERVING_TAIL_PATH.exists():
            return _missing(SERVING_TAIL_PATH, "serving-tail baseline")
        serving_doc = json.loads(SERVING_TAIL_PATH.read_text())
        events = next(
            (
                rec
                for rec in serving_doc.get("configs", [])
                if rec.get("config") == "fabric events"
            ),
            None,
        )
        if events is None:
            return _missing(SERVING_TAIL_PATH, "'fabric events' record")
        live_serving = measure_serving()
        checks.append(
            (
                "serving p99",
                live_serving,
                events["p99_ms"],
                args.serving_p99_factor,
            )
        )
        # Hard ceiling: never regress back to the pre-audit fabric tail.
        sharding_doc = json.loads(SHARDING_PATH.read_text())
        old = _record_by_nodes(sharding_doc, "sizes", SERVING_GATE_NODES)
        if old is not None and "fabric_p99_ms" in old:
            checks.append(
                ("serving p99 ceiling", live_serving, old["fabric_p99_ms"], 1.0)
            )

    # --------------------------------------------------------------- proc
    if not args.skip_proc:
        proc_doc = json.loads(PROC_PATH.read_text())
        proc_rec = _record_by_nodes(proc_doc, "sizes", PROC_GATE_NODES)
        if proc_rec is None or "proc_p99_ms" not in proc_rec:
            return _missing(
                PROC_PATH, f"proc_p99_ms at {PROC_GATE_NODES} nodes"
            )
        live_proc = measure_proc()
        checks.append(
            ("proc p99", live_proc, proc_rec["proc_p99_ms"], args.proc_p99_factor)
        )

    failures = []
    for name, live, committed_ms, factor in checks:
        limit = committed_ms * factor
        ok = live <= limit
        if not ok:
            failures.append(name)
        print(
            f"{'OK' if ok else 'REGRESSION'} [{name}]: live {live:.3f} ms vs "
            f"committed {committed_ms:.3f} ms "
            f"(limit {limit:.3f} ms = {factor:g}x)"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

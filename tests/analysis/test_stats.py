"""Tests for summary statistics helpers."""

import pytest

from repro.analysis.stats import (
    Summary,
    geometric_mean,
    percent_change,
    percentiles,
)
from repro.util.errors import ValidationError


class TestSummary:
    def test_of_series(self):
        s = Summary.of([1.0, 2.0, 3.0])
        assert s.count == 3
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.total == 6.0

    def test_std_population(self):
        s = Summary.of([2.0, 4.0])
        assert s.std == pytest.approx(1.0)

    def test_single_value(self):
        s = Summary.of([5])
        assert s.std == 0.0
        assert s.mean == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            Summary.of([])

    def test_generator_input(self):
        s = Summary.of(x for x in range(4))
        assert s.count == 4


class TestPercentChange:
    def test_improvement_positive(self):
        assert percent_change(100, 88) == pytest.approx(12.0)

    def test_regression_negative(self):
        assert percent_change(100, 110) == pytest.approx(-10.0)

    def test_zero_baseline(self):
        assert percent_change(0, 5) == 0.0

    def test_no_change(self):
        assert percent_change(7, 7) == 0.0


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_identity(self):
        assert geometric_mean([3, 3, 3]) == pytest.approx(3.0)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValidationError):
            geometric_mean([1, 0])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            geometric_mean([])


class TestPercentiles:
    def test_default_points(self):
        values = list(range(1, 101))
        pcts = percentiles(values)
        assert set(pcts) == {50.0, 95.0, 99.0}
        assert pcts[50.0] == pytest.approx(50.5)

    def test_custom_points(self):
        pcts = percentiles([1.0, 2.0, 3.0, 4.0], points=(0.0, 100.0))
        assert pcts[0.0] == 1.0
        assert pcts[100.0] == 4.0

    def test_empty_series_yields_zeros(self):
        assert percentiles([]) == {50.0: 0.0, 95.0: 0.0, 99.0: 0.0}

    def test_out_of_range_point_rejected(self):
        with pytest.raises(ValidationError):
            percentiles([1.0], points=(101.0,))

    def test_single_sample_is_every_percentile_of_itself(self):
        # Regression: one sample must come back exactly (no interpolation
        # arithmetic) for every requested point.
        pcts = percentiles([3.7], points=(0.0, 50.0, 99.9, 100.0))
        assert pcts == {0.0: 3.7, 50.0: 3.7, 99.9: 3.7, 100.0: 3.7}

    def test_bare_scalar_counts_as_single_sample(self):
        assert percentiles(2.5) == {50.0: 2.5, 95.0: 2.5, 99.0: 2.5}

"""Tests for plain-text table rendering."""

import pytest

from repro.analysis.tables import format_series, format_table
from repro.util.errors import ValidationError


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = out.splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_title(self):
        out = format_table(["h"], [["x"]], title="My table")
        assert out.startswith("My table")

    def test_float_formatting(self):
        out = format_table(["v"], [[3.14159]], float_fmt="{:.2f}")
        assert "3.14" in out
        assert "3.14159" not in out

    def test_ints_not_float_formatted(self):
        out = format_table(["v"], [[7]])
        assert "7" in out
        assert "7.000" not in out

    def test_empty_rows_ok(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out

    def test_no_headers_rejected(self):
        with pytest.raises(ValidationError):
            format_table([], [])

    def test_ragged_row_rejected(self):
        with pytest.raises(ValidationError):
            format_table(["a", "b"], [["only-one"]])

    def test_row_count_preserved(self):
        rows = [["r1", 1], ["r2", 2], ["r3", 3]]
        out = format_table(["n", "v"], rows)
        assert len(out.splitlines()) == 2 + len(rows)  # header + sep + rows


class TestFormatSeries:
    def test_basic(self):
        assert format_series("x", [1.0, 2.5]) == "x: 1.00 2.50"

    def test_ints_passed_through(self):
        assert format_series("c", [1, 2, 3]) == "c: 1 2 3"

    def test_empty(self):
        assert format_series("e", []) == "e: "

"""Tests for Theorems 1 and 2, including Hypothesis property checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import distance_with_center
from repro.core.theorems import (
    apply_theorem1_move,
    apply_theorem2_exchange,
    swap_gain,
    theorem1_delta,
    theorem2_delta,
    verify_theorem1,
    verify_theorem2,
)
from repro.util.errors import ValidationError


def hierarchical_distance(num_racks: int, per_rack: int, d1=1.0, d2=2.0):
    n = num_racks * per_rack
    rack = np.repeat(np.arange(num_racks), per_rack)
    d = np.where(rack[:, None] == rack[None, :], d1, d2)
    np.fill_diagonal(d, 0.0)
    return d


@pytest.fixture
def dist():
    return hierarchical_distance(2, 3)


class TestTheorem1:
    def test_delta_formula(self, dist):
        assert theorem1_delta(dist, x=0, p=1, q=3) == dist[1, 0] - dist[3, 0]

    def test_move_closer_reduces_distance(self, dist):
        m = np.zeros((6, 2), dtype=np.int64)
        m[0, 0] = 2
        m[3, 0] = 1  # one VM in the far rack
        before = distance_with_center(m, dist, 0)
        after = distance_with_center(apply_theorem1_move(m, p=1, q=3, vm_type=0), dist, 0)
        assert after < before
        assert after - before == theorem1_delta(dist, 0, 1, 3)

    def test_move_without_vm_rejected(self, dist):
        m = np.zeros((6, 2), dtype=np.int64)
        with pytest.raises(ValidationError):
            apply_theorem1_move(m, p=0, q=1, vm_type=0)

    def test_move_returns_copy(self, dist):
        m = np.zeros((6, 2), dtype=np.int64)
        m[3, 0] = 1
        out = apply_theorem1_move(m, p=0, q=3, vm_type=0)
        assert m[3, 0] == 1
        assert out[3, 0] == 0 and out[0, 0] == 1

    def test_verify_on_concrete_allocation(self, dist):
        m = np.zeros((6, 2), dtype=np.int64)
        m[0, 0] = 1
        m[4, 1] = 2
        assert verify_theorem1(m, dist, x=0, p=1, q=4, vm_type=1)

    @settings(max_examples=100, deadline=None)
    @given(
        x=st.integers(0, 5),
        p=st.integers(0, 5),
        q=st.integers(0, 5),
        vm_type=st.integers(0, 1),
        data=st.data(),
    )
    def test_property_delta_always_matches_measurement(self, x, p, q, vm_type, data):
        """Theorem 1's delta formula holds for arbitrary allocations/moves."""
        dist = hierarchical_distance(2, 3)
        m = np.array(
            data.draw(
                st.lists(
                    st.lists(st.integers(0, 3), min_size=2, max_size=2),
                    min_size=6,
                    max_size=6,
                )
            ),
            dtype=np.int64,
        )
        m[q, vm_type] += 1  # guarantee a VM exists to move
        assert verify_theorem1(m, dist, x=x, p=p, q=q, vm_type=vm_type)


class TestTheorem2:
    def test_delta_formula(self, dist):
        assert theorem2_delta(dist, x=0, y=3, k=4) == dist[0, 4] - dist[0, 3] - dist[3, 4]

    def test_exchange_improves_when_triangle_strict(self, dist):
        """Cluster 1 (center 0) holds a VM on cluster 2's center (node 3);
        cluster 2 holds one on node 4. D_03 + D_34 = 3 > D_04 = 2."""
        m1 = np.zeros((6, 2), dtype=np.int64)
        m1[0, 0] = 2
        m1[3, 0] = 1
        m2 = np.zeros((6, 2), dtype=np.int64)
        m2[3, 1] = 1
        m2[4, 0] = 1
        before = distance_with_center(m1, dist, 0) + distance_with_center(m2, dist, 3)
        a, b = apply_theorem2_exchange(m1, m2, u=3, v=4, vm_type=0)
        after = distance_with_center(a, dist, 0) + distance_with_center(b, dist, 3)
        assert after - before == theorem2_delta(dist, 0, 3, 4)
        assert after < before

    def test_exchange_capacity_neutral(self, dist):
        m1 = np.zeros((6, 2), dtype=np.int64)
        m1[3, 0] = 2
        m2 = np.zeros((6, 2), dtype=np.int64)
        m2[4, 0] = 1
        combined_before = m1 + m2
        a, b = apply_theorem2_exchange(m1, m2, u=3, v=4, vm_type=0)
        assert np.array_equal(a + b, combined_before)

    def test_exchange_preserves_demands(self, dist):
        m1 = np.zeros((6, 2), dtype=np.int64)
        m1[3, 0] = 2
        m1[0, 1] = 1
        m2 = np.zeros((6, 2), dtype=np.int64)
        m2[4, 0] = 3
        a, b = apply_theorem2_exchange(m1, m2, u=3, v=4, vm_type=0)
        assert np.array_equal(a.sum(axis=0), m1.sum(axis=0))
        assert np.array_equal(b.sum(axis=0), m2.sum(axis=0))

    def test_missing_vm_rejected(self, dist):
        m = np.zeros((6, 2), dtype=np.int64)
        with pytest.raises(ValidationError):
            apply_theorem2_exchange(m, m, u=0, v=1, vm_type=0)

    def test_verify_theorem2(self, dist):
        m1 = np.zeros((6, 2), dtype=np.int64)
        m1[0, 0] = 1
        m1[3, 0] = 1
        m2 = np.zeros((6, 2), dtype=np.int64)
        m2[5, 0] = 1
        assert verify_theorem2(m1, m2, dist, x=0, y=3, k=5, vm_type=0)

    def test_swap_gain_reduces_to_theorem2(self, dist):
        # With u = y the general gain equals -theorem2_delta.
        x, y, k = 0, 3, 4
        assert swap_gain(dist, x, y, u=y, v=k) == -theorem2_delta(dist, x, y, k)

    @settings(max_examples=100, deadline=None)
    @given(
        x=st.integers(0, 5),
        y=st.integers(0, 5),
        u=st.integers(0, 5),
        v=st.integers(0, 5),
    )
    def test_property_swap_gain_matches_measurement(self, x, y, u, v):
        """The generalized swap-gain formula equals the measured change."""
        dist = hierarchical_distance(2, 3)
        m1 = np.zeros((6, 1), dtype=np.int64)
        m1[u, 0] = 1
        m2 = np.zeros((6, 1), dtype=np.int64)
        m2[v, 0] = 1
        before = distance_with_center(m1, dist, x) + distance_with_center(m2, dist, y)
        a, b = apply_theorem2_exchange(m1, m2, u=u, v=v, vm_type=0)
        after = distance_with_center(a, dist, x) + distance_with_center(b, dist, y)
        assert before - after == pytest.approx(swap_gain(dist, x, y, u, v))

"""Tests for the SD / GSD MILP encodings."""

import numpy as np
import pytest

from repro.core.placement.exact import solve_sd_exact
from repro.core.placement.ilp import (
    MilpOptions,
    MilpPlacement,
    solve_gsd_milp,
    solve_sd_milp,
)
from repro.util.errors import InfeasibleRequestError

from tests.conftest import make_pool


class TestSDMilp:
    def test_single_node_zero(self):
        pool = make_pool(2, 2, capacity=(2, 2, 1))
        assert solve_sd_milp([1, 1, 1], pool).distance == 0.0

    def test_demand_met_within_capacity(self):
        pool = make_pool(2, 3, capacity=(2, 1, 1))
        alloc = solve_sd_milp([3, 2, 1], pool)
        assert alloc.demand.tolist() == [3, 2, 1]
        assert np.all(alloc.matrix <= pool.remaining)

    def test_matches_exact_solver(self):
        pool = make_pool(2, 3, capacity=(2, 1, 1))
        for demand in ([3, 2, 1], [5, 0, 0], [1, 3, 2], [6, 6, 2]):
            milp = solve_sd_milp(demand, pool)
            exact = solve_sd_exact(demand, pool)
            assert milp.distance == pytest.approx(exact.distance), demand

    def test_infeasible_raises(self):
        pool = make_pool(1, 1, capacity=(1, 1, 1))
        with pytest.raises(InfeasibleRequestError):
            solve_sd_milp([2, 0, 0], pool)

    def test_wait_returns_none(self):
        pool = make_pool(1, 1, capacity=(1, 0, 0))
        pool.allocate(np.array([[1, 0, 0]]))
        assert solve_sd_milp([1, 0, 0], pool) is None

    def test_does_not_mutate_pool(self):
        pool = make_pool(2, 2)
        before = pool.allocated
        solve_sd_milp([2, 1, 1], pool)
        assert np.array_equal(pool.allocated, before)

    def test_reported_distance_is_true_dc(self):
        from repro.core.distance import cluster_distance

        pool = make_pool(2, 3, capacity=(2, 1, 1))
        alloc = solve_sd_milp([4, 3, 1], pool)
        dc, _ = cluster_distance(alloc.matrix, pool.distance_matrix)
        assert alloc.distance == pytest.approx(dc)

    def test_adapter_and_options(self):
        pool = make_pool(2, 2)
        placer = MilpPlacement(MilpOptions(time_limit=10.0))
        alloc = placer.place([1, 1, 0], pool)
        assert alloc is not None


class TestGSDMilp:
    def test_empty_batch(self):
        pool = make_pool(2, 2)
        assert solve_gsd_milp([], pool) == []

    def test_batch_jointly_feasible(self):
        pool = make_pool(2, 3, capacity=(2, 1, 1))
        reqs = [np.array([2, 1, 0]), np.array([1, 1, 1]), np.array([2, 0, 1])]
        allocs = solve_gsd_milp(reqs, pool)
        assert len(allocs) == 3
        combined = sum(a.matrix for a in allocs)
        assert np.all(combined <= pool.remaining)
        for req, alloc in zip(reqs, allocs):
            assert np.array_equal(alloc.demand, req)

    def test_overcommitted_batch_returns_none(self):
        pool = make_pool(1, 2, capacity=(1, 1, 1))
        reqs = [np.array([2, 0, 0]), np.array([1, 0, 0])]
        assert solve_gsd_milp(reqs, pool) is None

    def test_single_request_matches_sd(self):
        pool = make_pool(2, 3, capacity=(2, 1, 1))
        req = np.array([4, 2, 1])
        gsd = solve_gsd_milp([req], pool)
        sd = solve_sd_milp(req, pool)
        assert gsd[0].distance == pytest.approx(sd.distance)

    def test_global_not_worse_than_sum_of_sequential(self):
        """The exact GSD optimum lower-bounds greedy sequential placement."""
        pool = make_pool(2, 3, capacity=(2, 1, 0))
        reqs = [np.array([3, 1, 0]), np.array([3, 1, 0]), np.array([3, 1, 0])]
        gsd = solve_gsd_milp(reqs, pool)
        work = pool.copy()
        seq_total = 0.0
        for r in reqs:
            a = solve_sd_exact(r, work)
            work.allocate(a.matrix)
            seq_total += a.distance
        assert sum(a.distance for a in gsd) <= seq_total + 1e-9

    def test_reported_distances_are_true_dc(self):
        from repro.core.distance import cluster_distance

        pool = make_pool(2, 3, capacity=(2, 1, 1))
        reqs = [np.array([3, 2, 0]), np.array([2, 1, 2])]
        for alloc in solve_gsd_milp(reqs, pool):
            dc, _ = cluster_distance(alloc.matrix, pool.distance_matrix)
            # The chosen center must realize the optimal DC of its matrix.
            assert alloc.distance == pytest.approx(dc)

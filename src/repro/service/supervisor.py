"""Supervised shard workers: heartbeats, crash detection, checkpoint failover.

:class:`FabricSupervisor` turns a :class:`ShardedPlacementFabric` into a
fault-tolerant serving fabric. Each shard's :class:`PlacementService` runs
under a :class:`ShardWorker` wrapper that

* **heartbeats** — records a TTL'd liveness beat in the coordination
  backend on every scheduler tick and after every commit;
* **write-ahead replicates** — pushes the canonical checkpoint bytes of the
  shard's state to the backend whenever a commit changed the state version,
  *before* the worker acknowledges further work, so the backend always holds
  a byte-exact copy of the last committed ledger;
* **syncs the lease ledger** — mirrors the shard's lease ids into the
  backend's TTL'd lease ledger on every beat, renewing the TTLs; a dead
  worker stops renewing, so its leases drift toward expiry and show up in
  :meth:`FabricSupervisor.stranded_leases`.

The supervisor's :meth:`~FabricSupervisor.monitor` sweep detects dead
workers — an explicit crash flag (chaos kill, loop crash) or a heartbeat
older than the configured TTL — quarantines the shard via
:meth:`~repro.service.shard.fabric.ShardedPlacementFabric.mark_shard_down`
(which re-routes the shard's in-flight requests through surviving shards),
and, when recovery is permitted, restores the shard from its replicated
checkpoint: the payload is parsed back into a byte-identical
:class:`~repro.service.state.ClusterState`, wrapped in a fresh
:class:`PlacementService` (new policy from the fabric's factory, same
config, same registry), and swapped in with
:meth:`~repro.service.shard.fabric.ShardedPlacementFabric.adopt_restored_service`.

Time is injected (``clock``), so tests drive detection, TTL expiry, and
restore ordering deterministically with explicit ``monitor(now=...)``
calls; live serving uses the background monitor thread started by
:meth:`FabricSupervisor.start`.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from dataclasses import dataclass

from repro.service.checkpoint import checkpoint_bytes, state_from_checkpoint
from repro.service.coord import CoordinationBackend, InMemoryCoordinationBackend
from repro.service.server import PlacementService
from repro.service.shard.fabric import ShardedPlacementFabric
from repro.util.errors import ValidationError

_log = logging.getLogger(__name__)


@dataclass(frozen=True, slots=True)
class SupervisorConfig:
    """Failure-detection and recovery tunables.

    ``heartbeat_ttl`` is the detection threshold: a worker whose last beat
    is older than this is declared dead. It must comfortably exceed the
    worker's beat cadence (every scheduler tick / commit) — the fabric's
    ``batch_window`` sets that cadence for background serving. ``lease_ttl``
    only governs the backend's at-risk reporting, never correctness: a
    lease whose owner stopped renewing is *stranded*, not lost.
    """

    heartbeat_interval: float = 0.2
    heartbeat_ttl: float = 1.0
    lease_ttl: float = 5.0
    monitor_interval: float = 0.25
    auto_restore: bool = True

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValidationError("heartbeat_interval must be > 0")
        if self.heartbeat_ttl <= self.heartbeat_interval:
            raise ValidationError("heartbeat_ttl must exceed heartbeat_interval")
        if self.lease_ttl <= 0:
            raise ValidationError("lease_ttl must be > 0")
        if self.monitor_interval <= 0:
            raise ValidationError("monitor_interval must be > 0")


@dataclass(frozen=True, slots=True)
class FailoverEvent:
    """One detected worker death and what the supervisor did about it."""

    shard_id: int
    worker_id: str
    reason: str
    detected_at: float
    rerouted: tuple[int, ...] = ()
    restored: bool = False
    incarnation: int = 0


class ShardWorker:
    """Supervision wrapper around one shard's :class:`PlacementService`.

    The worker is the unit of failure: killing it (chaos, crash) fences the
    underlying service so it behaves exactly like a dead process — rejects
    submissions, never steps, never releases — while the wrapper object
    survives to be rebound to the restored service.
    """

    def __init__(
        self,
        shard_id: int,
        service: PlacementService,
        backend: CoordinationBackend,
        config: SupervisorConfig,
        clock,
    ) -> None:
        self.shard_id = shard_id
        self.worker_id = f"shard-{shard_id}"
        self.service = service
        self.backend = backend
        self.config = config
        self.clock = clock
        self.crashed = False
        self.incarnation = 0
        #: Chaos hook: beats at ``now < suppress_until`` are swallowed,
        #: modeling a GC pause / network partition on the heartbeat path.
        self.suppress_until = float("-inf")
        #: Chaos hook: zero-arg callable; truthy → the next checkpoint
        #: replication raises (a write fault against the backend).
        self.replication_fault = None
        self.replications = 0
        self.replication_failures = 0
        self._replicated_version = -1
        self._wlock = threading.Lock()
        self._install_hooks(service)

    # ---------------------------------------------------------------- hooks

    def _install_hooks(self, service: PlacementService) -> None:
        service.fence = self._fence
        service.on_commit = self._on_commit
        service.on_tick = self._on_tick

    def _fence(self) -> bool:
        return not self.crashed

    def _on_commit(self, service: PlacementService) -> None:
        if self.crashed:
            return
        now = float(self.clock())
        self.replicate(now)
        self.beat(now)

    def _on_tick(self, service: PlacementService) -> None:
        if self.crashed:
            return
        self.beat(float(self.clock()))

    # ------------------------------------------------------------ liveness

    def register(self, now: float) -> int:
        """(Re-)register with the backend; returns the new incarnation."""
        self.incarnation = self.backend.register_worker(
            self.worker_id, self.shard_id, now
        )
        return self.incarnation

    def beat(self, now: float) -> None:
        """Heartbeat + lease-ledger sync (skipped while chaos-suppressed)."""
        if self.crashed or now < self.suppress_until:
            return
        try:
            self.backend.beat(self.worker_id, now)
            self._sync_ledger(now)
        except Exception:
            _log.exception("worker %s heartbeat failed", self.worker_id)

    def heartbeat_age(self, now: float) -> float:
        last = self.backend.last_beat(self.worker_id)
        return float("inf") if last is None else max(0.0, now - last)

    def _sync_ledger(self, now: float) -> None:
        with self.service._lock:
            held = set(self.service.state.leases)
        mine = {
            rid
            for rid, record in self.backend.leases().items()
            if record.owner == self.worker_id
        }
        for rid in sorted(held - mine):
            self.backend.put_lease(
                rid, self.worker_id, now, self.config.lease_ttl
            )
        for rid in sorted(mine - held):
            self.backend.drop_lease(rid)
        self.backend.renew_leases(self.worker_id, now, self.config.lease_ttl)

    # --------------------------------------------------------- replication

    def replicate(self, now: float, *, force: bool = False) -> bool:
        """Write-ahead replicate the shard state if its version advanced.

        Returns whether a payload was stored. A write fault keeps the old
        replicated version, so the next commit retries — the backend never
        holds a torn or skipped-over copy.
        """
        with self._wlock:
            with self.service._lock:
                version = self.service.state.version
                if not force and version == self._replicated_version:
                    return False
                payload = checkpoint_bytes(self.service.state).encode("utf-8")
            try:
                fault = self.replication_fault
                if fault is not None and fault():
                    raise IOError("injected checkpoint write fault")
                self.backend.put_checkpoint(self.worker_id, payload)
            except Exception:
                self.replication_failures += 1
                _log.warning(
                    "worker %s checkpoint replication failed (version %d "
                    "kept at %d for retry)",
                    self.worker_id, version, self._replicated_version,
                )
                return False
            self._replicated_version = version
            self.replications += 1
            return True

    # ------------------------------------------------------------- failure

    def kill(self) -> None:
        """Simulate a worker crash: fence the service, stop its loop.

        Takes no service lock — a real crash does not politely acquire
        locks first. The fence makes every subsequent service entry point a
        dead end, and the loop (if running) exits at its next check.
        """
        self.crashed = True
        self.service._stop.set()

    def rebind(self, service: PlacementService) -> None:
        """Point the worker at the restored service after a failover."""
        self.service = service
        self.crashed = False
        self.suppress_until = float("-inf")
        self._replicated_version = -1
        self._install_hooks(service)

    def __repr__(self) -> str:
        return (
            f"ShardWorker(id={self.worker_id!r}, crashed={self.crashed}, "
            f"incarnation={self.incarnation}, replications={self.replications})"
        )


class FabricSupervisor:
    """Monitors shard workers and drives checkpoint-based failover.

    Parameters
    ----------
    fabric:
        The sharded fabric to supervise. The supervisor installs the
        heartbeat/replication hooks on every shard service at construction
        and immediately replicates each shard's initial state, so a crash at
        any later point always has a checkpoint to restore from.
    backend:
        The coordination backend (default: a fresh in-memory one).
    config / clock:
        Detection tunables and the time source. Tests inject a fake clock
        and call :meth:`monitor` with explicit ``now`` values.
    restore_gate:
        Optional ``(shard_id, now) -> bool``; restoration of a dead shard is
        deferred while it returns False (the chaos injector uses this to
        model repair time / MTTR).
    """

    def __init__(
        self,
        fabric: ShardedPlacementFabric,
        backend: "CoordinationBackend | None" = None,
        config: "SupervisorConfig | None" = None,
        *,
        clock=time.monotonic,
        restore_gate=None,
    ) -> None:
        self.fabric = fabric
        self.backend = backend if backend is not None else InMemoryCoordinationBackend()
        self.config = config or SupervisorConfig()
        self.clock = clock
        self.restore_gate = restore_gate
        self.obs = fabric.obs
        self.events: list[FailoverEvent] = []
        self._mlock = threading.Lock()
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None
        self._m_up = self.obs.gauge(
            "repro_fabric_worker_up",
            "1 while the shard's worker is believed alive, 0 while dead.",
            labels=("shard",),
        )
        self._m_hb_age = self.obs.gauge(
            "repro_fabric_heartbeat_age_seconds",
            "Seconds since each worker's last recorded heartbeat.",
            labels=("shard",),
        )
        self._m_replications = self.obs.counter(
            "repro_fabric_checkpoint_replications_total",
            "Write-ahead checkpoint payloads replicated to the backend.",
            labels=("shard",),
        )
        self._m_replication_failures = self.obs.counter(
            "repro_fabric_checkpoint_replication_failures_total",
            "Checkpoint replications that failed and were left for retry.",
            labels=("shard",),
        )
        now = float(self.clock())
        self.workers: list[ShardWorker] = []
        for shard in fabric.shards:
            worker = ShardWorker(
                shard.shard_id, shard.service, self.backend, self.config, clock
            )
            worker.register(now)
            if not worker.replicate(now, force=True):
                raise ValidationError(
                    f"initial checkpoint replication failed for "
                    f"{worker.worker_id}"
                )
            self._m_replications.labels(shard=str(shard.shard_id)).inc()
            worker.beat(now)
            self._m_up.labels(shard=str(shard.shard_id)).set(1)
            self.workers.append(worker)

    # ------------------------------------------------------------- monitor

    def monitor(self, now: "float | None" = None) -> list[FailoverEvent]:
        """One detection + recovery sweep; returns the failover events.

        Also retries restoration of shards that were detected dead earlier
        but whose restore was gated (chaos repair time) or had no usable
        checkpoint yet.
        """
        with self._mlock:
            if now is None:
                now = float(self.clock())
            down = self.fabric.down_shards
            events: list[FailoverEvent] = []
            for worker in self.workers:
                shard_id = worker.shard_id
                label = str(shard_id)
                # Fold replication counters the worker accumulated since the
                # last sweep into the registry (hooks run on worker threads;
                # counters are folded centrally to keep label churn low).
                self._sync_replication_metrics(worker)
                if shard_id in down:
                    self._m_up.labels(shard=label).set(0)
                    if self._try_restore(worker, now):
                        events.append(
                            FailoverEvent(
                                shard_id=shard_id,
                                worker_id=worker.worker_id,
                                reason="deferred restore",
                                detected_at=now,
                                restored=True,
                                incarnation=worker.incarnation,
                            )
                        )
                    continue
                age = worker.heartbeat_age(now)
                self._m_hb_age.labels(shard=label).set(
                    0.0 if age == float("inf") else age
                )
                reason = None
                if worker.crashed:
                    reason = "worker crashed"
                elif age > self.config.heartbeat_ttl:
                    reason = f"heartbeat age {age:.3f}s > ttl {self.config.heartbeat_ttl}s"
                if reason is None:
                    self._m_up.labels(shard=label).set(1)
                    continue
                worker.crashed = True
                rerouted = self.fabric.mark_shard_down(shard_id, reason=reason)
                self._m_up.labels(shard=label).set(0)
                restored = self._try_restore(worker, now)
                event = FailoverEvent(
                    shard_id=shard_id,
                    worker_id=worker.worker_id,
                    reason=reason,
                    detected_at=now,
                    rerouted=tuple(rerouted),
                    restored=restored,
                    incarnation=worker.incarnation,
                )
                events.append(event)
            self.events.extend(events)
            return events

    def _sync_replication_metrics(self, worker: ShardWorker) -> None:
        label = str(worker.shard_id)
        metered = getattr(worker, "_metered", (1, 0))  # initial replication
        done, failed = worker.replications, worker.replication_failures
        if done > metered[0]:
            self._m_replications.labels(shard=label).inc(done - metered[0])
        if failed > metered[1]:
            self._m_replication_failures.labels(shard=label).inc(
                failed - metered[1]
            )
        worker._metered = (done, failed)

    def _try_restore(self, worker: ShardWorker, now: float) -> bool:
        if not self.config.auto_restore:
            return False
        gate = self.restore_gate
        if gate is not None and not gate(worker.shard_id, now):
            return False
        return self.restore(worker.shard_id, now=now)

    # ------------------------------------------------------------- restore

    def restore(self, shard_id: int, now: "float | None" = None) -> bool:
        """Restore a dead shard from its replicated checkpoint.

        Returns False (shard stays quarantined, fabric keeps serving
        degraded) when no checkpoint is available; raises if the payload is
        corrupt — a torn copy must never be silently adopted.
        """
        if now is None:
            now = float(self.clock())
        worker = self.workers[shard_id]
        payload = self.backend.get_checkpoint(worker.worker_id)
        if payload is None:
            _log.error(
                "no replicated checkpoint for %s; shard stays down",
                worker.worker_id,
            )
            return False
        state = state_from_checkpoint(json.loads(payload))
        if checkpoint_bytes(state).encode("utf-8") != payload:
            raise ValidationError(
                f"restored state for {worker.worker_id} does not round-trip "
                "to the replicated payload"
            )
        service = PlacementService(
            state,
            policy=self.fabric.policy_factory(),
            config=self.fabric.config.service,
            obs=self.obs,
        )
        worker.rebind(service)
        self.fabric.adopt_restored_service(shard_id, service)
        worker.register(now)
        worker.replicate(now, force=True)
        worker.beat(now)
        self._m_up.labels(shard=str(shard_id)).set(1)
        self._m_hb_age.labels(shard=str(shard_id)).set(0.0)
        _log.warning(
            "shard %d restored from replicated checkpoint (incarnation %d, "
            "%d leases)",
            shard_id, worker.incarnation, state.num_leases,
        )
        return True

    # ----------------------------------------------------------- lifecycle

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Start the background monitor thread (idempotent)."""
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._monitor_loop, name="fabric-supervisor", daemon=True
        )
        self._thread.start()

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.config.monitor_interval):
            try:
                self.monitor()
            except Exception:
                # The supervisor must never take the fabric down with it.
                _log.exception("supervisor monitor sweep failed")

    def stop(self) -> None:
        """Stop the monitor thread; workers and hooks stay installed."""
        self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=5.0)
        self._thread = None

    # -------------------------------------------------------- introspection

    def stranded_leases(self, now: "float | None" = None):
        """Backend lease records whose owner let the TTL lapse (at-risk)."""
        if now is None:
            now = float(self.clock())
        return self.backend.expired_leases(now)

    def verify_consistency(self) -> None:
        """Cross-check the backend's lease ledger against the fabric.

        Every ledger lease owned by a live worker must map to a fabric
        lease on that worker's shard, and every fabric-held lease must be
        in the ledger under its shard's worker id. Requires a healthy
        fabric (no shard down) and freshly synced beats.
        """
        down = self.fabric.down_shards
        if down:
            raise ValidationError(
                f"cannot verify ledger with dead shard(s) {sorted(down)}"
            )
        ledger = self.backend.leases()
        for rid, record in ledger.items():
            shard_id = next(
                (
                    w.shard_id
                    for w in self.workers
                    if w.worker_id == record.owner
                ),
                None,
            )
            if shard_id is None:
                raise ValidationError(
                    f"ledger lease {rid} owned by unknown worker "
                    f"{record.owner!r}"
                )
            if self.fabric.owner_of(rid) != shard_id:
                raise ValidationError(
                    f"ledger lease {rid} owned by {record.owner!r} but the "
                    f"fabric places it on shard {self.fabric.owner_of(rid)}"
                )
        for worker in self.workers:
            with worker.service._lock:
                held = set(worker.service.state.leases)
            for rid in held:
                record = ledger.get(rid)
                if record is None or record.owner != worker.worker_id:
                    raise ValidationError(
                        f"fabric lease {rid} on shard {worker.shard_id} is "
                        "missing from (or mis-owned in) the backend ledger"
                    )

    def __repr__(self) -> str:
        return (
            f"FabricSupervisor(shards={self.fabric.num_shards}, "
            f"down={sorted(self.fabric.down_shards)}, "
            f"events={len(self.events)}, running={self.running})"
        )

"""Tests for :func:`repro.service.build_fabric` — the one construction path.

Validation must catch every option combination that cannot work *before*
anything is started (no half-built fabrics to tear down), and the returned
:class:`BuiltFabric` must own the full lifecycle for each worker kind.
Proc workers are covered end-to-end in ``test_proc_fabric.py``; here they
appear only for option validation, which needs no child processes.
"""

import pytest

from repro.cluster import PoolSpec, VMTypeCatalog, random_pool
from repro.core import OnlineHeuristic
from repro.service import (
    PlaceRequest,
    PlacementService,
    ServiceConfig,
    build_fabric,
)
from repro.service.aio import AioServiceEndpoint
from repro.service.factory import WORKER_KINDS
from repro.service.shard import (
    FabricConfig,
    RackGroupPlan,
    ShardedPlacementFabric,
)
from repro.service.supervisor import FabricSupervisor
from repro.service.transport import ServiceEndpoint
from repro.util.errors import ValidationError


def make_pool():
    return random_pool(
        PoolSpec(racks=4, nodes_per_rack=4, capacity_high=3),
        VMTypeCatalog.ec2_default(),
        seed=23,
    )


class TestValidation:
    def test_unknown_workers_kind(self):
        with pytest.raises(ValidationError, match="unknown workers kind"):
            build_fabric(make_pool(), workers="fiber")

    @pytest.mark.parametrize("workers", ["thread", "aio"])
    def test_coord_requires_proc_workers(self, workers):
        with pytest.raises(ValidationError, match="coord requires proc"):
            build_fabric(
                make_pool(), RackGroupPlan(2), workers=workers, coord="auto"
            )

    @pytest.mark.parametrize("workers", ["thread", "aio"])
    def test_codec_applies_to_proc_workers_only(self, workers):
        with pytest.raises(ValidationError, match="codec applies to proc"):
            build_fabric(
                make_pool(), RackGroupPlan(2), workers=workers, codec="binary"
            )

    def test_supervise_requires_a_plan(self):
        with pytest.raises(ValidationError, match="supervise requires"):
            build_fabric(make_pool(), None, supervise=True)

    def test_bad_plan_type(self):
        with pytest.raises(ValidationError, match="plan must be"):
            build_fabric(make_pool(), plan="by-rack")

    def test_bad_config_type(self):
        with pytest.raises(ValidationError, match="config must be"):
            build_fabric(make_pool(), config={"batch_window": 0.001})

    def test_unknown_policy_name(self):
        with pytest.raises(ValidationError, match="unknown policy"):
            build_fabric(make_pool(), policy="quantum-annealer")

    def test_proc_workers_refuse_callable_policies(self):
        # Arbitrary code never crosses the process boundary.
        with pytest.raises(ValidationError, match="wire policy name"):
            build_fabric(make_pool(), workers="proc", policy=OnlineHeuristic)

    def test_worker_kinds_registry(self):
        assert WORKER_KINDS == ("thread", "aio", "proc")


class TestAssembly:
    def test_no_plan_builds_a_single_service(self):
        built = build_fabric(make_pool())
        assert isinstance(built.service, PlacementService)
        assert built.workers == "thread"
        assert built.transport == "thread"
        assert built.supervisor is None
        assert built.coord_server is None

    def test_zero_shards_means_unsharded(self):
        assert isinstance(build_fabric(make_pool(), 0).service, PlacementService)

    def test_int_plan_builds_that_many_shards(self):
        built = build_fabric(make_pool(), 2)
        assert isinstance(built.service, ShardedPlacementFabric)
        assert len(built.service.shards) == 2

    def test_service_config_is_wrapped_into_fabric_config(self):
        service_config = ServiceConfig(batch_window=0.003, max_batch=7)
        built = build_fabric(make_pool(), 2, config=service_config)
        for shard in built.service.shards:
            assert shard.service.config.batch_window == 0.003
            assert shard.service.config.max_batch == 7

    def test_fabric_config_passes_through(self):
        config = FabricConfig(speculation=2)
        built = build_fabric(make_pool(), 2, config=config)
        assert built.service.config is config

    def test_supervisor_attached_but_not_started(self):
        built = build_fabric(make_pool(), 2, supervise=True)
        assert isinstance(built.supervisor, FabricSupervisor)
        assert not built.supervisor.running

    def test_named_policy_resolves_for_in_process_workers(self):
        built = build_fabric(make_pool(), 2, policy="heuristic")
        assert isinstance(built.service, ShardedPlacementFabric)

    def test_aio_workers_default_to_the_aio_transport(self):
        built = build_fabric(make_pool(), 2, workers="aio")
        assert built.transport == "aio"
        endpoint = built.serve()
        assert isinstance(endpoint, AioServiceEndpoint)

    def test_serve_transport_override(self):
        built = build_fabric(make_pool(), 2, workers="aio")
        endpoint = built.serve(transport="thread")
        assert isinstance(endpoint, ServiceEndpoint)


class TestLifecycle:
    @pytest.mark.parametrize("workers", ["thread", "aio"])
    def test_start_place_shutdown(self, workers):
        built = build_fabric(
            make_pool(),
            RackGroupPlan(2),
            workers=workers,
            config=ServiceConfig(batch_window=0.001),
        )
        built.start()
        try:
            ticket = built.service.submit(
                PlaceRequest(demand=(1, 0, 0), request_id=77)
            )
            decision = ticket.result(timeout=10.0)
            assert decision.placed
        finally:
            assert built.shutdown() == 0
        assert built.worker_exit_codes is None  # in-process: nothing to reap

    def test_supervised_lifecycle(self):
        built = build_fabric(make_pool(), 2, supervise=True)
        built.start()
        try:
            assert built.supervisor.running
        finally:
            assert built.shutdown() == 0
        assert not built.supervisor.running

    def test_served_end_to_end(self):
        from repro.service.transports import resolve_transport

        built = build_fabric(
            make_pool(), 2, config=ServiceConfig(batch_window=0.001)
        )
        built.start()
        endpoint = built.serve()
        endpoint.start()
        try:
            host, port = endpoint.address
            client = resolve_transport("thread").connect(
                host, port, codec="auto"
            )
            try:
                assert client.codec == "binary"
                decision = client.place(
                    PlaceRequest(demand=(1, 1, 0), request_id=88)
                )
                assert decision.placed
                assert len(client.shards()) == 2
            finally:
                client.close()
        finally:
            endpoint.stop()
            built.shutdown()

"""Tests for the incremental ClusterState (aggregates, leases, snapshots)."""

import numpy as np
import pytest

from repro.cluster import PoolSpec, ResourcePool, VMTypeCatalog, random_pool
from repro.core import OnlineHeuristic
from repro.core.problem import Allocation, VirtualClusterRequest
from repro.service import ClusterState
from repro.util.errors import CapacityError, ValidationError


@pytest.fixture
def state(paper_pool) -> ClusterState:
    return ClusterState.from_pool(paper_pool)


def alloc_one(state, node, vm_type, count=1):
    matrix = np.zeros((state.num_nodes, state.num_types), dtype=np.int64)
    matrix[node, vm_type] = count
    return Allocation.from_matrix(matrix, state.distance_matrix)


class TestIncrementalAggregates:
    def test_fresh_state_matches_pool(self, paper_pool, state):
        assert np.array_equal(state.remaining, paper_pool.remaining)
        assert np.array_equal(state.available, paper_pool.available)

    def test_allocate_updates_all_aggregates(self, state):
        node = int(np.argmax(state.remaining.sum(axis=1)))
        vm_type = int(np.argmax(state.remaining[node]))
        before_avail = state.available
        rack = state.topology.rack_of(node)
        before_rack = state.rack_free[rack].copy()
        state.allocate(alloc_one(state, node, vm_type).matrix)
        assert state.available[vm_type] == before_avail[vm_type] - 1
        assert state.rack_free[rack][vm_type] == before_rack[vm_type] - 1
        state.verify_consistency(check_leases=False)

    def test_release_restores_aggregates(self, state):
        node = int(np.argmax(state.remaining.sum(axis=1)))
        vm_type = int(np.argmax(state.remaining[node]))
        matrix = alloc_one(state, node, vm_type).matrix
        before = state.available
        state.allocate(matrix)
        state.release(matrix)
        assert np.array_equal(state.available, before)
        state.verify_consistency(check_leases=False)

    def test_version_bumps_on_every_mutation(self, state):
        node = int(np.argmax(state.remaining.sum(axis=1)))
        vm_type = int(np.argmax(state.remaining[node]))
        matrix = alloc_one(state, node, vm_type).matrix
        v0 = state.version
        state.allocate(matrix)
        assert state.version == v0 + 1
        state.release(matrix)
        assert state.version == v0 + 2

    def test_remaining_is_read_only(self, state):
        with pytest.raises(ValueError):
            state.remaining[0, 0] = 99

    def test_failed_allocate_leaves_aggregates_intact(self, state):
        matrix = np.zeros((state.num_nodes, state.num_types), dtype=np.int64)
        matrix[0, 0] = 10_000
        before = state.available
        with pytest.raises(CapacityError):
            state.allocate(matrix)
        assert np.array_equal(state.available, before)
        assert state.version == 0
        state.verify_consistency(check_leases=False)

    def test_rack_free_sums_to_available(self, state):
        assert np.array_equal(state.rack_free.sum(axis=0), state.available)


class TestLeaseLedger:
    def test_allocate_and_release_lease(self, state):
        node = int(np.argmax(state.remaining.sum(axis=1)))
        vm_type = int(np.argmax(state.remaining[node]))
        allocation = alloc_one(state, node, vm_type)
        state.allocate_lease(7, allocation)
        assert state.num_leases == 1
        assert 7 in state.leases
        returned = state.release_lease(7)
        assert returned is allocation
        assert state.num_leases == 0
        state.verify_consistency()

    def test_duplicate_lease_id_rejected(self, state):
        node = int(np.argmax(state.remaining.sum(axis=1)))
        vm_type = int(np.argmax(state.remaining[node]))
        state.allocate_lease(1, alloc_one(state, node, vm_type))
        with pytest.raises(ValidationError):
            state.allocate_lease(1, alloc_one(state, node, vm_type))

    def test_unknown_release_rejected(self, state):
        with pytest.raises(ValidationError):
            state.release_lease(404)

    def test_swap_lease_replaces_allocation(self, state):
        nodes = np.argsort(-state.remaining.sum(axis=1))[:2]
        vm_type = int(np.argmax(state.remaining[nodes[0]]))
        state.allocate_lease(3, alloc_one(state, int(nodes[0]), vm_type))
        replacement = alloc_one(state, int(nodes[1]),
                                int(np.argmax(state.remaining[nodes[1]])))
        old = state.swap_lease(3, replacement)
        assert state.leases[3] is replacement
        assert old.matrix.sum() == 1
        state.verify_consistency()

    def test_adopt_lease_does_not_change_capacity(self, paper_pool):
        heuristic = OnlineHeuristic()
        allocation = heuristic.place([1, 1, 0], paper_pool)
        restored = ClusterState(
            paper_pool.topology,
            paper_pool.catalog,
            distance_model=paper_pool.distance_model,
            allocated=allocation.matrix,
        )
        before = restored.available
        restored.adopt_lease(9, allocation)
        assert np.array_equal(restored.available, before)
        restored.verify_consistency()

    def test_adopt_lease_coverage_is_cumulative(self, paper_pool):
        # Each copy fits under C on its own, but the second on top of the
        # first claims more than C holds — adoption must refuse it so the
        # ledger always sums within the allocated matrix.
        heuristic = OnlineHeuristic()
        allocation = heuristic.place([1, 1, 0], paper_pool)
        restored = ClusterState(
            paper_pool.topology,
            paper_pool.catalog,
            distance_model=paper_pool.distance_model,
            allocated=allocation.matrix,
        )
        restored.adopt_lease(1, allocation)
        with pytest.raises(ValidationError):
            restored.adopt_lease(2, allocation)
        restored.verify_consistency()


class TestSnapshots:
    def test_snapshot_restore_round_trip(self, state):
        node = int(np.argmax(state.remaining.sum(axis=1)))
        vm_type = int(np.argmax(state.remaining[node]))
        state.allocate_lease(1, alloc_one(state, node, vm_type))
        snap = state.snapshot_state()
        state.release_lease(1)
        state.restore_state(snap)
        assert state.version == snap.version
        assert state.num_leases == 1
        assert np.array_equal(state.allocated, snap.allocated)
        state.verify_consistency()

    def test_copy_is_independent(self, state):
        clone = state.copy()
        node = int(np.argmax(state.remaining.sum(axis=1)))
        vm_type = int(np.argmax(state.remaining[node]))
        state.allocate(alloc_one(state, node, vm_type).matrix)
        assert clone.version != state.version or np.array_equal(
            clone.remaining, state.remaining
        ) is False
        clone.verify_consistency(check_leases=False)


class TestRandomizedConsistency:
    """Satellite: after any interleaving of allocate/release operations the
    incremental state must exactly match a freshly constructed ResourcePool."""

    def test_random_interleaving_matches_fresh_pool(self):
        catalog = VMTypeCatalog.ec2_default()
        pool = random_pool(
            PoolSpec(racks=3, nodes_per_rack=8, capacity_high=3),
            catalog,
            seed=101,
        )
        state = ClusterState.from_pool(pool)
        heuristic = OnlineHeuristic()
        rng = np.random.default_rng(2024)
        next_id = 0
        for step in range(200):
            do_release = state.num_leases > 0 and (
                rng.random() < 0.4 or state.available.sum() < 4
            )
            if do_release:
                victim = int(rng.choice(sorted(state.leases)))
                state.release_lease(victim)
            else:
                demand = rng.integers(0, 3, size=state.num_types)
                if demand.sum() == 0:
                    demand[int(rng.integers(state.num_types))] = 1
                if not state.can_satisfy(demand):
                    continue
                allocation = heuristic.place(
                    VirtualClusterRequest(demand=demand), state
                )
                if allocation is None:
                    continue
                state.allocate_lease(next_id, allocation)
                next_id += 1
            # The oracle: a pool rebuilt from scratch with the same C.
            fresh = ResourcePool(
                pool.topology,
                catalog,
                distance_model=pool.distance_model,
                allocated=state.allocated,
            )
            assert np.array_equal(state.remaining, fresh.remaining), step
            assert np.array_equal(state.available, fresh.available), step
            state.verify_consistency()

"""Exposition formats for :class:`~repro.obs.registry.MetricsRegistry`.

Two formats, both deterministic (families in sorted-name order, label sets
in sorted order, floats via ``repr``) so seeded runs export byte-identical
text:

* **Prometheus text** (:func:`to_prometheus`) — the 0.0.4 text format:
  ``# HELP`` / ``# TYPE`` headers, one sample per line, histograms expanded
  to ``_bucket{le=...}`` / ``_sum`` / ``_count``.
* **line-JSON** (:func:`to_json_lines`) — one compact JSON document per
  family per line, following the ``repro.service.api`` codec conventions
  (``json.dumps(..., separators=(",", ":"))``, sorted keys); the natural
  format for programmatic consumers on the service's line-delimited TCP
  transport.

Each format has a parser (:func:`parse_prometheus`,
:func:`parse_json_lines`) returning the same flattened sample mapping as
``registry.flatten()``, which is what the round-trip tests compare.
"""

from __future__ import annotations

import json
import re

from repro.obs.registry import HISTOGRAM, MetricsRegistry, format_bound
from repro.util.errors import ValidationError

Samples = dict[tuple[str, tuple[tuple[str, str], ...]], float]


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _render_labels(pairs: tuple[tuple[str, str], ...]) -> str:
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape(value)}"' for name, value in pairs)
    return "{" + body + "}"


def _render_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render every family in the Prometheus text exposition format."""
    lines: list[str] = []
    for family in registry.families():
        lines.append(f"# HELP {family.name} {_escape(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for values, inst in family.samples():
            base = tuple(zip(family.label_names, values))
            if family.kind == HISTOGRAM:
                for bound, cum in inst.cumulative():
                    labels = _render_labels(base + (("le", format_bound(bound)),))
                    lines.append(f"{family.name}_bucket{labels} {cum}")
                lines.append(
                    f"{family.name}_sum{_render_labels(base)} {_render_value(inst.sum)}"
                )
                lines.append(f"{family.name}_count{_render_labels(base)} {inst.count}")
            else:
                lines.append(
                    f"{family.name}{_render_labels(base)} {_render_value(inst.value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def parse_prometheus(text: str) -> Samples:
    """Parse Prometheus exposition text back into the flattened sample map."""
    out: Samples = {}
    # Split strictly on "\n" (not splitlines): escaped label values may
    # contain other Unicode line separators, which are sample content.
    for raw in text.split("\n"):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValidationError(f"unparseable exposition line: {raw!r}")
        labels = tuple(
            sorted(
                (name, _unescape(value))
                for name, value in _LABEL_RE.findall(match.group("labels") or "")
            )
        )
        out[(match.group("name"), labels)] = _parse_value(match.group("value"))
    return out


def flatten_sorted(registry: MetricsRegistry) -> Samples:
    """``registry.flatten()`` with label tuples sorted — the canonical form
    both parsers produce, used as the round-trip comparison key."""
    return {
        (name, tuple(sorted(labels))): value
        for (name, labels), value in registry.flatten().items()
    }


def to_json_lines(registry: MetricsRegistry) -> str:
    """One compact JSON document per family per line (codec conventions of
    ``repro.service.api``: compact separators, sorted keys)."""
    lines = []
    for family in registry.families():
        samples = []
        for values, inst in family.samples():
            labels = dict(zip(family.label_names, values))
            if family.kind == HISTOGRAM:
                samples.append(
                    {
                        "labels": labels,
                        "buckets": [
                            [format_bound(bound), cum]
                            for bound, cum in inst.cumulative()
                        ],
                        "sum": inst.sum,
                        "count": inst.count,
                    }
                )
            else:
                samples.append({"labels": labels, "value": inst.value})
        doc = {
            "name": family.name,
            "kind": family.kind,
            "help": family.help,
            "samples": samples,
        }
        lines.append(json.dumps(doc, separators=(",", ":"), sort_keys=True))
    return "\n".join(lines) + "\n" if lines else ""


def parse_json_lines(text: str) -> Samples:
    """Parse :func:`to_json_lines` output into the flattened sample map."""
    out: Samples = {}
    for raw in text.split("\n"):
        line = raw.strip()
        if not line:
            continue
        doc = json.loads(line)
        name = doc["name"]
        for sample in doc["samples"]:
            base = tuple(sorted(sample["labels"].items()))
            if doc["kind"] == HISTOGRAM:
                for le, cum in sample["buckets"]:
                    out[(name + "_bucket", tuple(sorted(base + (("le", le),))))] = (
                        float(cum)
                    )
                out[(name + "_sum", base)] = float(sample["sum"])
                out[(name + "_count", base)] = float(sample["count"])
            else:
                out[(name, base)] = float(sample["value"])
    return out


def render(registry: MetricsRegistry, format: str = "prom") -> str:
    """Dispatch: ``"prom"`` → Prometheus text, ``"json"`` → line-JSON."""
    if format == "prom":
        return to_prometheus(registry)
    if format == "json":
        return to_json_lines(registry)
    raise ValidationError(f"unknown exposition format {format!r}")

"""Tests for the virtual-cluster bridge between placement and MapReduce."""

import numpy as np
import pytest

from repro.cluster.vmtypes import VMTypeCatalog
from repro.core.problem import Allocation
from repro.mapreduce.network import DistanceBand
from repro.mapreduce.vmcluster import VMInstance, VirtualCluster
from repro.util.errors import ValidationError

from tests.conftest import make_pool


@pytest.fixture
def setup():
    pool = make_pool(2, 2, capacity=(2, 2, 1))
    catalog = VMTypeCatalog.ec2_default()
    m = np.zeros((4, 3), dtype=np.int64)
    m[0] = [1, 1, 0]  # 1 small + 1 medium on node 0
    m[1] = [0, 1, 0]  # 1 medium on node 1 (same rack)
    m[2] = [0, 0, 1]  # 1 large on node 2 (other rack)
    alloc = Allocation.from_matrix(m, pool.distance_matrix)
    cluster = VirtualCluster.from_allocation(alloc, pool.distance_matrix, catalog)
    return pool, alloc, cluster


class TestFromAllocation:
    def test_vm_expansion(self, setup):
        _, _, cluster = setup
        assert cluster.num_vms == 4
        assert [vm.node_id for vm in cluster.vms] == [0, 0, 1, 2]
        assert [vm.type_index for vm in cluster.vms] == [0, 1, 1, 2]

    def test_affinity_is_dc(self, setup):
        _, alloc, cluster = setup
        assert cluster.affinity == alloc.distance

    def test_slots_from_catalog(self, setup):
        _, _, cluster = setup
        # small: 1 map slot; medium: 2 each; large: 4.
        assert cluster.total_map_slots == 1 + 2 + 2 + 4
        assert cluster.total_reduce_slots == 1 + 1 + 1 + 2

    def test_vm_distance_same_node_zero(self, setup):
        _, _, cluster = setup
        assert cluster.vm_distance(0, 1) == 0.0

    def test_vm_distance_matches_node_distance(self, setup):
        pool, _, cluster = setup
        assert cluster.vm_distance(0, 2) == pool.distance_matrix[0, 1]
        assert cluster.vm_distance(0, 3) == pool.distance_matrix[0, 2]

    def test_bands(self, setup):
        _, _, cluster = setup
        assert cluster.band(0, 1) == DistanceBand.SAME_NODE
        assert cluster.band(0, 2) == DistanceBand.SAME_RACK
        assert cluster.band(0, 3) == DistanceBand.CROSS_RACK

    def test_distance_matrix_read_only(self, setup):
        _, _, cluster = setup
        with pytest.raises(ValueError):
            cluster.distance[0, 1] = 9.0


class TestNearest:
    def test_prefers_same_node(self, setup):
        _, _, cluster = setup
        assert cluster.nearest(0, [1, 2, 3]) == 1

    def test_tie_breaks_lowest_id(self, setup):
        _, _, cluster = setup
        # VMs 0 and 1 are both on node 0 (distance 0 from each other).
        assert cluster.nearest(2, [0, 1]) in (0, 1)
        assert cluster.nearest(2, [1, 0]) == cluster.nearest(2, [0, 1])

    def test_empty_candidates_rejected(self, setup):
        _, _, cluster = setup
        with pytest.raises(ValidationError):
            cluster.nearest(0, [])


class TestValidation:
    def test_empty_cluster_rejected(self):
        with pytest.raises(ValidationError):
            VirtualCluster([], np.zeros((0, 0)), affinity=0.0)

    def test_distance_shape_mismatch_rejected(self):
        vm = VMInstance(vm_id=0, node_id=0, type_index=0, map_slots=1, reduce_slots=1)
        with pytest.raises(ValidationError):
            VirtualCluster([vm], np.zeros((2, 2)), affinity=0.0)

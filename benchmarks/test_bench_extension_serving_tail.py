"""Extension bench: serving-path tail latency after the wire-speed pass.

PR 5 bought 3.4x closed-loop throughput with the sharded fabric but paid
for it in the tail: at 480 nodes / 8 shards the fabric's closed-loop p99
was 75.4 ms against the single service's 41.3 ms. Profiling this session
found two distinct causes:

* **Rebalance starvation** — every 200 ms the cross-shard sweep ran up to
  ``rebalance_max_pairs`` Theorem-2 exchange searches *holding two shard
  locks each*, ~230 ms of lock-shadowed work per sweep even when every
  lease was already at distance 0 and no exchange could possibly gain.
  Fixed in the fabric (pairs whose combined distance cannot clear the
  min-gain bar are pruned before any lock is taken).
* **Harness interference** — the thread-per-client closed loop runs 24
  client threads against 8 scheduler threads on the same interpreter; on
  small hosts a scheduler can wait tens of milliseconds behind runnable
  client threads before it sees a drained batch, and that harness-induced
  stall lands in the measured *server* tail. The ``closed-events`` load
  generator drives the identical workload (same demands, holds, seeds,
  in-flight bound) from one event-driven thread, so the percentiles
  measure the serving path rather than the harness (``docs/PERF.md``).

This bench therefore runs the 480-node / 8-shard workload of
``test_bench_extension_sharding.py`` (same pool seed, catalog, plan,
service config, closed-loop load, 600 requests, 24 in flight) under both
drivers and holds the results against the *frozen* PR-5 numbers (inlined
below, so regenerating ``sharding_bench.json`` cannot move the goalposts):

* ``closed`` (thread-per-client, like-for-like with the PR-5 run) carries
  the throughput claim — no mean-throughput regression;
* ``closed-events`` carries the tail claim — fabric p99 at least 2x
  better than the frozen PR-5 fabric p99, and within ~2x of the single
  service measured the same way (the tentpole goal);
* a ``speculation=2`` events run records what speculative dual-shard
  admission adds on this workload.

Results land in ``benchmarks/results/serving_tail_bench.json``. Smoke runs
(``SERVING_TAIL_BENCH_SMOKE=1``) shrink the workload and skip the
committed file and the headline assertions.
"""

import functools
import json
import os
from pathlib import Path

from repro.analysis import format_table
from repro.cluster import PoolSpec, VMTypeCatalog, random_pool
from repro.obs import MetricsRegistry
from repro.service import (
    ClusterState,
    LoadGenConfig,
    PlacementService,
    ServiceConfig,
    build_fabric,
    run_loadgen,
)
from repro.service.shard import FabricConfig, RackGroupPlan

from benchmarks.conftest import emit

SMOKE = os.environ.get("SERVING_TAIL_BENCH_SMOKE") == "1"
#: (racks_per_cloud, nodes_per_rack), two clouds — 480 nodes on full runs.
SIZE = (2, 4) if SMOKE else (16, 15)
NUM_SHARDS = 2 if SMOKE else 8
NUM_REQUESTS = 30 if SMOKE else 600
CONCURRENCY = 4 if SMOKE else 24
RESULTS_PATH = Path(__file__).parent / "results" / "serving_tail_bench.json"

#: The PR-5 480-node record from ``sharding_bench.json`` as committed by
#: PR 5, frozen here because this PR regenerates that file.
PR5_BASELINE = {
    "fabric_p99_ms": 75.41959300971936,
    "fabric_throughput_rps": 672.3669307507267,
    "fabric_acceptance": 1.0,
    "single_p99_ms": 41.27617092908622,
    "single_acceptance": 1.0,
}

CATALOG = VMTypeCatalog.ec2_default()

SERVICE_CONFIG = ServiceConfig(
    batch_window=0.002, max_batch=64, enable_transfers=True, queue_capacity=1024
)


def make_pool():
    racks, nodes_per_rack = SIZE
    return random_pool(
        PoolSpec(
            racks=racks,
            nodes_per_rack=nodes_per_rack,
            clouds=2,
            capacity_low=1,
            capacity_high=4,
        ),
        CATALOG,
        seed=37,
    )


def loadgen_config(mode: str) -> LoadGenConfig:
    return LoadGenConfig(
        num_requests=NUM_REQUESTS,
        mode=mode,
        concurrency=CONCURRENCY,
        mean_hold=0.05,
        demand_high=3,
        seed=41,
    )


def run_single(mode: str):
    service = PlacementService(
        ClusterState.from_pool(make_pool()),
        config=SERVICE_CONFIG,
        obs=MetricsRegistry(),
    )
    service.start()
    try:
        return run_loadgen(service, loadgen_config(mode))
    finally:
        service.drain()


def run_fabric(mode: str, speculation: int):
    built = build_fabric(
        make_pool(),
        RackGroupPlan(NUM_SHARDS),
        workers="thread",
        config=FabricConfig(
            rebalance_interval=0.2,
            speculation=speculation,
            service=SERVICE_CONFIG,
        ),
        obs=MetricsRegistry(),
    )
    built.start()
    try:
        return run_loadgen(built.service, loadgen_config(mode))
    finally:
        built.service.drain()
        built.shutdown()


def record(name, mode, report):
    return {
        "config": name,
        "mode": mode,
        "throughput_rps": report.throughput,
        "acceptance": report.acceptance_rate,
        "mean_dc": report.mean_distance,
        "p50_ms": report.latency_p50 * 1000,
        "p99_ms": report.latency_p99 * 1000,
    }


def run_comparison():
    return [
        record("fabric threads", "closed", run_fabric("closed", 1)),
        record("single events", "closed-events", run_single("closed-events")),
        record("fabric events", "closed-events", run_fabric("closed-events", 1)),
        record(
            "fabric events spec=2",
            "closed-events",
            run_fabric("closed-events", 2),
        ),
    ]


def test_serving_tail_beats_pr5_baseline(benchmark):
    records = benchmark.pedantic(
        functools.partial(run_comparison), rounds=1, iterations=1
    )
    rows = [
        [
            rec["config"],
            rec["mode"],
            f"{rec['throughput_rps']:.0f}",
            f"{rec['acceptance']:.3f}",
            f"{rec['mean_dc']:.3f}",
            f"{rec['p50_ms']:.2f}",
            f"{rec['p99_ms']:.2f}",
        ]
        for rec in records
    ]
    rows.append(
        [
            "fabric (PR-5)",
            "closed",
            f"{PR5_BASELINE['fabric_throughput_rps']:.0f}",
            f"{PR5_BASELINE['fabric_acceptance']:.3f}",
            "-",
            "-",
            f"{PR5_BASELINE['fabric_p99_ms']:.2f}",
        ]
    )
    nodes = SIZE[0] * SIZE[1] * 2  # two clouds
    emit(
        f"Extension — serving tail at {nodes} nodes / {NUM_SHARDS} shards "
        "(closed loop, both drivers)",
        format_table(
            ["config", "driver", "rps", "acceptance", "DC", "p50 ms", "p99 ms"],
            rows,
        ),
    )
    if not SMOKE:
        RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
        RESULTS_PATH.write_text(
            json.dumps(
                {
                    "nodes": nodes,
                    "shards": NUM_SHARDS,
                    "requests": NUM_REQUESTS,
                    "concurrency": CONCURRENCY,
                    "methodology": (
                        "closed = thread-per-client driver (like-for-like "
                        "with the PR-5 sharding_bench run); closed-events = "
                        "single event-driven driver measuring the serving "
                        "path without harness GIL interference "
                        "(docs/PERF.md)"
                    ),
                    "pr5_baseline": PR5_BASELINE,
                    "configs": records,
                },
                indent=1,
            )
        )
    by_name = {rec["config"]: rec for rec in records}
    for rec in records:
        assert rec["acceptance"] > 0
    if not SMOKE:
        threads = by_name["fabric threads"]
        events = by_name["fabric events"]
        single = by_name["single events"]
        # Throughput: no mean-throughput regression. Absolute rps on a
        # shared runner swings 2x with ambient load, so the *assertion* is
        # the noise-cancelling relative form — the fabric must keep its
        # multi-shard speedup over the single service measured in the same
        # run — while the committed JSON carries the absolute figures for
        # the PR-5 comparison (regenerate on an idle host).
        assert events["throughput_rps"] >= 2 * single["throughput_rps"]
        # Tail: the serving path answers at least 2x faster than the PR-5
        # fabric p99.
        assert events["p99_ms"] <= PR5_BASELINE["fabric_p99_ms"] / 2
        # Tentpole goal: fabric tail within ~2x of the single service
        # measured the same way (floor absorbs sub-ms timer noise when the
        # single service draws an unusually clean run).
        assert events["p99_ms"] <= max(2 * single["p99_ms"], 15.0)
        # Acceptance delta 0 across every configuration.
        assert (
            threads["acceptance"]
            == events["acceptance"]
            == single["acceptance"]
        )

"""Tests for task-level fault injection and engine recovery."""

import numpy as np
import pytest

from repro.cluster.vmtypes import VMTypeCatalog
from repro.core.problem import Allocation
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.faults import NO_FAULTS, TaskFaultModel, VMDeath
from repro.mapreduce.job import MB, MapReduceJob
from repro.mapreduce.tasks import TaskState
from repro.mapreduce.vmcluster import VirtualCluster
from repro.util.errors import JobFailedError, ValidationError

from tests.conftest import make_pool


def build_cluster(layout, capacity=(4, 4, 2), racks=2, nodes=2):
    pool = make_pool(racks, nodes, capacity=capacity)
    catalog = VMTypeCatalog.ec2_default()
    m = np.zeros((pool.num_nodes, 3), dtype=np.int64)
    for node, counts in layout.items():
        m[node] = counts
    alloc = Allocation.from_matrix(m, pool.distance_matrix)
    return VirtualCluster.from_allocation(alloc, pool.distance_matrix, catalog)


def small_job(**kwargs):
    defaults = dict(
        name="test",
        input_bytes=8 * MB,
        block_size=2 * MB,  # 4 map tasks
        num_reduces=1,
        map_selectivity=0.5,
        map_cost_s_per_mb=0.1,
        reduce_cost_s_per_mb=0.1,
    )
    defaults.update(kwargs)
    return MapReduceJob(**defaults)


@pytest.fixture
def cluster():
    return build_cluster({0: [0, 2, 0], 2: [0, 2, 0]})  # 4 medium VMs, 2 racks


class TestModelValidation:
    def test_probability_bounds(self):
        with pytest.raises(ValidationError):
            TaskFaultModel(map_failure_probability=1.5)
        with pytest.raises(ValidationError):
            TaskFaultModel(fetch_failure_probability=-0.1)

    def test_vm_death_validation(self):
        with pytest.raises(ValidationError):
            VMDeath(vm_id=-1, time=1.0)
        with pytest.raises(ValidationError):
            VMDeath(vm_id=0, time=-1.0)

    def test_vm_deaths_accept_tuples(self):
        model = TaskFaultModel(vm_deaths=[(1, 5.0)])
        assert model.vm_deaths == (VMDeath(vm_id=1, time=5.0),)

    def test_enabled(self):
        assert not NO_FAULTS.enabled
        assert TaskFaultModel(map_failure_probability=0.1).enabled
        assert TaskFaultModel(vm_deaths=[(0, 1.0)]).enabled

    def test_zero_probability_draw_consumes_no_randomness(self):
        model = TaskFaultModel(map_failure_probability=0.0, seed=1)
        state = model.rng.bit_generator.state["state"]["state"]
        assert model.draw_map_failure() is None
        assert model.rng.bit_generator.state["state"]["state"] == state


class TestDisabledIsBitIdentical:
    def test_disabled_model_matches_no_model(self, cluster):
        job = small_job(num_reduces=2)
        plain = MapReduceEngine(cluster, seed=3).run(job, hdfs_seed=3)
        gated = MapReduceEngine(
            cluster, seed=3, faults=TaskFaultModel(seed=99)
        ).run(job, hdfs_seed=3)
        assert gated.runtime == plain.runtime
        assert [m.finish_time for m in gated.map_records] == [
            m.finish_time for m in plain.map_records
        ]
        assert [r.finish_time for r in gated.reduce_records] == [
            r.finish_time for r in plain.reduce_records
        ]
        assert gated.recovery is None

    def test_faults_do_not_perturb_hdfs_layout(self, cluster):
        job = small_job()
        plain = MapReduceEngine(cluster, seed=3).run(job, hdfs_seed=3)
        faulty = MapReduceEngine(
            cluster,
            seed=3,
            faults=TaskFaultModel(map_failure_probability=0.5, seed=11),
        ).run(job, hdfs_seed=3)
        # Same block → same first-choice VM ordering comes from the same
        # main-stream draws; only timing differs under faults.
        assert len(faulty.map_records) == len(plain.map_records)


class TestTaskFailureRecovery:
    def test_map_failures_recovered(self, cluster):
        result = MapReduceEngine(
            cluster,
            seed=2,
            faults=TaskFaultModel(map_failure_probability=0.4, seed=5),
        ).run(small_job(), hdfs_seed=2)
        assert all(m.state is TaskState.DONE for m in result.map_records)
        rec = result.recovery
        assert rec is not None
        assert rec.map_failures > 0
        assert rec.wasted_time > 0
        assert sum(rec.map_attempts.values()) == len(result.map_records)
        assert any(k > 1 for k in rec.map_attempts)

    def test_failed_runs_slower_than_clean(self, cluster):
        job = small_job()
        clean = MapReduceEngine(cluster, seed=2).run(job, hdfs_seed=2)
        faulty = MapReduceEngine(
            cluster,
            seed=2,
            faults=TaskFaultModel(map_failure_probability=0.5, seed=5),
        ).run(job, hdfs_seed=2)
        assert faulty.runtime > clean.runtime
        assert faulty.slowdown_vs(clean.runtime) > 1.0

    def test_reduce_failures_recovered(self, cluster):
        result = MapReduceEngine(
            cluster,
            seed=2,
            faults=TaskFaultModel(reduce_failure_probability=0.6, seed=0),
        ).run(small_job(num_reduces=2), hdfs_seed=2)
        rec = result.recovery
        assert rec.reduce_failures > 0
        assert all(r.state is TaskState.DONE for r in result.reduce_records)
        assert any(r.attempts > 1 for r in result.reduce_records)
        assert sum(rec.reduce_attempts.values()) == 2

    def test_fetch_failures_retried(self, cluster):
        result = MapReduceEngine(
            cluster,
            seed=2,
            faults=TaskFaultModel(fetch_failure_probability=0.3, seed=9),
        ).run(small_job(num_reduces=2), hdfs_seed=2)
        rec = result.recovery
        assert rec.fetch_failures > 0
        assert all(r.state is TaskState.DONE for r in result.reduce_records)

    def test_deterministic_under_fault_seed(self, cluster):
        def run():
            return MapReduceEngine(
                cluster,
                seed=2,
                faults=TaskFaultModel(
                    map_failure_probability=0.3,
                    reduce_failure_probability=0.2,
                    fetch_failure_probability=0.1,
                    seed=13,
                ),
            ).run(small_job(num_reduces=2), hdfs_seed=2)

        a, b = run(), run()
        assert a.runtime == b.runtime
        assert a.recovery.map_attempts == b.recovery.map_attempts
        assert a.recovery.wasted_time == b.recovery.wasted_time

    def test_different_fault_seeds_differ(self, cluster):
        runtimes = set()
        for fault_seed in range(12):
            result = MapReduceEngine(
                cluster,
                seed=2,
                faults=TaskFaultModel(
                    map_failure_probability=0.3, seed=fault_seed
                ),
            ).run(small_job(), hdfs_seed=2)
            runtimes.add(result.runtime)
        assert len(runtimes) > 1

    def test_max_attempts_exhaustion_aborts(self, cluster):
        with pytest.raises(JobFailedError):
            MapReduceEngine(
                cluster,
                seed=2,
                max_attempts=2,
                faults=TaskFaultModel(map_failure_probability=1.0, seed=3),
            ).run(small_job(), hdfs_seed=2)

    def test_max_attempts_one_fails_on_first_fault(self, cluster):
        with pytest.raises(JobFailedError):
            MapReduceEngine(
                cluster,
                seed=2,
                max_attempts=1,
                faults=TaskFaultModel(map_failure_probability=0.9, seed=3),
            ).run(small_job(), hdfs_seed=2)


class TestVMDeath:
    def test_death_invalidates_and_blacklists(self, cluster):
        clean = MapReduceEngine(cluster, seed=4).run(
            small_job(num_reduces=2), hdfs_seed=4
        )
        # Kill a VM after some maps finished but before the job ends.
        mid = 0.5 * clean.runtime
        result = MapReduceEngine(
            cluster,
            seed=4,
            faults=TaskFaultModel(vm_deaths=[(0, mid)], seed=4),
        ).run(small_job(num_reduces=2), hdfs_seed=4)
        rec = result.recovery
        assert rec.vm_deaths == 1
        assert all(m.state is TaskState.DONE for m in result.map_records)
        assert all(r.state is TaskState.DONE for r in result.reduce_records)
        # Nothing may finish on the dead VM after its death.
        for m in result.map_records:
            if m.vm_id == 0:
                assert m.finish_time <= mid
        assert result.runtime >= clean.runtime

    def test_dead_reducer_relocates(self, cluster):
        clean = MapReduceEngine(cluster, seed=4, reducer_policy="slots").run(
            small_job(num_reduces=1), hdfs_seed=4
        )
        reducer_vm = clean.reduce_records[0].vm_id
        result = MapReduceEngine(
            cluster,
            seed=4,
            reducer_policy="slots",
            faults=TaskFaultModel(
                vm_deaths=[(reducer_vm, 0.5 * clean.runtime)], seed=4
            ),
        ).run(small_job(num_reduces=1), hdfs_seed=4)
        rec = result.recovery
        assert rec.reducers_relocated == 1
        moved = result.reduce_records[0]
        assert moved.state is TaskState.DONE
        assert moved.vm_id != reducer_vm
        assert moved.attempts == 2

    def test_all_vms_dead_aborts(self, cluster):
        with pytest.raises(JobFailedError):
            MapReduceEngine(
                cluster,
                seed=4,
                faults=TaskFaultModel(
                    vm_deaths=[(v, 0.01) for v in range(4)], seed=4
                ),
            ).run(small_job(), hdfs_seed=4)

    def test_duplicate_death_events_count_once(self, cluster):
        clean = MapReduceEngine(cluster, seed=4).run(
            small_job(num_reduces=2), hdfs_seed=4
        )
        t1, t2 = 0.3 * clean.runtime, 0.5 * clean.runtime
        result = MapReduceEngine(
            cluster,
            seed=4,
            faults=TaskFaultModel(vm_deaths=[(0, t1), (0, t2)], seed=4),
        ).run(small_job(num_reduces=2), hdfs_seed=4)
        assert result.recovery.vm_deaths == 1

    def test_death_after_job_end_is_noop(self, cluster):
        clean = MapReduceEngine(cluster, seed=4).run(small_job(), hdfs_seed=4)
        result = MapReduceEngine(
            cluster,
            seed=4,
            faults=TaskFaultModel(
                vm_deaths=[(0, clean.runtime * 100.0)], seed=4
            ),
        ).run(small_job(), hdfs_seed=4)
        assert result.runtime == clean.runtime
        assert result.recovery.vm_deaths == 0


class TestRecoveryReport:
    def test_attempt_histograms_cover_all_tasks(self, cluster):
        job = small_job(num_reduces=2)
        result = MapReduceEngine(
            cluster,
            seed=6,
            faults=TaskFaultModel(
                map_failure_probability=0.3,
                reduce_failure_probability=0.3,
                seed=21,
            ),
        ).run(job, hdfs_seed=6)
        rec = result.recovery
        assert sum(rec.map_attempts.values()) == len(result.map_records)
        assert sum(rec.reduce_attempts.values()) == len(result.reduce_records)
        assert rec.total_task_failures == rec.map_failures + rec.reduce_failures
        assert rec.total_faults >= rec.total_task_failures

    def test_record_attempts_match_histogram(self, cluster):
        result = MapReduceEngine(
            cluster,
            seed=6,
            faults=TaskFaultModel(map_failure_probability=0.4, seed=0),
        ).run(small_job(), hdfs_seed=6)
        from collections import Counter

        observed = Counter(m.attempts for m in result.map_records)
        assert dict(observed) == result.recovery.map_attempts

    def test_slowdown_vs_requires_positive_baseline(self, cluster):
        result = MapReduceEngine(cluster, seed=1).run(small_job(), hdfs_seed=1)
        with pytest.raises(ValueError):
            result.slowdown_vs(0.0)

"""Property tests: the vectorized placement kernels are *bit-identical* to
the retained reference implementations.

The contract under test (see ``repro.core.placement.kernels``): for every
pool and request, ``OnlineHeuristic(use_kernels=True)`` returns exactly the
allocation the original per-center Python loop returns — the same bytes in
the matrix, the same center, the same IEEE-754 distance. Likewise
``best_exchange`` vs its per-type loop and the worklist transfer scheduler
vs the full O(k²) re-sweep. Over 200 seeded random cases are checked per
configuration, including partially drained pools, the ``max_vms_per_rack``
spread constraint, and ``stop="first"``.
"""

import numpy as np
import pytest

from repro.cluster import PoolSpec, VMTypeCatalog, random_pool
from repro.cluster.generators import RequestSpec, random_request
from repro.core.placement import kernels
from repro.core.placement.global_opt import GlobalSubOptimizer
from repro.core.placement.greedy import (
    OnlineHeuristic,
    _reference_fill_order,
    _reference_greedy_fill,
    greedy_fill,
)
from repro.core.placement.transfer import (
    _reference_best_exchange,
    _reference_transfer_pair,
    best_exchange,
    transfer_pair,
)
from repro.util.errors import ValidationError
from repro.util.rng import ensure_rng

CATALOG = VMTypeCatalog.ec2_default()


def make_case(seed: int, *, drain: bool = True):
    """One random (pool, request) pair with a varied shape and fill level."""
    rng = ensure_rng(seed)
    spec = PoolSpec(
        racks=int(rng.integers(2, 6)),
        nodes_per_rack=int(rng.integers(3, 11)),
        capacity_high=int(rng.integers(2, 5)),
    )
    pool = random_pool(spec, CATALOG, seed=seed)
    if drain and rng.random() < 0.7:
        # Partially drain the pool so `remaining` differs from capacity —
        # the kernels must track availability, not the static topology.
        usage = rng.integers(0, pool.remaining + 1)
        pool.allocate(usage.astype(np.int64))
    request = random_request(
        RequestSpec(low=0, high=int(rng.integers(2, 7)), min_total=2),
        pool.num_types,
        seed=rng,
    )
    return pool, request


def assert_same_allocation(a, b, context: str) -> None:
    if a is None or b is None:
        assert a is None and b is None, f"{context}: one side placed, other not"
        return
    assert a.matrix.tobytes() == b.matrix.tobytes(), f"{context}: matrices differ"
    assert a.center == b.center, f"{context}: centers differ"
    assert a.distance == b.distance, f"{context}: distances differ (exact ==)"


# --------------------------------------------------------------------- place


@pytest.mark.parametrize(
    "config",
    [
        {"stop": "best"},
        {"stop": "first"},
        {"stop": "best", "max_vms_per_rack": 6},
        {"stop": "first", "max_vms_per_rack": 4},
    ],
    ids=["best", "first", "best-rack6", "first-rack4"],
)
def test_place_bit_identical_over_seeded_cases(config):
    """≥200 cases per config: kernel sweep == reference sweep, byte for byte."""
    placed = 0
    for seed in range(70):
        pool, _ = make_case(seed)
        rng = ensure_rng(10_000 + seed)
        for _ in range(3):
            request = random_request(
                RequestSpec(low=0, high=5, min_total=1), pool.num_types, seed=rng
            )
            fast = OnlineHeuristic(use_kernels=True, **config)
            slow = OnlineHeuristic(use_kernels=False, **config)
            a = fast.place(request, pool)
            b = slow.place(request, pool)
            assert_same_allocation(a, b, f"seed={seed} request={request}")
            if a is not None:
                placed += 1
    # The comparison is vacuous if everything was refused.
    assert placed >= 100


def test_place_bit_identical_on_drained_pool_sequences():
    """Committing each allocation between placements (the Algorithm-2 step-2
    pattern) keeps kernel and reference in lockstep as the pool empties."""
    for seed in range(20):
        pool_fast, _ = make_case(seed, drain=False)
        pool_slow = pool_fast.copy()
        fast = OnlineHeuristic(use_kernels=True)
        slow = OnlineHeuristic(use_kernels=False)
        rng = ensure_rng(20_000 + seed)
        for step in range(8):
            request = random_request(
                RequestSpec(low=0, high=4, min_total=1),
                pool_fast.num_types,
                seed=rng,
            )
            a = fast.place(request, pool_fast)
            b = slow.place(request, pool_slow)
            assert_same_allocation(a, b, f"seed={seed} step={step}")
            if a is not None:
                pool_fast.allocate(a.matrix)
                pool_slow.allocate(b.matrix)


# ------------------------------------------------------------ fill primitives


def test_fill_order_matches_reference():
    for seed in range(40):
        pool, request = make_case(seed)
        dist = pool.distance_matrix
        remaining = pool.remaining
        cache = pool.topology_cache
        rng = ensure_rng(30_000 + seed)
        for center in rng.integers(0, pool.num_nodes, size=3):
            center = int(center)
            ref = _reference_fill_order(center, request, remaining, dist)
            got = kernels.fill_order(center, request, remaining, dist)
            cached = kernels.fill_order(
                center, request, remaining, dist, cache=cache
            )
            np.testing.assert_array_equal(got, ref)
            np.testing.assert_array_equal(cached, ref)


@pytest.mark.parametrize("max_vms_per_rack", [None, 3, 6])
def test_greedy_fill_matches_reference(max_vms_per_rack):
    for seed in range(40):
        pool, request = make_case(seed)
        dist = pool.distance_matrix
        remaining = pool.remaining
        rack_ids = pool.topology.rack_ids
        rng = ensure_rng(40_000 + seed)
        for center in rng.integers(0, pool.num_nodes, size=3):
            center = int(center)
            ref = _reference_greedy_fill(
                center,
                request,
                remaining,
                dist,
                rack_ids=rack_ids,
                max_vms_per_rack=max_vms_per_rack,
            )
            got = greedy_fill(
                center,
                request,
                remaining,
                dist,
                rack_ids=rack_ids,
                max_vms_per_rack=max_vms_per_rack,
            )
            if ref is None:
                assert got is None
            else:
                assert got is not None
                assert got.tobytes() == ref.tobytes()


def test_sweep_cached_equals_uncached():
    """The TopologyCache is a pure accelerator: same winner with or without."""
    for seed in range(30):
        pool, request = make_case(seed)
        remaining = pool.remaining
        dist = pool.distance_matrix
        candidates = np.flatnonzero(remaining.sum(axis=1) > 0)
        with_cache = kernels.sweep_best(
            candidates, request, remaining, dist, cache=pool.topology_cache
        )
        without = kernels.sweep_best(
            candidates, request, remaining, dist, cache=None
        )
        if with_cache is None:
            assert without is None
            continue
        assert without is not None
        assert with_cache[0].tobytes() == without[0].tobytes()
        assert with_cache[1] == without[1]
        assert with_cache[2] == without[2]


def test_sweep_infeasible_returns_none():
    pool, _ = make_case(3, drain=False)
    demand = pool.remaining.sum(axis=0) + 1  # beyond total availability
    candidates = np.arange(pool.num_nodes)
    assert (
        kernels.sweep_best(
            candidates, demand, pool.remaining, pool.distance_matrix
        )
        is None
    )
    assert (
        kernels.sweep_first(
            candidates, demand, pool.remaining, pool.distance_matrix
        )
        is None
    )


def test_rack_cap_without_rack_ids_raises_on_every_path():
    """Regression: the ``max_vms_per_rack requires rack_ids`` check used to
    live inside ``fill_one_rack_limited`` only, so the vectorized sweeps
    with an *empty* candidate list (or one fully screened out) silently
    returned ``None`` instead of flagging the caller bug. The check is now
    eager and shared across every kernel entry point."""
    pool, request = make_case(5, drain=False)
    empty = np.array([], dtype=np.int64)
    for sweep in (kernels.sweep_best, kernels.sweep_first):
        with pytest.raises(ValidationError, match="requires rack_ids"):
            sweep(
                empty,
                request,
                pool.remaining,
                pool.distance_matrix,
                max_vms_per_rack=2,
            )
    with pytest.raises(ValidationError, match="requires rack_ids"):
        kernels.fill_one_rack_limited(
            0, request, pool.remaining, pool.distance_matrix,
            rack_ids=None, max_vms_per_rack=2,
        )
    with pytest.raises(ValidationError, match="requires rack_ids"):
        greedy_fill(
            0, request, pool.remaining, pool.distance_matrix,
            max_vms_per_rack=2,
        )
    with pytest.raises(ValidationError, match="requires rack_ids"):
        _reference_greedy_fill(
            0, request, pool.remaining, pool.distance_matrix,
            max_vms_per_rack=2,
        )


# ------------------------------------------------------------- best_exchange


def _random_pair(seed: int):
    """Two committed allocations with distinct centers, or None."""
    pool, _ = make_case(seed, drain=False)
    rng = ensure_rng(50_000 + seed)
    heuristic = OnlineHeuristic()
    pair = []
    for _ in range(6):
        request = random_request(
            RequestSpec(low=0, high=4, min_total=3), pool.num_types, seed=rng
        )
        alloc = heuristic.place(request, pool)
        if alloc is None:
            continue
        pool.allocate(alloc.matrix)
        if all(alloc.center != a.center for a in pair):
            pair.append(alloc)
        if len(pair) == 2:
            return pool, pair[0], pair[1]
    return None


def test_best_exchange_matches_reference():
    checked = 0
    for seed in range(80):
        case = _random_pair(seed)
        if case is None:
            continue
        pool, a1, a2 = case
        dist = pool.distance_matrix
        got = best_exchange(a1.matrix, a2.matrix, dist, a1.center, a2.center)
        ref = _reference_best_exchange(
            a1.matrix, a2.matrix, dist, a1.center, a2.center
        )
        assert got == ref, f"seed={seed}: {got} != {ref}"
        # Symmetric direction exercises the other argmax orientation.
        got_rev = best_exchange(a2.matrix, a1.matrix, dist, a2.center, a1.center)
        ref_rev = _reference_best_exchange(
            a2.matrix, a1.matrix, dist, a2.center, a1.center
        )
        assert got_rev == ref_rev
        checked += 1
    assert checked >= 30


def test_best_exchange_empty_columns():
    """Types held by only one side must not produce NaN/inf winners."""
    dist = np.array([[0.0, 2.0], [2.0, 0.0]])
    m1 = np.array([[1, 0], [0, 0]], dtype=np.int64)
    m2 = np.array([[0, 0], [0, 1]], dtype=np.int64)
    got = best_exchange(m1, m2, dist, 0, 1)
    ref = _reference_best_exchange(m1, m2, dist, 0, 1)
    assert got == ref


@pytest.mark.parametrize("recenter", [True, False])
def test_transfer_pair_matches_reference(recenter):
    """Fast recentering (inlined ``counts @ D`` argmin) == the original
    ``Allocation.from_matrix`` formulation, bit for bit."""
    checked = 0
    for seed in range(60):
        case = _random_pair(seed)
        if case is None:
            continue
        pool, a1, a2 = case
        dist = pool.distance_matrix
        got = transfer_pair(a1, a2, dist, recenter=recenter)
        ref = _reference_transfer_pair(a1, a2, dist, recenter=recenter)
        assert got.exchanges == ref.exchanges
        assert got.gain == ref.gain
        assert_same_allocation(got.first, ref.first, f"seed={seed} first")
        assert_same_allocation(got.second, ref.second, f"seed={seed} second")
        checked += 1
    assert checked >= 25


# ------------------------------------------------- worklist transfer scheduler


@pytest.mark.parametrize("use_paper_transfer", [False, True])
def test_optimize_transfers_worklist_equivalence(use_paper_transfer):
    """worklist=True skips only provably-identical recomputations: the final
    allocations, round count, and exchange count match the full re-sweep."""
    for seed in range(25):
        pool, _ = make_case(seed, drain=False)
        rng = ensure_rng(60_000 + seed)
        requests = [
            random_request(
                RequestSpec(low=0, high=4, min_total=2), pool.num_types, seed=rng
            )
            for _ in range(6)
        ]
        fast = GlobalSubOptimizer(
            worklist=True, use_paper_transfer=use_paper_transfer
        )
        slow = GlobalSubOptimizer(
            worklist=False, use_paper_transfer=use_paper_transfer
        )
        got = fast.place_batch(requests, pool.copy())
        ref = slow.place_batch(requests, pool.copy())
        assert len(got) == len(ref)
        for i, (a, b) in enumerate(zip(got, ref)):
            assert_same_allocation(a, b, f"seed={seed} alloc={i}")
        assert fast.last_stats.rounds == slow.last_stats.rounds
        assert fast.last_stats.exchanges == slow.last_stats.exchanges
        assert (
            fast.last_stats.final_total_distance
            == slow.last_stats.final_total_distance
        )

"""Tests for PlacementService: differential equivalence, batching, admission."""

import time

import numpy as np
import pytest

from repro.cloud.request import TimedRequest
from repro.cluster import PoolSpec, ResourcePool, VMTypeCatalog, random_pool
from repro.core import OnlineHeuristic
from repro.service import (
    ClusterState,
    DecisionStatus,
    PlaceRequest,
    PlacementService,
    ReleaseRequest,
    ServiceConfig,
)
from repro.util.errors import ValidationError


def make_state(seed=7, racks=3, nodes_per_rack=8, capacity_high=3):
    catalog = VMTypeCatalog.ec2_default()
    pool = random_pool(
        PoolSpec(racks=racks, nodes_per_rack=nodes_per_rack, capacity_high=capacity_high),
        catalog,
        seed=seed,
    )
    return ClusterState.from_pool(pool)


def make_service(state=None, **config_kwargs) -> PlacementService:
    state = state or make_state()
    return PlacementService(state, config=ServiceConfig(**config_kwargs))


def random_demands(rng, num_types, count, high=3):
    demands = []
    for _ in range(count):
        while True:
            demand = rng.integers(0, high, size=num_types)
            if demand.sum() > 0:
                break
        demands.append(tuple(int(d) for d in demand))
    return demands


class TestDifferentialEquivalence:
    """ISSUE acceptance: with a quiesced cluster and batch size 1, service
    decisions must be identical to direct OnlineHeuristic.place calls."""

    def test_matches_direct_heuristic_for_50_seeded_requests(self):
        state = make_state(seed=13)
        mirror = ResourcePool(
            state.topology,
            state.catalog,
            distance_model=state.distance_model,
        )
        service = make_service(state, max_batch=1, enable_transfers=False)
        heuristic = OnlineHeuristic()
        rng = np.random.default_rng(99)
        demands = random_demands(rng, state.num_types, 50)
        for i, demand in enumerate(demands):
            ticket = service.submit(PlaceRequest(demand=demand, request_id=1000 + i))
            decisions = service.step()
            expected = heuristic.place(list(demand), mirror)
            if expected is None:
                # The service leaves unsatisfiable requests queued — no
                # terminal decision yet, and the mirror pool is untouched.
                assert not ticket.done
                assert decisions == []
                assert service.cancel(1000 + i)
                continue
            assert ticket.done
            decision = ticket.decision
            assert decision.placed
            assert decision.center == expected.center
            assert decision.distance == pytest.approx(expected.distance)
            dense = decision.allocation_matrix(
                state.num_nodes, state.num_types
            )
            assert np.array_equal(dense, expected.matrix)
            mirror.allocate(expected.matrix)
        assert np.array_equal(state.allocated, mirror.allocated)
        state.verify_consistency()


class TestBatching:
    def test_batched_distance_never_worse_than_sequential(self):
        state = make_state(seed=21)
        mirror = ResourcePool(
            state.topology,
            state.catalog,
            distance_model=state.distance_model,
        )
        service = make_service(state, max_batch=16, enable_transfers=True)
        heuristic = OnlineHeuristic()
        rng = np.random.default_rng(5)
        demands = random_demands(rng, state.num_types, 8)
        tickets = [
            service.submit(PlaceRequest(demand=d, request_id=2000 + i))
            for i, d in enumerate(demands)
        ]
        service.step()
        sequential = 0.0
        for demand in demands:
            allocation = heuristic.place(list(demand), mirror)
            if allocation is not None:
                mirror.allocate(allocation.matrix)
                sequential += allocation.distance
        batched = sum(
            t.decision.distance for t in tickets if t.done and t.decision.placed
        )
        assert batched <= sequential + 1e-9
        state.verify_consistency()

    def test_transfer_gain_is_accounted(self):
        # With transfers on, any applied exchange must show up in stats and
        # shrink total distance accordingly.
        state = make_state(seed=21)
        service = make_service(state, max_batch=16, enable_transfers=True)
        rng = np.random.default_rng(5)
        for i, demand in enumerate(random_demands(rng, state.num_types, 8)):
            service.submit(PlaceRequest(demand=demand, request_id=3000 + i))
        service.step()
        assert service.stats.transfer_gain >= 0.0
        if service.stats.transfer_exchanges:
            assert service.stats.transfer_gain > 0.0
        state.verify_consistency()

    def test_max_batch_caps_one_step(self):
        state = make_state()
        service = make_service(state, max_batch=2)
        for i in range(5):
            service.submit(PlaceRequest(demand=(1, 0, 0), request_id=4000 + i))
        decisions = service.step()
        assert len([d for d in decisions if d.placed]) <= 2
        assert service.queued == 5 - len(decisions)


class TestAdmissionControl:
    def test_impossible_demand_refused_immediately(self):
        service = make_service()
        ticket = service.submit(PlaceRequest(demand=(10_000, 0, 0)))
        assert ticket.done
        assert ticket.decision.status == DecisionStatus.REFUSED
        assert service.stats.refused == 1
        assert service.queued == 0

    def test_full_queue_rejects_with_backpressure(self):
        service = make_service(queue_capacity=2)
        t1 = service.submit(PlaceRequest(demand=(1, 0, 0)))
        t2 = service.submit(PlaceRequest(demand=(1, 0, 0)))
        t3 = service.submit(PlaceRequest(demand=(1, 0, 0)))
        assert not t1.done and not t2.done
        assert t3.done
        assert t3.decision.status == DecisionStatus.REJECTED
        assert service.stats.rejected == 1

    def test_max_wait_times_out_starved_requests(self):
        state = make_state()
        service = make_service(state, max_wait=5.0)
        # Saturate the pool so the request cannot currently be satisfied.
        state.allocate(state.remaining.copy())
        ticket = service.submit(PlaceRequest(demand=(1, 0, 0)))
        assert service.step() == []  # still waiting, within max_wait
        assert not ticket.done
        decisions = service.step(now=time.monotonic() + 10.0)
        assert ticket.done
        assert ticket.decision.status == DecisionStatus.TIMEOUT
        assert ticket.decision.latency >= 5.0
        assert [d.status for d in decisions] == [DecisionStatus.TIMEOUT]
        assert service.stats.timed_out == 1
        assert service.queued == 0

    def test_release_unknown_lease(self):
        service = make_service()
        response = service.release(ReleaseRequest(request_id=123456))
        assert response.status == DecisionStatus.UNKNOWN_LEASE

    def test_release_frees_capacity_for_waiters(self):
        state = make_state()
        service = make_service(state)
        # Occupy everything through the ledger.
        first = service.submit(
            PlaceRequest(demand=tuple(int(a) for a in state.available))
        )
        service.step()
        assert first.done and first.decision.placed
        waiter = service.submit(PlaceRequest(demand=(1, 0, 0)))
        service.step()
        assert not waiter.done
        response = service.release(ReleaseRequest(request_id=first.request_id))
        assert response.released
        service.step()
        assert waiter.done and waiter.decision.placed
        state.verify_consistency()


class TestDuplicatesAndCancel:
    def test_duplicate_queued_id_rejected_at_submit(self):
        state = make_state()
        service = make_service(state)
        saturation = state.remaining.copy()
        state.allocate(saturation)  # force the first submission to wait
        first = service.submit(PlaceRequest(demand=(1, 0, 0), request_id=77))
        dup = service.submit(PlaceRequest(demand=(1, 0, 0), request_id=77))
        assert not first.done
        assert dup.done
        assert dup.decision.status == DecisionStatus.REJECTED
        assert "duplicate" in dup.decision.detail
        # The original ticket survives the duplicate and is still served.
        state.release(saturation)
        service.step()
        assert first.done and first.decision.placed

    def test_duplicate_of_active_lease_rejected_at_submit(self):
        service = make_service()
        first = service.submit(PlaceRequest(demand=(1, 0, 0), request_id=88))
        service.step()
        assert first.done and first.decision.placed
        dup = service.submit(PlaceRequest(demand=(1, 0, 0), request_id=88))
        assert dup.done
        assert dup.decision.status == DecisionStatus.REJECTED
        assert "duplicate" in dup.decision.detail

    def test_step_survives_forced_duplicate_queue_entry(self):
        # Regression: two queue entries sharing an id (injected past submit's
        # guard) used to raise out of step() and kill the scheduler thread.
        state = make_state()
        service = make_service(state)
        ticket = service.submit(PlaceRequest(demand=(1, 0, 0), request_id=99))
        rogue = TimedRequest(
            request=PlaceRequest(demand=(1, 0, 0), request_id=99).to_core(),
            arrival_time=0.0,
            duration=1.0,
        )
        assert service._queue.submit(rogue)
        decisions = service.step()
        assert ticket.done and ticket.decision.placed
        assert sorted(d.status for d in decisions) == [
            DecisionStatus.PLACED,
            DecisionStatus.REJECTED,
        ]
        assert service.queued == 0
        assert state.has_lease(99)
        state.verify_consistency()

    def test_cancel_withdraws_queued_request(self):
        state = make_state()
        service = make_service(state)
        saturation = state.remaining.copy()
        state.allocate(saturation)
        ticket = service.submit(PlaceRequest(demand=(1, 0, 0), request_id=55))
        assert not ticket.done
        assert service.cancel(55)
        assert ticket.done
        assert ticket.decision.status == DecisionStatus.CANCELLED
        assert service.queued == 0
        assert service.stats.cancelled == 1
        # Capacity freed later must NOT resurrect the withdrawn request as a
        # lease no caller tracks.
        state.release(saturation)
        assert service.step() == []
        assert not state.has_lease(55)

    def test_cancel_unknown_or_decided_request_returns_false(self):
        service = make_service()
        assert not service.cancel(123456)
        ticket = service.submit(PlaceRequest(demand=(1, 0, 0), request_id=5))
        service.step()
        assert ticket.decision.placed
        assert not service.cancel(5)  # placed; the lease stays


class TestLifecycle:
    def test_background_loop_serves_submissions(self):
        service = make_service(batch_window=0.001)
        service.start()
        try:
            assert service.running
            ticket = service.submit(PlaceRequest(demand=(1, 1, 0)))
            decision = ticket.result(timeout=5.0)
            assert decision is not None and decision.placed
            assert decision.latency >= 0.0
        finally:
            service.stop()
        assert not service.running

    def test_background_loop_survives_starvation_then_serves(self):
        # With the queue non-empty but nothing admissible the loop must park
        # on the condition (not spin) and still serve once capacity frees.
        state = make_state()
        service = make_service(state, batch_window=0.0)
        saturation = state.remaining.copy()
        with service._lock:
            state.allocate(saturation)
        service.start()
        try:
            ticket = service.submit(PlaceRequest(demand=(1, 0, 0)))
            assert ticket.result(timeout=0.2) is None  # starved, still queued
            with service._lock:
                state.release(saturation)
                service._wakeup.notify_all()
            decision = ticket.result(timeout=5.0)
            assert decision is not None and decision.placed
        finally:
            service.stop()

    def test_drain_places_what_it_can_and_drops_the_rest(self):
        state = make_state()
        service = make_service(state)
        feasible = service.submit(PlaceRequest(demand=(1, 0, 0)))
        # Needs the *entire* pool: admissible now, impossible once the
        # feasible request ahead of it is placed.
        blocked = service.submit(
            PlaceRequest(demand=tuple(int(a) for a in state.available))
        )
        decisions = service.drain(timeout=1.0)
        assert feasible.done and feasible.decision.placed
        assert blocked.done
        assert blocked.decision.status == DecisionStatus.DROPPED
        statuses = {d.status for d in decisions}
        assert statuses == {DecisionStatus.PLACED, DecisionStatus.DROPPED}
        assert service.queued == 0
        assert service.stats.dropped == 1

    def test_submissions_after_drain_are_rejected(self):
        service = make_service()
        service.drain(timeout=0.1)
        ticket = service.submit(PlaceRequest(demand=(1, 0, 0)))
        assert ticket.done
        assert ticket.decision.status == DecisionStatus.REJECTED
        assert "drain" in ticket.decision.detail


class TestServiceConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"queue_capacity": 0},
            {"batch_window": -0.1},
            {"max_batch": 0},
            {"max_wait": 0.0},
            {"transfer_rounds": 0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            ServiceConfig(**kwargs)

    def test_stats_snapshot_shape(self):
        service = make_service()
        service.submit(PlaceRequest(demand=(1, 0, 0)))
        service.step()
        doc = service.stats.to_dict()
        assert doc["submitted"] == 1
        assert doc["placed"] == 1
        assert doc["acceptance_rate"] == 1.0
        assert doc["mean_distance"] >= 0.0

"""The shard worker child process: one `PlacementService` behind a wire.

:func:`worker_main` is the spawn entrypoint. The child dials *two*
connections back to the fabric's listener — a **cmd** channel the parent
drives request/reply (submit, release, step, checkpoint, shutdown …) and an
**events** channel the parent long-polls for asynchronous placement
decisions. Keeping both request/reply (the parent always writes first)
avoids full-duplex framing entirely; the events channel's ``poll`` op simply
blocks server-side until the outbox has something or the poll times out.

Decisions reach the parent exactly once: a submission the service resolves
*immediately* (queue full, draining, refused, duplicate) is returned inline
in the ``submit`` reply so the fabric can spill over synchronously; an
*admitted* submission registers a ticket callback that pushes the eventual
decision — tagged with the attempt token the parent supplied on the wire —
into the outbox for the events channel. The attempt token is the failover
fence: the parent drops any event whose token no longer matches its
in-flight table, exactly like the in-process fabric fences a dying shard's
late callbacks.

When a coordination backend is configured, the child reuses the existing
:class:`~repro.service.supervisor.ShardWorker` wrapper over a
:class:`~repro.service.coord.net.NetworkedCoordinationBackend`: heartbeats
on every scheduler tick and commit, write-ahead checkpoint replication, and
TTL'd lease-ledger sync — now across a real process boundary, on the wall
clock (``time.time``), since a monotonic clock is not comparable between
processes.

SIGTERM is graceful: the handler raises ``SystemExit`` (interrupting the
blocked cmd read), and the cleanup path drains the service, deregisters
from the backend, and exits 0.
"""

from __future__ import annotations

import json
import logging
import os
import signal
import socket
import sys
import threading
import time

from repro.core.placement.greedy import OnlineHeuristic
from repro.obs import MetricsRegistry, render
from repro.service import wire
from repro.service.api import PlaceRequest, ReleaseRequest
from repro.service.checkpoint import checkpoint_bytes, state_from_checkpoint
from repro.service.coord.net import NetworkedCoordinationBackend
from repro.service.server import PlacementService, ServiceConfig
from repro.service.supervisor import ShardWorker, SupervisorConfig
from repro.util.errors import TransportError, ValidationError

_log = logging.getLogger(__name__)

#: Placement policies a worker can be asked to run, by wire name. The
#: registry keeps arbitrary code off the wire: the parent names a policy,
#: it does not ship one.
POLICY_REGISTRY = {
    "heuristic": OnlineHeuristic,
}


class _Outbox:
    """Thread-safe event queue the events channel long-polls."""

    def __init__(self) -> None:
        self._cv = threading.Condition()
        self._items: list[dict] = []

    def push(self, event: dict) -> None:
        with self._cv:
            self._items.append(event)
            self._cv.notify_all()

    def drain(self, timeout: float) -> list[dict]:
        """Wait up to *timeout* for events; returns (and clears) the batch."""
        with self._cv:
            if not self._items:
                self._cv.wait(timeout)
            items, self._items = self._items, []
            return items


def _decision_doc(decision) -> dict:
    return {
        "request_id": decision.request_id,
        "status": decision.status,
        "placements": [list(p) for p in decision.placements],
        "center": decision.center,
        "distance": decision.distance,
        "latency": decision.latency,
        "detail": decision.detail,
    }


class WorkerProcess:
    """One shard's serving runtime inside the child process."""

    def __init__(self, spec: dict) -> None:
        self.spec = spec
        self.shard_id = int(spec["shard_id"])
        self.worker_id = str(spec["worker_id"])
        self.token = str(spec["token"])
        self.addr = (str(spec["host"]), int(spec["port"]))
        self.obs = MetricsRegistry()
        self.outbox = _Outbox()
        self.service: "PlacementService | None" = None
        self.backend: "NetworkedCoordinationBackend | None" = None
        self.worker: "ShardWorker | None" = None
        self._running = True
        self._attempts: dict[int, int] = {}
        self._alock = threading.Lock()
        self._cmd = None
        self._events = None

    # ------------------------------------------------------------ plumbing

    def _dial(self, role: str):
        sock = socket.create_connection(self.addr, timeout=10.0)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(None)
        rfile, wfile = sock.makefile("rb"), sock.makefile("wb")
        # The hello offers every codec this build speaks; the fabric's reply
        # names the one this channel uses from here on (absent against an
        # old fabric, which leaves the channel on the legacy JSON framing).
        wire.send_hello(
            wfile,
            role=role,
            shard_id=self.shard_id,
            token=self.token,
            codecs=wire.offer_codecs(),
        )
        hello = wire.expect_hello(rfile, role="fabric")
        return sock, rfile, wfile, hello.get("codec")

    def _events_loop(self) -> None:
        """Answer the parent's long-poll requests with outbox batches."""
        sock, rfile, wfile, codec = self._events
        try:
            while True:
                frame = wire.read_op(rfile, codec=codec)
                if frame is None:
                    return
                doc, _ = frame
                if doc.get("op") != "poll":
                    wire.write_op(
                        wfile,
                        {"ok": False, "error": "events channel only polls"},
                        codec=codec,
                    )
                    continue
                timeout = min(5.0, max(0.0, float(doc.get("timeout", 0.25))))
                events = self.outbox.drain(timeout)
                wire.write_op(wfile, {"ok": True, "events": events}, codec=codec)
        except (TransportError, OSError, ValueError):
            # ValueError: _cleanup closed the file objects under us.
            return

    def _push_decision(self, request_id: int):
        def callback(decision) -> None:
            with self._alock:
                attempt = self._attempts.pop(request_id, -1)
            self.outbox.push(
                {
                    "type": "decision",
                    "request_id": request_id,
                    "attempt": attempt,
                    "decision": _decision_doc(decision),
                }
            )

        return callback

    # ----------------------------------------------------------------- ops

    def _op_init(self, doc: dict, blob: "bytes | None"):
        if self.service is not None:
            raise ValidationError("worker already initialized")
        if blob is None:
            raise ValidationError("init requires a state checkpoint blob")
        policy_name = str(doc.get("policy", "heuristic"))
        factory = POLICY_REGISTRY.get(policy_name)
        if factory is None:
            raise ValidationError(
                f"unknown policy {policy_name!r}; known: "
                f"{sorted(POLICY_REGISTRY)}"
            )
        state = state_from_checkpoint(json.loads(blob))
        if checkpoint_bytes(state).encode("utf-8") != blob:
            raise ValidationError(
                "worker init state does not round-trip to the supplied payload"
            )
        config = ServiceConfig(**doc.get("service", {}))
        self.service = PlacementService(
            state, policy=factory(), config=config, obs=self.obs
        )
        coord_url = doc.get("coord")
        if coord_url:
            self.backend = NetworkedCoordinationBackend.from_url(
                str(coord_url), obs=self.obs
            )
            sup_config = SupervisorConfig(**doc.get("supervisor", {}))
            # Reuse the in-process supervision wrapper verbatim: it installs
            # the fence/on_commit/on_tick hooks, write-ahead replicates on
            # every commit, and mirrors the lease ledger — only the backend
            # (networked) and the clock (wall time) differ out-of-process.
            self.worker = ShardWorker(
                self.shard_id,
                self.service,
                self.backend,
                sup_config,
                clock=time.time,
            )
            now = time.time()
            self.worker.register(now)
            if not self.worker.replicate(now, force=True):
                raise ValidationError(
                    f"initial checkpoint replication failed for {self.worker_id}"
                )
            self.worker.beat(now)
        return {
            "ok": True,
            "pid": os.getpid(),
            "leases": self.service.state.num_leases,
            "incarnation": self.worker.incarnation if self.worker else 0,
        }, None

    def _dispatch(self, doc: dict, blob: "bytes | None"):
        op = doc.get("op")
        if op == "ping":
            return {"ok": True, "pid": os.getpid()}, None
        if op == "init":
            return self._op_init(doc, blob)
        service = self.service
        if service is None:
            raise ValidationError(f"op {op!r} before init")
        if op == "start":
            service.start()
            return {"ok": True}, None
        if op == "stop":
            service.stop()
            return {"ok": True}, None
        if op == "submit":
            request = PlaceRequest(
                demand=tuple(doc["demand"]),
                request_id=int(doc["request_id"]),
                priority=int(doc.get("priority", 0)),
                tag=str(doc.get("tag", "")),
            )
            attempt = int(doc["attempt"])
            with self._alock:
                self._attempts[request.request_id] = attempt
            ticket = service.submit(request)
            if ticket.done:
                with self._alock:
                    self._attempts.pop(request.request_id, None)
                return {
                    "ok": True,
                    "admitted": False,
                    "decision": _decision_doc(ticket.decision),
                }, None
            ticket.add_done_callback(self._push_decision(request.request_id))
            return {"ok": True, "admitted": True}, None
        if op == "release":
            response = service.release(
                ReleaseRequest(request_id=int(doc["request_id"]))
            )
            return {
                "ok": True,
                "status": response.status,
                "freed_vms": response.freed_vms,
            }, None
        if op == "cancel":
            return {
                "ok": True,
                "cancelled": service.cancel(int(doc["request_id"])),
            }, None
        if op == "step":
            now = doc.get("now")
            decisions = service.step(None if now is None else float(now))
            return {
                "ok": True,
                "decided": [d.request_id for d in decisions],
            }, None
        if op == "drain":
            decisions = service.drain(float(doc.get("timeout", 5.0)))
            return {
                "ok": True,
                "decided": [d.request_id for d in decisions],
            }, None
        if op == "checkpoint":
            with service._lock:
                payload = checkpoint_bytes(service.state).encode("utf-8")
                version = service.state.version
            return {"ok": True, "version": version}, payload
        if op == "stats":
            return {"ok": True, "stats": service.stats.to_dict()}, None
        if op == "describe":
            return {"ok": True, "shards": service.describe_shards()}, None
        if op == "metrics":
            fmt = str(doc.get("format", "prometheus"))
            return {"ok": True, "body": render(self.obs, fmt)}, None
        if op == "sync":
            # Force a replication + heartbeat/ledger sync right now — used
            # by audits that must not wait for the next scheduler tick.
            if self.worker is not None:
                now = time.time()
                self.worker.replicate(now, force=bool(doc.get("force", True)))
                self.worker.beat(now)
            return {"ok": True, "coordinated": self.worker is not None}, None
        if op == "shutdown":
            if bool(doc.get("drain", True)):
                service.drain(float(doc.get("timeout", 5.0)))
            else:
                service.stop()
            self._running = False
            # Whatever the drain resolved is handed back inline — the parent
            # has already stopped polling the events channel by now.
            return {"ok": True, "events": self.outbox.drain(0.0)}, None
        raise ValidationError(f"unknown worker op {op!r}")

    # ----------------------------------------------------------------- run

    def run(self) -> int:
        signal.signal(signal.SIGTERM, _sigterm)
        self._cmd = self._dial("worker-cmd")
        self._events = self._dial("worker-events")
        events_thread = threading.Thread(
            target=self._events_loop,
            name=f"worker-{self.shard_id}-events",
            daemon=True,
        )
        events_thread.start()
        _, rfile, wfile, codec = self._cmd
        try:
            while self._running:
                frame = wire.read_op(rfile, codec=codec)
                if frame is None:
                    break
                doc, blob = frame
                try:
                    reply, reply_blob = self._dispatch(doc, blob)
                except (ValidationError, TransportError) as exc:
                    reply, reply_blob = {"ok": False, "error": str(exc)}, None
                except Exception as exc:
                    _log.exception("worker op %r failed", doc.get("op"))
                    reply, reply_blob = {
                        "ok": False,
                        "error": f"internal error: {exc}",
                    }, None
                wire.write_op(wfile, reply, reply_blob, codec=codec)
            return 0
        finally:
            self._cleanup()

    def _cleanup(self) -> None:
        """Graceful exit: drain what we can, deregister, close everything."""
        service, backend = self.service, self.backend
        if service is not None:
            try:
                service.drain(timeout=1.0)
            except Exception:
                _log.exception("worker drain during shutdown failed")
        if backend is not None:
            try:
                backend.deregister_worker(self.worker_id)
            except Exception:
                _log.warning("could not deregister %s", self.worker_id)
            backend.close()
        for conn in (self._cmd, self._events):
            if conn is None:
                continue
            for closable in (conn[1], conn[2], conn[0]):
                try:
                    closable.close()
                except OSError:
                    pass


def _sigterm(signum, frame):  # pragma: no cover - signal path
    raise SystemExit(0)


def worker_main(spec: dict) -> None:
    """Spawn entrypoint: serve one shard until shutdown/EOF/SIGTERM."""
    logging.basicConfig(
        level=logging.WARNING,
        format=f"[worker-{spec.get('shard_id')}] %(levelname)s %(message)s",
    )
    try:
        code = WorkerProcess(spec).run()
    except SystemExit as exc:  # SIGTERM path — cleanup already ran
        code = int(exc.code or 0)
    except (TransportError, OSError) as exc:
        _log.error("worker lost its fabric connection: %s", exc)
        code = 1
    sys.exit(code)

"""Multi-job workflows on one virtual cluster.

Production Hadoop clusters run *sequences* of jobs (ETL pipelines,
iterative analytics), not single WordCounts. :class:`JobFlow` executes a
job list on one provisioned cluster — FIFO, as in Hadoop 1.x's JobTracker —
reusing one engine and producing per-job results plus flow-level summaries
(makespan, aggregate locality, affinity sensitivity across the mix).

Each job gets its own HDFS layout (independent input files), derived
deterministically from the flow seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.metrics import JobResult
from repro.util.errors import ValidationError
from repro.util.rng import ensure_rng


@dataclass(frozen=True)
class FlowResult:
    """Outcome of one job-flow execution."""

    results: tuple[JobResult, ...]
    makespan: float

    @property
    def runtimes(self) -> list[float]:
        return [r.runtime for r in self.results]

    @property
    def total_shuffle_bytes(self) -> float:
        return float(sum(r.total_shuffle_bytes for r in self.results))

    @property
    def mean_data_local_fraction(self) -> float:
        fractions = [r.locality().data_local_fraction for r in self.results]
        return float(np.mean(fractions)) if fractions else 0.0

    def slowest_job(self) -> JobResult:
        """The job with the longest runtime in this flow."""
        return max(self.results, key=lambda r: r.runtime)


class JobFlow:
    """FIFO execution of a job sequence on one engine."""

    def __init__(self, engine: MapReduceEngine, *, seed=None) -> None:
        self.engine = engine
        self._rng = ensure_rng(seed)

    def run(self, jobs: "list[MapReduceJob]") -> FlowResult:
        """Run *jobs* back to back; returns per-job results and makespan.

        Jobs do not overlap (Hadoop 1.x FIFO semantics); the makespan is
        the sum of runtimes. Each job reads a fresh input file whose HDFS
        layout derives from this flow's seed stream.
        """
        if not jobs:
            raise ValidationError("JobFlow requires at least one job")
        results = []
        for job in jobs:
            hdfs_seed = int(self._rng.integers(0, 2**31 - 1))
            results.append(self.engine.run(job, hdfs_seed=hdfs_seed))
        return FlowResult(
            results=tuple(results),
            makespan=float(sum(r.runtime for r in results)),
        )


def compare_flows_across_clusters(
    clusters,
    jobs: "list[MapReduceJob]",
    *,
    engine_factory=None,
    seed=0,
) -> "list[tuple[float, FlowResult]]":
    """Run the same job mix on several clusters; returns
    ``[(affinity, FlowResult), …]`` sorted by cluster affinity.

    ``engine_factory(cluster)`` customizes engine construction (network,
    scheduler, contention); defaults to a plain engine. All clusters see
    identical job inputs (same seed stream per flow).
    """
    engine_factory = engine_factory or (lambda c: MapReduceEngine(c, seed=seed))
    out = []
    for cluster in clusters:
        flow = JobFlow(engine_factory(cluster), seed=seed)
        out.append((cluster.affinity, flow.run(jobs)))
    return sorted(out, key=lambda pair: pair[0])

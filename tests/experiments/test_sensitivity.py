"""Tests for the sensitivity sweeps."""

import pytest

from repro.experiments.sensitivity import (
    sweep_distance_ratio,
    sweep_oversubscription,
    sweep_pool_load,
)
from repro.util.errors import ValidationError


class TestDistanceRatio:
    @pytest.fixture(scope="class")
    def points(self):
        return sweep_distance_ratio(ratios=(1.5, 4.0), trials=2)

    def test_penalty_grows_with_ratio(self, points):
        """A random center costs more when racks are farther apart."""
        assert points[0].random_center_penalty < points[-1].random_center_penalty

    def test_improvement_nonnegative(self, points):
        assert all(p.global_improvement_pct >= 0 for p in points)

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValidationError):
            sweep_distance_ratio(ratios=(1.0,), trials=1)


class TestPoolLoad:
    @pytest.fixture(scope="class")
    def points(self):
        return sweep_pool_load(loads=(0.3, 0.9), trials=2)

    def test_contention_enables_transfers(self, points):
        """Algorithm 2 recovers more (or equal) at higher load."""
        assert points[-1].improvement_pct >= points[0].improvement_pct - 1e-9

    def test_totals_consistent(self, points):
        for p in points:
            assert p.global_total <= p.online_total + 1e-9

    def test_invalid_load_rejected(self):
        with pytest.raises(ValidationError):
            sweep_pool_load(loads=(0.0,), trials=1)


class TestOversubscription:
    @pytest.fixture(scope="class")
    def points(self):
        return sweep_oversubscription(factors=(1.0, 16.0))

    def test_flat_network_makes_distance_irrelevant(self, points):
        """With no oversubscription, topology barely matters (<10%)."""
        assert points[0].spread_penalty_pct < 10.0

    def test_oversubscription_steepens_the_slope(self, points):
        assert points[-1].spread_penalty_pct > points[0].spread_penalty_pct

    def test_runtimes_ascending_with_distance_when_congested(self, points):
        congested = points[-1]
        assert list(congested.runtimes) == sorted(congested.runtimes)

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValidationError):
            sweep_oversubscription(factors=(0.5,))

"""Random topology, pool, and request generators.

The paper's simulations (Section V.A) use a cloud of 3 racks × 10 nodes where
"the instances on each physical node are distributed randomly" and "the types
and numbers of the twenty requests are also generated randomly". These
generators reproduce that setup with explicit seeds, plus the two request
scenarios of Fig. 5 / Fig. 6 (ordinary vs. "relatively small number of VMs").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.distance import DistanceModel
from repro.cluster.node import PhysicalNode
from repro.cluster.resources import ResourcePool
from repro.cluster.topology import Topology
from repro.cluster.vmtypes import VMTypeCatalog
from repro.util.errors import ValidationError
from repro.util.rng import ensure_rng


@dataclass(frozen=True, slots=True)
class PoolSpec:
    """Shape parameters for a randomly provisioned pool.

    ``capacity_low``/``capacity_high`` bound the per-node, per-type instance
    counts drawn uniformly at random (inclusive bounds).
    """

    racks: int = 3
    nodes_per_rack: int = 10
    clouds: int = 1
    capacity_low: int = 0
    capacity_high: int = 4

    def __post_init__(self) -> None:
        if self.racks < 1 or self.nodes_per_rack < 1 or self.clouds < 1:
            raise ValidationError("racks, nodes_per_rack, clouds must be >= 1")
        if not (0 <= self.capacity_low <= self.capacity_high):
            raise ValidationError(
                "need 0 <= capacity_low <= capacity_high, got "
                f"({self.capacity_low}, {self.capacity_high})"
            )


def random_topology(
    spec: PoolSpec, catalog: VMTypeCatalog, seed=None
) -> Topology:
    """Generate a topology whose node capacities are uniform random draws."""
    rng = ensure_rng(seed)
    nodes: list[PhysicalNode] = []
    node_id = 0
    rack_id = 0
    for cloud_id in range(spec.clouds):
        for _ in range(spec.racks):
            for _ in range(spec.nodes_per_rack):
                cap = rng.integers(
                    spec.capacity_low, spec.capacity_high + 1, size=len(catalog)
                )
                nodes.append(
                    PhysicalNode(
                        node_id=node_id,
                        rack_id=rack_id,
                        cloud_id=cloud_id,
                        capacity=cap,
                    )
                )
                node_id += 1
            rack_id += 1
    return Topology(nodes)


def random_pool(
    spec: PoolSpec,
    catalog: VMTypeCatalog,
    seed=None,
    *,
    distance_model: DistanceModel | None = None,
) -> ResourcePool:
    """Generate a :class:`ResourcePool` with random per-node capacities."""
    topo = random_topology(spec, catalog, seed)
    return ResourcePool(topo, catalog, distance_model=distance_model)


@dataclass(frozen=True, slots=True)
class RequestSpec:
    """Shape parameters for random request vectors.

    ``low``/``high`` bound each per-type count (inclusive); ``min_total``
    re-draws degenerate all-zero requests so every generated request asks for
    at least one VM.
    """

    low: int = 0
    high: int = 4
    min_total: int = 1

    def __post_init__(self) -> None:
        if not (0 <= self.low <= self.high):
            raise ValidationError(f"need 0 <= low <= high, got ({self.low}, {self.high})")
        if self.min_total < 0:
            raise ValidationError("min_total must be >= 0")
        if self.min_total > 0 and self.high == 0:
            raise ValidationError("high must be positive when min_total > 0")


#: Fig. 5 scenario: "the same request configurations as the previous
#: simulations" — moderately sized clusters.
LARGE_REQUESTS = RequestSpec(low=0, high=6, min_total=4)

#: Fig. 6 scenario: "a request sequence with a relatively small number of
#: VMs" — small clusters, which leave more slack for global re-balancing.
SMALL_REQUESTS = RequestSpec(low=0, high=2, min_total=1)


def random_request(
    spec: RequestSpec, num_types: int, seed=None
) -> np.ndarray:
    """Draw one request vector of per-type counts."""
    rng = ensure_rng(seed)
    while True:
        r = rng.integers(spec.low, spec.high + 1, size=num_types)
        if int(r.sum()) >= spec.min_total:
            return r.astype(np.int64)


def random_requests(
    spec: RequestSpec, num_types: int, count: int, seed=None
) -> list[np.ndarray]:
    """Draw *count* independent request vectors from one stream."""
    if count < 0:
        raise ValidationError("count must be >= 0")
    rng = ensure_rng(seed)
    return [random_request(spec, num_types, rng) for _ in range(count)]


def feasible_random_requests(
    pool: ResourcePool,
    spec: RequestSpec,
    count: int,
    seed=None,
    *,
    max_draws: int = 10_000,
) -> list[np.ndarray]:
    """Draw *count* requests, each individually satisfiable by the full pool.

    Feasibility is checked against the pool's *maximum* capacity, matching
    the paper's admission rule (requests beyond ``Σ M`` are refused; requests
    beyond current availability merely wait).
    """
    rng = ensure_rng(seed)
    out: list[np.ndarray] = []
    draws = 0
    total = pool.max_capacity.sum(axis=0)
    while len(out) < count:
        draws += 1
        if draws > max_draws:
            raise ValidationError(
                f"could not draw {count} feasible requests in {max_draws} tries; "
                "loosen RequestSpec or enlarge the pool"
            )
        r = random_request(spec, pool.num_types, rng)
        if np.all(r <= total):
            out.append(r)
    return out

"""Tests for the affinity-vs-resilience fault-recovery study."""

import pytest

from repro.cloud.failures import FailureEvent
from repro.cloud.lease import Lease
from repro.cloud.request import TimedRequest
from repro.core.problem import Allocation, VirtualClusterRequest
from repro.experiments.fault_recovery import (
    LeaseFaultCollector,
    run_spread_study,
    study_job,
    study_pool,
    vm_deaths_from_failures,
)
from repro.mapreduce.faults import VMDeath
from repro.mapreduce.vmcluster import VirtualCluster
from repro.util.errors import ValidationError

import numpy as np


def build_cluster():
    pool = study_pool()
    m = np.zeros((pool.num_nodes, pool.num_types), dtype=np.int64)
    m[0, 1] = 2
    m[1, 1] = 2
    alloc = Allocation.from_matrix(m, pool.distance_matrix)
    return pool, alloc, VirtualCluster.from_allocation(
        alloc, pool.distance_matrix, pool.catalog
    )


class TestVMDeathsFromFailures:
    def test_tuple_failures_map_to_hosted_vms(self):
        _, _, cluster = build_cluster()
        deaths = vm_deaths_from_failures(cluster, [(0, 5.0)])
        assert deaths == [VMDeath(vm_id=0, time=5.0), VMDeath(vm_id=1, time=5.0)]

    def test_failure_event_objects_accepted(self):
        _, _, cluster = build_cluster()
        ev = FailureEvent(node_id=1, fail_time=3.0, recover_time=10.0)
        deaths = vm_deaths_from_failures(cluster, [ev])
        assert {d.vm_id for d in deaths} == {2, 3}
        assert all(d.time == 3.0 for d in deaths)

    def test_unhosted_node_yields_nothing(self):
        _, _, cluster = build_cluster()
        assert vm_deaths_from_failures(cluster, [(7, 1.0)]) == []


class TestLeaseFaultCollector:
    def test_collects_job_relative_deaths(self):
        pool, alloc, _ = build_cluster()
        request = TimedRequest(
            request=VirtualClusterRequest(demand=[0, 4, 0]),
            arrival_time=0.0,
            duration=100.0,
        )
        lease = Lease(request=request, allocation=alloc, start_time=10.0)
        collector = LeaseFaultCollector()
        collector(lease, 1, 25.0)
        deaths = collector.deaths[lease.request_id]
        assert {d.vm_id for d in deaths} == {2, 3}
        assert all(d.time == 15.0 for d in deaths)  # 25 − lease start 10


class TestSpreadStudy:
    def test_spread_reduces_failure_slowdown(self):
        study = run_spread_study()
        assert study.packed.affinity <= study.spread.affinity
        assert study.spread.vms_lost < study.packed.vms_lost
        assert study.spread.slowdown < study.packed.slowdown
        assert study.slowdown_reduction_pct > 0.0

    def test_recovery_metrics_populated(self):
        study = run_spread_study()
        for run in (study.packed, study.spread):
            rec = run.result.recovery
            assert rec is not None
            assert rec.vm_deaths == run.vms_lost
            assert rec.maps_invalidated > 0

    def test_deterministic(self):
        a = run_spread_study(seed=3)
        b = run_spread_study(seed=3)
        assert a.packed.faulted_runtime == b.packed.faulted_runtime
        assert a.spread.faulted_runtime == b.spread.faulted_runtime

    def test_failure_fraction_validated(self):
        with pytest.raises(ValidationError):
            run_spread_study(failure_fraction=0.0)
        with pytest.raises(ValidationError):
            run_spread_study(failure_fraction=1.0)

    def test_study_job_is_slot_bound(self):
        job = study_job()
        # 64 maps over 16 slots → several map waves (see study_job docstring).
        assert job.num_maps == 64

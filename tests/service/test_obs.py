"""Service-layer observability: metrics op over TCP, loadgen-registry
consistency, checkpoint timing, and the stats export."""

import pytest

from repro.cluster import PoolSpec, random_pool
from repro.cluster.vmtypes import VMTypeCatalog
from repro.core import OnlineHeuristic
from repro.obs import MetricsRegistry, parse_json_lines, parse_prometheus
from repro.service import (
    ClusterState,
    LoadGenConfig,
    PlacementService,
    PlaceRequest,
    ServiceClient,
    ServiceConfig,
    ServiceEndpoint,
    run_loadgen,
)
from repro.util.errors import ValidationError


def build_service(obs=None, **config_kwargs):
    pool = random_pool(
        PoolSpec(racks=3, nodes_per_rack=10, capacity_high=4),
        VMTypeCatalog.ec2_default(),
        seed=42,
    )
    config = ServiceConfig(batch_window=0.002, **config_kwargs)
    return PlacementService(
        ClusterState.from_pool(pool),
        policy=OnlineHeuristic(),
        config=config,
        obs=obs,
    )


class TestServiceMetrics:
    def test_submit_and_step_populate_series(self):
        obs = MetricsRegistry()
        service = build_service(obs)
        service.start()
        try:
            tickets = [
                service.submit(PlaceRequest(demand=(1, 1, 0))) for _ in range(5)
            ]
            for t in tickets:
                assert t.result(timeout=5.0) is not None
        finally:
            service.drain()
        flat = obs.flatten()
        admitted = flat[
            ("repro_service_admissions_total", (("outcome", "admitted"),))
        ]
        assert admitted == 5.0
        placed = flat[("repro_service_decisions_total", (("status", "placed"),))]
        assert placed == 5.0
        assert flat[("repro_service_wait_seconds_count", ())] == 5.0
        assert flat[("repro_service_step_seconds_count", ())] >= 1.0
        assert ("repro_service_queue_depth", ()) in flat

    def test_null_registry_service_works(self):
        service = build_service(obs=None)
        service.start()
        try:
            ticket = service.submit(PlaceRequest(demand=(1, 0, 0)))
            assert ticket.result(timeout=5.0).placed
        finally:
            service.drain()
        assert not service.obs.enabled
        assert service.obs.flatten() == {}

    def test_stats_to_metrics_mapping(self):
        obs = MetricsRegistry()
        service = build_service()
        service.stats.submitted = 7
        service.stats.placed = 5
        service.stats.to_metrics(obs)
        flat = obs.flatten()
        assert flat[
            ("repro_stats", (("source", "service"), ("field", "submitted")))
        ] == 7.0
        assert flat[
            ("repro_stats", (("source", "service"), ("field", "placed")))
        ] == 5.0
        # Derived fields ride along.
        assert (
            "repro_stats",
            (("source", "service"), ("field", "acceptance_rate")),
        ) in flat


class TestTransportMetricsOp:
    def test_scrape_both_formats(self):
        obs = MetricsRegistry()
        service = build_service(obs)
        with ServiceEndpoint(service) as endpoint:
            host, port = endpoint.address
            with ServiceClient(host, port) as client:
                decision = client.place(PlaceRequest(demand=(1, 1, 0)))
                assert decision.placed
                prom = client.metrics()
                js = client.metrics(format="json")
        prom_samples = parse_prometheus(prom)
        json_samples = parse_json_lines(js)
        key = ("repro_service_admissions_total", (("outcome", "admitted"),))
        assert prom_samples[key] == 1.0
        assert json_samples[key] == 1.0

    def test_checkpoint_observes_duration(self):
        obs = MetricsRegistry()
        service = build_service(obs)
        with ServiceEndpoint(service) as endpoint:
            host, port = endpoint.address
            with ServiceClient(host, port) as client:
                client.checkpoint()
                samples = parse_prometheus(client.metrics())
        assert samples[("repro_service_checkpoint_seconds_count", ())] == 1.0

    def test_unknown_format_is_an_error(self):
        service = build_service(MetricsRegistry())
        with ServiceEndpoint(service) as endpoint:
            host, port = endpoint.address
            with ServiceClient(host, port) as client:
                with pytest.raises(ValidationError, match="format"):
                    client.metrics(format="xml")


class TestLoadgenRegistry:
    def test_report_counts_come_from_registry(self):
        obs = MetricsRegistry()
        service = build_service(obs)
        service.start()
        try:
            report = run_loadgen(
                service,
                LoadGenConfig(num_requests=30, rate=3000.0, seed=3),
            )
        finally:
            service.drain()
        flat = obs.flatten()
        placed = flat[("repro_loadgen_decisions_total", (("status", "placed"),))]
        assert report.placed == int(placed)
        assert report.submitted == 30
        assert flat[("repro_loadgen_latency_seconds_count", ())] == float(
            report.submitted
        )

    def test_null_service_registry_still_reports(self):
        service = build_service(obs=None)
        service.start()
        try:
            report = run_loadgen(
                service, LoadGenConfig(num_requests=10, rate=3000.0, seed=3)
            )
        finally:
            service.drain()
        assert report.submitted == 10
        assert report.placed + report.refused + report.rejected >= 0
        # The service's null registry stays empty.
        assert service.obs.flatten() == {}

    def test_repeated_runs_share_series_via_deltas(self):
        obs = MetricsRegistry()
        service = build_service(obs)
        service.start()
        try:
            first = run_loadgen(
                service, LoadGenConfig(num_requests=10, rate=3000.0, seed=3)
            )
            second = run_loadgen(
                service, LoadGenConfig(num_requests=10, rate=3000.0, seed=4)
            )
        finally:
            service.drain()
        assert first.submitted == second.submitted == 10
        flat = obs.flatten()
        total = sum(
            v
            for (name, _), v in flat.items()
            if name == "repro_loadgen_decisions_total"
        )
        assert total == 20.0

"""Networked coordination: a TCP coordination server and its client backend.

This is the redis-style half of the coordination story. The in-memory
backend in :mod:`repro.service.coord` is authoritative *inside* one
process; :class:`CoordinationServer` wraps that same implementation behind
a TCP listener speaking the :mod:`repro.service.wire` framing, and
:class:`NetworkedCoordinationBackend` is a drop-in
:class:`~repro.service.coord.CoordinationBackend` whose every method is one
RPC against that server. Because both sides delegate to the reference
implementation, the conformance suite runs identically over either backend
— the wire adds transport, not semantics.

Design points:

* **one op per protocol method** — the RPC vocabulary is exactly the
  :class:`CoordinationBackend` surface (``register``, ``beat``,
  ``put_lease`` …), so there is no translation layer to drift.
* **checkpoints ride as blobs** — ``put_checkpoint``/``get_checkpoint``
  carry the payload as the frame's binary blob, never inside JSON, which
  preserves the byte-identity recovery invariant with zero re-encoding.
* **caller-supplied clocks survive the wire** — timestamps are floats in
  the JSON document; the server still never reads a clock. Cross-process
  callers must therefore share a comparable clock (the proc fabric uses
  ``time.time()``).
* **client reconnects** — the client holds one persistent connection under
  a lock and transparently redials once on a broken pipe, so a coordination
  server restart does not take the fabric down with it.

Metrics (on the client, where the latency is felt): ``repro_coord_rpc_total
{op}``, ``repro_coord_rpc_failures_total{op}`` and
``repro_coord_rpc_seconds``.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time

from repro.obs import ensure_registry
from repro.service import wire
from repro.service.coord import (
    InMemoryCoordinationBackend,
    LeaseRecord,
    WorkerRecord,
)
from repro.service.transports import TcpServerHandle, warn_legacy_construction
from repro.util.errors import TransportError, ValidationError

__all__ = [
    "CoordinationServer",
    "NetworkedCoordinationBackend",
    "parse_coord_url",
    "serve_coordination",
]


def parse_coord_url(url: str) -> "tuple[str, int]":
    """Parse ``tcp://HOST:PORT`` into ``(host, port)``."""
    if not url.startswith("tcp://"):
        raise ValidationError(
            f"coordination url must look like tcp://HOST:PORT, got {url!r}"
        )
    hostport = url[len("tcp://"):]
    host, sep, port = hostport.rpartition(":")
    if not sep or not host:
        raise ValidationError(
            f"coordination url must look like tcp://HOST:PORT, got {url!r}"
        )
    try:
        return host, int(port)
    except ValueError as exc:
        raise ValidationError(f"invalid coordination port {port!r}") from exc


def _worker_doc(record: WorkerRecord) -> dict:
    return {
        "worker_id": record.worker_id,
        "shard_id": record.shard_id,
        "registered_at": record.registered_at,
        "last_beat": record.last_beat,
        "incarnation": record.incarnation,
    }


def _lease_doc(record: LeaseRecord) -> dict:
    return {
        "request_id": record.request_id,
        "owner": record.owner,
        "granted_at": record.granted_at,
        "expires_at": record.expires_at,
    }


class _CoordHandler(socketserver.StreamRequestHandler):
    """One client connection: hello handshake, then an op loop until EOF."""

    #: RPCs are tiny request/reply frames; Nagle + delayed ACK would add
    #: ~40 ms per round trip.
    disable_nagle_algorithm = True

    def handle(self) -> None:  # noqa: D102 - framework hook
        backend = self.server.backend  # type: ignore[attr-defined]
        try:
            hello = wire.expect_hello(self.rfile, role="coord-client")
            # Hellos are always legacy frames; the codec the client offered
            # (nothing, for pre-codec clients) governs every frame after.
            codec = wire.negotiate_codec(hello)
            wire.send_hello(
                self.wfile,
                role="coord-server",
                codec=codec,
                codecs=wire.offer_codecs(),
            )
        except (TransportError, OSError):
            return
        while True:
            try:
                frame = wire.read_op(self.rfile, codec=codec)
            except (TransportError, OSError):
                return
            if frame is None:
                return
            doc, blob = frame
            try:
                reply, reply_blob = self._dispatch(backend, doc, blob)
            except (ValidationError, TransportError) as exc:
                reply, reply_blob = {"ok": False, "error": str(exc)}, None
            except Exception as exc:  # pragma: no cover - defensive
                reply, reply_blob = {
                    "ok": False,
                    "error": f"internal error: {exc}",
                }, None
            try:
                wire.write_op(self.wfile, reply, reply_blob, codec=codec)
            except (TransportError, OSError):
                return

    def _dispatch(
        self, backend, doc: dict, blob: "bytes | None"
    ) -> "tuple[dict, bytes | None]":
        op = doc.get("op")
        if op == "ping":
            return {"ok": True}, None
        if op == "register":
            incarnation = backend.register_worker(
                str(doc["worker_id"]), int(doc["shard_id"]), float(doc["now"])
            )
            return {"ok": True, "incarnation": incarnation}, None
        if op == "deregister":
            backend.deregister_worker(str(doc["worker_id"]))
            return {"ok": True}, None
        if op == "workers":
            docs = {wid: _worker_doc(r) for wid, r in backend.workers().items()}
            return {"ok": True, "workers": docs}, None
        if op == "beat":
            backend.beat(str(doc["worker_id"]), float(doc["now"]))
            return {"ok": True}, None
        if op == "last_beat":
            return {"ok": True, "last_beat": backend.last_beat(str(doc["worker_id"]))}, None
        if op == "put_lease":
            backend.put_lease(
                int(doc["request_id"]),
                str(doc["owner"]),
                float(doc["now"]),
                float(doc["ttl"]),
            )
            return {"ok": True}, None
        if op == "renew_leases":
            renewed = backend.renew_leases(
                str(doc["owner"]), float(doc["now"]), float(doc["ttl"])
            )
            return {"ok": True, "renewed": renewed}, None
        if op == "drop_lease":
            return {"ok": True, "existed": backend.drop_lease(int(doc["request_id"]))}, None
        if op == "leases":
            docs = {str(rid): _lease_doc(r) for rid, r in backend.leases().items()}
            return {"ok": True, "leases": docs}, None
        if op == "expired_leases":
            docs = [_lease_doc(r) for r in backend.expired_leases(float(doc["now"]))]
            return {"ok": True, "leases": docs}, None
        if op == "put_checkpoint":
            if blob is None:
                raise ValidationError("put_checkpoint requires a payload blob")
            backend.put_checkpoint(str(doc["worker_id"]), blob)
            return {"ok": True}, None
        if op == "get_checkpoint":
            payload = backend.get_checkpoint(str(doc["worker_id"]))
            if payload is None:
                return {"ok": True, "found": False}, None
            return {"ok": True, "found": True}, payload
        raise ValidationError(f"unknown coordination op {op!r}")


def serve_coordination(
    host: str = "127.0.0.1",
    port: int = 0,
    backend: "InMemoryCoordinationBackend | None" = None,
) -> "CoordinationServer":
    """Canonical constructor for a coordination server (not yet started)."""
    return CoordinationServer(host, port, backend, _via_transport=True)


class CoordinationServer:
    """A stdlib-TCP coordination service around the in-memory backend.

    The authoritative state is an :class:`InMemoryCoordinationBackend`
    (injectable for tests); connection handling rides the shared threaded
    substrate (:class:`~repro.service.transports.TcpServerHandle`), one
    daemon thread per connection. Use as a context manager or call
    :meth:`start`/:meth:`stop`. Build via :func:`serve_coordination`;
    direct construction still works but is the deprecated spelling.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        backend: "InMemoryCoordinationBackend | None" = None,
        *,
        _via_transport: bool = False,
    ) -> None:
        if not _via_transport:
            warn_legacy_construction(type(self), "serve_coordination(host, port, ...)")
        self.backend = backend if backend is not None else InMemoryCoordinationBackend()
        self._handle = TcpServerHandle(
            _CoordHandler,
            host=host,
            port=port,
            context={"backend": self.backend},
            thread_name="coordination-server",
            poll_interval=0.05,
        )

    @property
    def address(self) -> "tuple[str, int]":
        return self._handle.address

    @property
    def url(self) -> str:
        host, port = self.address
        return f"tcp://{host}:{port}"

    def start(self) -> "CoordinationServer":
        self._handle.start()
        return self

    def stop(self) -> None:
        if not self._handle.running:
            return
        self._handle.stop()

    def __enter__(self) -> "CoordinationServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class NetworkedCoordinationBackend:
    """Client-side :class:`CoordinationBackend` speaking to a coordination
    server over TCP.

    One persistent connection guarded by a lock; a send that hits a dead
    socket redials once before giving up. Every protocol method maps to one
    RPC, and checkpoint payloads travel as binary blobs.

    ``codec="auto"`` (default) offers the binary framing at the hello and
    uses whatever the server picks — JSON against pre-codec servers;
    ``codec="json"`` pins the legacy framing and skips the offer entirely.
    """

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: float = 5.0,
        op_timeout: float = 10.0,
        obs=None,
        codec: str = "auto",
    ) -> None:
        if codec not in ("auto", "json", "binary"):
            raise ValidationError(
                f"codec must be 'auto', 'json' or 'binary', got {codec!r}"
            )
        self._addr = (host, port)
        self._connect_timeout = connect_timeout
        self._op_timeout = op_timeout
        self._codec_pref = codec
        self._codec: "str | None" = None
        self._lock = threading.Lock()
        self._sock: "socket.socket | None" = None
        self._rfile = None
        self._wfile = None
        registry = ensure_registry(obs)
        self._m_rpcs = registry.counter(
            "repro_coord_rpc_total",
            "Coordination RPCs issued by this client.",
            labels=("op",),
        )
        self._m_failures = registry.counter(
            "repro_coord_rpc_failures_total",
            "Coordination RPCs that failed after reconnect.",
            labels=("op",),
        )
        self._m_latency = registry.histogram(
            "repro_coord_rpc_seconds",
            "Coordination RPC round-trip latency.",
        )

    @classmethod
    def from_url(cls, url: str, **kwargs) -> "NetworkedCoordinationBackend":
        host, port = parse_coord_url(url)
        return cls(host, port, **kwargs)

    # -- connection management --------------------------------------------

    def _connect_locked(self) -> None:
        sock = socket.create_connection(self._addr, timeout=self._connect_timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(self._op_timeout)
        rfile = sock.makefile("rb")
        wfile = sock.makefile("wb")
        try:
            if self._codec_pref == "json":
                wire.send_hello(wfile, role="coord-client")
            else:
                offer = ["binary"] if self._codec_pref == "binary" else wire.offer_codecs()
                wire.send_hello(wfile, role="coord-client", codecs=offer)
            hello = wire.expect_hello(rfile, role="coord-server")
            chosen = hello.get("codec", "json")
            if self._codec_pref == "binary" and chosen != "binary":
                raise TransportError(
                    f"coordination server negotiated {chosen!r}, binary required"
                )
        except Exception:
            sock.close()
            raise
        self._sock, self._rfile, self._wfile = sock, rfile, wfile
        self._codec = chosen

    def _close_locked(self) -> None:
        for closable in (self._rfile, self._wfile, self._sock):
            if closable is not None:
                try:
                    closable.close()
                except OSError:
                    pass
        self._sock = self._rfile = self._wfile = None

    def close(self) -> None:
        with self._lock:
            self._close_locked()

    def _rpc(
        self, doc: dict, blob: "bytes | None" = None
    ) -> "tuple[dict, bytes | None]":
        op = str(doc.get("op"))
        started = time.monotonic()
        with self._lock:
            for attempt in (0, 1):
                if self._sock is None:
                    try:
                        self._connect_locked()
                    except OSError as exc:
                        if attempt:
                            self._m_failures.labels(op=op).inc()
                            raise TransportError(
                                f"cannot reach coordination server at "
                                f"{self._addr[0]}:{self._addr[1]}: {exc}"
                            ) from exc
                        continue
                try:
                    reply = wire.rpc(
                        self._rfile, self._wfile, doc, blob, codec=self._codec
                    )
                    self._m_rpcs.labels(op=op).inc()
                    self._m_latency.observe(time.monotonic() - started)
                    return reply
                except TransportError as exc:
                    # A server-side op rejection arrives as a well-formed
                    # error reply over a healthy connection — surface it
                    # without redialing. Framing-level failures drop the
                    # connection and get one reconnect attempt.
                    if "failed:" in str(exc):
                        self._m_failures.labels(op=op).inc()
                        raise
                    self._close_locked()
                    if attempt:
                        self._m_failures.labels(op=op).inc()
                        raise
                except OSError:
                    self._close_locked()
                    if attempt:
                        self._m_failures.labels(op=op).inc()
                        raise TransportError(
                            f"coordination rpc {op!r} failed: connection lost"
                        )
        raise TransportError(f"coordination rpc {op!r} failed")  # pragma: no cover

    # -- worker registry --------------------------------------------------

    def register_worker(self, worker_id: str, shard_id: int, now: float) -> int:
        reply, _ = self._rpc(
            {"op": "register", "worker_id": worker_id, "shard_id": shard_id, "now": now}
        )
        return int(reply["incarnation"])

    def deregister_worker(self, worker_id: str) -> None:
        self._rpc({"op": "deregister", "worker_id": worker_id})

    def workers(self) -> "dict[str, WorkerRecord]":
        reply, _ = self._rpc({"op": "workers"})
        return {
            wid: WorkerRecord(
                worker_id=doc["worker_id"],
                shard_id=int(doc["shard_id"]),
                registered_at=float(doc["registered_at"]),
                last_beat=float(doc["last_beat"]),
                incarnation=int(doc["incarnation"]),
            )
            for wid, doc in reply["workers"].items()
        }

    # -- heartbeats -------------------------------------------------------

    def beat(self, worker_id: str, now: float) -> None:
        self._rpc({"op": "beat", "worker_id": worker_id, "now": now})

    def last_beat(self, worker_id: str) -> "float | None":
        reply, _ = self._rpc({"op": "last_beat", "worker_id": worker_id})
        value = reply.get("last_beat")
        return None if value is None else float(value)

    # -- lease ledger -----------------------------------------------------

    def put_lease(self, request_id: int, owner: str, now: float, ttl: float) -> None:
        self._rpc(
            {
                "op": "put_lease",
                "request_id": int(request_id),
                "owner": owner,
                "now": now,
                "ttl": ttl,
            }
        )

    def renew_leases(self, owner: str, now: float, ttl: float) -> int:
        reply, _ = self._rpc(
            {"op": "renew_leases", "owner": owner, "now": now, "ttl": ttl}
        )
        return int(reply["renewed"])

    def drop_lease(self, request_id: int) -> bool:
        reply, _ = self._rpc({"op": "drop_lease", "request_id": int(request_id)})
        return bool(reply["existed"])

    def leases(self) -> "dict[int, LeaseRecord]":
        reply, _ = self._rpc({"op": "leases"})
        return {
            int(rid): _lease_from_doc(doc) for rid, doc in reply["leases"].items()
        }

    def expired_leases(self, now: float) -> "list[LeaseRecord]":
        reply, _ = self._rpc({"op": "expired_leases", "now": now})
        return [_lease_from_doc(doc) for doc in reply["leases"]]

    # -- checkpoint store -------------------------------------------------

    def put_checkpoint(self, worker_id: str, payload: bytes) -> None:
        if not isinstance(payload, bytes):
            raise ValidationError("checkpoint payload must be bytes")
        self._rpc({"op": "put_checkpoint", "worker_id": worker_id}, blob=payload)

    def get_checkpoint(self, worker_id: str) -> "bytes | None":
        reply, blob = self._rpc({"op": "get_checkpoint", "worker_id": worker_id})
        if not reply.get("found"):
            return None
        return blob if blob is not None else b""

    def __repr__(self) -> str:
        host, port = self._addr
        return f"NetworkedCoordinationBackend(tcp://{host}:{port})"


def _lease_from_doc(doc: dict) -> LeaseRecord:
    return LeaseRecord(
        request_id=int(doc["request_id"]),
        owner=doc["owner"],
        granted_at=float(doc["granted_at"]),
        expires_at=float(doc["expires_at"]),
    )

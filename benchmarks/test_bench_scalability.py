"""Scalability: placement cost vs. cloud size.

The paper claims O(n²·m) for Algorithm 1; this bench measures wall-clock
growth of the heuristic and the exact solver from 30 to 480 nodes and
reports the observed scaling exponent."""

import functools

import numpy as np

from repro.analysis import format_table
from repro.cluster import PoolSpec, random_pool
from repro.core.placement.exact import solve_sd_exact
from repro.core.placement.greedy import OnlineHeuristic
from repro.experiments import paperconfig as cfg

from benchmarks.conftest import emit

SIZES = [(3, 10), (6, 20), (12, 40)]  # (racks, nodes/rack) → 30..480 nodes


def _place_many(pool, requests, algo):
    for r in requests:
        algo(r, pool)


def test_scalability_heuristic(benchmark):
    import time

    rows = []
    heuristic = OnlineHeuristic()
    for racks, nodes in SIZES:
        pool = random_pool(
            PoolSpec(racks=racks, nodes_per_rack=nodes, capacity_high=2),
            cfg.CATALOG,
            seed=5,
            distance_model=cfg.DISTANCES,
        )
        request = np.array([8, 8, 4])
        start = time.perf_counter()
        for _ in range(5):
            heuristic.place(request, pool)
        elapsed = (time.perf_counter() - start) / 5
        rows.append([racks * nodes, elapsed * 1000])
    emit(
        "Scalability — Algorithm 1 placement time vs. cloud size",
        format_table(["nodes", "time per placement (ms)"], rows),
    )
    # Observed growth should stay well below cubic: each 4x node increase
    # must cost < 64x (allows the O(n^2) regime plus sort overhead).
    assert rows[-1][1] < rows[0][1] * 64 * 4

    # Also register one size with pytest-benchmark for the history table.
    pool = random_pool(
        PoolSpec(racks=3, nodes_per_rack=10, capacity_high=2),
        cfg.CATALOG,
        seed=5,
        distance_model=cfg.DISTANCES,
    )
    benchmark(functools.partial(heuristic.place, np.array([8, 8, 4]), pool))


def test_scalability_exact(benchmark):
    pool = random_pool(
        PoolSpec(racks=6, nodes_per_rack=20, capacity_high=2),
        cfg.CATALOG,
        seed=6,
        distance_model=cfg.DISTANCES,
    )
    request = np.array([8, 8, 4])
    alloc = benchmark(functools.partial(solve_sd_exact, request, pool))
    assert alloc is not None

"""Tests for failure injection and the self-healing provider."""

import numpy as np
import pytest

from repro.cloud.failures import (
    FailureEvent,
    FailureInjector,
    FailureSimulator,
    ResilientCloudProvider,
)
from repro.cloud.provider import CloudProvider
from repro.cloud.request import TimedRequest, poisson_workload
from repro.cluster.dynamics import DynamicResourcePool
from repro.cluster.topology import Topology
from repro.cluster.vmtypes import VMTypeCatalog
from repro.core.placement.greedy import OnlineHeuristic
from repro.core.problem import VirtualClusterRequest
from repro.util.errors import ValidationError


def make_dynamic_pool(racks=2, nodes=3, capacity=(2, 2, 1)):
    topo = Topology.build(racks, nodes, capacity=list(capacity))
    return DynamicResourcePool(topo, VMTypeCatalog.ec2_default())


def timed(demand, arrival=0.0, duration=100.0):
    return TimedRequest(
        request=VirtualClusterRequest(demand=list(demand)),
        arrival_time=arrival,
        duration=duration,
    )


class TestFailureEvent:
    def test_recovery_must_follow_failure(self):
        with pytest.raises(ValidationError):
            FailureEvent(node_id=0, fail_time=5.0, recover_time=5.0)


class TestFailureInjector:
    def test_probability_zero_schedules_nothing(self):
        inj = FailureInjector(failure_probability=0.0, seed=1)
        assert inj.schedule(30) == []

    def test_probability_one_schedules_all(self):
        inj = FailureInjector(failure_probability=1.0, seed=2)
        events = inj.schedule(10)
        assert len(events) == 10
        assert {e.node_id for e in events} == set(range(10))

    def test_times_within_horizon(self):
        inj = FailureInjector(failure_probability=1.0, horizon=50.0, seed=3)
        for e in inj.schedule(20):
            assert 0 <= e.fail_time <= 50.0
            assert e.recover_time > e.fail_time

    def test_deterministic(self):
        a = FailureInjector(failure_probability=0.5, seed=4).schedule(20)
        b = FailureInjector(failure_probability=0.5, seed=4).schedule(20)
        assert a == b

    def test_invalid_params_rejected(self):
        with pytest.raises(ValidationError):
            FailureInjector(failure_probability=1.5)
        with pytest.raises(ValidationError):
            FailureInjector(horizon=0)


class TestResilientProvider:
    def test_requires_dynamic_pool(self):
        topo = Topology.build(1, 2, capacity=[1, 1, 1])
        from repro.cluster.resources import ResourcePool

        static = ResourcePool(topo, VMTypeCatalog.ec2_default())
        with pytest.raises(ValidationError):
            ResilientCloudProvider(static, OnlineHeuristic())

    def test_repairable_failure_migrates_lease(self):
        pool = make_dynamic_pool()
        provider = ResilientCloudProvider(pool, OnlineHeuristic())
        lease = provider.submit(timed([4, 3, 1]), now=0.0)
        victim = int(lease.allocation.used_nodes[0])
        lost = provider.on_node_failure(victim, now=1.0)
        assert lost == []
        assert provider.repair_stats.leases_repaired == 1
        repaired = provider.active[lease.request_id]
        assert repaired.allocation.matrix[victim].sum() == 0
        assert np.array_equal(repaired.allocation.demand, lease.allocation.demand)
        assert np.array_equal(pool.allocated, repaired.allocation.matrix)

    def test_unrepairable_failure_requeues(self):
        # Pool with exactly enough capacity: losing a node strands demand.
        pool = make_dynamic_pool(racks=2, nodes=1, capacity=(2, 0, 0))
        provider = ResilientCloudProvider(pool, OnlineHeuristic())
        lease = provider.submit(timed([4, 0, 0]), now=0.0)
        assert lease is not None
        victim = int(lease.allocation.used_nodes[0])
        lost = provider.on_node_failure(victim, now=1.0)
        assert len(lost) == 1
        assert provider.repair_stats.leases_lost == 1
        assert lease.request_id not in provider.active
        assert len(provider.queue) == 1
        # The surviving node's VMs were released too (full restart).
        assert pool.allocated.sum() == 0

    def test_recovery_drains_queue(self):
        pool = make_dynamic_pool(racks=2, nodes=1, capacity=(2, 0, 0))
        provider = ResilientCloudProvider(pool, OnlineHeuristic())
        lease = provider.submit(timed([4, 0, 0]), now=0.0)
        victim = int(lease.allocation.used_nodes[0])
        provider.on_node_failure(victim, now=1.0)
        started = provider.on_node_recovery(victim, now=2.0)
        assert len(started) == 1
        assert provider.repair_stats.recoveries == 1
        assert pool.allocated.sum() == 4

    def test_unaffected_leases_untouched(self):
        pool = make_dynamic_pool()
        provider = ResilientCloudProvider(pool, OnlineHeuristic())
        lease = provider.submit(timed([1, 0, 0]), now=0.0)
        hosting = int(lease.allocation.used_nodes[0])
        other = next(i for i in range(pool.num_nodes) if i != hosting)
        provider.on_node_failure(other, now=1.0)
        assert provider.repair_stats.leases_repaired == 0
        assert provider.active[lease.request_id] is lease


class TestFailureSimulator:
    def _run(self, failure_probability, seed=7):
        pool = make_dynamic_pool(racks=3, nodes=10)
        provider = ResilientCloudProvider(pool, OnlineHeuristic())
        wl = poisson_workload(
            100, 3, mean_interarrival=5.0, mean_duration=120.0, demand_high=3, seed=seed
        )
        failures = FailureInjector(
            failure_probability=failure_probability, horizon=400.0, seed=seed
        ).schedule(pool.num_nodes)
        result = FailureSimulator(provider, failures).run(wl)
        return pool, provider, result

    def test_no_failures_matches_plain_flow(self):
        pool, provider, result = self._run(0.0)
        assert provider.repair_stats.failures == 0
        assert pool.allocated.sum() == 0
        assert len(provider.active) == 0

    def test_pool_drains_despite_failures(self):
        pool, provider, result = self._run(0.4)
        assert provider.repair_stats.failures > 0
        assert pool.allocated.sum() == 0
        assert len(provider.active) == 0
        assert pool.num_active_nodes == pool.num_nodes  # all recovered

    def test_replacements_counted(self):
        pool, provider, result = self._run(0.4)
        # Every lost lease re-enters via the queue, so placements >= arrivals
        # that were placed.
        assert provider.stats.placed >= provider.stats.completed

    def test_deterministic(self):
        _, p1, r1 = self._run(0.3, seed=9)
        _, p2, r2 = self._run(0.3, seed=9)
        assert r1.distances == r2.distances
        assert p1.repair_stats == p2.repair_stats

    def test_failures_degrade_mean_affinity(self):
        """Repairs scatter VMs, so mean distance should not improve."""
        _, p_calm, r_calm = self._run(0.0, seed=11)
        _, p_chaos, r_chaos = self._run(0.5, seed=11)
        assert np.mean(r_chaos.distances) >= np.mean(r_calm.distances) - 1e-9

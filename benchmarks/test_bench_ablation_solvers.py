"""Ablation: solver quality and cost on the paper's simulation pool.

Times Algorithm 1 (both modes), the exact transportation solver, and the
MILP on identical requests, and reports the optimality gaps — quantifying
the paper's accuracy/complexity trade-off."""

import functools

import numpy as np

from repro.analysis import format_table
from repro.cluster.generators import feasible_random_requests, random_pool
from repro.core.placement.exact import solve_sd_exact
from repro.core.placement.greedy import OnlineHeuristic
from repro.core.placement.ilp import solve_sd_milp
from repro.experiments import paperconfig as cfg
from repro.experiments.ablations import run_heuristic_gap

from benchmarks.conftest import emit


def _bench_pool():
    pool = random_pool(cfg.SIM_POOL, cfg.CATALOG, seed=77, distance_model=cfg.DISTANCES)
    request = feasible_random_requests(pool, cfg.FIG5_REQUESTS, 1, seed=78)[0]
    return pool, request


def test_ablation_algorithm1_modes(benchmark):
    gap = run_heuristic_gap(seed=cfg.MASTER_SEED)
    pool, request = _bench_pool()
    heuristic = OnlineHeuristic()
    benchmark(functools.partial(heuristic.place, request, pool))
    rows = [
        ["exact optimum", gap.exact_total, 0.0],
        ["Algorithm 1 (best center)", gap.best_mode_total, gap.best_mode_gap_pct],
        ["Algorithm 1 (first center)", gap.first_mode_total, gap.first_mode_gap_pct],
    ]
    emit(
        "Ablation — Algorithm 1 optimality over 20 requests",
        format_table(["solver", "total distance", "gap vs optimum (%)"], rows),
    )
    assert gap.best_mode_gap_pct == 0.0
    assert gap.first_mode_gap_pct >= 0.0


def test_ablation_exact_solver_speed(benchmark):
    pool, request = _bench_pool()
    alloc = benchmark(functools.partial(solve_sd_exact, request, pool))
    assert alloc is not None


def test_ablation_milp_solver_speed(benchmark):
    pool, request = _bench_pool()
    alloc = benchmark.pedantic(
        functools.partial(solve_sd_milp, request, pool), rounds=3, iterations=1
    )
    exact = solve_sd_exact(request, pool)
    emit(
        "Ablation — MILP vs exact on one request",
        f"milp distance {alloc.distance:g}, exact distance {exact.distance:g}",
    )
    assert alloc.distance == exact.distance

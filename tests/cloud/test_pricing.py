"""Tests for instance pricing and provider billing."""

import numpy as np
import pytest

from repro.cloud.lease import Lease
from repro.cloud.pricing import (
    DEFAULT_HOURLY_PRICES,
    BillingReport,
    PriceSheet,
    lease_cost,
    max_affordable_duration,
    within_budget,
)
from repro.cloud.request import TimedRequest
from repro.cluster.vmtypes import VMType, VMTypeCatalog
from repro.core.problem import Allocation, VirtualClusterRequest
from repro.util.errors import ValidationError


@pytest.fixture
def prices():
    return PriceSheet(VMTypeCatalog.ec2_default())


def make_lease(demand=(2, 1, 0), duration=3600.0, start=0.0):
    matrix = np.zeros((3, 3), dtype=np.int64)
    matrix[0] = demand
    return Lease(
        request=TimedRequest(
            request=VirtualClusterRequest(demand=list(demand)),
            arrival_time=0.0,
            duration=duration,
        ),
        allocation=Allocation(matrix=matrix, center=0, distance=0.0),
        start_time=start,
    )


class TestPriceSheet:
    def test_defaults_match_catalog(self, prices):
        assert prices.hourly.tolist() == list(DEFAULT_HOURLY_PRICES)

    def test_larger_types_cost_more(self, prices):
        assert prices.hourly[0] < prices.hourly[1] < prices.hourly[2]

    def test_custom_catalog_needs_prices(self):
        nano = VMType(name="nano", memory_gb=0.5, cpu_units=1, storage_gb=8)
        with pytest.raises(ValidationError):
            PriceSheet(VMTypeCatalog([nano]))
        sheet = PriceSheet(VMTypeCatalog([nano]), hourly_prices=[0.01])
        assert sheet.hourly_rate([3]) == pytest.approx(0.03)

    def test_wrong_price_count_rejected(self):
        with pytest.raises(ValidationError):
            PriceSheet(VMTypeCatalog.ec2_default(), hourly_prices=[0.1])

    def test_nonpositive_price_rejected(self):
        with pytest.raises(ValidationError):
            PriceSheet(VMTypeCatalog.ec2_default(), hourly_prices=[0.1, 0.0, 0.2])

    def test_hourly_rate(self, prices):
        assert prices.hourly_rate([2, 1, 0]) == pytest.approx(2 * 0.08 + 0.16)

    def test_cost_scales_with_duration(self, prices):
        one_hour = prices.cost([1, 0, 0], 3600.0)
        two_hours = prices.cost([1, 0, 0], 7200.0)
        assert two_hours == pytest.approx(2 * one_hour)
        assert one_hour == pytest.approx(0.08)

    def test_negative_duration_rejected(self, prices):
        with pytest.raises(ValidationError):
            prices.cost([1, 0, 0], -1.0)


class TestLeaseCost:
    def test_fractional_billing(self, prices):
        lease = make_lease(duration=1800.0)  # half an hour
        assert lease_cost(lease, prices) == pytest.approx(
            (2 * 0.08 + 0.16) / 2
        )

    def test_round_up_hours(self, prices):
        lease = make_lease(duration=3601.0)
        assert lease_cost(lease, prices, round_up_hours=True) == pytest.approx(
            2 * (2 * 0.08 + 0.16)
        )


class TestBudget:
    def test_within_budget(self, prices):
        assert within_budget([1, 0, 0], 3600.0, budget=0.08, prices=prices)
        assert not within_budget([1, 0, 0], 3600.0, budget=0.07, prices=prices)

    def test_max_affordable_duration_inverse_of_cost(self, prices):
        demand = [2, 1, 0]
        duration = max_affordable_duration(demand, budget=1.0, prices=prices)
        assert prices.cost(demand, duration) == pytest.approx(1.0)

    def test_negative_budget_rejected(self, prices):
        with pytest.raises(ValidationError):
            max_affordable_duration([1, 0, 0], budget=-1, prices=prices)


class TestBillingReport:
    def test_empty(self, prices):
        report = BillingReport.from_leases([], prices)
        assert report.revenue == 0.0
        assert report.revenue_per_instance_hour == 0.0

    def test_totals(self, prices):
        leases = [make_lease(duration=3600.0), make_lease(duration=7200.0)]
        report = BillingReport.from_leases(leases, prices)
        assert report.leases == 2
        assert report.revenue == pytest.approx(3 * (2 * 0.08 + 0.16))
        assert report.instance_hours == pytest.approx(3 * 3)  # 3 VMs x 3 h

    def test_per_type_breakdown_sums_to_revenue(self, prices):
        leases = [make_lease((1, 2, 1), duration=3600.0)]
        report = BillingReport.from_leases(leases, prices)
        assert sum(report.per_type_revenue) == pytest.approx(report.revenue)

    def test_placement_does_not_change_the_bill(self, prices):
        """Affinity optimization is billing-neutral: the same demand for the
        same duration costs the same regardless of the allocation shape."""
        compact = np.zeros((3, 3), dtype=np.int64)
        compact[0] = [2, 1, 0]
        spread = np.zeros((3, 3), dtype=np.int64)
        spread[0] = [1, 0, 0]
        spread[1] = [1, 1, 0]
        request = TimedRequest(
            request=VirtualClusterRequest(demand=[2, 1, 0]),
            arrival_time=0.0,
            duration=3600.0,
        )
        lease_a = Lease(
            request=request,
            allocation=Allocation(matrix=compact, center=0, distance=0.0),
            start_time=0.0,
        )
        lease_b = Lease(
            request=request,
            allocation=Allocation(matrix=spread, center=0, distance=1.0),
            start_time=0.0,
        )
        assert lease_cost(lease_a, prices) == lease_cost(lease_b, prices)

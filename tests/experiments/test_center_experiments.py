"""Tests for the Fig. 2/3/4 center studies."""

import numpy as np
import pytest

from repro.experiments.center_experiments import run_center_study, run_fig4
from repro.util.errors import ValidationError


@pytest.fixture(scope="module")
def study():
    return run_center_study(seed=7)


class TestCenterStudy:
    def test_all_requests_placed(self, study):
        assert len(study.placed) == 20

    def test_random_center_never_beats_best(self, study):
        """Fig. 2's defining property."""
        for p in study.placed:
            assert p.random_center_distance >= p.heuristic_distance

    def test_gap_is_positive_on_average(self, study):
        assert study.mean_gap > 0

    def test_centers_vary_across_requests(self, study):
        """Fig. 3: the central node is request-dependent."""
        assert len(set(study.centers)) > 1

    def test_deterministic(self):
        a = run_center_study(seed=11)
        b = run_center_study(seed=11)
        assert a.heuristic_distances == b.heuristic_distances
        assert a.random_center_distances == b.random_center_distances

    def test_seed_changes_outcome(self):
        a = run_center_study(seed=11)
        b = run_center_study(seed=12)
        assert a.heuristic_distances != b.heuristic_distances

    def test_invalid_release_probability(self):
        with pytest.raises(ValidationError):
            run_center_study(release_probability=1.5)

    def test_allocation_demands_match(self, study):
        for p in study.placed:
            assert tuple(int(x) for x in p.allocation.demand) == p.demand


class TestFig4:
    def test_sweep_covers_all_nodes(self):
        result = run_fig4(seed=7)
        assert len(result.center_distances) == 30  # 3 racks x 10 nodes

    def test_best_matches_minimum(self):
        result = run_fig4(seed=7)
        assert result.best_distance == min(result.center_distances)
        assert result.center_distances[result.best_center] == result.best_distance

    def test_center_choice_matters(self):
        """Fig. 4's point: distance varies strongly with the center."""
        result = run_fig4(seed=7)
        assert result.worst_distance > result.best_distance

    def test_invalid_index_rejected(self):
        with pytest.raises(ValidationError):
            run_fig4(seed=7, request_index=99)

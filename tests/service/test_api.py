"""Tests for the service API dataclasses and the JSON wire codec."""

import numpy as np
import pytest

from repro.core import OnlineHeuristic
from repro.service import (
    DecisionStatus,
    PlaceRequest,
    PlacementDecision,
    ReleaseRequest,
    ReleaseResponse,
    decode_message,
    encode_message,
)
from repro.service.api import allocation_to_placements, decision_from_allocation
from repro.util.errors import ValidationError


class TestPlaceRequest:
    def test_auto_assigns_request_id(self):
        a = PlaceRequest(demand=(1, 0, 2))
        b = PlaceRequest(demand=(1, 0, 2))
        assert a.request_id >= 0
        assert b.request_id > a.request_id

    def test_explicit_request_id_kept(self):
        assert PlaceRequest(demand=(1,), request_id=42).request_id == 42

    def test_rejects_empty_and_negative_demand(self):
        with pytest.raises(ValidationError):
            PlaceRequest(demand=())
        with pytest.raises(ValidationError):
            PlaceRequest(demand=(0, 0))
        with pytest.raises(ValidationError):
            PlaceRequest(demand=(1, -1))

    def test_to_core_round_trip(self):
        request = PlaceRequest(demand=(2, 1, 0), request_id=5, tag="job")
        core = request.to_core()
        assert core.request_id == 5
        assert list(core.demand) == [2, 1, 0]


class TestPlacementDecision:
    def test_invalid_status_rejected(self):
        with pytest.raises(ValidationError):
            PlacementDecision(request_id=1, status="banana")
        with pytest.raises(ValidationError):
            # Release statuses are not placement statuses.
            PlacementDecision(request_id=1, status=DecisionStatus.RELEASED)

    def test_allocation_matrix_densifies(self):
        decision = PlacementDecision(
            request_id=1,
            status=DecisionStatus.PLACED,
            placements=((0, 1, 2), (3, 0, 1)),
        )
        matrix = decision.allocation_matrix(4, 3)
        assert matrix[0, 1] == 2
        assert matrix[3, 0] == 1
        assert matrix.sum() == 3

    def test_from_allocation_preserves_geometry(self, paper_pool):
        allocation = OnlineHeuristic().place([2, 1, 0], paper_pool)
        decision = decision_from_allocation(7, allocation, latency=0.25)
        assert decision.placed
        assert decision.center == allocation.center
        assert decision.distance == allocation.distance
        assert decision.latency == 0.25
        dense = decision.allocation_matrix(
            paper_pool.num_nodes, paper_pool.num_types
        )
        assert np.array_equal(dense, allocation.matrix)

    def test_sparse_placements_match_argwhere(self, paper_pool):
        allocation = OnlineHeuristic().place([1, 1, 1], paper_pool)
        triples = allocation_to_placements(allocation)
        assert all(count > 0 for _, _, count in triples)
        assert sum(count for _, _, count in triples) == allocation.total_vms


class TestReleaseResponse:
    def test_status_validation(self):
        ok = ReleaseResponse(request_id=1, status=DecisionStatus.RELEASED)
        assert ok.released
        unknown = ReleaseResponse(
            request_id=1, status=DecisionStatus.UNKNOWN_LEASE
        )
        assert not unknown.released
        with pytest.raises(ValidationError):
            ReleaseResponse(request_id=1, status=DecisionStatus.PLACED)


class TestCodec:
    @pytest.mark.parametrize(
        "message",
        [
            PlaceRequest(demand=(1, 2, 0), request_id=11, priority=3, tag="x"),
            PlacementDecision(
                request_id=11,
                status=DecisionStatus.PLACED,
                placements=((0, 0, 1), (2, 1, 2)),
                center=2,
                distance=4.0,
                latency=0.001,
            ),
            PlacementDecision(
                request_id=12,
                status=DecisionStatus.REJECTED,
                detail="wait queue at capacity",
            ),
            ReleaseRequest(request_id=11),
            ReleaseResponse(
                request_id=11, status=DecisionStatus.RELEASED, freed_vms=3
            ),
        ],
    )
    def test_round_trip(self, message):
        assert decode_message(encode_message(message)) == message

    def test_single_line_output(self):
        line = encode_message(PlaceRequest(demand=(1,), request_id=1))
        assert "\n" not in line

    def test_rejects_garbage(self):
        with pytest.raises(ValidationError):
            decode_message("not json")
        with pytest.raises(ValidationError):
            decode_message("[1,2,3]")
        with pytest.raises(ValidationError):
            decode_message('{"no_kind": true}')

    def test_rejects_unknown_kind_and_fields(self):
        with pytest.raises(ValidationError):
            decode_message('{"kind": "teleport"}')
        with pytest.raises(ValidationError):
            decode_message(
                '{"kind": "release", "request_id": 1, "surprise": 2}'
            )

    def test_rejects_foreign_types(self):
        with pytest.raises(ValidationError):
            encode_message({"kind": "place"})

"""Rack-aligned shard plans: how a pool is partitioned into shards.

A shard plan assigns every *rack* of the physical topology to exactly one
shard — never splitting a rack — so the distance structure inside a shard is
exactly the distance structure of the global pool restricted to the shard's
nodes (same-node / same-rack / same-cloud relations are preserved, and the
hierarchical :class:`~repro.cluster.distance.DistanceModel` only looks at
those relations). That restriction property is what makes sharding almost
free for the paper's objective: Algorithm 1 packs outward from a central
node, so a compact placement inside one shard has the same ``DC`` it would
have had in the global pool.

Three plans are provided:

* :class:`ByRackPlan` — one shard per rack (the finest rack-aligned cut);
* :class:`RackGroupPlan` — ``num_shards`` groups of consecutive racks (racks
  are ordered cloud-major, so groups never straddle a cloud unless a cloud
  has fewer racks than the group size demands);
* :class:`CapacityBalancedPlan` — longest-processing-time assignment of
  racks to ``num_shards`` shards so total VM capacity per shard is balanced
  even when rack capacities are skewed.

Plus :class:`ExplicitPlan`, which replays a recorded assignment (used by
checkpoint restore so a fabric always reconstructs the exact partition it
was running with).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.node import PhysicalNode
from repro.cluster.topology import Topology
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class ShardAssignment:
    """The result of partitioning a topology: racks and nodes per shard.

    ``racks[s]`` and ``nodes[s]`` hold the *global* rack/node ids of shard
    ``s``, both sorted ascending. Every rack (and therefore every node)
    appears in exactly one shard.
    """

    plan_name: str
    racks: tuple[tuple[int, ...], ...]
    nodes: tuple[tuple[int, ...], ...]

    @property
    def num_shards(self) -> int:
        return len(self.racks)


class ShardPlan:
    """Strategy interface: partition a topology into rack-aligned shards."""

    #: Short name recorded in checkpoints and shown by introspection ops.
    name: str = "abstract"

    def partition(self, topology: Topology) -> ShardAssignment:
        """Assign every rack of *topology* to one shard."""
        rack_groups = self._rack_groups(topology)
        return assignment_from_racks(self.name, topology, rack_groups)

    def _rack_groups(self, topology: Topology) -> list[list[int]]:
        raise NotImplementedError


def assignment_from_racks(
    plan_name: str, topology: Topology, rack_groups: "list[list[int]]"
) -> ShardAssignment:
    """Validate *rack_groups* as a partition of the topology's racks."""
    seen: set[int] = set()
    for group in rack_groups:
        if not group:
            raise ValidationError("every shard must contain at least one rack")
        overlap = seen.intersection(group)
        if overlap:
            raise ValidationError(f"racks {sorted(overlap)} assigned to two shards")
        seen.update(group)
    missing = set(range(topology.num_racks)) - seen
    if missing:
        raise ValidationError(f"racks {sorted(missing)} assigned to no shard")
    racks = tuple(tuple(sorted(group)) for group in rack_groups)
    nodes = tuple(
        tuple(sorted(n for r in group for n in topology.rack_members(r)))
        for group in racks
    )
    return ShardAssignment(plan_name=plan_name, racks=racks, nodes=nodes)


class ByRackPlan(ShardPlan):
    """One shard per rack — maximum parallelism, minimum blast radius."""

    name = "by-rack"

    def _rack_groups(self, topology: Topology) -> list[list[int]]:
        return [[rack.rack_id] for rack in topology.racks]


class RackGroupPlan(ShardPlan):
    """``num_shards`` groups of consecutive racks, as even as possible.

    Racks are numbered cloud-major by :class:`~repro.cluster.topology.Topology`,
    so consecutive grouping keeps shards inside one cloud whenever the rack
    counts divide evenly.
    """

    name = "rack-group"

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValidationError("num_shards must be >= 1")
        self.num_shards = num_shards

    def _rack_groups(self, topology: Topology) -> list[list[int]]:
        num_racks = topology.num_racks
        if self.num_shards > num_racks:
            raise ValidationError(
                f"cannot cut {num_racks} racks into {self.num_shards} "
                "rack-aligned shards"
            )
        bounds = np.linspace(0, num_racks, self.num_shards + 1).astype(int)
        return [
            list(range(int(bounds[s]), int(bounds[s + 1])))
            for s in range(self.num_shards)
        ]


class CapacityBalancedPlan(ShardPlan):
    """LPT assignment of racks so shard capacities come out balanced.

    Racks are taken in decreasing total-VM-capacity order (ties by rack id)
    and each goes to the currently lightest shard (ties by shard id) — the
    classic longest-processing-time heuristic, deterministic by
    construction.
    """

    name = "capacity-balanced"

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValidationError("num_shards must be >= 1")
        self.num_shards = num_shards

    def _rack_groups(self, topology: Topology) -> list[list[int]]:
        num_racks = topology.num_racks
        if self.num_shards > num_racks:
            raise ValidationError(
                f"cannot cut {num_racks} racks into {self.num_shards} "
                "rack-aligned shards"
            )
        caps = topology.capacity_matrix().sum(axis=1)
        rack_cap = {
            rack.rack_id: int(sum(caps[n] for n in rack.node_ids))
            for rack in topology.racks
        }
        loads = [0] * self.num_shards
        groups: list[list[int]] = [[] for _ in range(self.num_shards)]
        for rack_id in sorted(rack_cap, key=lambda r: (-rack_cap[r], r)):
            shard = min(range(self.num_shards), key=lambda s: (loads[s], s))
            groups[shard].append(rack_id)
            loads[shard] += rack_cap[rack_id]
        return groups


class ExplicitPlan(ShardPlan):
    """Replay a recorded rack assignment (checkpoint restore)."""

    name = "explicit"

    def __init__(self, racks: "tuple[tuple[int, ...], ...] | list") -> None:
        self.racks = tuple(tuple(int(r) for r in group) for group in racks)
        if not self.racks:
            raise ValidationError("explicit plan needs at least one shard")

    def _rack_groups(self, topology: Topology) -> list[list[int]]:
        return [list(group) for group in self.racks]


def resolve_plan(name: str, num_shards: int) -> ShardPlan:
    """Build the named plan (CLI / config entry point)."""
    if name == ByRackPlan.name:
        return ByRackPlan()
    if name == RackGroupPlan.name:
        return RackGroupPlan(num_shards)
    if name == CapacityBalancedPlan.name:
        return CapacityBalancedPlan(num_shards)
    raise ValidationError(
        f"unknown shard plan {name!r}; expected one of "
        f"('{ByRackPlan.name}', '{RackGroupPlan.name}', "
        f"'{CapacityBalancedPlan.name}')"
    )


def shard_topology(
    topology: Topology, node_ids: "tuple[int, ...]"
) -> Topology:
    """The sub-topology over *node_ids* with dense local ids.

    Node, rack, and cloud ids are renumbered to dense 0-based local ids in
    ascending global order; local index ``i`` corresponds to global node
    ``node_ids[i]``. Because renumbering preserves the same-rack/same-cloud
    equivalence classes, the sub-topology's distance matrix equals the
    global distance matrix restricted to ``node_ids`` (for any hierarchical
    distance model).
    """
    rack_map: dict[int, int] = {}
    cloud_map: dict[int, int] = {}
    nodes: list[PhysicalNode] = []
    for local, global_id in enumerate(node_ids):
        node = topology[global_id]
        rack = rack_map.setdefault(node.rack_id, len(rack_map))
        cloud = cloud_map.setdefault(node.cloud_id, len(cloud_map))
        nodes.append(
            PhysicalNode(
                node_id=local,
                rack_id=rack,
                cloud_id=cloud,
                capacity=np.array(node.capacity, dtype=np.int64),
            )
        )
    return Topology(nodes)

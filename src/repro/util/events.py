"""Minimal discrete-event machinery shared by the cloud and MapReduce simulators.

A deliberately small event heap: time-ordered ``(time, tie_breaker, kind,
payload)`` tuples. Both simulators in this package are single-threaded
discrete-event loops, so this is all the infrastructure they need — no
framework dependency.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.util.errors import ValidationError


@dataclass(frozen=True, slots=True)
class Event:
    """One scheduled occurrence."""

    time: float
    kind: str
    payload: Any = None


class EventQueue:
    """Time-ordered event heap with deterministic FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._now = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def now(self) -> float:
        """Time of the most recently popped event (simulation clock)."""
        return self._now

    @property
    def empty(self) -> bool:
        return not self._heap

    def schedule(self, time: float, kind: str, payload: Any = None) -> Event:
        """Add an event; *time* must not precede the current clock."""
        if time < self._now - 1e-9:
            raise ValidationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        ev = Event(time=float(time), kind=kind, payload=payload)
        heapq.heappush(self._heap, (ev.time, next(self._counter), ev))
        return ev

    def pop(self) -> Event:
        """Remove and return the earliest event, advancing the clock."""
        if not self._heap:
            raise ValidationError("pop from empty EventQueue")
        t, _, ev = heapq.heappop(self._heap)
        self._now = t
        return ev

    def peek_time(self) -> float:
        """Time of the next event without popping."""
        if not self._heap:
            raise ValidationError("peek on empty EventQueue")
        return self._heap[0][0]

"""Extension bench: reliability-vs-distance Pareto front, chaos-validated.

Runs :func:`repro.experiments.reliability.run_reliability_pareto` at
240/480 nodes for rack-failure tolerances ``k ∈ {0, 1, 2}`` and asserts
the RVMP acceptance criteria:

* every placed lease's *measured* availability under the injected
  rack-failure schedules is at least its *promised* availability (cell
  means; the run is fully seeded, so these are exact reproducible
  numbers, not statistics);
* ``k = 0`` decisions are bit-identical to the unconstrained heuristic's
  on the same pool and request stream;
* the front is a real tradeoff: distance grows with ``k`` while the
  promised availability improves.

Full runs commit the table to
``benchmarks/results/reliability_bench.json``; smoke runs
(``RELIABILITY_BENCH_SMOKE=1``) shrink the sweep and leave the committed
numbers alone.
"""

import functools
import json
import os
from pathlib import Path

from repro.analysis import format_table
from repro.experiments.reliability import run_reliability_pareto

from benchmarks.conftest import emit

SMOKE = os.environ.get("RELIABILITY_BENCH_SMOKE") == "1"
SIZES = ((2, 4),) if SMOKE else ((8, 15), (16, 15))
NUM_REQUESTS = 6 if SMOKE else 12
TRIALS = 3 if SMOKE else 12
HORIZON = 2000.0 if SMOKE else 6000.0
RESULTS_PATH = Path(__file__).parent / "results" / "reliability_bench.json"


def run_study():
    return run_reliability_pareto(
        sizes=SIZES,
        num_requests=NUM_REQUESTS,
        trials=TRIALS,
        horizon=HORIZON,
    )


def test_reliability_pareto_promises_hold(benchmark):
    result = benchmark.pedantic(
        functools.partial(run_study), rounds=1, iterations=1
    )
    emit(
        "Extension — reliability/distance Pareto (rack-failure tolerance k)",
        format_table(
            [
                "nodes",
                "k",
                "placed",
                "mean DC",
                "promised",
                "measured",
                "k0 ident",
            ],
            result.rows(),
        ),
    )
    if not SMOKE:
        RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
        RESULTS_PATH.write_text(
            json.dumps(
                {
                    "mtbf": result.mtbf,
                    "mttr": result.mttr,
                    "horizon": result.horizon,
                    "trials": result.trials,
                    "points": [
                        {
                            "nodes": p.nodes,
                            "k": p.k,
                            "placed": p.placed,
                            "refused": p.refused,
                            "deferred": p.deferred,
                            "mean_distance": p.mean_distance,
                            "promised_availability": p.promised_availability,
                            "measured_availability": p.measured_availability,
                            "k0_bit_identical": p.k0_bit_identical,
                        }
                        for p in result.points
                    ],
                },
                indent=1,
            )
        )
    by_cell = {(p.nodes, p.k): p for p in result.points}
    for p in result.points:
        assert p.placed > 0
        # The headline promise: chaos-measured availability clears the
        # per-placement promise (exact seeded numbers — no tolerance).
        assert p.measured_availability >= p.promised_availability - 1e-12
        if p.k == 0:
            assert p.k0_bit_identical is True
        else:
            base = by_cell[(p.nodes, 0)]
            # Pareto shape: spreading buys availability and costs affinity.
            assert p.promised_availability >= base.promised_availability
            assert p.mean_distance >= base.mean_distance - 1e-9

"""Exponential backoff with jitter, deterministic under a seeded RNG.

Shared by every recovery path in the package: the MapReduce engine uses one
policy for task re-execution delays and another (shorter, capped) one for
shuffle-fetch retries; cloud-layer components can reuse the same schedule
logic. Keeping backoff in one place guarantees all retry delays are
reproducible when the caller threads a seeded generator through.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ValidationError


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Exponential backoff schedule: ``base_delay * factor**(attempt-1)``.

    Attributes
    ----------
    base_delay:
        Delay before the first retry (seconds).
    factor:
        Multiplier applied per additional failed attempt (>= 1).
    max_delay:
        Cap on the undithered delay (Hadoop caps fetch-retry backoff the
        same way).
    jitter:
        Fraction in ``[0, 1]``; the delay is scaled by a factor drawn
        uniformly from ``[1 - jitter, 1 + jitter]``. Jitter requires the
        caller to pass an RNG so schedules stay deterministic under a seed.
    """

    base_delay: float = 1.0
    factor: float = 2.0
    max_delay: float = 60.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.base_delay <= 0:
            raise ValidationError("base_delay must be > 0")
        if self.factor < 1.0:
            raise ValidationError("factor must be >= 1")
        if self.max_delay < self.base_delay:
            raise ValidationError("max_delay must be >= base_delay")
        if not (0.0 <= self.jitter <= 1.0):
            raise ValidationError("jitter must be in [0, 1]")

    def delay(self, attempt: int, rng: "np.random.Generator | None" = None) -> float:
        """Backoff before retry number *attempt* (1-based: first retry = 1)."""
        if attempt < 1:
            raise ValidationError(f"attempt must be >= 1, got {attempt}")
        d = min(self.base_delay * self.factor ** (attempt - 1), self.max_delay)
        if self.jitter > 0.0:
            if rng is None:
                raise ValidationError("jitter requires an RNG for determinism")
            d *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return d

    def schedule(
        self, attempts: int, rng: "np.random.Generator | None" = None
    ) -> list[float]:
        """The full delay sequence for *attempts* consecutive retries."""
        if attempts < 0:
            raise ValidationError(f"attempts must be >= 0, got {attempts}")
        return [self.delay(a, rng) for a in range(1, attempts + 1)]


#: Default task re-execution backoff (Hadoop-style seconds scale).
TASK_RETRY = RetryPolicy(base_delay=2.0, factor=2.0, max_delay=60.0, jitter=0.2)

#: Default shuffle-fetch retry backoff (short, tightly capped).
FETCH_RETRY = RetryPolicy(base_delay=0.5, factor=2.0, max_delay=8.0, jitter=0.2)

#: Default client-side transport retry backoff (sub-second, jitter-free so
#: :class:`~repro.service.transport.ServiceClient` retries stay deterministic
#: without threading an RNG through).
TRANSPORT_RETRY = RetryPolicy(base_delay=0.05, factor=2.0, max_delay=1.0)

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions if hasattr(a, "_name_parser_map")
        )
        commands = set(sub._name_parser_map)
        assert {
            "fig1",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "ablations",
            "simulate",
        } <= commands

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "DC1" in out and "SD optimum" in out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "heuristic" in out and "random" in out

    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        assert "center" in capsys.readouterr().out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        assert "best" in capsys.readouterr().out

    def test_fig5_with_trials(self, capsys):
        assert main(["fig5", "--trials", "1"]) == 0
        assert "improvement" in capsys.readouterr().out

    def test_fig6(self, capsys):
        assert main(["fig6", "--trials", "1"]) == 0
        assert "improvement" in capsys.readouterr().out

    def test_fig7_chart(self, capsys):
        assert main(["fig7", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "runtime" in out
        assert "█" in out  # the ASCII bars

    def test_fig8_alias(self, capsys):
        assert main(["fig8"]) == 0
        assert "WordCount" in capsys.readouterr().out

    def test_simulate(self, capsys):
        assert main(["simulate", "--requests", "20"]) == 0
        out = capsys.readouterr().out
        assert "placed" in out and "mean cluster distance" in out

    def test_simulate_batch(self, capsys):
        assert main(["simulate", "--requests", "20", "--batch"]) == 0
        assert "Algorithm 2" in capsys.readouterr().out

    def test_simulate_unknown_policy(self, capsys):
        assert main(["simulate", "--policy", "psychic"]) == 2

    def test_seed_changes_fig2(self, capsys):
        main(["fig2", "--seed", "1"])
        first = capsys.readouterr().out
        main(["fig2", "--seed", "2"])
        second = capsys.readouterr().out
        assert first != second


class TestTraceCommand:
    def test_record_and_replay(self, tmp_path, capsys):
        trace = str(tmp_path / "t.json")
        assert main(["trace", "--out", trace, "--requests", "10"]) == 0
        capsys.readouterr()
        assert main(["trace", "--replay", trace]) == 0
        out = capsys.readouterr().out
        assert "Replayed trace" in out and "placed" in out

    def test_missing_args_errors(self, capsys):
        assert main(["trace"]) == 2


class TestServiceCommands:
    def test_serve_and_loadgen_registered(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions if hasattr(a, "_name_parser_map")
        )
        assert {"serve", "loadgen"} <= set(sub._name_parser_map)

    def test_simulate_reports_acceptance_and_wait_percentiles(self, capsys):
        assert main(["simulate", "--requests", "20"]) == 0
        out = capsys.readouterr().out
        assert "acceptance rate" in out
        assert "wait p50 (s)" in out and "wait p99 (s)" in out

    def test_loadgen_runs_end_to_end(self, capsys, tmp_path):
        report_path = str(tmp_path / "report.json")
        assert main([
            "loadgen", "--requests", "20", "--rate", "2000",
            "--hold", "0.005", "--seed", "3", "--json", report_path,
        ]) == 0
        out = capsys.readouterr().out
        assert "acceptance rate" in out and "latency p99 (ms)" in out
        import json
        report = json.loads(open(report_path).read())
        assert report["submitted"] == 20
        assert report["placed"] > 0

    def test_loadgen_closed_loop(self, capsys):
        assert main([
            "loadgen", "--requests", "10", "--mode", "closed",
            "--concurrency", "2", "--hold", "0.002", "--seed", "4",
        ]) == 0
        assert "closed-loop" in capsys.readouterr().out

    def test_serve_duration_writes_checkpoint(self, capsys, tmp_path):
        from repro.service import load_checkpoint

        path = str(tmp_path / "ckpt.json")
        assert main([
            "serve", "--duration", "0.05", "--checkpoint", path,
        ]) == 0
        out = capsys.readouterr().out
        assert "placement service listening on" in out
        assert "final stats" in out
        state = load_checkpoint(path)
        state.verify_consistency()


class TestObsCommand:
    @pytest.fixture
    def endpoint(self):
        from repro.cluster import PoolSpec, random_pool
        from repro.cluster.vmtypes import VMTypeCatalog
        from repro.core import OnlineHeuristic
        from repro.obs import MetricsRegistry
        from repro.service import (
            ClusterState,
            PlaceRequest,
            PlacementService,
            ServiceClient,
            ServiceConfig,
            ServiceEndpoint,
        )

        pool = random_pool(
            PoolSpec(racks=2, nodes_per_rack=4, capacity_high=4),
            VMTypeCatalog.ec2_default(),
            seed=7,
        )
        service = PlacementService(
            ClusterState.from_pool(pool),
            policy=OnlineHeuristic(),
            config=ServiceConfig(batch_window=0.002),
            obs=MetricsRegistry(),
        )
        with ServiceEndpoint(service) as ep:
            host, port = ep.address
            with ServiceClient(host, port) as client:
                assert client.place(PlaceRequest(demand=(1, 1, 0))).placed
            yield ep

    def test_obs_registered(self):
        parser = build_parser()
        sub = next(a for a in parser._actions if hasattr(a, "_name_parser_map"))
        assert "obs" in sub._name_parser_map

    def test_obs_table_view(self, capsys, endpoint):
        host, port = endpoint.address
        assert main(["obs", "--host", host, "--port", str(port)]) == 0
        out = capsys.readouterr().out
        assert "repro_service_admissions_total" in out
        assert "outcome=admitted" in out
        # Bucket series are hidden unless --buckets is passed.
        assert "le=" not in out

    def test_obs_buckets_flag(self, capsys, endpoint):
        host, port = endpoint.address
        assert main([
            "obs", "--host", host, "--port", str(port), "--buckets",
        ]) == 0
        assert "le=" in capsys.readouterr().out

    def test_obs_raw_prometheus(self, capsys, endpoint):
        host, port = endpoint.address
        assert main([
            "obs", "--host", host, "--port", str(port), "--raw",
        ]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_service_decisions_total counter" in out

    def test_obs_json_format(self, capsys, endpoint):
        import json

        host, port = endpoint.address
        assert main([
            "obs", "--host", host, "--port", str(port), "--format", "json",
        ]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        docs = [json.loads(line) for line in lines]
        assert any(d["name"] == "repro_service_decisions_total" for d in docs)

"""Round-trip tests for both exposition formats.

The invariant both formats guarantee: ``parse(render(registry))`` equals
``flatten_sorted(registry)`` — no sample, label, or bucket is lost or
distorted by going through text.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.export import (
    flatten_sorted,
    parse_json_lines,
    parse_prometheus,
    render,
    to_json_lines,
    to_prometheus,
)
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.util.errors import ValidationError


def build_sample_registry() -> MetricsRegistry:
    r = MetricsRegistry()
    r.counter("jobs_total", "Jobs run.").inc(3)
    fam = r.counter("requests_total", "By outcome.", labels=("outcome",))
    fam.labels(outcome="placed").inc(7)
    fam.labels(outcome="refused").inc(1)
    r.gauge("queue_depth", "Waiting requests.").set(4)
    h = r.histogram("latency_seconds", "Latency.", buckets=(0.001, 0.01, 0.1))
    for v in (0.0005, 0.002, 0.05, 2.0):
        h.observe(v)
    lh = r.histogram("gain", "Gain.", labels=("algo",), buckets=(1.0, 8.0))
    lh.labels(algo="greedy").observe(3.0)
    return r


class TestPrometheus:
    def test_round_trip(self):
        r = build_sample_registry()
        assert parse_prometheus(to_prometheus(r)) == flatten_sorted(r)

    def test_headers_present(self):
        text = to_prometheus(build_sample_registry())
        assert "# HELP jobs_total Jobs run." in text
        assert "# TYPE jobs_total counter" in text
        assert "# TYPE latency_seconds histogram" in text

    def test_inf_bucket_rendered(self):
        text = to_prometheus(build_sample_registry())
        assert 'latency_seconds_bucket{le="+Inf"} 4' in text

    def test_deterministic(self):
        assert to_prometheus(build_sample_registry()) == to_prometheus(
            build_sample_registry()
        )

    def test_label_escaping(self):
        r = MetricsRegistry()
        fam = r.counter("c_total", labels=("k",))
        fam.labels(k='we"ird\\val\nue').inc()
        assert parse_prometheus(to_prometheus(r)) == flatten_sorted(r)

    def test_unparseable_line_rejected(self):
        with pytest.raises(ValidationError):
            parse_prometheus("!!! not a sample")


class TestJsonLines:
    def test_round_trip(self):
        r = build_sample_registry()
        assert parse_json_lines(to_json_lines(r)) == flatten_sorted(r)

    def test_one_document_per_family(self):
        r = build_sample_registry()
        assert len(to_json_lines(r).strip().splitlines()) == len(r.families())

    def test_deterministic(self):
        assert to_json_lines(build_sample_registry()) == to_json_lines(
            build_sample_registry()
        )


class TestRender:
    def test_dispatch(self):
        r = build_sample_registry()
        assert render(r, "prom") == to_prometheus(r)
        assert render(r, "json") == to_json_lines(r)

    def test_unknown_format_rejected(self):
        with pytest.raises(ValidationError):
            render(build_sample_registry(), "xml")

    def test_null_registry_renders_empty(self):
        assert render(NULL_REGISTRY, "prom") == ""
        assert render(NULL_REGISTRY, "json") == ""


_NAMES = st.from_regex(r"[a-z][a-z0-9_]{0,15}", fullmatch=True)
_LABEL_VALUES = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\r"),
    max_size=12,
)
_VALUES = st.floats(
    min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False
)


@st.composite
def registries(draw):
    r = MetricsRegistry()
    names = draw(
        st.lists(_NAMES, min_size=1, max_size=5, unique=True)
    )
    for i, name in enumerate(names):
        kind = draw(st.sampled_from(("counter", "gauge", "histogram")))
        labeled = draw(st.booleans())
        labels = ("lab",) if labeled else ()
        if kind == "counter":
            fam = r.counter(f"c_{name}", labels=labels)
        elif kind == "gauge":
            fam = r.gauge(f"g_{name}", labels=labels)
        else:
            fam = r.histogram(
                f"h_{name}", labels=labels, buckets=(0.01, 1.0, 100.0)
            )
        for _ in range(draw(st.integers(0, 4))):
            inst = fam.labels(lab=draw(_LABEL_VALUES)) if labeled else fam
            value = draw(_VALUES)
            if kind == "counter":
                inst.inc(value)
            elif kind == "gauge":
                inst.set(value)
            else:
                inst.observe(value)
    return r


class TestRoundTripProperty:
    @settings(max_examples=60, deadline=None)
    @given(registries())
    def test_prometheus_round_trip(self, registry):
        assert parse_prometheus(to_prometheus(registry)) == flatten_sorted(registry)

    @settings(max_examples=60, deadline=None)
    @given(registries())
    def test_json_round_trip(self, registry):
        assert parse_json_lines(to_json_lines(registry)) == flatten_sorted(registry)

"""Extension bench: out-of-process shard workers vs the threaded fabric.

The threaded :class:`~repro.service.shard.ShardedPlacementFabric` already
parallelizes the Algorithm-1 sweep across shards, but every scheduler
thread still shares one interpreter and one GIL — the sweep's numpy
kernels release it, the bookkeeping around them does not. The
:class:`~repro.service.proc.ProcFabric` moves each shard's service into
its own **spawned child process** behind the length-prefixed wire
protocol, buying real parallelism at the cost of one RPC round-trip per
admission and a long-poll hop per decision.

Both fabrics serve the same seeded closed-loop workload (24 in-flight
clients, exponential lease holding times) at 240/480 nodes with 4 shards.
Per size we record sustained throughput, acceptance, mean committed
``DC``, and client-observed p50/p99 latency into
``benchmarks/results/proc_bench.json`` (full runs only; smoke runs —
``PROC_BENCH_SMOKE=1`` — shrink everything and leave the committed
numbers alone). The headline criteria at 480 nodes: the proc fabric
accepts within 2 points of the threaded fabric, commits the same mean
``DC`` within 10%, and sustains at least a third of its throughput — the
wire tax must stay a constant factor, not a cliff.
"""

import functools
import json
import os
from pathlib import Path

from repro.analysis import format_table
from repro.cluster import PoolSpec, VMTypeCatalog, random_pool
from repro.obs import MetricsRegistry
from repro.service import LoadGenConfig, ServiceConfig, run_loadgen
from repro.service.proc import ProcFabric
from repro.service.shard import FabricConfig, RackGroupPlan, ShardedPlacementFabric

from benchmarks.conftest import emit

SMOKE = os.environ.get("PROC_BENCH_SMOKE") == "1"
#: (racks_per_cloud, nodes_per_rack), two clouds — 240/480 nodes full.
SIZES = [(2, 4)] if SMOKE else [(8, 15), (16, 15)]
NUM_SHARDS = 2 if SMOKE else 4
NUM_REQUESTS = 30 if SMOKE else 600
CONCURRENCY = 4 if SMOKE else 24
RESULTS_PATH = Path(__file__).parent / "results" / "proc_bench.json"

CATALOG = VMTypeCatalog.ec2_default()

SERVICE_CONFIG = ServiceConfig(
    batch_window=0.002, max_batch=64, enable_transfers=True, queue_capacity=1024
)


def make_pool(racks: int, nodes_per_rack: int):
    return random_pool(
        PoolSpec(
            racks=racks,
            nodes_per_rack=nodes_per_rack,
            clouds=2,
            capacity_low=1,
            capacity_high=4,
        ),
        CATALOG,
        seed=37,
    )


def loadgen_config() -> LoadGenConfig:
    return LoadGenConfig(
        num_requests=NUM_REQUESTS,
        mode="closed",
        concurrency=CONCURRENCY,
        mean_hold=0.05,
        demand_high=3,
        seed=41,
    )


def run_threaded(racks: int, nodes_per_rack: int):
    fabric = ShardedPlacementFabric(
        make_pool(racks, nodes_per_rack),
        plan=RackGroupPlan(NUM_SHARDS),
        config=FabricConfig(service=SERVICE_CONFIG),
        obs=MetricsRegistry(),
    )
    fabric.start()
    try:
        return run_loadgen(fabric, loadgen_config())
    finally:
        fabric.drain()


def run_proc(racks: int, nodes_per_rack: int):
    fabric = ProcFabric(
        make_pool(racks, nodes_per_rack),
        plan=RackGroupPlan(NUM_SHARDS),
        config=FabricConfig(service=SERVICE_CONFIG),
        obs=MetricsRegistry(),
    )
    fabric.start()
    try:
        return run_loadgen(fabric, loadgen_config())
    finally:
        codes = fabric.shutdown()
        assert all(code == 0 for code in codes.values()), codes


def run_comparison():
    records = []
    for racks, nodes_per_rack in SIZES:
        threaded = run_threaded(racks, nodes_per_rack)
        proc = run_proc(racks, nodes_per_rack)
        records.append(
            {
                "nodes": racks * nodes_per_rack * 2,  # two clouds
                "shards": NUM_SHARDS,
                "requests": NUM_REQUESTS,
                "concurrency": CONCURRENCY,
                "thread_throughput_rps": threaded.throughput,
                "proc_throughput_rps": proc.throughput,
                "proc_relative": (
                    proc.throughput / threaded.throughput
                    if threaded.throughput
                    else 0.0
                ),
                "thread_acceptance": threaded.acceptance_rate,
                "proc_acceptance": proc.acceptance_rate,
                "thread_mean_dc": threaded.mean_distance,
                "proc_mean_dc": proc.mean_distance,
                "thread_p50_ms": threaded.latency_p50 * 1000,
                "proc_p50_ms": proc.latency_p50 * 1000,
                "thread_p99_ms": threaded.latency_p99 * 1000,
                "proc_p99_ms": proc.latency_p99 * 1000,
            }
        )
    return records


def test_proc_fabric_sustains_closed_loop(benchmark):
    records = benchmark.pedantic(
        functools.partial(run_comparison), rounds=1, iterations=1
    )
    rows = [
        [
            rec["nodes"],
            f"{rec['thread_throughput_rps']:.0f}",
            f"{rec['proc_throughput_rps']:.0f}",
            f"{rec['proc_relative']:.2f}x",
            f"{rec['thread_acceptance']:.3f}",
            f"{rec['proc_acceptance']:.3f}",
            f"{rec['thread_p99_ms']:.1f}",
            f"{rec['proc_p99_ms']:.1f}",
        ]
        for rec in records
    ]
    emit(
        f"Extension — proc fabric ({NUM_SHARDS} worker processes) vs threaded "
        "fabric (closed loop)",
        format_table(
            [
                "nodes",
                "thread rps",
                "proc rps",
                "relative",
                "thread acc",
                "proc acc",
                "thread p99 ms",
                "proc p99 ms",
            ],
            rows,
        ),
    )
    if not SMOKE:
        RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
        RESULTS_PATH.write_text(
            json.dumps(
                {
                    "shards": NUM_SHARDS,
                    "concurrency": CONCURRENCY,
                    "requests": NUM_REQUESTS,
                    "sizes": records,
                },
                indent=1,
            )
        )
    for rec in records:
        assert rec["thread_acceptance"] > 0
        assert rec["proc_acceptance"] > 0
    if not SMOKE:
        # Headline criteria at 480 nodes / 4 worker processes.
        headline = records[-1]
        assert headline["nodes"] >= 480
        assert (
            abs(headline["proc_acceptance"] - headline["thread_acceptance"])
            <= 0.02
        )
        # Additive slack on top of the 10% bound: a closed-loop run's mean
        # DC sits near zero at this load, where timing noise dominates.
        assert (
            headline["proc_mean_dc"]
            <= headline["thread_mean_dc"] * 1.10 + 0.05
        )
        assert headline["proc_relative"] >= 1 / 3

"""ProcFabric: the sharded fabric with every shard in its own process.

Same serving surface and routing brain as
:class:`~repro.service.shard.fabric.ShardedPlacementFabric`, different
execution substrate: each shard's :class:`PlacementService` runs in a
spawned child (:mod:`repro.service.proc.worker`) and the parent holds only
a **mirror** :class:`~repro.service.state.ClusterState` per shard —
updated from decision events and releases — that feeds the same
:class:`~repro.service.shard.router.ShardRouter` scoring. Because the
mirrors see exactly the allocation deltas the children commit, routing and
spillover are decision-identical to the in-process fabric on the same
trace (the differential suite asserts this).

Wire discipline per worker: a **cmd** connection the fabric drives
request/reply under a lock, and an **events** connection a dedicated
thread long-polls for asynchronous decisions. Submissions carry an attempt
token; a late decision from a worker that has since been marked down loses
the fence exactly as in-process. Checkpoints are *always* fetched from the
children — the mirror's version counter legitimately diverges (the child's
in-batch transfer phase mutates its version), so serializing a mirror
would break byte-identity.

Scope: cross-shard rebalancing is not supported out-of-process
(``rebalance_interval`` must stay ``None``) — it requires multi-shard
transactional state mutation the wire protocol deliberately does not
offer.
"""

from __future__ import annotations

import json
import logging
import multiprocessing
import os
import socket
import threading
import time
from dataclasses import replace

import numpy as np

from repro.cloud.traces import catalog_to_dict, pool_to_dict
from repro.cluster.resources import ResourcePool
from repro.core.problem import Allocation
from repro.obs.registry import ensure_registry
from repro.service import wire
from repro.service.api import (
    DecisionStatus,
    PlaceRequest,
    PlacementDecision,
    ReleaseRequest,
    ReleaseResponse,
)
from repro.service.checkpoint import checkpoint_bytes, state_from_checkpoint
from repro.service.proc.worker import POLICY_REGISTRY, worker_main
from repro.service.server import ServiceConfig, Ticket
from repro.service.shard.fabric import (
    FABRIC_CHECKPOINT_VERSION,
    FabricConfig,
    FabricStats,
    Shard,
    _ROUTING,
)
from repro.service.shard.plan import (
    ByRackPlan,
    ShardAssignment,
    shard_topology,
)
from repro.service.shard.router import ShardRouter
from repro.service.state import ClusterState
from repro.service.supervisor import SupervisorConfig
from repro.util.errors import CapacityError, TransportError, ValidationError
from repro.util.timing import PhaseTimer

_log = logging.getLogger(__name__)

#: How long the fabric waits for a spawned child to dial back both channels.
SPAWN_TIMEOUT = 30.0
#: Default cmd-channel RPC deadline.
DEFAULT_RPC_TIMEOUT = 30.0


class _Mirror:
    """Holder giving :class:`Shard` its ``service.state`` shape for a
    parent-side mirror state (no service runs here)."""

    __slots__ = ("state",)

    def __init__(self, state: ClusterState) -> None:
        self.state = state


class ProcWorkerHandle:
    """Parent-side handle for one spawned shard worker.

    Owns the child process, the cmd connection (request/reply under a
    lock), and the events thread that long-polls decisions into the
    fabric. ``dead`` latches on the first connection failure; the
    supervisor turns that into a failover.
    """

    def __init__(self, fabric: "ProcFabric", shard_id: int) -> None:
        self.fabric = fabric
        self.shard_id = shard_id
        self.worker_id = f"shard-{shard_id}"
        self.token = os.urandom(12).hex()
        self.process = None
        self.pid: "int | None" = None
        self.dead = False
        #: The cmd channel's negotiated wire codec name (set by spawn).
        self.codec: "str | None" = None
        self._cmd = None
        self._evt = None
        self._cmd_lock = threading.Lock()
        self._stop_events = threading.Event()
        self._events_thread: "threading.Thread | None" = None

    @property
    def alive(self) -> bool:
        return (
            not self.dead
            and self.process is not None
            and self.process.is_alive()
        )

    @property
    def exitcode(self) -> "int | None":
        return None if self.process is None else self.process.exitcode

    # ------------------------------------------------------------ lifecycle

    def spawn(self, init_doc: dict, payload: bytes) -> dict:
        """Start the child, wait for its channels, initialize its state."""
        host, port = self.fabric.listen_address
        spec = {
            "host": host,
            "port": port,
            "token": self.token,
            "shard_id": self.shard_id,
            "worker_id": self.worker_id,
        }
        ctx = multiprocessing.get_context("spawn")
        self.process = ctx.Process(
            target=worker_main,
            args=(spec,),
            name=f"repro-worker-{self.shard_id}",
            daemon=True,
        )
        self.process.start()
        self._cmd = self.fabric._claim_connection(self.token, "worker-cmd")
        self._evt = self.fabric._claim_connection(self.token, "worker-events")
        self.codec = self._cmd[3]
        reply, _ = self.call({"op": "init", **init_doc}, blob=payload)
        self.pid = int(reply.get("pid", self.process.pid or -1))
        self._stop_events.clear()
        self._events_thread = threading.Thread(
            target=self._event_loop,
            name=f"fabric-events-{self.shard_id}",
            daemon=True,
        )
        self._events_thread.start()
        return reply

    def call(
        self, doc: dict, blob: "bytes | None" = None, timeout: float = DEFAULT_RPC_TIMEOUT
    ) -> "tuple[dict, bytes | None]":
        """One cmd-channel RPC; marks the handle dead on connection loss."""
        op = str(doc.get("op"))
        started = time.monotonic()
        with self._cmd_lock:
            if self._cmd is None or self.dead:
                raise TransportError(
                    f"worker {self.worker_id} has no live cmd channel"
                )
            sock, rfile, wfile, codec = self._cmd
            sock.settimeout(timeout)
            try:
                reply = wire.rpc(rfile, wfile, doc, blob, codec=codec)
            except TransportError as exc:
                if "failed:" not in str(exc):
                    self.dead = True
                self.fabric._m_rpc_failures.labels(op=op).inc()
                raise
            except OSError as exc:
                self.dead = True
                self.fabric._m_rpc_failures.labels(op=op).inc()
                raise TransportError(
                    f"worker {self.worker_id} rpc {op!r} failed: {exc}"
                ) from exc
        self.fabric._m_rpcs.labels(op=op).inc()
        self.fabric._m_rpc_latency.observe(time.monotonic() - started)
        return reply

    def _event_loop(self) -> None:
        _, rfile, wfile, codec = self._evt
        sock = self._evt[0]
        sock.settimeout(10.0)
        while not self._stop_events.is_set():
            try:
                reply, _ = wire.rpc(
                    rfile, wfile, {"op": "poll", "timeout": 0.25}, codec=codec
                )
            except (TransportError, OSError):
                self.dead = True
                return
            for event in reply.get("events", ()):
                try:
                    self.fabric._on_event(self.shard_id, event)
                except Exception:
                    _log.exception(
                        "event from shard %d failed to apply", self.shard_id
                    )

    def stop_events(self) -> None:
        self._stop_events.set()
        thread = self._events_thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=5.0)
        self._events_thread = None

    def kill(self) -> None:
        """SIGKILL the child — the real-process analogue of a chaos kill."""
        self.dead = True
        if self.process is not None and self.process.is_alive():
            self.process.kill()

    def close(self, join_timeout: float = 5.0) -> None:
        """Tear down connections and reap the child (escalating to kill)."""
        self.stop_events()
        for conn in (self._cmd, self._evt):
            if conn is None:
                continue
            for closable in (conn[1], conn[2], conn[0]):
                try:
                    closable.close()
                except OSError:
                    pass
        self._cmd = self._evt = None
        process = self.process
        if process is not None:
            process.join(timeout=join_timeout)
            if process.is_alive():
                process.kill()
                process.join(timeout=join_timeout)

    def __repr__(self) -> str:
        return (
            f"ProcWorkerHandle(shard={self.shard_id}, pid={self.pid}, "
            f"alive={self.alive})"
        )


class ProcFabric:
    """A sharded placement fabric whose workers are real child processes.

    Parameters
    ----------
    pool / plan / config / obs:
        As for :class:`ShardedPlacementFabric`; ``config.rebalance_interval``
        must be ``None`` (cross-process rebalancing is unsupported).
    coord_url:
        Optional ``tcp://HOST:PORT`` of a coordination server. When set,
        each child registers there, heartbeats on the wall clock, syncs its
        lease ledger, and write-ahead replicates its checkpoint — the
        substrate :class:`~repro.service.proc.supervisor.ProcSupervisor`
        needs for SIGKILL failover.
    policy:
        Wire name of the per-shard placement policy (see
        :data:`~repro.service.proc.worker.POLICY_REGISTRY`).
    supervisor_config:
        Heartbeat/lease TTLs forwarded to each child's in-process
        :class:`~repro.service.supervisor.ShardWorker` wrapper.
    codec:
        Wire codec for the cmd/events channels, negotiated at each
        channel's hello: ``"auto"`` (default — binary when the worker
        offers it, the usual case), ``"json"`` (pin the legacy line
        framing), or ``"binary"`` (require it; a worker that cannot is a
        :class:`~repro.util.errors.TransportError` at spawn).
    """

    def __init__(
        self,
        pool: ResourcePool,
        *,
        plan=None,
        config: "FabricConfig | None" = None,
        obs=None,
        coord_url: "str | None" = None,
        policy: str = "heuristic",
        supervisor_config: "SupervisorConfig | None" = None,
        codec: str = "auto",
    ) -> None:
        if int(pool.allocated.sum()) != 0:
            raise ValidationError(
                "the proc fabric requires a pristine pool"
            )
        self.config = config or FabricConfig()
        if self.config.rebalance_interval is not None:
            raise ValidationError(
                "cross-shard rebalancing is not supported out-of-process; "
                "use rebalance_interval=None"
            )
        if policy not in POLICY_REGISTRY:
            raise ValidationError(
                f"unknown policy {policy!r}; expected one of "
                f"{sorted(POLICY_REGISTRY)}"
            )
        if codec not in ("auto", "json", "binary"):
            raise ValidationError(
                f"codec must be 'auto', 'json', or 'binary', got {codec!r}"
            )
        self.codec_pref = codec
        self.obs = ensure_registry(obs)
        self.timer = PhaseTimer()
        self.coord_url = coord_url
        self.policy_name = policy
        self.supervisor_config = supervisor_config or SupervisorConfig()
        self._pool = pool
        if plan is None:
            plan = ByRackPlan()
        assignment = (
            plan if isinstance(plan, ShardAssignment) else plan.partition(pool.topology)
        )
        self.assignment = assignment
        self._shards: list[Shard] = []
        self._mirror_locks: list[threading.Lock] = []
        for shard_id, (racks, node_ids) in enumerate(
            zip(assignment.racks, assignment.nodes)
        ):
            topo = shard_topology(pool.topology, node_ids)
            state = ClusterState(
                topo, pool.catalog, distance_model=pool.distance_model
            )
            self._shards.append(
                Shard(shard_id, racks, node_ids, _Mirror(state), pool.num_nodes)
            )
            self._mirror_locks.append(threading.Lock())
        self._router = ShardRouter([s.state for s in self._shards])
        self._stats = FabricStats()
        self._owners: dict[int, int] = {}
        self._down: set[int] = set()
        #: Leases released on the wire before their decision event applied
        #: to the mirror (client raced ahead); reconciled in _on_event.
        self._pending_releases: set[int] = set()
        self._inflight: dict[int, tuple[PlaceRequest, Ticket, int]] = {}
        self._attempts = 0
        self._started = False
        self._closed = False
        self._flock = threading.Lock()
        # --- instruments -------------------------------------------------
        self._m_admission = self.obs.counter(
            "repro_service_admission_total",
            "Per-shard admission outcomes, including refusals recorded "
            "before any queue is touched.",
            labels=("shard", "outcome"),
        )
        self._m_spill = self.obs.counter(
            "repro_shard_spillovers_total",
            "Requests a shard declined at the door and the router spilled "
            "to the next-best shard.",
            labels=("shard",),
        )
        self._m_failovers = self.obs.counter(
            "repro_fabric_failovers_total",
            "Shard-death failover events: the shard was quarantined from "
            "routing and its in-flight requests re-routed.",
            labels=("shard",),
        )
        self._m_rpcs = self.obs.counter(
            "repro_proc_rpc_total",
            "Worker RPCs issued over the proc fabric's cmd channels.",
            labels=("op",),
        )
        self._m_rpc_failures = self.obs.counter(
            "repro_proc_rpc_failures_total",
            "Worker RPCs that failed (connection loss or op error).",
            labels=("op",),
        )
        self._m_rpc_latency = self.obs.histogram(
            "repro_proc_rpc_seconds",
            "Worker RPC round-trip latency on the cmd channel.",
        )
        self._m_worker_up = self.obs.gauge(
            "repro_proc_worker_up",
            "1 while the shard's child process is believed alive, 0 while dead.",
            labels=("shard",),
        )
        self._m_respawns = self.obs.counter(
            "repro_proc_respawns_total",
            "Worker child processes respawned from a replicated checkpoint.",
            labels=("shard",),
        )
        # --- listener + workers ------------------------------------------
        self._pending: dict[tuple[str, str], tuple] = {}
        self._pending_cv = threading.Condition()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(2 * len(self._shards) + 4)
        self.listen_address = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="proc-fabric-accept", daemon=True
        )
        self._accept_thread.start()
        self._handles: list[ProcWorkerHandle] = []
        try:
            for shard in self._shards:
                handle = ProcWorkerHandle(self, shard.shard_id)
                # Registered before spawn so a mid-spawn failure still gets
                # the child reaped by the cleanup shutdown below.
                self._handles.append(handle)
                handle.spawn(
                    self._init_doc(),
                    checkpoint_bytes(shard.state).encode("utf-8"),
                )
                self._m_worker_up.labels(shard=str(shard.shard_id)).set(1)
        except Exception:
            self.shutdown(drain=False)
            raise

    def _init_doc(self) -> dict:
        service_doc = {
            name: getattr(self.config.service, name)
            for name in ServiceConfig.__dataclass_fields__
        }
        supervisor_doc = {
            name: getattr(self.supervisor_config, name)
            for name in SupervisorConfig.__dataclass_fields__
        }
        return {
            "policy": self.policy_name,
            "service": service_doc,
            "coord": self.coord_url,
            "supervisor": supervisor_doc,
        }

    # ----------------------------------------------------------- listener

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._handshake, args=(sock,), daemon=True
            ).start()

    def _handshake(self, sock: socket.socket) -> None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(10.0)
        rfile, wfile = sock.makefile("rb"), sock.makefile("wb")
        try:
            hello = wire.expect_hello(rfile)
            role = str(hello.get("role"))
            token = str(hello.get("token"))
            if role not in ("worker-cmd", "worker-events"):
                raise TransportError(f"unexpected peer role {role!r}")
            # Codec negotiation rides the hello exchange: the worker offers
            # what it speaks, we answer with this fabric's pick. A worker
            # that offered nothing stays on the legacy JSON framing.
            if self.codec_pref == "json":
                chosen = "json"
            else:
                chosen = wire.negotiate_codec(hello)
                if self.codec_pref == "binary" and chosen != "binary":
                    raise TransportError(
                        f"worker {role} channel cannot speak the required "
                        "binary codec"
                    )
            # The token must match a handle's spawn nonce; the claim side
            # looks entries up by (token, role), so a stranger's connection
            # simply sits unclaimed and is closed at shutdown.
            wire.send_hello(wfile, role="fabric", codec=chosen)
            with self._pending_cv:
                self._pending[(token, role)] = (sock, rfile, wfile, chosen)
                self._pending_cv.notify_all()
        except (TransportError, OSError):
            for closable in (rfile, wfile, sock):
                try:
                    closable.close()
                except OSError:
                    pass

    def _claim_connection(self, token: str, role: str):
        deadline = time.monotonic() + SPAWN_TIMEOUT
        with self._pending_cv:
            while (token, role) not in self._pending:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TransportError(
                        f"spawned worker never connected its {role} channel"
                    )
                self._pending_cv.wait(timeout=remaining)
            return self._pending.pop((token, role))

    # -------------------------------------------------------------- shape

    @property
    def shards(self) -> tuple[Shard, ...]:
        return tuple(self._shards)

    @property
    def handles(self) -> tuple[ProcWorkerHandle, ...]:
        return tuple(self._handles)

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def num_nodes(self) -> int:
        return self._pool.num_nodes

    @property
    def num_types(self) -> int:
        return self._pool.num_types

    @property
    def pool(self) -> ResourcePool:
        return self._pool

    @property
    def down_shards(self) -> frozenset:
        with self._flock:
            return frozenset(self._down)

    def owner_of(self, request_id: int) -> "int | None":
        with self._flock:
            owner = self._owners.get(request_id)
        return None if owner is None or owner == _ROUTING else owner

    @property
    def stats(self) -> FabricStats:
        with self._flock:
            stats = replace(self._stats)
        gain = 0.0
        down = self.down_shards
        for handle in self._handles:
            if handle.shard_id in down or not handle.alive:
                continue
            try:
                reply, _ = handle.call({"op": "stats"}, timeout=5.0)
                gain += float(reply["stats"].get("transfer_gain", 0.0))
            except TransportError:
                continue
        stats.batch_transfer_gain = gain
        return stats

    @property
    def queued(self) -> int:
        down = self.down_shards
        total = 0
        for handle in self._handles:
            if handle.shard_id in down or not handle.alive:
                continue
            try:
                reply, _ = handle.call({"op": "describe"}, timeout=5.0)
                total += int(reply["shards"][0]["queued"])
            except TransportError:
                continue
        return total

    # --------------------------------------------------------- submission

    def submit(self, request: PlaceRequest) -> Ticket:
        """Route to the best live worker; spill over on declines.

        Same admission semantics as the in-process fabric; a worker whose
        cmd channel fails mid-submit counts as a decline (its death is the
        supervisor's business, the request's placement is ours).
        """
        ticket = Ticket(request.request_id)
        with self._flock:
            self._stats.submitted += 1
            if request.request_id in self._owners:
                self._stats.rejected += 1
                ticket._resolve(
                    PlacementDecision(
                        request_id=request.request_id,
                        status=DecisionStatus.REJECTED,
                        detail="duplicate request id (pending or holding a lease)",
                    )
                )
                return ticket
            self._owners[request.request_id] = _ROUTING
        self._dispatch(request, ticket, failover=False)
        return ticket

    def _dispatch(
        self, request: PlaceRequest, ticket: Ticket, *, failover: bool
    ) -> None:
        demand = np.asarray(request.demand, dtype=np.int64)
        with self._flock:
            down = frozenset(self._down)
        with self.timer.phase("route"):
            route = self._router.route(demand, exclude=down)
        for shard_id in route.refused:
            self._m_admission.labels(shard=str(shard_id), outcome="refused").inc()
        candidates = (
            route.ranked
            if (self.config.spillover or failover)
            else route.ranked[:1]
        )
        for shard_id in candidates:
            with self._flock:
                if shard_id in self._down:
                    continue
                self._attempts += 1
                attempt = self._attempts
                self._owners[request.request_id] = shard_id
                self._inflight[request.request_id] = (request, ticket, attempt)
            handle = self._handles[shard_id]
            try:
                reply, _ = handle.call(
                    {
                        "op": "submit",
                        "demand": list(request.demand),
                        "request_id": request.request_id,
                        "priority": request.priority,
                        "tag": request.tag,
                        "attempt": attempt,
                    }
                )
                declined = not reply.get("admitted")
            except TransportError:
                # A dead/dying worker is a decline: spill to the next shard.
                declined = True
                reply = None
            if declined:
                with self._flock:
                    entry = self._inflight.get(request.request_id)
                    if entry is None or entry[2] != attempt:
                        return
                    del self._inflight[request.request_id]
                    self._owners[request.request_id] = _ROUTING
                    self._stats.spillovers += 1
                self._m_admission.labels(
                    shard=str(shard_id), outcome="rejected"
                ).inc()
                self._m_spill.labels(shard=str(shard_id)).inc()
                continue
            self._m_admission.labels(shard=str(shard_id), outcome="admitted").inc()
            return
        with self._flock:
            self._owners.pop(request.request_id, None)
            if route.ranked:
                self._stats.rejected += 1
                status, detail = (
                    DecisionStatus.REJECTED,
                    f"all {len(candidates)} candidate shard(s) declined",
                )
            elif down and any(
                not self._shards[sid].state.exceeds_max_capacity(demand)
                for sid in down
            ):
                self._stats.unavailable += 1
                status, detail = (
                    DecisionStatus.SHARD_UNAVAILABLE,
                    f"only dead shard(s) {sorted(down)} could serve this "
                    "demand; retry after recovery",
                )
            else:
                self._stats.refused += 1
                status, detail = (
                    DecisionStatus.REFUSED,
                    "demand exceeds the maximum capacity of every shard",
                )
        ticket._resolve(
            PlacementDecision(
                request_id=request.request_id, status=status, detail=detail
            )
        )

    # -------------------------------------------------------------- events

    def _on_event(self, shard_id: int, event: dict) -> None:
        """Apply one worker event: fence it, mirror it, resolve the ticket."""
        if event.get("type") != "decision":
            return
        request_id = int(event["request_id"])
        attempt = int(event.get("attempt", -1))
        doc = event["decision"]
        shard = self._shards[shard_id]
        local = PlacementDecision(
            request_id=request_id,
            status=str(doc["status"]),
            placements=tuple(tuple(p) for p in doc.get("placements", ())),
            center=int(doc.get("center", -1)),
            distance=float(doc.get("distance", 0.0)),
            latency=float(doc.get("latency", 0.0)),
            detail=str(doc.get("detail", "")),
        )
        translated = shard.translate(local)
        with self._flock:
            entry = self._inflight.get(request_id)
            if entry is None or entry[2] != attempt:
                return  # fenced: a failover re-routed this request
            del self._inflight[request_id]
            if translated.placed:
                self._stats.placed += 1
                self._stats.total_distance += translated.distance
            else:
                self._owners.pop(request_id, None)
                if translated.status == DecisionStatus.REJECTED:
                    self._stats.rejected += 1
                elif translated.status == DecisionStatus.TIMEOUT:
                    self._stats.timed_out += 1
                elif translated.status == DecisionStatus.DROPPED:
                    self._stats.dropped += 1
                elif translated.status == DecisionStatus.CANCELLED:
                    self._stats.cancelled += 1
                elif translated.status == DecisionStatus.REFUSED:
                    self._stats.refused += 1
                elif translated.status == DecisionStatus.SHARD_UNAVAILABLE:
                    self._stats.unavailable += 1
        if translated.placed:
            allocation = Allocation(
                matrix=local.allocation_matrix(shard.num_nodes, self.num_types),
                center=local.center,
                distance=local.distance,
            )
            self._mirror_allocate(shard_id, request_id, allocation)
        entry[1]._resolve(translated)

    def _mirror_allocate(
        self, shard_id: int, request_id: int, allocation: Allocation
    ) -> None:
        """Apply one committed placement to the shard's mirror state.

        Decision events apply in the child's commit order, but a release
        the child committed *before* this batch may still have its RPC
        reply in flight — the mirror then briefly lacks the freed capacity
        this allocation consumed. Releases only ever free capacity, so a
        short retry converges; a persistent gap means the mirror truly
        diverged and is rebuilt wholesale from the child's checkpoint.
        """
        shard = self._shards[shard_id]
        deadline = time.monotonic() + 5.0
        while True:
            try:
                with self._mirror_locks[shard_id]:
                    shard.state.allocate_lease(request_id, allocation)
                break
            except CapacityError:
                if time.monotonic() >= deadline:
                    _log.warning(
                        "shard %d mirror stuck behind a release; rebuilding "
                        "from the worker's checkpoint", shard_id,
                    )
                    self._resync_mirror(shard_id)
                    break
                time.sleep(0.005)
        with self._flock:
            release_raced_ahead = request_id in self._pending_releases
            self._pending_releases.discard(request_id)
        if release_raced_ahead:
            with self._mirror_locks[shard_id]:
                if shard.state.has_lease(request_id):
                    shard.state.release_lease(request_id)

    def _resync_mirror(self, shard_id: int) -> None:
        """Replace a shard's mirror with the child's authoritative state."""
        state = self.fetch_worker_state(shard_id)
        with self._mirror_locks[shard_id]:
            self._shards[shard_id].service.state = state
        self._router.replace_state(shard_id, state)

    # ------------------------------------------------------------- release

    def release(self, request: ReleaseRequest) -> ReleaseResponse:
        with self._flock:
            shard_id = self._owners.get(request.request_id)
            if shard_id is not None and shard_id in self._down:
                self._stats.unavailable += 1
                return ReleaseResponse(
                    request_id=request.request_id,
                    status=DecisionStatus.SHARD_UNAVAILABLE,
                )
        if shard_id is None or shard_id == _ROUTING:
            return ReleaseResponse(
                request_id=request.request_id,
                status=DecisionStatus.UNKNOWN_LEASE,
            )
        try:
            reply, _ = self._handles[shard_id].call(
                {"op": "release", "request_id": request.request_id}
            )
        except TransportError:
            with self._flock:
                self._stats.unavailable += 1
            return ReleaseResponse(
                request_id=request.request_id,
                status=DecisionStatus.SHARD_UNAVAILABLE,
            )
        response = ReleaseResponse(
            request_id=request.request_id,
            status=str(reply["status"]),
            freed_vms=int(reply.get("freed_vms", 0)),
        )
        if response.released:
            with self._mirror_locks[shard_id]:
                mirror = self._shards[shard_id].state
                applied = mirror.has_lease(request.request_id)
                if applied:
                    mirror.release_lease(request.request_id)
            with self._flock:
                if not applied:
                    # The client released before this lease's decision event
                    # reached the mirror; _on_event settles the score.
                    self._pending_releases.add(request.request_id)
                self._owners.pop(request.request_id, None)
                self._stats.released += 1
        return response

    def cancel(self, request_id: int) -> bool:
        with self._flock:
            shard_id = self._owners.get(request_id)
            if shard_id is not None and shard_id in self._down:
                return False
        if shard_id is None or shard_id == _ROUTING:
            return False
        try:
            reply, _ = self._handles[shard_id].call(
                {"op": "cancel", "request_id": request_id}
            )
        except TransportError:
            return False
        return bool(reply.get("cancelled"))

    # ------------------------------------------------------------ failover

    def mark_shard_down(self, shard_id: int, *, reason: str = "") -> list[int]:
        """Quarantine a dead worker and re-route its in-flight requests.

        The child, if somehow still running (a wedged rather than dead
        process), is SIGKILLed — a quarantined worker must never commit
        further state, or restore-from-checkpoint would fork the ledger.
        """
        if not 0 <= shard_id < len(self._shards):
            raise ValidationError(f"no shard {shard_id} to mark down")
        handle = self._handles[shard_id]
        handle.kill()
        handle.stop_events()
        with self._flock:
            if shard_id in self._down:
                return []
            self._down.add(shard_id)
            self._stats.shard_deaths += 1
            victims = [
                (rid, entry)
                for rid, entry in self._inflight.items()
                if self._owners.get(rid) == shard_id
            ]
            for rid, _ in victims:
                del self._inflight[rid]
                self._owners[rid] = _ROUTING
            self._stats.failovers += len(victims)
        self._m_failovers.labels(shard=str(shard_id)).inc()
        self._m_worker_up.labels(shard=str(shard_id)).set(0)
        _log.warning(
            "worker %d marked down (%s): re-routing %d in-flight request(s)",
            shard_id, reason or "unspecified", len(victims),
        )
        for rid, (request, ticket, _attempt) in sorted(victims):
            self._dispatch(request, ticket, failover=True)
        return [rid for rid, _ in sorted(victims)]

    def respawn_worker(self, shard_id: int, payload: bytes) -> ProcWorkerHandle:
        """Spawn a replacement child for a down shard from *payload*.

        *payload* must be the replicated canonical checkpoint bytes. The
        new child initializes from it, the parent verifies the child's
        first checkpoint is byte-identical to the payload, the mirror and
        router are rebuilt from the same bytes, and the owner map is
        reconciled exactly like
        :meth:`ShardedPlacementFabric.adopt_restored_service` (stale
        post-checkpoint owners dropped, survivor-wins on re-routed leases).
        """
        with self._flock:
            if shard_id not in self._down:
                raise ValidationError(
                    f"shard {shard_id} is not down; refusing to respawn over "
                    "a live worker"
                )
        state = state_from_checkpoint(json.loads(payload))
        if checkpoint_bytes(state).encode("utf-8") != payload:
            raise ValidationError(
                f"checkpoint for shard {shard_id} does not round-trip "
                "byte-identically"
            )
        shard = self._shards[shard_id]
        if state.num_nodes != shard.num_nodes or not np.array_equal(
            state.max_capacity, shard.state.max_capacity
        ):
            raise ValidationError(
                f"restored state for shard {shard_id} does not match the "
                "shard's partition of the pool"
            )
        old = self._handles[shard_id]
        old.close(join_timeout=2.0)
        handle = ProcWorkerHandle(self, shard_id)
        handle.spawn(self._init_doc(), payload)
        reply, child_payload = handle.call({"op": "checkpoint"})
        if child_payload != payload:
            handle.close()
            raise ValidationError(
                f"respawned worker {shard_id} state is not byte-identical "
                "to the replicated checkpoint"
            )
        restored_leases = set(state.leases)
        with self._flock:
            stale = [
                rid
                for rid, sid in self._owners.items()
                if sid == shard_id and rid not in restored_leases
            ]
            for rid in stale:
                del self._owners[rid]
            conflicts = []
            for rid in restored_leases:
                other = self._owners.get(rid)
                if other is not None and other not in (shard_id, _ROUTING):
                    conflicts.append(rid)
                else:
                    self._owners[rid] = shard_id
        for rid in conflicts:
            # The lease was re-routed to a survivor while this shard was
            # down; the survivor's copy wins, the restored one is freed.
            _log.warning(
                "restored shard %d lease %d now lives elsewhere; dropping "
                "the restored copy", shard_id, rid,
            )
            try:
                handle.call({"op": "release", "request_id": rid})
            except TransportError:
                pass
            state.release_lease(rid)
        with self._mirror_locks[shard_id]:
            shard.service.state = state
        self._router.replace_state(shard_id, state)
        self._handles[shard_id] = handle
        with self._flock:
            self._down.discard(shard_id)
            self._stats.shard_restores += 1
            started = self._started
        if stale:
            _log.warning(
                "restored shard %d lost %d post-checkpoint lease(s): %s",
                shard_id, len(stale), stale,
            )
        if started:
            handle.call({"op": "start"})
        self._m_worker_up.labels(shard=str(shard_id)).set(1)
        self._m_respawns.labels(shard=str(shard_id)).inc()
        return handle

    # ---------------------------------------------------------- scheduling

    def step_all(self, now: "float | None" = None) -> list[PlacementDecision]:
        """One deterministic scheduler cycle on every live worker.

        Waits for each decided request's decision event to arrive and
        apply, so a ``step_all`` caller observes the same barrier the
        in-process fabric gives for free.
        """
        with self._flock:
            tickets = {rid: e[1] for rid, e in self._inflight.items()}
        down = self.down_shards
        decisions: list[PlacementDecision] = []
        for handle in self._handles:
            if handle.shard_id in down or not handle.alive:
                continue
            try:
                reply, _ = handle.call(
                    {"op": "step", **({} if now is None else {"now": now})}
                )
            except TransportError:
                continue
            for rid in reply.get("decided", ()):
                ticket = tickets.get(int(rid))
                if ticket is None:
                    continue
                decision = ticket.result(timeout=DEFAULT_RPC_TIMEOUT)
                if decision is not None:
                    decisions.append(decision)
        return decisions

    # ----------------------------------------------------------- lifecycle

    @property
    def running(self) -> bool:
        down = self.down_shards
        live = [h for h in self._handles if h.shard_id not in down]
        return self._started and bool(live) and all(h.alive for h in live)

    def start(self) -> None:
        """Start every live worker's background scheduler loop."""
        down = self.down_shards
        with self._flock:
            self._started = True
        for handle in self._handles:
            if handle.shard_id in down or not handle.alive:
                continue
            handle.call({"op": "start"})

    def stop(self) -> None:
        down = self.down_shards
        with self._flock:
            self._started = False
        for handle in self._handles:
            if handle.shard_id in down or not handle.alive:
                continue
            try:
                handle.call({"op": "stop"})
            except TransportError:
                continue

    def drain(self, timeout: float = 5.0) -> list[PlacementDecision]:
        """Gracefully drain every live worker; returns the decisions."""
        with self._flock:
            self._started = False
            tickets = {rid: e[1] for rid, e in self._inflight.items()}
        down = self.down_shards
        decisions: list[PlacementDecision] = []
        for handle in self._handles:
            if handle.shard_id in down or not handle.alive:
                continue
            try:
                reply, _ = handle.call(
                    {"op": "drain", "timeout": timeout},
                    timeout=timeout + DEFAULT_RPC_TIMEOUT,
                )
            except TransportError:
                continue
            for rid in reply.get("decided", ()):
                ticket = tickets.get(int(rid))
                if ticket is None:
                    continue
                decision = ticket.result(timeout=DEFAULT_RPC_TIMEOUT)
                if decision is not None:
                    decisions.append(decision)
        return decisions

    def sync_workers(self) -> None:
        """Force an immediate replication + heartbeat on every live worker."""
        down = self.down_shards
        for handle in self._handles:
            if handle.shard_id in down or not handle.alive:
                continue
            handle.call({"op": "sync"})

    def shutdown(self, *, drain: bool = True, timeout: float = 5.0) -> "dict[int, int | None]":
        """Stop everything: drain children, close channels, reap processes.

        Returns each shard's child exit code (``None`` if it never spawned
        or could not be reaped), for the CLI's exit-code propagation.
        """
        if self._closed:
            return {h.shard_id: h.exitcode for h in self._handles}
        self._closed = True
        codes: dict[int, "int | None"] = {}
        for handle in self._handles:
            handle.stop_events()
            if handle.alive:
                try:
                    reply, _ = handle.call(
                        {"op": "shutdown", "drain": drain, "timeout": timeout},
                        timeout=timeout + DEFAULT_RPC_TIMEOUT,
                    )
                    for event in reply.get("events", ()):
                        self._on_event(handle.shard_id, event)
                except TransportError:
                    pass
            handle.close(join_timeout=timeout)
            codes[handle.shard_id] = handle.exitcode
        try:
            self._listener.close()
        except OSError:
            pass
        with self._pending_cv:
            for conn in self._pending.values():
                for closable in (conn[1], conn[2], conn[0]):
                    try:
                        closable.close()
                    except OSError:
                        pass
            self._pending.clear()
        return codes

    # ------------------------------------------------------- introspection

    def describe_shards(self) -> list[dict]:
        down = self.down_shards
        out = []
        for shard in self._shards:
            doc = {
                "shard": shard.shard_id,
                "racks": [int(r) for r in shard.racks],
                "nodes": shard.num_nodes,
                "leases": shard.state.num_leases,
                "queued": 0,
                "utilization": shard.state.utilization,
            }
            handle = self._handles[shard.shard_id]
            if shard.shard_id not in down and handle.alive:
                try:
                    reply, _ = handle.call({"op": "describe"}, timeout=5.0)
                    doc["queued"] = int(reply["shards"][0]["queued"])
                except TransportError:
                    pass
            out.append(doc)
        return out

    def global_allocated(self) -> np.ndarray:
        total = np.zeros((self._pool.num_nodes, self._pool.num_types), dtype=np.int64)
        for shard in self._shards:
            total[shard.to_global] += shard.state.allocated
        return total

    def fetch_worker_state(self, shard_id: int) -> ClusterState:
        """The child's authoritative state, parsed from a live checkpoint."""
        _, payload = self._handles[shard_id].call({"op": "checkpoint"})
        return state_from_checkpoint(json.loads(payload))

    def verify_consistency(self) -> None:
        """Assert mirrors, workers, and the owner map all agree.

        Beyond the in-process fabric's partition/aggregate/owner checks,
        every live worker's authoritative state (fetched as a checkpoint)
        must match the parent's mirror allocation-for-allocation — the
        mirror is only allowed to *lag* while decisions are in flight, so
        call this at quiescent points (tests drive explicit steps).
        """
        seen = np.zeros(self._pool.num_nodes, dtype=bool)
        for shard in self._shards:
            if bool(seen[shard.to_global].any()):
                raise ValidationError(
                    f"shard {shard.shard_id} overlaps another shard's nodes"
                )
            seen[shard.to_global] = True
        if not bool(seen.all()):
            raise ValidationError("shard node sets do not cover the pool")
        down = self.down_shards
        total = np.zeros(
            (self._pool.num_nodes, self._pool.num_types), dtype=np.int64
        )
        with self._flock:
            owners = dict(self._owners)
        for shard in self._shards:
            if shard.shard_id in down:
                continue
            if not np.array_equal(
                shard.state.max_capacity,
                self._pool.max_capacity[shard.to_global],
            ):
                raise ValidationError(
                    f"shard {shard.shard_id} capacity diverged from the pool"
                )
            with self._mirror_locks[shard.shard_id]:
                shard.state.verify_consistency()
                mirror_allocated = shard.state.allocated.copy()
                mirror_leases = set(shard.state.leases)
            worker_state = self.fetch_worker_state(shard.shard_id)
            if not np.array_equal(worker_state.allocated, mirror_allocated):
                raise ValidationError(
                    f"shard {shard.shard_id} mirror allocation diverged from "
                    "the worker's authoritative state"
                )
            if set(worker_state.leases) != mirror_leases:
                raise ValidationError(
                    f"shard {shard.shard_id} mirror lease set diverged from "
                    "the worker's authoritative state"
                )
            total[shard.to_global] += mirror_allocated
            for rid in mirror_leases:
                if owners.get(rid) != shard.shard_id:
                    raise ValidationError(
                        f"lease {rid} in shard {shard.shard_id} has no "
                        "matching owner entry"
                    )
        if bool(np.any(total > self._pool.max_capacity)):
            raise ValidationError("union allocation exceeds pool capacity")
        for rid, shard_id in owners.items():
            if shard_id == _ROUTING:
                continue
            if not 0 <= shard_id < len(self._shards):
                raise ValidationError(
                    f"owner map points {rid} at unregistered shard {shard_id}"
                )
            if shard_id in down:
                raise ValidationError(
                    f"owner map points {rid} at dead shard {shard_id}; "
                    "the lease is stranded until the shard is restored"
                )
            with self._flock:
                pending = rid in self._inflight
            if not (self._shards[shard_id].state.has_lease(rid) or pending):
                raise ValidationError(
                    f"owner map points {rid} at shard {shard_id}, which "
                    "neither holds nor is placing it"
                )

    # ----------------------------------------------------------- checkpoint

    def checkpoint_doc(self) -> dict:
        """Fabric checkpoint assembled from the children's canonical bytes.

        Same version-1 ``sharded-fabric`` document as the in-process
        fabric — shard states are fetched from the workers (the mirrors'
        version counters legitimately diverge and are never serialized),
        so a proc fabric checkpoint restores into either fabric flavor.
        """
        down = self.down_shards
        if down:
            raise ValidationError(
                f"cannot checkpoint with dead shard(s) {sorted(down)}; "
                "restore them first"
            )
        shard_docs = []
        owners: list[tuple[int, int]] = []
        for shard in self._shards:
            _, payload = self._handles[shard.shard_id].call({"op": "checkpoint"})
            doc = json.loads(payload)
            shard_docs.append(doc)
            owners.extend(
                (int(entry["request_id"]), shard.shard_id)
                for entry in doc["leases"]
            )
        return {
            "version": FABRIC_CHECKPOINT_VERSION,
            "kind": "sharded-fabric",
            "plan": {
                "name": self.assignment.plan_name,
                "racks": [list(group) for group in self.assignment.racks],
            },
            "spillover": self.config.spillover,
            "catalog": catalog_to_dict(self._pool.catalog),
            "pool": pool_to_dict(self._pool),
            "owners": [[rid, sid] for rid, sid in sorted(owners)],
            "shards": shard_docs,
        }

    def checkpoint_bytes(self) -> str:
        return json.dumps(self.checkpoint_doc(), indent=1)

    def __repr__(self) -> str:
        return (
            f"ProcFabric(shards={self.num_shards}, nodes={self.num_nodes}, "
            f"down={sorted(self.down_shards)}, running={self.running})"
        )

#!/usr/bin/env python
"""Out-of-process fabric: four worker processes, one SIGKILL, exact recovery.

The in-process fabrics (`sharded_service.py`, `fault_tolerant_fabric.py`)
share one interpreter and one GIL. This example scales past that: each
shard's :class:`PlacementService` runs in its own **spawned child
process** (`repro.service.proc`), fronted by a :class:`ProcFabric` that
speaks the versioned length-prefixed wire protocol, while a real TCP
coordination server (`repro.service.coord.net`) carries heartbeats, the
lease ledger, and write-ahead checkpoint replication between them.

The walk-through:

1. start a loopback :class:`CoordinationServer` and a 4-shard
   :class:`ProcFabric` wired to it — four real child PIDs;
2. place a seeded trace across the shards and sync the replicated
   checkpoints;
3. ``SIGKILL -9`` one child mid-run — no warning, no cleanup;
4. let the :class:`ProcSupervisor` detect the death (process liveness +
   heartbeat TTL), quarantine the shard, and respawn a fresh child from
   the replicated checkpoint;
5. assert the restored worker state is **byte-identical** to the last
   write-ahead copy, that zero surviving leases were lost, and that the
   healed fabric still admits new work.

Every step is asserted, so this doubles as the proc-smoke CI check.

Run:  python examples/multiprocess_fabric.py
"""

import os
import signal
import time

import numpy as np

from repro.cluster import PoolSpec, VMTypeCatalog, random_pool
from repro.obs import MetricsRegistry
from repro.service import PlaceRequest, ServiceConfig, SupervisorConfig
from repro.service.checkpoint import checkpoint_bytes
from repro.service.coord.net import (
    CoordinationServer,
    NetworkedCoordinationBackend,
)
from repro.service.proc import ProcFabric, ProcSupervisor
from repro.service.shard import FabricConfig, RackGroupPlan

SHARDS = 4
TRACE = 28


def pump(fabric, rounds=40):
    idle = 0
    for _ in range(rounds):
        idle = 0 if fabric.step_all(now=0.0) else idle + 1
        if idle >= 2:
            break


def main() -> None:
    catalog = VMTypeCatalog.ec2_default()
    pool = random_pool(
        PoolSpec(racks=8, nodes_per_rack=3, clouds=2, capacity_high=3),
        catalog,
        seed=7,
    )
    sup_cfg = SupervisorConfig(
        heartbeat_interval=0.1,
        heartbeat_ttl=0.6,
        lease_ttl=10.0,
        monitor_interval=0.1,
    )

    with CoordinationServer() as server:
        print(f"coordination server on {server.url}")
        fabric = ProcFabric(
            pool,
            plan=RackGroupPlan(SHARDS),
            config=FabricConfig(service=ServiceConfig(batch_window=0.0)),
            obs=MetricsRegistry(),
            coord_url=server.url,
            supervisor_config=sup_cfg,
        )
        backend = NetworkedCoordinationBackend.from_url(server.url)
        supervisor = ProcSupervisor(fabric, backend, sup_cfg)
        try:
            pids = {h.shard_id: h.pid for h in fabric.handles}
            print(f"spawned {SHARDS} workers: {pids}")
            assert len(set(pids.values())) == SHARDS
            assert os.getpid() not in pids.values()

            # ---- 2. place a seeded trace ------------------------------
            rng = np.random.default_rng(3)
            tickets = {}
            for rid in range(TRACE):
                demand = rng.integers(0, 3, size=pool.num_types)
                if demand.sum() == 0:
                    demand[0] = 1
                tickets[rid] = fabric.submit(
                    PlaceRequest(
                        demand=tuple(int(x) for x in demand), request_id=rid
                    )
                )
            pump(fabric)
            fabric.sync_workers()  # replicate checkpoints + lease ledger
            placed = {
                rid
                for rid, t in tickets.items()
                if (d := t.result(0.5)) is not None and d.placed
            }
            owners = {rid: fabric.owner_of(rid) for rid in placed}
            print(f"placed {len(placed)}/{TRACE} tenants across {SHARDS} shards")
            fabric.verify_consistency()

            # ---- 3. SIGKILL the busiest worker ------------------------
            victim = max(
                range(SHARDS), key=lambda s: sum(1 for o in owners.values() if o == s)
            )
            victim_leases = {r for r, o in owners.items() if o == victim}
            payload = backend.get_checkpoint(f"shard-{victim}")
            assert payload is not None, "write-ahead checkpoint missing"
            print(
                f"SIGKILL shard {victim} (pid {pids[victim]}, "
                f"{len(victim_leases)} leases)"
            )
            os.kill(pids[victim], signal.SIGKILL)

            # ---- 4. supervised detection + respawn --------------------
            events = []
            deadline = time.time() + 30.0
            while time.time() < deadline:
                events.extend(supervisor.monitor())
                if any(e.restored for e in events) and not fabric.down_shards:
                    break
                time.sleep(0.05)
            assert events, "supervisor never noticed the kill"
            death = events[0]
            print(f"detected: shard {death.shard_id} — {death.reason}")
            assert death.shard_id == victim
            assert any(e.restored for e in events), "worker was not restored"
            new_pid = fabric.handles[victim].pid
            print(f"respawned shard {victim} as pid {new_pid}")
            assert new_pid != pids[victim]

            # ---- 5. byte-identical restore, zero lost leases ----------
            restored = fabric.fetch_worker_state(victim)
            assert checkpoint_bytes(restored).encode("utf-8") == payload, (
                "restored state differs from the write-ahead checkpoint"
            )
            lost = [r for r in placed if fabric.owner_of(r) is None]
            assert not lost, f"lost leases across the kill: {lost}"
            for rid, shard in owners.items():
                assert fabric.owner_of(rid) == shard
            fabric.verify_consistency()
            supervisor.verify_consistency()
            assert dict(supervisor.stranded_leases()) == {}
            print("restore is byte-identical; zero leases lost")

            # The healed fabric still admits.
            demand = tuple(1 if i == 0 else 0 for i in range(pool.num_types))
            t = fabric.submit(PlaceRequest(demand=demand, request_id=10_000))
            pump(fabric)
            verdict = t.result(10.0)
            assert verdict is not None and verdict.placed, verdict
            print(f"post-restore admission OK (shard {fabric.owner_of(10_000)})")

            stats = fabric.stats
            print(
                f"stats: placed={stats.placed} spillovers={stats.spillovers} "
                f"deaths={stats.shard_deaths} restores={stats.shard_restores}"
            )
        finally:
            backend.close()
            codes = fabric.shutdown()
            print(f"worker exit codes: {codes}")
            assert all(code == 0 for code in codes.values()), codes
    print("multiprocess fabric example OK")


if __name__ == "__main__":
    main()

"""Tests for Algorithm 1, the online heuristic."""

import numpy as np
import pytest

from repro.core.placement.exact import solve_sd_exact
from repro.core.placement.greedy import OnlineHeuristic, com, greedy_fill, providable
from repro.util.errors import InfeasibleRequestError, ValidationError

from tests.conftest import make_pool


class TestComOperator:
    def test_elementwise_min(self):
        assert com(np.array([3, 1]), np.array([2, 5])).tolist() == [2, 1]

    def test_full_coverage_condition(self):
        """com(L[i], R) == R means node i can provide everything (line 10)."""
        l_row = np.array([2, 4, 1])
        r = np.array([2, 3, 1])
        assert np.array_equal(com(l_row, r), r)

    def test_providable(self):
        assert providable(np.array([2, 4, 1]), np.array([3, 1, 0])) == 3


class TestGreedyFill:
    def test_center_takes_max_share(self):
        remaining = np.array([[2, 1], [2, 1], [2, 1]])
        dist = np.array([[0.0, 1, 2], [1, 0.0, 2], [2, 2, 0.0]])
        alloc = greedy_fill(0, np.array([3, 2]), remaining, dist)
        assert alloc[0].tolist() == [2, 1]

    def test_incomplete_returns_none(self):
        remaining = np.array([[1, 0], [1, 0]])
        dist = np.zeros((2, 2))
        assert greedy_fill(0, np.array([3, 0]), remaining, dist) is None

    def test_secondary_sort_prefers_bigger_provider(self):
        """Among equal-distance nodes the fuller provider is used first."""
        remaining = np.array([[1, 0], [1, 0], [3, 0]])
        dist = np.array([[0.0, 1, 1], [1, 0.0, 1], [1, 1, 0.0]])
        alloc = greedy_fill(0, np.array([4, 0]), remaining, dist)
        # Node 2 (3 providable) is preferred over node 1 (1 providable).
        assert alloc[2, 0] == 3
        assert alloc[1, 0] == 0


class TestOnlineHeuristic:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValidationError):
            OnlineHeuristic(stop="sometimes")
        with pytest.raises(ValidationError):
            OnlineHeuristic(center_order="by-name")

    def test_single_node_shortcut(self):
        pool = make_pool(2, 3, capacity=(3, 3, 2))
        alloc = OnlineHeuristic().place([2, 2, 1], pool)
        assert alloc.distance == 0.0
        assert alloc.num_nodes_used == 1

    def test_infeasible_raises(self):
        pool = make_pool(1, 2, capacity=(1, 1, 1))
        with pytest.raises(InfeasibleRequestError):
            OnlineHeuristic().place([3, 0, 0], pool)

    def test_wait_returns_none(self):
        pool = make_pool(1, 2, capacity=(1, 0, 0))
        pool.allocate(np.array([[1, 0, 0], [1, 0, 0]]))
        assert OnlineHeuristic().place([1, 0, 0], pool) is None

    def test_demand_exactly_met(self):
        pool = make_pool(3, 4, capacity=(1, 1, 1))
        alloc = OnlineHeuristic().place([4, 3, 2], pool)
        assert alloc.demand.tolist() == [4, 3, 2]
        assert np.all(alloc.matrix <= pool.remaining)

    def test_best_mode_matches_exact_optimum(self):
        """Structural property (DESIGN.md §5): nearest-first fill is optimal
        per center, so the best-center sweep attains the SD optimum."""
        pool = make_pool(3, 4, capacity=(2, 1, 1))
        for demand in ([4, 3, 2], [8, 0, 0], [1, 4, 4], [10, 4, 1]):
            heur = OnlineHeuristic(stop="best").place(demand, pool)
            exact = solve_sd_exact(demand, pool)
            assert heur.distance == pytest.approx(exact.distance), demand

    def test_first_mode_feasible_but_maybe_worse(self):
        pool = make_pool(3, 4, capacity=(2, 1, 1))
        demand = [8, 2, 1]
        first = OnlineHeuristic(stop="first", center_order="random", seed=3).place(
            demand, pool
        )
        best = OnlineHeuristic(stop="best").place(demand, pool)
        assert first.demand.tolist() == list(demand)
        assert first.distance >= best.distance

    def test_random_order_deterministic_given_seed(self):
        pool = make_pool(3, 4, capacity=(2, 1, 1))
        demand = [8, 2, 1]
        a = OnlineHeuristic(stop="first", center_order="random", seed=11).place(demand, pool)
        b = OnlineHeuristic(stop="first", center_order="random", seed=11).place(demand, pool)
        assert a.distance == b.distance
        assert np.array_equal(a.matrix, b.matrix)

    def test_place_and_commit(self):
        pool = make_pool(2, 3)
        alloc = OnlineHeuristic().place_and_commit([2, 1, 1], pool)
        assert np.array_equal(pool.allocated, alloc.matrix)

    def test_does_not_mutate_pool(self):
        pool = make_pool(2, 3)
        OnlineHeuristic().place([2, 1, 1], pool)
        assert pool.allocated.sum() == 0

    def test_skips_empty_nodes_as_centers(self):
        """A depleted node never hosts VMs; the heuristic still succeeds."""
        pool = make_pool(2, 2, capacity=(2, 0, 0))
        pool.allocate(np.array([[2, 0, 0], [0, 0, 0], [0, 0, 0], [0, 0, 0]]))
        alloc = OnlineHeuristic().place([3, 0, 0], pool)
        assert alloc is not None
        assert alloc.matrix[0].sum() == 0

    def test_complexity_shortcut_single_node_first_match(self):
        """The paper returns the FIRST node that fits everything."""
        pool = make_pool(2, 3, capacity=(3, 3, 2))
        alloc = OnlineHeuristic().place([1, 0, 0], pool)
        assert alloc.used_nodes.tolist() == [0]


class TestRackSpreadConstraint:
    """max_vms_per_rack: the failure-domain spread option of Algorithm 1."""

    def _rack_loads(self, alloc, pool):
        rack_ids = pool.topology.rack_ids
        per_node = alloc.matrix.sum(axis=1)
        return {
            int(r): int(per_node[rack_ids == r].sum())
            for r in np.unique(rack_ids)
        }

    def test_cap_validated(self):
        with pytest.raises(ValidationError):
            OnlineHeuristic(max_vms_per_rack=0)

    def test_cap_respected(self):
        pool = make_pool(4, 2, capacity=(0, 2, 0))
        alloc = OnlineHeuristic(max_vms_per_rack=2).place([0, 8, 0], pool)
        assert alloc is not None
        loads = self._rack_loads(alloc, pool)
        assert all(load <= 2 for load in loads.values())
        assert sum(loads.values()) == 8

    def test_unconstrained_packs_tighter(self):
        pool = make_pool(4, 2, capacity=(0, 2, 0))
        packed = OnlineHeuristic().place([0, 8, 0], pool)
        spread = OnlineHeuristic(max_vms_per_rack=2).place([0, 8, 0], pool)
        assert packed.distance <= spread.distance
        assert max(self._rack_loads(packed, pool).values()) > 2

    def test_cap_overrides_single_node_shortcut(self):
        pool = make_pool(2, 2, capacity=(8, 0, 0))
        alloc = OnlineHeuristic(max_vms_per_rack=2).place([4, 0, 0], pool)
        assert alloc is not None
        assert max(self._rack_loads(alloc, pool).values()) <= 2

    def test_shortcut_still_used_when_cap_allows(self):
        pool = make_pool(2, 2, capacity=(8, 0, 0))
        alloc = OnlineHeuristic(max_vms_per_rack=4).place([4, 0, 0], pool)
        assert alloc.distance == 0.0
        assert alloc.num_nodes_used == 1

    def test_infeasible_cap_returns_none(self):
        # 8 VMs over 2 racks with a 2-per-rack cap cannot fit.
        pool = make_pool(2, 2, capacity=(0, 4, 0))
        assert OnlineHeuristic(max_vms_per_rack=2).place([0, 8, 0], pool) is None

    def test_cap_clip_is_typewise_deterministic(self):
        pool = make_pool(2, 2, capacity=(2, 2, 1))
        a = OnlineHeuristic(max_vms_per_rack=3).place([2, 2, 1], pool)
        b = OnlineHeuristic(max_vms_per_rack=3).place([2, 2, 1], pool)
        assert np.array_equal(a.matrix, b.matrix)
        assert max(self._rack_loads(a, pool).values()) <= 3

    def test_unconstrained_default_unchanged(self):
        pool = make_pool(3, 4, capacity=(2, 1, 1))
        a = OnlineHeuristic().place([6, 2, 1], pool)
        b = OnlineHeuristic(max_vms_per_rack=None).place([6, 2, 1], pool)
        assert np.array_equal(a.matrix, b.matrix)

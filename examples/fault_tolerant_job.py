#!/usr/bin/env python
"""Fault-tolerant MapReduce: task failures, VM deaths, and recovery metrics.

Runs one slot-bound WordCount three ways on the same packed 8-VM cluster:

1. failure-free (the baseline — bit-identical to an engine with no fault
   model at all);
2. with seeded task-level faults (map crashes, reduce crashes, shuffle
   fetch failures) recovered by bounded retries with exponential backoff;
3. with a correlated rack outage killing half the cluster mid-map, forcing
   map re-execution, slot blacklisting, and reducer relocation —

then re-places the same request with the rack-spread constraint
(``OnlineHeuristic(max_vms_per_rack=2)``) and repeats the rack outage to
show the affinity-vs-resilience tradeoff.

Run:  python examples/fault_tolerant_job.py
"""

from repro.analysis import format_table
from repro.experiments.fault_recovery import (
    run_spread_study,
    study_job,
    study_pool,
    vm_deaths_from_failures,
)
from repro.core import OnlineHeuristic
from repro.core.problem import VirtualClusterRequest
from repro.mapreduce import MapReduceEngine, TaskFaultModel, VirtualCluster

import numpy as np

SEED = 7


def build_packed_cluster():
    pool = study_pool()
    demand = np.array([0, 8, 0], dtype=np.int64)
    allocation = OnlineHeuristic().place(
        pool, VirtualClusterRequest(demand=demand, tag="example")
    ).allocation
    return pool, VirtualCluster.from_allocation(
        allocation, pool.distance_matrix, pool.catalog
    )


def describe(label, result, baseline_runtime):
    rec = result.recovery
    return [
        label,
        f"{result.runtime:.1f}",
        f"{result.slowdown_vs(baseline_runtime):.2f}x",
        rec.total_task_failures if rec else 0,
        rec.vm_deaths if rec else 0,
        rec.maps_invalidated if rec else 0,
        rec.reducers_relocated if rec else 0,
        f"{rec.wasted_time:.1f}" if rec else "0.0",
    ]


def main() -> None:
    pool, cluster = build_packed_cluster()
    job = study_job()

    def engine(faults=None):
        return MapReduceEngine(
            cluster, reducer_policy="slots", seed=SEED, faults=faults
        )

    baseline = engine().run(job, hdfs_seed=SEED)

    flaky = engine(
        TaskFaultModel(
            map_failure_probability=0.15,
            reduce_failure_probability=0.1,
            fetch_failure_probability=0.05,
            seed=SEED,
        )
    ).run(job, hdfs_seed=SEED)

    # Correlated outage: the heaviest rack (4 of 8 VMs) dies mid-map.
    rack_ids = pool.topology.rack_ids
    dead_nodes = [
        vm.node_id for vm in cluster.vms if rack_ids[vm.node_id] == 0
    ]
    kill_time = 0.25 * baseline.runtime
    deaths = vm_deaths_from_failures(
        cluster, [(n, kill_time) for n in sorted(set(dead_nodes))]
    )
    rack_loss = engine(TaskFaultModel(vm_deaths=deaths, seed=SEED)).run(
        job, hdfs_seed=SEED
    )

    print(
        format_table(
            [
                "scenario",
                "runtime (s)",
                "slowdown",
                "task failures",
                "VM deaths",
                "maps redone",
                "reducers moved",
                "wasted (s)",
            ],
            [
                describe("failure-free", baseline, baseline.runtime),
                describe("flaky tasks", flaky, baseline.runtime),
                describe("rack outage", rack_loss, baseline.runtime),
            ],
            title="WordCount (64 maps / 4 reduces) on a packed 8-VM cluster:",
        )
    )
    if flaky.recovery:
        print(f"\nmap attempt histogram (flaky run): {flaky.recovery.map_attempts}")

    study = run_spread_study(seed=SEED)
    print(
        format_table(
            ["placement", "distance", "VMs lost", "slowdown"],
            [
                [
                    run.label,
                    run.affinity,
                    run.vms_lost,
                    f"{run.slowdown:.2f}x",
                ]
                for run in (study.packed, study.spread)
            ],
            title="\nSame rack outage, packed vs rack-spread placement:",
        )
    )
    print(
        f"\nSpreading to <=2 VMs per rack costs affinity "
        f"({study.packed.affinity:.0f} -> {study.spread.affinity:.0f}) but "
        f"avoids {study.slowdown_reduction_pct:.0f}% of the failure-induced "
        "slowdown: fewer slots die with the rack, so fewer maps re-run and "
        "fewer reducers relocate and re-fetch their shuffle."
    )


if __name__ == "__main__":
    main()

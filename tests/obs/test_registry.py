"""Unit tests for the metrics registry instruments and the null registry."""

import threading

import pytest

from repro.obs.registry import (
    COUNT_BUCKETS,
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    ensure_registry,
    exponential_buckets,
    format_bound,
)
from repro.util.errors import ValidationError


class TestBuckets:
    def test_exponential_progression(self):
        assert exponential_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValidationError):
            exponential_buckets(0.0, 2.0, 4)
        with pytest.raises(ValidationError):
            exponential_buckets(1.0, 1.0, 4)
        with pytest.raises(ValidationError):
            exponential_buckets(1.0, 2.0, 0)

    def test_format_bound(self):
        assert format_bound(float("inf")) == "+Inf"
        assert format_bound(0.5) == "0.5"


class TestCounter:
    def test_inc_accumulates(self):
        r = MetricsRegistry()
        c = r.counter("c_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_inc_rejected(self):
        c = MetricsRegistry().counter("c_total")
        with pytest.raises(ValidationError):
            c.inc(-1.0)

    def test_labeled_children_are_independent(self):
        fam = MetricsRegistry().counter("c_total", labels=("k",))
        fam.labels(k="a").inc()
        fam.labels(k="b").inc(3)
        assert fam.labels(k="a").value == 1.0
        assert fam.labels(k="b").value == 3.0

    def test_wrong_labels_rejected(self):
        fam = MetricsRegistry().counter("c_total", labels=("k",))
        with pytest.raises(ValidationError):
            fam.labels(wrong="x")
        with pytest.raises(ValidationError):
            fam.inc()  # labeled family has no default child


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("g")
        g.set(10.0)
        g.inc(2.0)
        g.dec(5.0)
        assert g.value == 7.0


class TestHistogram:
    def test_observations_land_in_buckets(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(105.0)
        cumulative = dict(h.cumulative())
        assert cumulative[1.0] == 1
        assert cumulative[2.0] == 2
        assert cumulative[4.0] == 3
        assert cumulative[float("inf")] == 4

    def test_boundary_value_goes_to_lower_bucket(self):
        # Prometheus buckets are upper-inclusive: observe(le) counts in le.
        h = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        h.observe(1.0)
        assert dict(h.cumulative())[1.0] == 1

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValidationError):
            MetricsRegistry().histogram("h", buckets=(2.0, 1.0))


class TestRegistry:
    def test_declarations_are_idempotent(self):
        r = MetricsRegistry()
        a = r.counter("c_total", "help")
        b = r.counter("c_total")
        assert a is b

    def test_kind_conflict_rejected(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(ValidationError):
            r.gauge("x")

    def test_label_conflict_rejected(self):
        r = MetricsRegistry()
        r.counter("x", labels=("a",))
        with pytest.raises(ValidationError):
            r.counter("x", labels=("b",))

    def test_families_sorted_by_name(self):
        r = MetricsRegistry()
        r.counter("zzz")
        r.gauge("aaa")
        assert [f.name for f in r.families()] == ["aaa", "zzz"]

    def test_flatten_expands_histograms(self):
        r = MetricsRegistry()
        r.histogram("h", buckets=(1.0,)).observe(0.5)
        flat = r.flatten()
        assert flat[("h_bucket", (("le", "1.0"),))] == 1.0
        assert flat[("h_bucket", (("le", "+Inf"),))] == 1.0
        assert flat[("h_sum", ())] == 0.5
        assert flat[("h_count", ())] == 1.0

    def test_concurrent_increments_do_not_lose_updates(self):
        r = MetricsRegistry()
        c = r.counter("c_total")

        def bump():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000.0


class TestNullRegistry:
    def test_every_instrument_is_the_shared_null(self):
        r = NullRegistry()
        assert r.counter("c") is NULL_INSTRUMENT
        assert r.gauge("g") is NULL_INSTRUMENT
        assert r.histogram("h", buckets=COUNT_BUCKETS) is NULL_INSTRUMENT
        assert r.counter("c", labels=("k",)).labels(k="x") is NULL_INSTRUMENT

    def test_mutations_are_noops_and_reads_are_zero(self):
        c = NULL_REGISTRY.counter("c")
        c.inc(5)
        c.set(3)
        c.observe(1.0)
        c.dec()
        assert c.value == 0.0
        assert c.count == 0
        assert c.sum == 0.0

    def test_exposition_is_empty(self):
        NULL_REGISTRY.counter("c").inc()
        assert NULL_REGISTRY.families() == []
        assert NULL_REGISTRY.flatten() == {}
        assert NULL_REGISTRY.get("c") is None

    def test_disabled_flag(self):
        assert MetricsRegistry().enabled
        assert not NULL_REGISTRY.enabled

    def test_ensure_registry(self):
        assert ensure_registry(None) is NULL_REGISTRY
        live = MetricsRegistry()
        assert ensure_registry(live) is live

"""Resource pool: the mutable allocation state of a cloud.

Implements the paper's Section II data structures over a
:class:`~repro.cluster.topology.Topology`:

* ``M`` (n × m) — maximum VMs of each type each node can provide,
* ``C`` (n × m) — VMs currently allocated on each node,
* ``L = M − C`` (n × m) — remaining capacity,
* ``A[j] = Σ_i L[i, j]`` — total available VMs per type.

A request ``R`` is *refusable* when ``R[j] > Σ_i M[i, j]`` for some type
(it can never fit) and must *wait* when ``R[j] > A[j]`` (it fits once
resources free up) — both predicates are exposed.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.distance import DistanceModel, build_distance_matrix
from repro.cluster.topocache import TopologyCache
from repro.cluster.topology import Topology
from repro.cluster.vmtypes import VMTypeCatalog
from repro.util.errors import CapacityError, ValidationError
from repro.util.validation import as_int_matrix, as_int_vector


class ResourcePool:
    """Mutable pool of VM capacity over a physical topology.

    Parameters
    ----------
    topology:
        The physical hierarchy; per-node capacities form ``M``.
    catalog:
        VM type catalog fixing column order (must have ``m`` entries equal to
        the topology's capacity-vector length).
    distance_model:
        Hierarchical weights used to derive the distance matrix ``D``.
    allocated:
        Optional initial ``C`` matrix (defaults to all-zero).
    cache:
        Optional :class:`~repro.cluster.topocache.TopologyCache` to adopt.
        When it matches this topology and distance model, the pool reuses
        its distance matrix (skipping the O(n²) rebuild) and its sorted
        lookups; a mismatched cache is silently ignored. ``copy()`` passes
        the cache along, so working copies share one set of structures.
    """

    def __init__(
        self,
        topology: Topology,
        catalog: VMTypeCatalog,
        *,
        distance_model: DistanceModel | None = None,
        allocated: np.ndarray | None = None,
        cache: TopologyCache | None = None,
    ) -> None:
        if len(catalog) != topology.num_types:
            raise ValidationError(
                f"catalog has {len(catalog)} types but topology capacity rows "
                f"have length {topology.num_types}"
            )
        self._topology = topology
        self._catalog = catalog
        self._model = distance_model or DistanceModel()
        self._max = topology.capacity_matrix()
        n, m = self._max.shape
        if allocated is None:
            self._alloc = np.zeros((n, m), dtype=np.int64)
        else:
            self._alloc = as_int_matrix(allocated, name="allocated", shape=(n, m))
            if np.any(self._alloc > self._max):
                raise CapacityError("initial allocation exceeds node capacities")
        if cache is not None and cache.matches(topology, self._model):
            self._cache: TopologyCache | None = cache
            self._distance = cache.distance
        else:
            self._cache = None
            self._distance = build_distance_matrix(topology, self._model)
            self._distance.flags.writeable = False

    # ------------------------------------------------------------ construction

    @classmethod
    def from_table(
        cls,
        rows: "list[tuple[int, int, str, int]]",
        catalog: VMTypeCatalog,
        *,
        distance_model: DistanceModel | None = None,
        cloud_of_rack: "dict[int, int] | None" = None,
    ) -> "ResourcePool":
        """Build a pool from Table-II style rows ``(rack, node, type, count)``.

        Each row states that node ``node`` in rack ``rack`` may provide
        ``count`` instances of VM type ``type``. Node and rack ids must be
        dense (0-based after normalization).
        """
        if not rows:
            raise ValidationError("from_table requires at least one row")
        node_ids = sorted({r[1] for r in rows})
        rack_ids = sorted({r[0] for r in rows})
        node_index = {nid: i for i, nid in enumerate(node_ids)}
        rack_index = {rid: i for i, rid in enumerate(rack_ids)}
        m = len(catalog)
        caps = np.zeros((len(node_ids), m), dtype=np.int64)
        node_rack: dict[int, int] = {}
        for rack, node, tname, count in rows:
            i = node_index[node]
            prev = node_rack.setdefault(i, rack_index[rack])
            if prev != rack_index[rack]:
                raise ValidationError(f"node {node} appears in two racks")
            caps[i, catalog.index_of(tname)] += int(count)
        from repro.cluster.node import PhysicalNode

        cloud_of_rack = cloud_of_rack or {}
        nodes = [
            PhysicalNode(
                node_id=i,
                rack_id=node_rack[i],
                cloud_id=cloud_of_rack.get(node_rack[i], 0),
                capacity=caps[i],
            )
            for i in range(len(node_ids))
        ]
        return cls(Topology(nodes), catalog, distance_model=distance_model)

    # ---------------------------------------------------------------- matrices

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def catalog(self) -> VMTypeCatalog:
        return self._catalog

    @property
    def distance_model(self) -> DistanceModel:
        return self._model

    @property
    def num_nodes(self) -> int:
        return self._max.shape[0]

    @property
    def num_types(self) -> int:
        return self._max.shape[1]

    @property
    def max_capacity(self) -> np.ndarray:
        """``M`` — read-only view."""
        v = self._max.view()
        v.flags.writeable = False
        return v

    @property
    def allocated(self) -> np.ndarray:
        """``C`` — copy of the current allocation matrix."""
        return self._alloc.copy()

    @property
    def remaining(self) -> np.ndarray:
        """``L = M − C`` — freshly computed each call."""
        return self._max - self._alloc

    @property
    def available(self) -> np.ndarray:
        """``A[j] = Σ_i L[i, j]`` — per-type availability vector.

        Routed through :attr:`remaining` so subclasses that redefine
        effective capacity (e.g. failure-aware pools) stay consistent.
        """
        return self.remaining.sum(axis=0)

    @property
    def distance_matrix(self) -> np.ndarray:
        """``D`` — read-only n × n distance matrix."""
        return self._distance

    def _topology_cache_valid(self) -> bool:
        """Whether the effective distances equal the static topology's.

        True for the base pool (its ``distance_matrix`` *is* the static
        matrix); subclasses that mask or rewrite distances override this.
        """
        return True

    @property
    def topology_cache(self) -> "TopologyCache | None":
        """Sorted-distance lookups for the vectorized placement kernels.

        Built lazily on first access and shared by :meth:`copy`; ``None``
        whenever the pool's effective distance matrix has diverged from the
        static topology distances (see
        :mod:`repro.cluster.topocache` for the invariants).
        """
        if not self._topology_cache_valid():
            return None
        if self._cache is None:
            self._cache = TopologyCache.build(
                self._topology, self._model, distance=self._distance
            )
        return self._cache

    @property
    def utilization(self) -> float:
        """Fraction of total VM slots currently allocated (0 when empty pool)."""
        total = self.max_capacity.sum()
        return float(self._alloc.sum() / total) if total else 0.0

    # --------------------------------------------------------------- predicates

    def exceeds_max_capacity(self, request: np.ndarray) -> bool:
        """True if *request* can never be served (paper: refuse outright)."""
        r = as_int_vector(request, name="request", length=self.num_types)
        return bool(np.any(r > self.max_capacity.sum(axis=0)))

    def can_satisfy(self, request: np.ndarray) -> bool:
        """True if current availability covers *request* (``R ≤ A``)."""
        r = as_int_vector(request, name="request", length=self.num_types)
        return bool(np.all(r <= self.available))

    # --------------------------------------------------------------- mutation

    def allocate(self, allocation: np.ndarray) -> None:
        """Commit an allocation matrix ``C_req`` to the pool (``C += C_req``).

        Raises :class:`CapacityError` if any entry would exceed remaining
        capacity; the pool is unchanged on failure.
        """
        a = as_int_matrix(
            allocation, name="allocation", shape=(self.num_nodes, self.num_types)
        )
        if np.any(a > self.remaining):
            bad = np.argwhere(a > self.remaining)
            i, j = bad[0]
            raise CapacityError(
                f"allocation exceeds remaining capacity at node {i}, type {j}: "
                f"want {a[i, j]}, have {self.remaining[i, j]}"
            )
        self._alloc += a

    def release(self, allocation: np.ndarray) -> None:
        """Return an allocation to the pool (``C −= C_req``).

        Raises :class:`CapacityError` if more would be released than is
        allocated; the pool is unchanged on failure.
        """
        a = as_int_matrix(
            allocation, name="allocation", shape=(self.num_nodes, self.num_types)
        )
        if np.any(a > self._alloc):
            bad = np.argwhere(a > self._alloc)
            i, j = bad[0]
            raise CapacityError(
                f"release exceeds allocation at node {i}, type {j}: "
                f"releasing {a[i, j]}, allocated {self._alloc[i, j]}"
            )
        self._alloc -= a

    # ----------------------------------------------------------------- copies

    def snapshot(self) -> np.ndarray:
        """Return the current ``C`` for later :meth:`restore`."""
        return self._alloc.copy()

    def restore(self, snapshot: np.ndarray) -> None:
        """Reset ``C`` to a previously captured :meth:`snapshot`."""
        s = as_int_matrix(
            snapshot, name="snapshot", shape=(self.num_nodes, self.num_types)
        )
        if np.any(s > self._max):
            raise CapacityError("snapshot exceeds node capacities")
        self._alloc = s.copy()

    def copy(self) -> "ResourcePool":
        """Deep copy sharing the immutable topology/catalog/distances."""
        return ResourcePool(
            self._topology,
            self._catalog,
            distance_model=self._model,
            allocated=self._alloc,
            cache=self.topology_cache,
        )

    def __repr__(self) -> str:
        return (
            f"ResourcePool(nodes={self.num_nodes}, types={self.num_types}, "
            f"allocated={int(self._alloc.sum())}/{int(self._max.sum())})"
        )

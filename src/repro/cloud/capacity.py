"""Capacity planning: size a cloud against a workload and an SLO.

The provider-side question the paper's framing implies but never asks: how
*small* a cloud can serve a given workload while keeping queueing delay
acceptable? :func:`plan_capacity` binary-searches the per-rack node count,
replaying the workload through the real simulator at each candidate size,
and returns the smallest cloud meeting the SLO along with the full
exploration trace — a direct, honest (if expensive) planning tool built on
the same machinery as everything else.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.provider import CloudProvider
from repro.cloud.request import TimedRequest
from repro.cloud.simulator import CloudSimulator
from repro.cluster.distance import DistanceModel
from repro.cluster.resources import ResourcePool
from repro.cluster.topology import Topology
from repro.cluster.vmtypes import VMTypeCatalog
from repro.core.placement.base import PlacementAlgorithm
from repro.core.placement.greedy import OnlineHeuristic
from repro.util.errors import ValidationError


@dataclass(frozen=True, slots=True)
class SLO:
    """Service-level objective for a workload replay."""

    max_mean_wait: float = 60.0
    max_refused: int = 0

    def __post_init__(self) -> None:
        if self.max_mean_wait < 0 or self.max_refused < 0:
            raise ValidationError("SLO bounds must be non-negative")


@dataclass(frozen=True, slots=True)
class CandidateResult:
    """One explored cloud size and its replay outcome."""

    nodes_per_rack: int
    total_nodes: int
    mean_wait: float
    refused: int
    mean_distance: float
    meets_slo: bool


@dataclass(frozen=True)
class CapacityPlan:
    """Outcome of a planning run."""

    chosen_nodes_per_rack: "int | None"
    explored: tuple[CandidateResult, ...]

    @property
    def feasible(self) -> bool:
        return self.chosen_nodes_per_rack is not None


def _evaluate(
    nodes_per_rack: int,
    racks: int,
    capacity,
    catalog: VMTypeCatalog,
    model: DistanceModel,
    workload: "list[TimedRequest]",
    policy_factory,
    slo: SLO,
) -> CandidateResult:
    topo = Topology.build(racks, nodes_per_rack, capacity=list(capacity))
    pool = ResourcePool(topo, catalog, distance_model=model)
    provider = CloudProvider(pool, policy_factory())
    result = CloudSimulator(provider).run(workload)
    stats = provider.stats
    meets = (
        stats.mean_wait <= slo.max_mean_wait
        and stats.refused <= slo.max_refused
    )
    return CandidateResult(
        nodes_per_rack=nodes_per_rack,
        total_nodes=topo.num_nodes,
        mean_wait=stats.mean_wait,
        refused=stats.refused,
        mean_distance=stats.mean_distance,
        meets_slo=meets,
    )


def plan_capacity(
    workload: "list[TimedRequest]",
    *,
    catalog: "VMTypeCatalog | None" = None,
    racks: int = 3,
    node_capacity=(2, 2, 1),
    distance_model: "DistanceModel | None" = None,
    slo: "SLO | None" = None,
    policy_factory=None,
    max_nodes_per_rack: int = 64,
) -> CapacityPlan:
    """Find the smallest nodes-per-rack meeting *slo* for *workload*.

    Queueing delay is monotone (non-increasing) in capacity for this
    provider, so binary search over nodes-per-rack is sound; every candidate
    replay is recorded in the returned plan. Returns an infeasible plan when
    even *max_nodes_per_rack* misses the SLO.
    """
    if not workload:
        raise ValidationError("plan_capacity requires a non-empty workload")
    catalog = catalog or VMTypeCatalog.ec2_default()
    model = distance_model or DistanceModel()
    slo = slo or SLO()
    policy_factory = policy_factory or OnlineHeuristic
    explored: list[CandidateResult] = []

    lo, hi = 1, max_nodes_per_rack
    ceiling = _evaluate(
        hi, racks, node_capacity, catalog, model, workload, policy_factory, slo
    )
    explored.append(ceiling)
    if not ceiling.meets_slo:
        return CapacityPlan(chosen_nodes_per_rack=None, explored=tuple(explored))
    best = hi
    while lo < hi:
        mid = (lo + hi) // 2
        candidate = _evaluate(
            mid, racks, node_capacity, catalog, model, workload, policy_factory, slo
        )
        explored.append(candidate)
        if candidate.meets_slo:
            best = mid
            hi = mid
        else:
            lo = mid + 1
    return CapacityPlan(
        chosen_nodes_per_rack=best,
        explored=tuple(sorted(explored, key=lambda c: c.nodes_per_rack)),
    )

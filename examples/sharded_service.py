#!/usr/bin/env python
"""Sharded placement fabric: serve → load → rebalance → checkpoint/restore.

Builds a 480-node, two-cloud pool, cuts it into 8 rack-aligned shards, and
walks the full fabric lifecycle:

1. start the fabric and drive a seeded closed-loop workload through it;
2. run an explicit cross-shard rebalance sweep (Theorem-2 migrations and
   pairwise transfers across shard boundaries);
3. checkpoint the fabric, restore it, and assert the round trip is
   **byte-identical** — then re-checkpoint the restored fabric to prove the
   restored instance serves from exactly the same state.

Run:  python examples/sharded_service.py
"""

import json

import numpy as np

from repro import PoolSpec, VMTypeCatalog, random_pool
from repro.analysis import format_table
from repro.service import (
    FabricConfig,
    LoadGenConfig,
    PlaceRequest,
    RackGroupPlan,
    ServiceConfig,
    ShardedPlacementFabric,
    fabric_from_checkpoint,
    run_loadgen,
)


def main() -> None:
    catalog = VMTypeCatalog.ec2_default()
    pool = random_pool(
        PoolSpec(
            racks=8, nodes_per_rack=30, clouds=2, capacity_low=1, capacity_high=4
        ),
        catalog,
        seed=37,
    )

    fabric = ShardedPlacementFabric(
        pool,
        plan=RackGroupPlan(8),
        config=FabricConfig(service=ServiceConfig(batch_window=0.002)),
    )
    fabric.start()

    # --- load ------------------------------------------------------------
    report = run_loadgen(
        fabric,
        LoadGenConfig(
            num_requests=300, mode="closed", concurrency=16, mean_hold=0.1, seed=41
        ),
    )
    print(format_table(
        ["metric", "value"],
        [
            ["nodes / shards", f"{fabric.num_nodes} / {fabric.num_shards}"],
            ["submitted", report.submitted],
            ["placed", report.placed],
            ["acceptance rate", f"{report.acceptance_rate:.3f}"],
            ["throughput (req/s)", f"{report.throughput:.0f}"],
            ["mean cluster distance", f"{report.mean_distance:.3f}"],
        ],
        title="Closed-loop workload through the fabric",
    ))

    # --- rebalance -------------------------------------------------------
    # Pin a batch of long-lived tenants so the fabric holds real state, then
    # run an explicit cross-shard sweep over the worst-DC leases.
    rng = np.random.default_rng(53)
    tickets = []
    for rid in range(1000, 1400):
        demand = [int(x) for x in rng.integers(0, 6, size=fabric.num_types)]
        if sum(demand) == 0:
            demand[0] = 2
        tickets.append(fabric.submit(PlaceRequest(request_id=rid, demand=demand)))
    placed = sum(
        1 for t in tickets if t.result(timeout=30.0) and t.decision.placed
    )
    print(f"\npinned {placed}/{len(tickets)} long-lived tenants")

    sweep = fabric.rebalance()
    print(
        f"\nrebalance sweep: {sweep.candidates} candidates, "
        f"{sweep.migrations} migrations + {sweep.transfers} pair transfers, "
        f"distance recovered {sweep.gain:.1f}"
    )
    fabric.verify_consistency()

    # --- checkpoint / restore, asserted exact ----------------------------
    fabric.stop()
    blob = fabric.checkpoint_bytes()
    restored = fabric_from_checkpoint(json.loads(blob))
    assert restored.checkpoint_bytes() == blob, "round trip must be exact"
    restored.verify_consistency()
    leases = sum(s.state.num_leases for s in restored.shards)
    print(
        f"\ncheckpoint round trip: {len(blob)} bytes, byte-identical; "
        f"restored fabric holds {leases} leases across "
        f"{restored.num_shards} shards"
    )


if __name__ == "__main__":
    main()

"""Physical-cluster substrate: VM types, topology, distances, resource pool.

This package implements the Section-II model of the paper: a hierarchy of
clouds, racks and physical nodes; a catalog of VM types (Table I); the
capacity/allocation matrices ``M``, ``C``, ``L``, ``A``; and the hierarchical
distance matrix ``D``.
"""

from repro.cluster.vmtypes import (
    VMType,
    VMTypeCatalog,
    EC2_SMALL,
    EC2_MEDIUM,
    EC2_LARGE,
)
from repro.cluster.node import PhysicalNode, NodeResources, capacity_from_resources
from repro.cluster.topology import Topology, Rack, Cloud
from repro.cluster.distance import (
    DistanceModel,
    PAPER_EXPERIMENT_DISTANCES,
    build_distance_matrix,
    validate_distance_matrix,
    satisfies_triangle_inequality,
    hop_distance_matrix,
)
from repro.cluster.resources import ResourcePool
from repro.cluster.topocache import TopologyCache
from repro.cluster.dynamics import DynamicResourcePool
from repro.cluster.measurement import (
    LatencyProber,
    ProbeConfig,
    aggregate_probes,
    infer_distance_matrix,
    quantize_to_tiers,
    tier_recovery_accuracy,
)
from repro.cluster.visualize import (
    render_allocation,
    render_topology,
    render_vm_counts,
)
from repro.cluster.generators import (
    PoolSpec,
    RequestSpec,
    LARGE_REQUESTS,
    SMALL_REQUESTS,
    random_topology,
    random_pool,
    random_request,
    random_requests,
    feasible_random_requests,
)

__all__ = [
    "VMType",
    "VMTypeCatalog",
    "EC2_SMALL",
    "EC2_MEDIUM",
    "EC2_LARGE",
    "PhysicalNode",
    "NodeResources",
    "capacity_from_resources",
    "Topology",
    "Rack",
    "Cloud",
    "DistanceModel",
    "PAPER_EXPERIMENT_DISTANCES",
    "build_distance_matrix",
    "validate_distance_matrix",
    "satisfies_triangle_inequality",
    "hop_distance_matrix",
    "ResourcePool",
    "TopologyCache",
    "DynamicResourcePool",
    "LatencyProber",
    "ProbeConfig",
    "aggregate_probes",
    "infer_distance_matrix",
    "quantize_to_tiers",
    "tier_recovery_accuracy",
    "render_allocation",
    "render_topology",
    "render_vm_counts",
    "PoolSpec",
    "RequestSpec",
    "LARGE_REQUESTS",
    "SMALL_REQUESTS",
    "random_topology",
    "random_pool",
    "random_request",
    "random_requests",
    "feasible_random_requests",
]

"""Placement algorithm interfaces.

All single-request algorithms implement :class:`PlacementAlgorithm`:
given a request and the current pool state they return an
:class:`~repro.core.problem.Allocation` (without mutating the pool — callers
commit via :meth:`ResourcePool.allocate`) or raise.

Outcomes follow the paper's admission semantics:

* request > maximum pool capacity → :class:`InfeasibleRequestError` (refuse);
* request > current availability  → ``None`` (wait in queue);
* otherwise → an allocation covering the request exactly.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.cluster.resources import ResourcePool
from repro.core.problem import Allocation, VirtualClusterRequest
from repro.util.errors import InfeasibleRequestError
from repro.util.validation import as_int_vector


def normalize_request(
    request: "VirtualClusterRequest | np.ndarray | list[int]", num_types: int
) -> np.ndarray:
    """Accept either a request object or a raw vector; return the vector."""
    if isinstance(request, VirtualClusterRequest):
        return request.demand
    return as_int_vector(request, name="request", length=num_types)


def check_admissible(demand: np.ndarray, pool: ResourcePool) -> bool:
    """Apply the paper's two admission rules.

    Returns ``False`` when the request should *wait* (insufficient current
    availability) and raises :class:`InfeasibleRequestError` when it must be
    *refused* (exceeds maximum capacity).
    """
    if pool.exceeds_max_capacity(demand):
        raise InfeasibleRequestError(
            f"request {demand.tolist()} exceeds maximum pool capacity "
            f"{pool.max_capacity.sum(axis=0).tolist()}"
        )
    return pool.can_satisfy(demand)


class PlacementAlgorithm(abc.ABC):
    """Strategy interface for single-request virtual-cluster placement."""

    #: Short name used in experiment tables.
    name: str = "abstract"

    @abc.abstractmethod
    def place(
        self,
        request: "VirtualClusterRequest | np.ndarray",
        pool: ResourcePool,
    ) -> "Allocation | None":
        """Compute an allocation for *request* against *pool*'s current state.

        Must not mutate *pool*. Returns ``None`` if the request cannot be
        served right now (must wait); raises
        :class:`~repro.util.errors.InfeasibleRequestError` if it can never be
        served.
        """

    def place_and_commit(
        self,
        request: "VirtualClusterRequest | np.ndarray",
        pool: ResourcePool,
    ) -> "Allocation | None":
        """Convenience: :meth:`place` then commit to the pool if successful."""
        alloc = self.place(request, pool)
        if alloc is not None:
            pool.allocate(alloc.matrix)
        return alloc

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class BatchPlacementAlgorithm(abc.ABC):
    """Strategy interface for placing a batch of requests together (GSD)."""

    name: str = "abstract-batch"

    @abc.abstractmethod
    def place_batch(
        self,
        requests: "list[VirtualClusterRequest | np.ndarray]",
        pool: ResourcePool,
    ) -> list["Allocation | None"]:
        """Allocate each request in *requests*; entries are ``None`` for
        requests that could not be served with the remaining resources.

        Must not mutate *pool*.
        """

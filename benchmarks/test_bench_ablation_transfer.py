"""Ablation: literal Theorem-2 transfer vs. the generalized swap search.

DESIGN.md calls out the generalized exchange as a deliberate extension of
the paper's transfer; this bench quantifies how much more distance it
recovers on identical batches."""

import functools

from repro.analysis import format_table
from repro.experiments.ablations import run_transfer_ablation

from benchmarks.conftest import emit


def test_ablation_transfer_generality(benchmark):
    result = benchmark.pedantic(
        functools.partial(run_transfer_ablation, trials=5), rounds=1, iterations=1
    )
    rows = [
        ["online (no transfers)", result.online_total, 0.0],
        ["paper Theorem-2 transfer", result.paper_transfer_total, result.paper_improvement_pct],
        ["generalized swap search", result.general_transfer_total, result.general_improvement_pct],
    ]
    emit(
        "Ablation — transfer variants over 5 batches",
        format_table(["variant", "total distance", "improvement (%)"], rows),
    )
    assert result.general_transfer_total <= result.paper_transfer_total + 1e-9

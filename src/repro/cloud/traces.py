"""Workload and pool trace serialization (JSON).

Lets users capture a simulation setup — the pool layout and a timed request
trace — to a file and replay it later or elsewhere, the standard workflow
for sharing scheduler experiments. Round-trip fidelity is property-tested.

Format (version 1)::

    {
      "version": 1,
      "catalog": [{"name": ..., "memory_gb": ..., ...}, ...],
      "pool": {"nodes": [{"node_id": ..., "rack_id": ..., "cloud_id": ...,
                          "capacity": [...]}, ...],
               "distance_model": {"intra_rack": ..., ...}},
      "workload": [{"demand": [...], "arrival_time": ..., "duration": ...,
                    "priority": ...}, ...]
    }
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cloud.request import TimedRequest
from repro.cluster.distance import DistanceModel
from repro.cluster.node import PhysicalNode
from repro.cluster.resources import ResourcePool
from repro.cluster.topology import Topology
from repro.cluster.vmtypes import VMType, VMTypeCatalog
from repro.core.problem import VirtualClusterRequest
from repro.util.errors import ValidationError

TRACE_VERSION = 1


def catalog_to_dict(catalog: VMTypeCatalog) -> list[dict]:
    """Serialize a VM-type catalog to JSON-ready dicts."""
    return [
        {
            "name": t.name,
            "memory_gb": t.memory_gb,
            "cpu_units": t.cpu_units,
            "storage_gb": t.storage_gb,
            "platform_bits": t.platform_bits,
            "map_slots": t.map_slots,
            "reduce_slots": t.reduce_slots,
        }
        for t in catalog
    ]


def catalog_from_dict(data: list[dict]) -> VMTypeCatalog:
    """Rebuild a catalog from :func:`catalog_to_dict` output."""
    return VMTypeCatalog([VMType(**entry) for entry in data])


def pool_to_dict(pool: ResourcePool) -> dict:
    """Serialize a pool's topology and distance model."""
    model = pool.distance_model
    return {
        "nodes": [
            {
                "node_id": n.node_id,
                "rack_id": n.rack_id,
                "cloud_id": n.cloud_id,
                "capacity": n.capacity.tolist(),
            }
            for n in pool.topology
        ],
        "distance_model": {
            "intra_rack": model.intra_rack,
            "inter_rack": model.inter_rack,
            "inter_cloud": model.inter_cloud,
        },
    }


def pool_from_dict(data: dict, catalog: VMTypeCatalog) -> ResourcePool:
    """Rebuild a pool from :func:`pool_to_dict` output."""
    nodes = [
        PhysicalNode(
            node_id=entry["node_id"],
            rack_id=entry["rack_id"],
            cloud_id=entry["cloud_id"],
            capacity=entry["capacity"],
        )
        for entry in sorted(data["nodes"], key=lambda e: e["node_id"])
    ]
    model = DistanceModel(**data["distance_model"])
    return ResourcePool(Topology(nodes), catalog, distance_model=model)


def workload_to_list(workload: "list[TimedRequest]") -> list[dict]:
    """Serialize a timed workload to JSON-ready dicts."""
    return [
        {
            "demand": r.demand.tolist(),
            "arrival_time": r.arrival_time,
            "duration": r.duration,
            "priority": r.priority,
        }
        for r in workload
    ]


def workload_from_list(data: list[dict]) -> list[TimedRequest]:
    """Rebuild a workload from :func:`workload_to_list` output."""
    return [
        TimedRequest(
            request=VirtualClusterRequest(demand=entry["demand"]),
            arrival_time=entry["arrival_time"],
            duration=entry["duration"],
            priority=entry.get("priority", 0),
        )
        for entry in data
    ]


def save_trace(
    path: "str | Path",
    *,
    pool: ResourcePool,
    workload: "list[TimedRequest]",
) -> None:
    """Write a pool + workload trace to *path* as JSON."""
    doc = {
        "version": TRACE_VERSION,
        "catalog": catalog_to_dict(pool.catalog),
        "pool": pool_to_dict(pool),
        "workload": workload_to_list(workload),
    }
    Path(path).write_text(json.dumps(doc, indent=1))


def load_trace(path: "str | Path") -> tuple[ResourcePool, list[TimedRequest]]:
    """Read a trace written by :func:`save_trace`."""
    try:
        doc = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValidationError(f"not a valid trace file: {exc}") from exc
    version = doc.get("version")
    if version != TRACE_VERSION:
        raise ValidationError(
            f"unsupported trace version {version!r}; expected {TRACE_VERSION}"
        )
    catalog = catalog_from_dict(doc["catalog"])
    pool = pool_from_dict(doc["pool"], catalog)
    workload = workload_from_list(doc["workload"])
    return pool, workload

"""Tests for random topology / pool / request generators."""

import numpy as np
import pytest

from repro.cluster.generators import (
    LARGE_REQUESTS,
    SMALL_REQUESTS,
    PoolSpec,
    RequestSpec,
    feasible_random_requests,
    random_pool,
    random_request,
    random_requests,
    random_topology,
)
from repro.cluster.vmtypes import VMTypeCatalog
from repro.util.errors import ValidationError


@pytest.fixture
def catalog():
    return VMTypeCatalog.ec2_default()


class TestPoolSpec:
    def test_paper_defaults(self):
        spec = PoolSpec()
        assert spec.racks == 3
        assert spec.nodes_per_rack == 10

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValidationError):
            PoolSpec(racks=0)

    def test_invalid_capacity_bounds_rejected(self):
        with pytest.raises(ValidationError):
            PoolSpec(capacity_low=3, capacity_high=2)


class TestRandomTopology:
    def test_shape(self, catalog):
        topo = random_topology(PoolSpec(racks=3, nodes_per_rack=10), catalog, seed=1)
        assert topo.num_nodes == 30
        assert topo.num_racks == 3

    def test_capacities_within_bounds(self, catalog):
        spec = PoolSpec(capacity_low=1, capacity_high=3)
        topo = random_topology(spec, catalog, seed=2)
        m = topo.capacity_matrix()
        assert m.min() >= 1
        assert m.max() <= 3

    def test_deterministic(self, catalog):
        a = random_topology(PoolSpec(), catalog, seed=9).capacity_matrix()
        b = random_topology(PoolSpec(), catalog, seed=9).capacity_matrix()
        assert np.array_equal(a, b)

    def test_seeds_differ(self, catalog):
        a = random_topology(PoolSpec(), catalog, seed=1).capacity_matrix()
        b = random_topology(PoolSpec(), catalog, seed=2).capacity_matrix()
        assert not np.array_equal(a, b)

    def test_multicloud(self, catalog):
        topo = random_topology(PoolSpec(racks=2, nodes_per_rack=2, clouds=2), catalog, seed=3)
        assert topo.num_clouds == 2
        assert topo.num_nodes == 8


class TestRandomPool:
    def test_pool_usable(self, catalog):
        pool = random_pool(PoolSpec(), catalog, seed=4)
        assert pool.num_nodes == 30
        assert pool.allocated.sum() == 0


class TestRequestSpec:
    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValidationError):
            RequestSpec(low=2, high=1)

    def test_impossible_min_total_rejected(self):
        with pytest.raises(ValidationError):
            RequestSpec(low=0, high=0, min_total=1)

    def test_scenario_specs_are_ordered(self):
        # The "small" scenario must actually request fewer VMs than "large".
        assert SMALL_REQUESTS.high < LARGE_REQUESTS.high


class TestRandomRequest:
    def test_bounds(self):
        spec = RequestSpec(low=1, high=3)
        r = random_request(spec, 3, seed=5)
        assert r.min() >= 1 and r.max() <= 3

    def test_min_total_respected(self):
        spec = RequestSpec(low=0, high=1, min_total=2)
        for seed in range(20):
            assert random_request(spec, 3, seed=seed).sum() >= 2

    def test_deterministic(self):
        spec = RequestSpec()
        assert np.array_equal(
            random_request(spec, 3, seed=7), random_request(spec, 3, seed=7)
        )

    def test_count(self):
        out = random_requests(RequestSpec(), 3, 10, seed=1)
        assert len(out) == 10

    def test_negative_count_rejected(self):
        with pytest.raises(ValidationError):
            random_requests(RequestSpec(), 3, -1)


class TestFeasibleRandomRequests:
    def test_all_within_max_capacity(self, catalog):
        pool = random_pool(PoolSpec(capacity_high=2), catalog, seed=11)
        reqs = feasible_random_requests(
            pool, RequestSpec(low=0, high=6, min_total=5), 15, seed=12
        )
        total = pool.max_capacity.sum(axis=0)
        assert len(reqs) == 15
        for r in reqs:
            assert np.all(r <= total)

    def test_impossible_spec_raises(self, catalog):
        pool = random_pool(
            PoolSpec(racks=1, nodes_per_rack=1, capacity_high=1), catalog, seed=1
        )
        # Requests of >= 30 VMs can never fit a <= 3-VM pool.
        with pytest.raises(ValidationError):
            feasible_random_requests(
                pool,
                RequestSpec(low=10, high=12, min_total=30),
                1,
                seed=2,
                max_draws=50,
            )

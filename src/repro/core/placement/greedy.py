"""Algorithm 1: the online heuristic VM placement algorithm.

Faithful reconstruction of the paper's Section IV.A procedure:

1. Refuse requests exceeding maximum capacity; make requests wait when they
   exceed current availability (lines 1–5 of Algorithm 1).
2. Single-node shortcut: if some node alone can host the whole request,
   allocate everything there (lines 9–14) — the resulting cluster has
   distance 0.
3. Otherwise, for each candidate central node: take as much as possible from
   the center (``com(L[i], R)``), then fill from same-rack peers sorted by
   how much of the remaining request they can provide (descending — the
   paper's ``getList(D, i, 0)`` ordering), then from off-rack nodes in
   ascending distance order with the same secondary sort
   (``getList(D, i, 1)``).
4. Keep the allocation with the shortest ``getDist`` over candidate centers.

Two details are configurable because the paper's pseudocode admits both
readings:

* ``stop`` — ``"best"`` scans every candidate center (matches the paper's
  O(n²·m) complexity claim and its Fig. 2 description of "the most
  appropriate central node"); ``"first"`` accepts the first center that
  yields a complete allocation (the literal ``break L1``), which is faster
  but can be arbitrarily worse.
* ``center_order`` — ``"index"`` (deterministic) or ``"random"`` ("we choose
  one central node randomly" — only meaningful with ``stop="first"``).

A structural note (verified by the test suite): because nearest-first fill
is optimal for a *fixed* center, ``stop="best"`` attains the exact SD
optimum. The heuristic's "sub-optimality" in the paper manifests only in the
``stop="first"`` mode and in the global multi-request setting that
Algorithm 2 addresses.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.resources import ResourcePool
from repro.core.placement import kernels
from repro.core.placement.base import (
    PlacementAlgorithm,
    check_admissible,
    normalize_request,
)
from repro.core.problem import Allocation, VirtualClusterRequest
from repro.util.errors import ValidationError
from repro.util.rng import ensure_rng
from repro.util.timing import PhaseTimer


def com(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The paper's ``com`` operator: element-wise minimum of two vectors.

    ``com(L[i], R) == R`` means node ``i`` alone can provide all of ``R``.
    """
    return np.minimum(a, b)


def providable(remaining_row: np.ndarray, demand: np.ndarray) -> int:
    """How many requested VMs (summed over types) a node can contribute."""
    return int(np.minimum(remaining_row, demand).sum())


def _reference_fill_order(
    center: int, demand: np.ndarray, remaining: np.ndarray, dist: np.ndarray
) -> np.ndarray:
    """Node visit order for one candidate center.

    Primary key: distance to the center ascending (center itself first, then
    its rack, then farther tiers — the paper's rackList/nRackList split
    generalized to any number of hierarchy levels). Secondary key: providable
    resources descending ("the more resources they provide, the greater
    chance of being selected"). Ternary: node index, for determinism.
    """
    n = remaining.shape[0]
    prov = np.minimum(remaining, demand[None, :]).sum(axis=1)
    order = sorted(range(n), key=lambda i: (dist[i, center], -int(prov[i]), i))
    return np.asarray(order, dtype=np.int64)


#: Budget clip shared with the vectorized kernels (moved there; re-exported
#: here because the rack-limited loop below predates the kernels module).
_clip_to_budget = kernels.clip_to_budget


def greedy_fill(
    center: int,
    demand: np.ndarray,
    remaining: np.ndarray,
    dist: np.ndarray,
    *,
    rack_ids: "np.ndarray | None" = None,
    max_vms_per_rack: "int | None" = None,
) -> "np.ndarray | None":
    """Build one allocation around *center* following Algorithm 1's loop body.

    When ``max_vms_per_rack`` is given (with ``rack_ids`` mapping node → rack),
    no rack contributes more than that many VMs — the failure-domain spread
    constraint: a rack-level outage (ToR switch, power domain) can then kill
    at most ``max_vms_per_rack`` of the cluster's VMs, at the cost of longer
    cluster distance.

    Returns the allocation matrix, or ``None`` when availability (or the
    per-rack budget) runs out before the request is covered.

    Delegates to the vectorized kernels in
    :mod:`repro.core.placement.kernels`, which are bit-identical to the
    sequential formulation retained as :func:`_reference_greedy_fill`.
    """
    kernels.require_rack_ids(rack_ids, max_vms_per_rack)
    if max_vms_per_rack is None:
        return kernels.fill_one(center, demand, remaining, dist)
    return kernels.fill_one_rack_limited(
        center, demand, remaining, dist, rack_ids, max_vms_per_rack
    )


def _reference_greedy_fill(
    center: int,
    demand: np.ndarray,
    remaining: np.ndarray,
    dist: np.ndarray,
    *,
    rack_ids: "np.ndarray | None" = None,
    max_vms_per_rack: "int | None" = None,
) -> "np.ndarray | None":
    """The original per-node-loop formulation of :func:`greedy_fill`.

    Kept as the executable specification the vectorized kernels are
    property-tested against (byte-identical allocations).
    """
    kernels.require_rack_ids(rack_ids, max_vms_per_rack)
    n, m = remaining.shape
    alloc = np.zeros((n, m), dtype=np.int64)
    todo = demand.astype(np.int64).copy()
    rack_budget: "dict[int, int] | None" = None
    if max_vms_per_rack is not None:
        rack_budget = {}
    for i in _reference_fill_order(center, demand, remaining, dist):
        if not todo.any():
            break
        take = com(remaining[i], todo)
        if rack_budget is not None:
            rack = int(rack_ids[i])
            budget = rack_budget.get(rack, max_vms_per_rack)
            if budget <= 0:
                continue
            if int(take.sum()) > budget:
                take = _clip_to_budget(take, budget)
        if take.any():
            alloc[i] = take
            todo -= take
            if rack_budget is not None:
                rack_budget[rack] = budget - int(take.sum())
    if todo.any():
        return None
    return alloc


class OnlineHeuristic(PlacementAlgorithm):
    """Algorithm 1: greedy affinity-aware placement for one request.

    Parameters
    ----------
    stop:
        ``"best"`` (default) evaluates every candidate center and returns the
        shortest-distance allocation; ``"first"`` returns the allocation of
        the first center that completes, after the single-node shortcut.
    center_order:
        ``"index"`` (default) tries centers in node-id order; ``"random"``
        shuffles the candidate order (paper: "choose one central node
        randomly"). Only affects results when ``stop="first"``.
    seed:
        RNG seed for ``center_order="random"``.
    max_vms_per_rack:
        Optional failure-domain spread constraint: cap how many of the
        request's VMs may land in any single rack. A rack-correlated outage
        then costs at most this many VMs (k-resilience against rack
        failures), traded against cluster affinity — spread allocations have
        longer distance than the unconstrained greedy packing.
    use_kernels:
        Run the candidate-center sweep through the vectorized kernels
        (:mod:`repro.core.placement.kernels`), which are bit-identical to
        the reference loop but prune and batch centers as tensor
        operations. ``False`` forces the original per-center Python loop
        (kept for property testing and ablation).
    timer:
        Optional :class:`~repro.util.timing.PhaseTimer`; when enabled it
        receives the ``admission`` / ``center_sweep`` / ``fill`` phase
        breakdown of every :meth:`place` call.
    """

    name = "online-heuristic"

    def __init__(
        self,
        *,
        stop: str = "best",
        center_order: str = "index",
        seed=None,
        max_vms_per_rack: "int | None" = None,
        use_kernels: bool = True,
        timer: "PhaseTimer | None" = None,
    ) -> None:
        if stop not in ("best", "first"):
            raise ValidationError(f"stop must be 'best' or 'first', got {stop!r}")
        if center_order not in ("index", "random"):
            raise ValidationError(
                f"center_order must be 'index' or 'random', got {center_order!r}"
            )
        if max_vms_per_rack is not None and max_vms_per_rack < 1:
            raise ValidationError("max_vms_per_rack must be >= 1 when set")
        self.stop = stop
        self.center_order = center_order
        self.max_vms_per_rack = max_vms_per_rack
        self.use_kernels = bool(use_kernels)
        self.timer = timer if timer is not None else PhaseTimer()
        self._rng = ensure_rng(seed)

    def _candidate_centers(self, remaining: np.ndarray, rng=None) -> np.ndarray:
        """Nodes worth trying as centers: those with any remaining capacity.

        A zero-capacity node can still be the *geometric* center of an
        allocation, but for hierarchical distance matrices some node of the
        heaviest rack is always at least as good, and every such node is a
        candidate.
        """
        candidates = np.flatnonzero(remaining.sum(axis=1) > 0)
        if self.center_order == "random":
            candidates = (rng or self._rng).permutation(candidates)
        return candidates

    def _effective_spread(self, pool, request, demand):
        """Combine the operator cap with the request's survivability target.

        Returns ``(domain_ids, cap, from_target)`` — the single per-domain
        budget the sweep enforces, with ``from_target`` recording whether a
        *non-vacuous* compiled target contributed to it (vacuous targets
        must behave observably identically to no target at all, operator
        cap included). A request-level
        :class:`~repro.core.reliability.SurvivabilityTarget` compiles
        (refuse-impossible, see ``compile_target``) to a cap over its own
        failure-domain scope; a rack-scope target shares the rack
        partition with ``max_vms_per_rack``, so both combine as the
        minimum. A node-scope target under an operator rack cap would need
        two simultaneous partitions, which the single-budget kernels cannot
        express — that combination is rejected.
        """
        from repro.core import reliability

        target = getattr(request, "survivability", None)
        rack_ids = None
        cap = self.max_vms_per_rack
        if cap is not None:
            rack_ids = pool.topology.rack_ids
        if target is None:
            return rack_ids, cap, False
        compiled = reliability.compile_target(demand, pool, target)
        if compiled is None:  # vacuous (k=0): unconstrained path, bit-identical
            return rack_ids, cap, False
        domain_ids, target_cap, _k = compiled
        if cap is None:
            return domain_ids, target_cap, True
        if target.domain_scope != "rack":
            raise ValidationError(
                "cannot combine max_vms_per_rack with a node-scope "
                "survivability target (two failure-domain partitions)"
            )
        return rack_ids, min(cap, target_cap), True

    def _place(self, pool: ResourcePool, request, *, rng=None, obs=None):
        timer = self.timer
        demand = normalize_request(request, pool.num_types)
        target = getattr(request, "survivability", None)
        if target is not None and target.kind == "availability":
            return self._place_available(pool, demand, target, rng, obs)
        with timer.phase("admission"):
            admissible = check_admissible(demand, pool)
            domain_ids, cap, from_target = self._effective_spread(
                pool, request, demand
            )
            if from_target:
                from repro.core import reliability

                # Run the spread check unconditionally: its refusal half
                # (InfeasibleRequestError against maximum capacity) must
                # fire even when plain free capacity already says wait.
                spread_ok = reliability.check_spread_admissible(
                    demand, pool, domain_ids, cap
                )
                admissible = admissible and spread_ok
        if not admissible:
            return None
        return self._fill(pool, demand, domain_ids, cap, rng, obs)

    def _place_available(self, pool, demand, target, rng, obs):
        """Verified-commit path for availability targets.

        Defers to :func:`repro.core.reliability.place_available`: greedy
        fills at escalating tolerances, committing only when the achieved
        spread's exact survival meets ``min_availability``. The operator
        ``max_vms_per_rack`` folds into each attempt's budget exactly as it
        does for compiled ``k``-kind caps.
        """
        from repro.core import reliability

        op_cap = self.max_vms_per_rack
        if op_cap is not None and target.domain_scope != "rack":
            raise ValidationError(
                "cannot combine max_vms_per_rack with a node-scope "
                "survivability target (two failure-domain partitions)"
            )

        def attempt(domain_ids, cap):
            if op_cap is not None:
                domain_ids = pool.topology.rack_ids
                cap = op_cap if cap is None else min(cap, op_cap)
            elif cap is None:
                domain_ids = None
            return self._fill(pool, demand, domain_ids, cap, rng, obs)

        return reliability.place_available(demand, pool, target, attempt)

    def _fill(self, pool, demand, domain_ids, cap, rng, obs):
        """Shortcut + candidate sweep under an optional per-domain budget."""
        remaining = pool.remaining
        dist = pool.distance_matrix

        # Lines 9–14: a single node that can host everything wins outright —
        # unless the spread constraint forbids that many VMs in one domain.
        if cap is None or int(demand.sum()) <= cap:
            fits = np.all(remaining >= demand[None, :], axis=1)
            if fits.any():
                i = int(np.flatnonzero(fits)[0])
                matrix = np.zeros_like(remaining)
                matrix[i] = demand
                return Allocation(matrix=matrix, center=i, distance=0.0)

        with self.timer.phase("center_sweep"):
            candidates = self._candidate_centers(remaining, rng)
            if self.use_kernels:
                return self._sweep_kernels(
                    candidates, demand, remaining, dist, pool, domain_ids,
                    cap, obs,
                )
            return self._sweep_reference(
                candidates, demand, remaining, dist, domain_ids, cap
            )

    def _sweep_kernels(
        self, candidates, demand, remaining, dist, pool, domain_ids, cap,
        obs=None,
    ):
        """Vectorized candidate sweep (bit-identical to the reference)."""
        cache = getattr(pool, "topology_cache", None)
        sweep = kernels.sweep_best if self.stop == "best" else kernels.sweep_first
        result = sweep(
            candidates,
            demand,
            remaining,
            dist,
            cache=cache,
            rack_ids=domain_ids,
            max_vms_per_rack=cap,
            timer=self.timer if self.timer.enabled else None,
            obs=obs,
        )
        if result is None:
            return None
        matrix, center, dc = result
        return Allocation(matrix=matrix, center=center, distance=dc)

    def _sweep_reference(self, candidates, demand, remaining, dist, domain_ids, cap):
        """The original per-center Python loop (executable specification)."""
        best: "Allocation | None" = None
        for center in candidates:
            matrix = _reference_greedy_fill(
                int(center),
                demand,
                remaining,
                dist,
                rack_ids=domain_ids,
                max_vms_per_rack=cap,
            )
            if matrix is None:
                continue
            dc = float(matrix.sum(axis=1).astype(np.float64) @ dist[:, center])
            if self.stop == "first":
                return Allocation(matrix=matrix, center=int(center), distance=dc)
            if best is None or dc < best.distance - 1e-12:
                best = Allocation(matrix=matrix, center=int(center), distance=dc)
        return best

"""One-shot experiment runner: regenerate every figure into one report.

``run_all`` executes all paper experiments (plus ablations) with pinned
seeds and returns a structured :class:`PaperReport`;
:func:`render_markdown` turns it into an EXPERIMENTS.md-style document.
Exposed on the CLI as ``python -m repro report [--out FILE]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis import format_series, format_table
from repro.experiments import paperconfig as cfg
from repro.experiments.ablations import (
    HeuristicGapResult,
    run_heuristic_gap,
    run_transfer_ablation,
    TransferAblationResult,
)
from repro.experiments.center_experiments import (
    CenterStudyResult,
    Fig4Result,
    run_center_study,
    run_fig4,
)
from repro.experiments.example_fig1 import Fig1Result, run as run_fig1
from repro.experiments.global_experiments import (
    GlobalComparisonResult,
    run_fig5,
    run_fig6,
)
from repro.experiments.mapreduce_experiments import Fig78Result, run_fig78


@dataclass(frozen=True)
class PaperReport:
    """All experiment outcomes for one seed."""

    seed: int
    fig1: Fig1Result
    center_study: CenterStudyResult
    fig4: Fig4Result
    fig5: GlobalComparisonResult
    fig6: GlobalComparisonResult
    fig78: Fig78Result
    heuristic_gap: HeuristicGapResult
    transfer_ablation: TransferAblationResult


def run_all(*, seed: int = cfg.MASTER_SEED, trials: int = 5) -> PaperReport:
    """Execute every experiment; ``trials`` controls Fig. 5/6 averaging."""
    return PaperReport(
        seed=seed,
        fig1=run_fig1(),
        center_study=run_center_study(seed=seed),
        fig4=run_fig4(seed=seed),
        fig5=run_fig5(seed=seed, trials=trials),
        fig6=run_fig6(seed=seed, trials=trials),
        fig78=run_fig78(),
        heuristic_gap=run_heuristic_gap(seed=seed),
        transfer_ablation=run_transfer_ablation(seed=seed, trials=3),
    )


def render_markdown(report: PaperReport) -> str:
    """Render a report as a markdown document."""
    parts: list[str] = [
        "# Regenerated paper experiments",
        f"\nSeed: `{report.seed}`. See EXPERIMENTS.md for the paper-vs-measured analysis.\n",
    ]

    parts.append("## Fig. 1 — worked example (d1=1, d2=2)\n")
    parts.append("```")
    rows = [
        [label, dist, f"N{center}"]
        for label, dist, center in zip(
            report.fig1.labels, report.fig1.distances, report.fig1.centers
        )
    ]
    rows.append(["SD optimum", report.fig1.optimal_distance, "-"])
    parts.append(format_table(["allocation", "DC", "central node"], rows))
    parts.append("```\n")

    study = report.center_study
    parts.append("## Fig. 2/3 — central-node strategy over 20 requests\n")
    parts.append("```")
    parts.append(format_series("heuristic", study.heuristic_distances, float_fmt="{:.0f}"))
    parts.append(format_series("random   ", study.random_center_distances, float_fmt="{:.0f}"))
    parts.append(format_series("centers  ", study.centers))
    parts.append(f"mean gap: {study.mean_gap:.2f}")
    parts.append("```\n")

    parts.append("## Fig. 4 — center sweep\n")
    parts.append("```")
    parts.append(
        format_series(
            "distance", list(report.fig4.center_distances), float_fmt="{:.0f}"
        )
    )
    parts.append(
        f"best node {report.fig4.best_center}: {report.fig4.best_distance:.0f}; "
        f"worst: {report.fig4.worst_distance:.0f}"
    )
    parts.append("```\n")

    parts.append("## Figs. 5/6 — online vs. global sub-optimization\n")
    parts.append("```")
    for name, result, paper in (
        ("Fig. 5 (ordinary)", report.fig5, cfg.PAPER_FIG5_IMPROVEMENT_PCT),
        ("Fig. 6 (small)", report.fig6, cfg.PAPER_FIG6_IMPROVEMENT_PCT),
    ):
        parts.append(
            f"{name}: online {result.online_total:.0f} -> global "
            f"{result.global_total:.0f} ({result.improvement_pct:.1f}% better; "
            f"paper ~{paper:.0f}%)"
        )
    parts.append("```\n")

    parts.append("## Figs. 7/8 — WordCount on four topologies\n")
    parts.append("```")
    parts.append(
        format_table(
            ["distance", "runtime (s)", "non-data-local maps", "non-local shuffles"],
            [
                [r.distance, r.runtime, r.locality.non_data_local_maps, r.locality.non_local_flows]
                for r in report.fig78.runs
            ],
        )
    )
    parts.append(f"inversion present: {report.fig78.has_inversion}")
    parts.append("```\n")

    parts.append("## Ablations\n")
    parts.append("```")
    gap = report.heuristic_gap
    parts.append(
        f"Algorithm 1 best-center gap to optimum: {gap.best_mode_gap_pct:.1f}%"
    )
    parts.append(
        f"Algorithm 1 first-center gap to optimum: {gap.first_mode_gap_pct:.1f}%"
    )
    tr = report.transfer_ablation
    parts.append(
        f"transfer improvement — paper form: {tr.paper_improvement_pct:.1f}%, "
        f"generalized: {tr.general_improvement_pct:.1f}%"
    )
    parts.append("```")
    return "\n".join(parts) + "\n"

"""The virtual cluster a MapReduce job runs on.

Bridges the placement layer and the MapReduce simulator: a
:class:`VirtualCluster` expands an :class:`~repro.core.problem.Allocation`
into individual VM instances, derives the VM-to-VM distance matrix from the
physical node distance matrix (distance between VMs on the same node is 0 —
Section II), and exposes per-VM task slots from the VM-type catalog.

The cluster's *affinity* is exactly the paper's ``DC`` of its allocation —
the Fig. 7/8 x-axis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.vmtypes import VMTypeCatalog
from repro.core.distance import cluster_distance
from repro.core.problem import Allocation
from repro.mapreduce.network import DistanceBand, classify_band
from repro.util.errors import ValidationError


@dataclass(frozen=True, slots=True)
class VMInstance:
    """One virtual machine in a provisioned cluster."""

    vm_id: int
    node_id: int
    type_index: int
    map_slots: int
    reduce_slots: int


class VirtualCluster:
    """A set of VM instances with pairwise distances and task slots."""

    def __init__(
        self,
        vms: list[VMInstance],
        vm_distance: np.ndarray,
        *,
        affinity: float,
        intra_rack: float = 1.0,
        inter_rack: float = 2.0,
    ) -> None:
        if not vms:
            raise ValidationError("VirtualCluster requires at least one VM")
        n = len(vms)
        d = np.asarray(vm_distance, dtype=np.float64)
        if d.shape != (n, n):
            raise ValidationError(
                f"vm_distance must be {n}×{n}, got {d.shape}"
            )
        self.vms = tuple(vms)
        self._distance = d.copy()
        self._distance.flags.writeable = False
        self.affinity = float(affinity)
        self._intra_rack = intra_rack
        self._inter_rack = inter_rack

    # ----------------------------------------------------------- construction

    @classmethod
    def from_allocation(
        cls,
        allocation: Allocation,
        node_distance: np.ndarray,
        catalog: VMTypeCatalog,
        *,
        intra_rack: float = 1.0,
        inter_rack: float = 2.0,
    ) -> "VirtualCluster":
        """Expand an allocation matrix into a concrete virtual cluster.

        VM ids are assigned in (node, type) order; the cluster affinity is
        recomputed as ``DC`` of the allocation under *node_distance* so
        manually built allocations report consistent values.
        """
        placements = allocation.vm_placements()
        vms = []
        for vm_id, (node, type_index) in enumerate(placements):
            vmt = catalog[type_index]
            vms.append(
                VMInstance(
                    vm_id=vm_id,
                    node_id=node,
                    type_index=type_index,
                    map_slots=vmt.map_slots,
                    reduce_slots=vmt.reduce_slots,
                )
            )
        nodes = np.array([vm.node_id for vm in vms])
        vm_dist = np.asarray(node_distance, dtype=np.float64)[
            np.ix_(nodes, nodes)
        ]
        dc, _ = cluster_distance(allocation.matrix, np.asarray(node_distance))
        return cls(
            vms,
            vm_dist,
            affinity=dc,
            intra_rack=intra_rack,
            inter_rack=inter_rack,
        )

    # -------------------------------------------------------------- accessors

    def __len__(self) -> int:
        return len(self.vms)

    @property
    def num_vms(self) -> int:
        return len(self.vms)

    @property
    def distance(self) -> np.ndarray:
        """Read-only VM-to-VM distance matrix."""
        return self._distance

    @property
    def total_map_slots(self) -> int:
        return sum(vm.map_slots for vm in self.vms)

    @property
    def total_reduce_slots(self) -> int:
        return sum(vm.reduce_slots for vm in self.vms)

    def vm_distance(self, a: int, b: int) -> float:
        """Distance between VMs *a* and *b* (0 when co-located)."""
        return float(self._distance[a, b])

    def band(self, a: int, b: int) -> DistanceBand:
        """Distance band between VMs *a* and *b*."""
        return classify_band(
            self._distance[a, b], self._intra_rack, self._inter_rack
        )

    def colocation_count(self, vm_id: int) -> int:
        """Number of cluster VMs sharing *vm_id*'s physical node (≥ 1).

        Used by the disk-contention model: co-located VMs share the node's
        local disk bandwidth when reading their splits.
        """
        node = self.vms[vm_id].node_id
        return sum(1 for vm in self.vms if vm.node_id == node)

    def nearest(self, vm_id: int, candidates: "list[int] | np.ndarray") -> int:
        """The candidate VM closest to *vm_id* (ties → lowest id)."""
        cand = np.asarray(candidates, dtype=np.int64)
        if cand.size == 0:
            raise ValidationError("nearest() requires at least one candidate")
        dists = self._distance[vm_id, cand]
        nearest_ids = cand[dists <= dists.min()]
        return int(nearest_ids.min())  # tie-break independent of input order

    def __repr__(self) -> str:
        return (
            f"VirtualCluster(vms={self.num_vms}, affinity={self.affinity:g}, "
            f"map_slots={self.total_map_slots}, "
            f"reduce_slots={self.total_reduce_slots})"
        )

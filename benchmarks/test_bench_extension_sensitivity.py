"""Extension bench: sensitivity of the paper's conclusions.

Three sweeps mapping where affinity-aware provisioning matters: the
rack-distance ratio, the batch load, and the network oversubscription."""

import functools

from repro.analysis import format_table
from repro.experiments.sensitivity import (
    sweep_distance_ratio,
    sweep_oversubscription,
    sweep_pool_load,
)

from benchmarks.conftest import emit


def test_sensitivity_sweeps(benchmark):
    benchmark.pedantic(
        functools.partial(sweep_oversubscription, factors=(4.0,)),
        rounds=1,
        iterations=1,
    )
    ratio = sweep_distance_ratio(trials=3)
    emit(
        "Sensitivity — inter/intra-rack distance ratio",
        format_table(
            ["d2/d1", "Algorithm 2 improvement (%)", "random-center penalty"],
            [[p.ratio, p.global_improvement_pct, p.random_center_penalty] for p in ratio],
        ),
    )
    load = sweep_pool_load(trials=3)
    emit(
        "Sensitivity — batch load vs. transfer gains",
        format_table(
            ["load", "online total", "global total", "improvement (%)"],
            [[p.load_fraction, p.online_total, p.global_total, p.improvement_pct] for p in load],
        ),
    )
    over = sweep_oversubscription()
    emit(
        "Sensitivity — network oversubscription vs. Fig.7 slope",
        format_table(
            ["oversubscription", "runtime d=8", "runtime d=22", "spread penalty (%)"],
            [[p.oversubscription, p.runtimes[0], p.runtimes[-1], p.spread_penalty_pct] for p in over],
        ),
    )
    assert ratio[-1].random_center_penalty > ratio[0].random_center_penalty
    assert over[-1].spread_penalty_pct > over[0].spread_penalty_pct

"""Tests for map-task schedulers and reducer placement."""

import numpy as np
import pytest

from repro.cluster.vmtypes import VMTypeCatalog
from repro.core.problem import Allocation
from repro.mapreduce.hdfs import Block, HDFSModel
from repro.mapreduce.network import DistanceBand
from repro.mapreduce.scheduler import (
    DelayScheduler,
    FifoScheduler,
    LocalityAwareScheduler,
    RandomScheduler,
    place_reducers,
)
from repro.mapreduce.tasks import MapTaskRecord
from repro.mapreduce.vmcluster import VirtualCluster
from repro.util.errors import ValidationError

from tests.conftest import make_pool


@pytest.fixture
def cluster():
    """4 medium VMs on 4 nodes over 2 racks."""
    pool = make_pool(2, 2, capacity=(2, 2, 1))
    catalog = VMTypeCatalog.ec2_default()
    m = np.zeros((4, 3), dtype=np.int64)
    m[:, 1] = 1
    alloc = Allocation.from_matrix(m, pool.distance_matrix)
    return VirtualCluster.from_allocation(alloc, pool.distance_matrix, catalog)


@pytest.fixture
def hdfs(cluster):
    """Three blocks with hand-placed replicas (no randomness)."""
    blocks = [
        Block(block_id=0, size_bytes=10, replicas=(0,)),
        Block(block_id=1, size_bytes=10, replicas=(1,)),
        Block(block_id=2, size_bytes=10, replicas=(3,)),
    ]
    return HDFSModel(cluster, blocks)


def pending_tasks(n=3):
    return [MapTaskRecord(task_id=i, block_id=i, input_bytes=10) for i in range(n)]


class TestLocalityAware:
    def test_prefers_node_local(self, hdfs):
        sched = LocalityAwareScheduler()
        task = sched.pick(1, pending_tasks(), hdfs)
        assert task.block_id == 1

    def test_falls_back_to_rack_local(self, hdfs):
        sched = LocalityAwareScheduler()
        # VM 1 with only block 0 (replica on VM 0, same rack) pending.
        pending = [MapTaskRecord(task_id=0, block_id=0, input_bytes=10)]
        task = sched.pick(1, pending, hdfs)
        assert task.block_id == 0

    def test_ties_break_by_task_id(self, hdfs):
        sched = LocalityAwareScheduler()
        pending = [
            MapTaskRecord(task_id=5, block_id=1, input_bytes=10),
            MapTaskRecord(task_id=2, block_id=1, input_bytes=10),
        ]
        assert sched.pick(1, pending, hdfs).task_id == 2

    def test_empty_pending(self, hdfs):
        assert LocalityAwareScheduler().pick(0, [], hdfs) is None


class TestFifo:
    def test_lowest_id_regardless_of_locality(self, hdfs):
        pending = pending_tasks()
        assert FifoScheduler().pick(3, pending, hdfs).task_id == 0

    def test_empty(self, hdfs):
        assert FifoScheduler().pick(0, [], hdfs) is None


class TestRandom:
    def test_picks_from_pending(self, hdfs):
        sched = RandomScheduler(seed=1)
        pending = pending_tasks()
        assert sched.pick(0, pending, hdfs) in pending

    def test_deterministic(self, hdfs):
        a = RandomScheduler(seed=2).pick(0, pending_tasks(), hdfs)
        b = RandomScheduler(seed=2).pick(0, pending_tasks(), hdfs)
        assert a.task_id == b.task_id


class TestDelay:
    def test_local_task_taken_immediately(self, hdfs):
        sched = DelayScheduler(max_skips=3)
        task = sched.pick(0, pending_tasks(), hdfs)
        assert task.block_id == 0

    def test_nonlocal_deferred_until_skips_exhausted(self, hdfs):
        sched = DelayScheduler(max_skips=2)
        pending = [MapTaskRecord(task_id=0, block_id=2, input_bytes=10)]
        # Block 2's replica is on VM 3; VM 0 offers repeatedly.
        assert sched.pick(0, pending, hdfs) is None  # skip 1
        assert sched.pick(0, pending, hdfs) is None  # skip 2
        assert sched.pick(0, pending, hdfs) is not None  # budget exhausted

    def test_invalid_skips_rejected(self):
        with pytest.raises(ValidationError):
            DelayScheduler(max_skips=-1)


class TestPlaceReducers:
    def test_slots_policy_fills_in_order(self, cluster):
        assert place_reducers(cluster, 2, policy="slots") == [0, 1]

    def test_slots_policy_respects_capacity(self, cluster):
        # Each medium VM has 1 reduce slot; 4 reducers = all four VMs.
        assert place_reducers(cluster, 4, policy="slots") == [0, 1, 2, 3]

    def test_too_many_reducers_rejected(self, cluster):
        with pytest.raises(ValidationError):
            place_reducers(cluster, 99, policy="slots")

    def test_random_policy_deterministic(self, cluster):
        a = place_reducers(cluster, 2, policy="random", seed=5)
        b = place_reducers(cluster, 2, policy="random", seed=5)
        assert a == b

    def test_center_policy_minimizes_total_distance(self, cluster):
        placement = place_reducers(cluster, 1, policy="center")
        totals = cluster.distance.sum(axis=1)
        assert totals[placement[0]] == totals.min()

    def test_unknown_policy_rejected(self, cluster):
        with pytest.raises(ValidationError):
            place_reducers(cluster, 1, policy="magnetic")

"""Tests for locality reports and job-result metrics."""

import numpy as np
import pytest

from repro.cluster.vmtypes import VMTypeCatalog
from repro.core.problem import Allocation
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.job import MB, MapReduceJob
from repro.mapreduce.metrics import JobResult, LocalityReport
from repro.mapreduce.network import DistanceBand
from repro.mapreduce.vmcluster import VirtualCluster

from tests.conftest import make_pool


def run_job(seed=1):
    pool = make_pool(2, 2, capacity=(4, 4, 2))
    catalog = VMTypeCatalog.ec2_default()
    m = np.zeros((4, 3), dtype=np.int64)
    m[0, 1] = 2
    m[2, 1] = 2
    alloc = Allocation.from_matrix(m, pool.distance_matrix)
    cluster = VirtualCluster.from_allocation(alloc, pool.distance_matrix, catalog)
    job = MapReduceJob(
        name="t", input_bytes=16 * MB, block_size=2 * MB, map_selectivity=1.0
    )
    return MapReduceEngine(cluster, seed=seed).run(job, hdfs_seed=seed)


class TestLocalityReport:
    def test_counts_partition_maps(self):
        result = run_job()
        loc = result.locality()
        assert (
            loc.data_local_maps + loc.rack_local_maps + loc.remote_maps
            == loc.total_maps
        )

    def test_counts_partition_flows(self):
        loc = run_job().locality()
        assert (
            loc.node_local_flows + loc.rack_local_flows + loc.remote_flows
            == loc.total_flows
        )

    def test_non_data_local_complement(self):
        loc = run_job().locality()
        assert loc.non_data_local_maps == loc.total_maps - loc.data_local_maps

    def test_fractions_in_unit_interval(self):
        loc = run_job().locality()
        assert 0.0 <= loc.data_local_fraction <= 1.0
        assert 0.0 <= loc.local_shuffle_fraction <= 1.0

    def test_empty_report_fractions(self):
        loc = LocalityReport(
            total_maps=0,
            data_local_maps=0,
            rack_local_maps=0,
            remote_maps=0,
            total_flows=0,
            node_local_flows=0,
            rack_local_flows=0,
            remote_flows=0,
        )
        assert loc.data_local_fraction == 0.0
        assert loc.local_shuffle_fraction == 0.0


class TestJobResult:
    def test_bytes_by_band_sums_to_shuffle(self):
        result = run_job()
        per_band = result.bytes_by_band()
        assert sum(per_band.values()) == pytest.approx(result.total_shuffle_bytes)

    def test_bands_cover_all_levels(self):
        per_band = run_job().bytes_by_band()
        assert set(per_band) == set(DistanceBand)

    def test_map_phase_finish_le_runtime(self):
        result = run_job()
        assert result.map_phase_finish <= result.runtime

    def test_cluster_affinity_propagated(self):
        result = run_job()
        assert result.cluster_affinity > 0

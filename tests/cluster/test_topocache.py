"""Tests for the topology-derived sorted-order cache (TopologyCache)."""

import numpy as np
import pytest

from repro.cluster import (
    DynamicResourcePool,
    PoolSpec,
    ResourcePool,
    TopologyCache,
    VMTypeCatalog,
    EC2_SMALL,
    EC2_MEDIUM,
    EC2_LARGE,
    random_pool,
    random_topology,
)
from repro.cluster.distance import DistanceModel
from repro.service.state import ClusterState

CATALOG = VMTypeCatalog([EC2_SMALL, EC2_MEDIUM, EC2_LARGE])
SPEC = PoolSpec(racks=3, nodes_per_rack=5, clouds=2)


@pytest.fixture
def pool():
    return random_pool(SPEC, CATALOG, seed=7)


class TestBuild:
    def test_center_orders_sorted_by_distance_then_index(self, pool):
        cache = pool.topology_cache
        dist = pool.distance_matrix
        n = pool.num_nodes
        for c in range(n):
            order = cache.center_orders[c]
            assert sorted(order.tolist()) == list(range(n))
            keys = [(dist[i, c], i) for i in order]
            assert keys == sorted(keys)

    def test_d_sorted_matches_orders(self, pool):
        cache = pool.topology_cache
        dist = pool.distance_matrix
        for c in range(pool.num_nodes):
            np.testing.assert_array_equal(
                cache.d_sorted[c], dist[cache.center_orders[c], c]
            )
            assert np.all(np.diff(cache.d_sorted[c]) >= 0)

    def test_tier_ranks_are_monotone_transform_of_distance(self, pool):
        cache = pool.topology_cache
        dist = pool.distance_matrix
        for c in range(pool.num_nodes):
            d = dist[:, c]
            r = cache.tier_ranks[c]
            # equal distances share a rank; larger distance → larger rank
            for i in range(pool.num_nodes):
                for j in range(pool.num_nodes):
                    if d[i] < d[j]:
                        assert r[i] < r[j]
                    elif d[i] == d[j]:
                        assert r[i] == r[j]

    def test_tier_starts_bound_tiers(self, pool):
        cache = pool.topology_cache
        for c in range(pool.num_nodes):
            starts = cache.tier_starts[c]
            assert starts[0] == 0
            ds = cache.d_sorted[c]
            boundaries = [0] + [
                k for k in range(1, len(ds)) if ds[k] != ds[k - 1]
            ]
            assert starts.tolist() == boundaries
            # first tier is the center itself at distance zero
            assert cache.center_orders[c][0] == c
            assert ds[0] == 0.0

    def test_arrays_read_only(self, pool):
        cache = pool.topology_cache
        for arr in (cache.center_orders, cache.d_sorted, cache.tier_ranks):
            assert not arr.flags.writeable

    def test_matches(self, pool):
        cache = pool.topology_cache
        assert cache.matches(pool.topology, pool.distance_model)
        other = random_topology(SPEC, CATALOG, seed=8)
        assert not cache.matches(other, pool.distance_model)
        assert not cache.matches(
            pool.topology, DistanceModel(intra_rack=0.5, inter_rack=2.0, inter_cloud=9.0)
        )

    def test_standalone_build_equals_pool_distance(self, pool):
        cache = TopologyCache.build(pool.topology, pool.distance_model)
        np.testing.assert_array_equal(cache.distance, pool.distance_matrix)
        assert repr(cache).startswith("TopologyCache(")


class TestSharing:
    def test_copy_shares_cache_and_distance(self, pool):
        cache = pool.topology_cache
        clone = pool.copy()
        assert clone.topology_cache is cache
        assert clone.distance_matrix is pool.distance_matrix

    def test_property_is_idempotent(self, pool):
        assert pool.topology_cache is pool.topology_cache

    def test_mismatched_cache_is_ignored(self, pool):
        foreign = TopologyCache.build(
            random_topology(SPEC, CATALOG, seed=9), pool.distance_model
        )
        rebuilt = ResourcePool(
            pool.topology, pool.catalog, distance_model=pool.distance_model,
            cache=foreign,
        )
        assert rebuilt.topology_cache is not foreign
        np.testing.assert_array_equal(
            rebuilt.distance_matrix, pool.distance_matrix
        )

    def test_cluster_state_inherits_cache(self, pool):
        cache = pool.topology_cache
        state = ClusterState.from_pool(pool)
        assert state.topology_cache is cache
        assert state.copy().topology_cache is cache


class TestDynamicInvalidation:
    def test_failed_node_invalidates(self):
        topo = random_topology(SPEC, CATALOG, seed=11)
        pool = DynamicResourcePool(topo, CATALOG)
        assert pool.topology_cache is not None
        pool.fail_node(3)
        assert pool.topology_cache is None

    def test_recovery_restores_cache(self):
        topo = random_topology(SPEC, CATALOG, seed=12)
        pool = DynamicResourcePool(topo, CATALOG)
        cache = pool.topology_cache
        pool.fail_node(0)
        assert pool.topology_cache is None
        pool.recover_node(0)
        assert pool.topology_cache is cache

    def test_dynamic_copy_carries_cache(self):
        topo = random_topology(SPEC, CATALOG, seed=13)
        pool = DynamicResourcePool(topo, CATALOG)
        cache = pool.topology_cache
        assert pool.copy().topology_cache is cache

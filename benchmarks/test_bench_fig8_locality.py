"""Fig. 8: data and shuffle locality under the four topologies.

Regenerates the non-data-local map counts and non-local shuffle counts that
explain Fig. 7's inversion: the distance-16 run happened to place work more
locally than the distance-14 run."""

from repro.analysis import format_table
from repro.experiments.mapreduce_experiments import run_fig78

from benchmarks.conftest import emit


def test_fig8_locality(benchmark):
    result = benchmark.pedantic(run_fig78, rounds=1, iterations=1)
    rows = [
        [
            run.distance,
            run.locality.non_data_local_maps,
            run.locality.total_maps,
            run.locality.non_local_flows,
            run.locality.total_flows,
            f"{run.locality.local_shuffle_fraction:.0%}",
        ]
        for run in result.runs
    ]
    emit(
        "Fig. 8 — locality vs. cluster distance",
        format_table(
            [
                "cluster distance",
                "non-data-local maps",
                "maps",
                "non-local shuffles",
                "flows",
                "local shuffle",
            ],
            rows,
        ),
    )
    by_distance = {run.distance: run.locality for run in result.runs}
    # The paper's explanation of the inversion: locality was better at d=16.
    assert by_distance[14].non_local_flows > by_distance[16].non_local_flows
    assert by_distance[14].non_data_local_maps >= by_distance[16].non_data_local_maps

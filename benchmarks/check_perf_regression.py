"""Perf-regression gate for the vectorized placement kernels.

Measures live per-placement latency of ``OnlineHeuristic(stop="best")``
with kernels enabled at the 90-node reference size (the same pool, request,
and seed the scalability bench records) and compares it against the
committed post-kernel numbers in ``benchmarks/results/scalability_bench.json``
— **both** the mean and the p99. A hot path can regress in the tail alone
(a stray allocation, a cache that misses every Nth call) while the mean
still squeaks under a mean-only gate, so both must hold. Exits non-zero
when the live mean exceeds ``--factor`` (default 2x) times the committed
mean, or the live p99 exceeds ``--p99-factor`` (default 3x — tails are
noisier on shared CI runners) times the committed p99.

Run from the repo root::

    PYTHONPATH=src:. python benchmarks/check_perf_regression.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.cluster import PoolSpec, random_pool
from repro.core.placement.greedy import OnlineHeuristic
from repro.experiments import paperconfig as cfg

RESULTS_PATH = Path(__file__).parent / "results" / "scalability_bench.json"
GATE_NODES = 90
REQUEST = np.array([8, 8, 4])


def measure_live(repeats: int) -> "tuple[float, float]":
    """(mean, p99) per-placement latency (ms) at the gate size."""
    pool = random_pool(
        PoolSpec(racks=3, nodes_per_rack=30, capacity_high=2),
        cfg.CATALOG,
        seed=5,
        distance_model=cfg.DISTANCES,
    )
    heuristic = OnlineHeuristic(stop="best", use_kernels=True)
    heuristic.place(pool, REQUEST)  # warm-up (builds the topology cache)
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        heuristic.place(pool, REQUEST)
        samples.append(time.perf_counter() - start)
    return (
        float(np.mean(samples)) * 1000,
        float(np.percentile(samples, 99)) * 1000,
    )


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="fail when live mean exceeds committed x this (default 2.0)",
    )
    parser.add_argument(
        "--p99-factor",
        type=float,
        default=3.0,
        help="fail when live p99 exceeds committed x this (default 3.0)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=50,
        help="placements timed for the live measurement (default 50; the "
        "tail estimate needs more samples than a mean does)",
    )
    args = parser.parse_args(argv)

    committed = json.loads(RESULTS_PATH.read_text())
    by_nodes = {rec["nodes"]: rec for rec in committed["heuristic"]}
    if GATE_NODES not in by_nodes:
        print(
            f"error: no {GATE_NODES}-node record in {RESULTS_PATH}; "
            "re-run the full scalability bench",
            file=sys.stderr,
        )
        return 2
    baseline = by_nodes[GATE_NODES]
    if "kernel_p99_ms" not in baseline:
        print(
            f"error: no kernel_p99_ms in the {GATE_NODES}-node record of "
            f"{RESULTS_PATH}; re-run the full scalability bench",
            file=sys.stderr,
        )
        return 2
    live_mean, live_p99 = measure_live(args.repeats)
    failures = []
    for name, live, committed_ms, factor in (
        ("mean", live_mean, baseline["kernel_ms"], args.factor),
        ("p99", live_p99, baseline["kernel_p99_ms"], args.p99_factor),
    ):
        limit = committed_ms * factor
        ok = live <= limit
        if not ok:
            failures.append(name)
        print(
            f"{'OK' if ok else 'REGRESSION'} [{name}]: live {live:.3f} ms vs "
            f"committed {committed_ms:.3f} ms at {GATE_NODES} nodes "
            f"(limit {limit:.3f} ms = {factor:g}x)"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

"""Paper experiments: one module per figure plus ablations.

Every experiment takes explicit seeds (defaulting to
:data:`~repro.experiments.paperconfig.MASTER_SEED`) and returns a result
dataclass exposing the same series the paper's figure plots; the benchmark
suite prints them.
"""

from repro.experiments import paperconfig
from repro.experiments.example_fig1 import run as run_fig1
from repro.experiments.center_experiments import (
    CenterStudyResult,
    Fig4Result,
    run_center_study,
    run_fig4,
)
from repro.experiments.global_experiments import (
    GlobalComparisonResult,
    OptimalityGapResult,
    run_comparison,
    run_fig5,
    run_fig6,
    run_gsd_gap,
)
from repro.experiments.mapreduce_experiments import (
    CLUSTER_LAYOUTS,
    Fig78Result,
    TopologyRun,
    build_cluster,
    build_experiment_pool,
    experiment_job,
    experiment_network,
    run_fig78,
)
from repro.experiments.runner import PaperReport, render_markdown, run_all
from repro.experiments.sensitivity import (
    LoadPoint,
    OversubscriptionPoint,
    RatioPoint,
    sweep_distance_ratio,
    sweep_oversubscription,
    sweep_pool_load,
)
from repro.experiments.fault_recovery import (
    LeaseFaultCollector,
    PlacementRun,
    SpreadStudyResult,
    run_spread_study,
    vm_deaths_from_failures,
)
from repro.experiments.reliability import (
    ParetoPoint,
    PlacedLease,
    ReliabilityParetoResult,
    measured_availability,
    run_reliability_pareto,
)
from repro.experiments.ablations import (
    HeuristicGapResult,
    PolicyRow,
    SchedulerRow,
    TransferAblationResult,
    run_heuristic_gap,
    run_policy_comparison,
    run_scheduler_ablation,
    run_transfer_ablation,
)

__all__ = [
    "paperconfig",
    "PaperReport",
    "render_markdown",
    "run_all",
    "LoadPoint",
    "OversubscriptionPoint",
    "RatioPoint",
    "sweep_distance_ratio",
    "sweep_oversubscription",
    "sweep_pool_load",
    "run_fig1",
    "CenterStudyResult",
    "Fig4Result",
    "run_center_study",
    "run_fig4",
    "GlobalComparisonResult",
    "OptimalityGapResult",
    "run_comparison",
    "run_fig5",
    "run_fig6",
    "run_gsd_gap",
    "CLUSTER_LAYOUTS",
    "Fig78Result",
    "TopologyRun",
    "build_cluster",
    "build_experiment_pool",
    "experiment_job",
    "experiment_network",
    "run_fig78",
    "LeaseFaultCollector",
    "PlacementRun",
    "SpreadStudyResult",
    "run_spread_study",
    "vm_deaths_from_failures",
    "ParetoPoint",
    "PlacedLease",
    "ReliabilityParetoResult",
    "measured_availability",
    "run_reliability_pareto",
    "HeuristicGapResult",
    "PolicyRow",
    "SchedulerRow",
    "TransferAblationResult",
    "run_heuristic_gap",
    "run_policy_comparison",
    "run_scheduler_ablation",
    "run_transfer_ablation",
]

"""Fig. 7: WordCount runtime under the four virtual-cluster topologies.

Regenerates the paper's runtime-vs-distance bars: the shortest-distance
cluster is fastest, the longest is slowest, and the distance-14 cluster runs
slower than the distance-16 one (the inversion the paper attributes to the
running environment's task placement)."""

from repro.analysis import format_table
from repro.experiments.mapreduce_experiments import run_fig78

from benchmarks.conftest import emit


def test_fig7_wordcount_runtime(benchmark):
    result = benchmark.pedantic(run_fig78, rounds=1, iterations=1)
    rows = [
        [run.distance, run.runtime, run.result.map_phase_finish, run.result.shuffle_finish]
        for run in result.runs
    ]
    emit(
        "Fig. 7 — WordCount runtime vs. cluster distance (32 maps, 1 reduce)",
        format_table(
            ["cluster distance", "runtime (s)", "maps done (s)", "shuffle done (s)"],
            rows,
        ),
    )
    by_distance = dict(zip(result.distances, result.runtimes))
    assert by_distance[8] == min(result.runtimes)  # compact wins
    assert by_distance[22] >= by_distance[16]  # long distance pays
    assert by_distance[14] > by_distance[16]  # the paper's inversion

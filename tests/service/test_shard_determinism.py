"""Determinism: one trace, two runs, byte-identical fabric checkpoints.

The fabric (and the underlying :mod:`repro.service.server`) must be a pure
function of the operation sequence: same seed, same trace, same interleaved
releases and rebalance sweeps → the serialized checkpoint is identical to
the byte. This pins down the classic nondeterminism sources — dict iteration
order feeding the batch optimizer, unsorted ledgers in serialization, and
scheduler-thread timing leaking into placement order."""

import numpy as np

from repro.cluster import PoolSpec, VMTypeCatalog, random_pool
from repro.obs import MetricsRegistry
from repro.service import (
    ClusterState,
    PlaceRequest,
    PlacementService,
    ReleaseRequest,
    ServiceConfig,
    checkpoint_bytes,
)
from repro.service.shard import (
    CapacityBalancedPlan,
    FabricConfig,
    RackGroupPlan,
    ShardedPlacementFabric,
)

CATALOG = VMTypeCatalog.ec2_default()


def make_trace(seed, count=60, num_types=3):
    """(op, payload) sequence: submits with interleaved releases."""
    rng = np.random.default_rng(seed)
    trace = []
    live = []
    for rid in range(count):
        demand = [int(x) for x in rng.integers(0, 3, size=num_types)]
        if sum(demand) == 0:
            demand[rng.integers(0, num_types)] = 1
        trace.append(("place", rid, demand))
        live.append(rid)
        if live and rng.random() < 0.3:
            victim = live.pop(int(rng.integers(0, len(live))))
            trace.append(("release", victim, None))
        if rid and rid % 15 == 0:
            trace.append(("rebalance", None, None))
    return trace


def run_fabric_trace(seed, *, plan, service_config):
    pool = random_pool(
        PoolSpec(racks=6, nodes_per_rack=4, clouds=2, capacity_low=1, capacity_high=3),
        CATALOG,
        seed=seed,
    )
    fabric = ShardedPlacementFabric(
        pool,
        plan=plan,
        config=FabricConfig(service=service_config),
        obs=MetricsRegistry(),
    )
    for op, rid, demand in make_trace(seed, num_types=pool.num_types):
        if op == "place":
            fabric.submit(PlaceRequest(request_id=rid, demand=demand))
            for _ in range(8):
                if not fabric.step_all(now=0.0) and not fabric.queued:
                    break
        elif op == "release":
            fabric.release(ReleaseRequest(request_id=rid))
        elif op == "rebalance":
            fabric.rebalance()
    fabric.rebalance()
    fabric.verify_consistency()
    return fabric.checkpoint_bytes()


class TestFabricDeterminism:
    def test_driven_trace_is_byte_identical(self):
        kwargs = dict(
            plan=RackGroupPlan(3),
            service_config=ServiceConfig(batch_window=0.0),
        )
        assert run_fabric_trace(101, **kwargs) == run_fabric_trace(101, **kwargs)

    def test_batched_transfers_are_deterministic(self):
        kwargs = dict(
            plan=CapacityBalancedPlan(3),
            service_config=ServiceConfig(
                batch_window=0.0, max_batch=8, enable_transfers=True
            ),
        )
        assert run_fabric_trace(202, **kwargs) == run_fabric_trace(202, **kwargs)

    def test_different_seeds_differ(self):
        kwargs = dict(
            plan=RackGroupPlan(3),
            service_config=ServiceConfig(batch_window=0.0),
        )
        assert run_fabric_trace(101, **kwargs) != run_fabric_trace(303, **kwargs)

    def test_threaded_sequential_clients_match_driven(self):
        """Scheduler-thread timing must not leak into committed state.

        Each request is awaited before the next is submitted, so the
        logical operation order is fixed; the background-thread run must
        land on the same bytes as a hand-driven run of the same order.
        """

        def run(threaded: bool) -> str:
            pool = random_pool(
                PoolSpec(
                    racks=4, nodes_per_rack=4, capacity_low=1, capacity_high=3
                ),
                CATALOG,
                seed=7,
            )
            fabric = ShardedPlacementFabric(
                pool,
                plan=RackGroupPlan(2),
                config=FabricConfig(
                    service=ServiceConfig(batch_window=0.0, max_batch=1)
                ),
                obs=MetricsRegistry(),
            )
            if threaded:
                fabric.start()
            rng = np.random.default_rng(17)
            for rid in range(30):
                demand = [int(x) for x in rng.integers(0, 3, size=pool.num_types)]
                if sum(demand) == 0:
                    demand[0] = 1
                ticket = fabric.submit(PlaceRequest(request_id=rid, demand=demand))
                if threaded:
                    ticket.result(timeout=10.0)
                else:
                    for _ in range(8):
                        if ticket.done:
                            break
                        fabric.step_all(now=0.0)
                if rid % 3 == 0 and ticket.done and ticket.decision.placed:
                    fabric.release(ReleaseRequest(request_id=rid))
            if threaded:
                fabric.drain(timeout=10.0)
            fabric.verify_consistency()
            return fabric.checkpoint_bytes()

        assert run(threaded=True) == run(threaded=False)


class TestSingleServiceDeterminism:
    def test_service_checkpoint_is_trace_deterministic(self):
        def run():
            pool = random_pool(
                PoolSpec(racks=3, nodes_per_rack=5, capacity_low=1, capacity_high=3),
                CATALOG,
                seed=23,
            )
            service = PlacementService(
                ClusterState.from_pool(pool),
                config=ServiceConfig(
                    batch_window=0.0, max_batch=6, enable_transfers=True
                ),
                obs=MetricsRegistry(),
            )
            rng = np.random.default_rng(29)
            for rid in range(50):
                demand = [int(x) for x in rng.integers(0, 3, size=pool.num_types)]
                if sum(demand) == 0:
                    demand[0] = 1
                service.submit(PlaceRequest(request_id=rid, demand=demand))
                if rid % 4 == 0:
                    service.step(now=0.0)
                if rid % 9 == 0 and service.state.has_lease(rid - 1):
                    service.release(ReleaseRequest(request_id=rid - 1))
            for _ in range(40):
                if not service.step(now=0.0) and not service.queued:
                    break
            return checkpoint_bytes(service.state)

        assert run() == run()

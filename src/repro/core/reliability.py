"""Survivability-constrained placement: the RVMP variant of the SD problem.

The paper's SD objective minimizes cluster distance but is blind to failure
domains: the optimal packing routinely concentrates a whole virtual cluster
in one rack, and a single ToR-switch or power-domain outage then kills every
VM at once. Following "Reliable Virtual Machine Placement and Routing in
Clouds" (arXiv 1701.06005), this module adds an availability-*constrained*
SD variant — minimize ``DC(C)`` subject to surviving a target number of
failure-domain outages — and the probability machinery to promise (and
later verify against injected failures) an availability number.

**Survivability semantics.** A :class:`SurvivabilityTarget` names a failure
domain granularity (``node`` or ``rack``) and a tolerance ``k``. The
constraint compiled from it is a *per-domain VM cap*::

    cap = floor(total / (k + 1))          (the "spread budget")

Any placement respecting the cap keeps a **quorum** of
``ceil(total / (k + 1))`` VMs alive under *any* simultaneous failure of up
to ``k`` domains: the ``k`` dead domains held at most ``k·cap ≤ total −
ceil(total/(k+1))`` VMs. ``k = 0`` gives ``cap ≥ total`` — no constraint,
and the placement path is bit-identical to the unconstrained algorithms.
``total ≤ k`` gives ``cap = 0`` — the target is *impossible* and the
request must be refused, never silently weakened.

**Availability targets.** ``kind="availability"`` asks for a minimum
steady-state probability that the quorum is alive, given a per-domain
MTBF/MTTR failure model (the per-domain steady-state unavailability is
``u = mttr / (mtbf + mttr)``). These targets are **verified at commit
time, never promised from a compile-time spread**: no single ``k`` can be
soundly derived up front, because quorum survival is not monotone in how
finely a cap-respecting placement spreads (``[2, 1, 1]`` survives one
tolerated loss *less* often than ``[2, 2]`` — more domains mean more ways
for partial losses to stack past the quorum). Instead
:func:`place_available` escalates ``k = 0, 1, 2, …``: it places under the
``k``-derived cap and accepts **iff** the achieved placement's *exact*
quorum-survival probability (a lost-VM-distribution DP,
:func:`survival_probability`, applied via :func:`verified_k`) meets
``min_availability``; otherwise it tightens the spread and retries,
refusing once no spread-feasible tolerance remains. A committed decision
therefore always carries a promise the placement itself satisfies. The
promise is additionally conservative at measurement time: the renewal
failure process starts all-up, so measured availability under the
:class:`~repro.cloud.failures.FailureInjector` dominates the steady
state.

**Feasibility is exact, not greedy.** Whether a demand fits under a domain
cap is a transportation problem (VM types couple through both per-node
capacity and the per-domain total), so admission runs a small max-flow
(:func:`spread_feasible`): ``source → type_j (R_j) → node_i (L_ij) →
domain_d → sink (cap)``. The flow saturates the demand iff the cap-extended
MILP has a feasible point, which makes the service's refusal rule exact:
*refuse* iff infeasible against maximum capacity, *wait* iff infeasible
against current availability only.

The exact optimizer (:func:`solve_sd_reliable`) extends the SD MILP with
the per-domain cap rows; the heuristic path lives in
:class:`~repro.core.placement.greedy.OnlineHeuristic`, which generalizes
its ``max_vms_per_rack`` budgeting to the compiled cap. Solver modules are
imported lazily inside :func:`solve_sd_reliable` so importing this module
(e.g. just to build a :class:`SurvivabilityTarget`) stays cheap.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.placement.base import (
    PlacementAlgorithm,
    check_admissible,
    normalize_request,
)
from repro.util.errors import InfeasibleRequestError, ValidationError

#: Recognized target kinds.
KINDS = ("node", "rack", "availability")

#: Domain granularities an availability target may name.
SCOPES = ("node", "rack")


# ------------------------------------------------------------ spread algebra

def spread_budget(total: int, k: int) -> int:
    """Per-domain VM cap tolerating *k* domain failures: ``⌊total/(k+1)⌋``.

    ``0`` means the target is impossible for this request size (``total ≤
    k`` — there is no way to spread ``total`` VMs so that ``k`` domain
    deaths leave a quorum).
    """
    if total < 0 or k < 0:
        raise ValidationError("total and k must be non-negative")
    return total // (k + 1)


def quorum(total: int, k: int) -> int:
    """VMs guaranteed to survive any ``≤ k`` domain failures under the cap."""
    if total < 0 or k < 0:
        raise ValidationError("total and k must be non-negative")
    return -(-total // (k + 1))


def steady_unavailability(mtbf: float, mttr: float) -> float:
    """Steady-state probability a domain is down: ``mttr / (mtbf + mttr)``."""
    if mtbf <= 0 or mttr <= 0:
        raise ValidationError("mtbf and mttr must be > 0")
    return mttr / (mtbf + mttr)


def survival_probability(
    domain_counts, u: float, max_loss: int
) -> float:
    """P(VMs lost to down domains ≤ *max_loss*), domains i.i.d. down w.p. *u*.

    *domain_counts* holds the placement's per-domain VM counts (zeros are
    ignored). Exact dynamic program over the lost-VM distribution,
    truncated at ``max_loss + 1`` (everything beyond is absorbed — it only
    ever needs to be known as "too much").
    """
    if not (0.0 <= u <= 1.0):
        raise ValidationError("u must be in [0, 1]")
    if max_loss < 0:
        return 0.0
    # dist[l] = P(exactly l VMs lost), l in 0..max_loss; mass shifted past
    # max_loss is dropped (those outcomes are non-survival either way).
    dist = np.zeros(max_loss + 1, dtype=np.float64)
    dist[0] = 1.0
    for count in domain_counts:
        v = int(count)
        if v <= 0:
            continue
        shifted = np.zeros_like(dist)
        if v <= max_loss:
            shifted[v:] = dist[: max_loss + 1 - v]
        dist = (1.0 - u) * dist + u * shifted
    return float(dist.sum())


def nominal_domain_counts(total: int, cap: int) -> list[int]:
    """The fewest-domains cap-respecting spread: each domain filled maximal.

    A *reference* shape only — it is **not** the worst cap-respecting
    spread. Counterexample: ``total=4, cap=2, u=0.05`` with two tolerated
    losses gives ``[2, 2]`` survival 0.99750 but ``[2, 1, 1]`` only
    0.99512 (the extra domains add ways for partial losses to stack past
    the quorum). Availability promises are therefore never derived from
    this shape; commit paths verify the achieved placement instead
    (:func:`verified_k`, :func:`place_available`).
    """
    if cap <= 0:
        raise ValidationError("cap must be >= 1 for a nominal spread")
    counts = [cap] * (total // cap)
    if total % cap:
        counts.append(total % cap)
    return counts


def nominal_availability(total: int, k: int, u: float) -> float:
    """Quorum-survival probability of the *nominal* spread for tolerance *k*.

    An estimate over one reference shape, not a bound over all
    cap-respecting placements (see :func:`nominal_domain_counts`) — useful
    for ranking and plotting, never for admission promises.
    """
    cap = spread_budget(total, k)
    if cap <= 0:
        return 0.0
    max_loss = total - quorum(total, k)
    return survival_probability(nominal_domain_counts(total, cap), u, max_loss)


def resolve_availability_k(
    min_availability: float, total: int, num_domains: int, u: float
) -> "int | None":
    """Smallest *k* whose *nominal* spread meets *min_availability*.

    Searches ``k = 0 .. min(total, num_domains) − 1`` (beyond that the cap
    is 0 or the spread needs more domains than exist); ``None`` when no
    tolerance reaches the target. This is an **estimate** (the nominal
    spread is not the worst cap-respecting shape), so commit paths do not
    rely on it: :func:`place_available` verifies the achieved placement
    and escalates ``k`` until the verified promise holds.
    """
    limit = min(total, num_domains)
    for k in range(limit):
        if spread_budget(total, k) * num_domains < total:
            break  # the pool has too few domains to spread this thin
        if nominal_availability(total, k, u) >= min_availability:
            return k
    return None


def max_feasible_availability(num_domains: int, total: int, u: float) -> float:
    """Upper bound on quorum survival over *every* placement and tolerance.

    Any placement uses ``d ≤ min(num_domains, total)`` domains, and all
    ``d`` of them being down kills the whole cluster (the quorum is always
    ≥ 1), so survival ≤ ``1 − u^d ≤ 1 − u^min(num_domains, total)``.
    Availability targets above this bound are refused up front — no
    amount of spreading can reach them.
    """
    if num_domains < 1 or total < 1:
        raise ValidationError("num_domains and total must be >= 1")
    if not (0.0 <= u <= 1.0):
        raise ValidationError("u must be in [0, 1]")
    return 1.0 - u ** min(num_domains, total)


def placement_domain_counts(
    matrix: np.ndarray, domain_ids: np.ndarray
) -> np.ndarray:
    """Per-domain VM counts of a placement matrix (used domains only)."""
    matrix = np.asarray(matrix, dtype=np.int64)
    domain_ids = np.asarray(domain_ids, dtype=np.int64)
    counts = np.zeros(int(domain_ids.max()) + 1, dtype=np.int64)
    np.add.at(counts, domain_ids, matrix.sum(axis=1))
    return counts[counts > 0]


def verified_k(domain_counts, total: int, target: "SurvivabilityTarget") -> "int | None":
    """Smallest tolerance *k* the achieved placement provably meets.

    A placement with per-domain counts *domain_counts* satisfies an
    availability target at tolerance ``k`` iff it respects the ``k`` cap
    structurally (``max(counts) ≤ ⌊total/(k+1)⌋``) **and** its exact
    quorum-survival probability at ``k``'s quorum meets
    ``min_availability``. Returns the smallest such ``k`` — the strongest
    sound promise (largest quorum) — or ``None`` when the placement meets
    the target at no tolerance. Survival is non-decreasing in ``k`` for
    fixed counts (the tolerated loss only grows), so the search is a
    binary chop over the structurally compatible range.
    """
    counts = [int(c) for c in domain_counts if int(c) > 0]
    if not counts:
        raise ValidationError("domain_counts must contain at least one VM")
    u = target.unavailability
    if u is None or target.min_availability is None:
        raise ValidationError("verified_k needs an availability target")
    hi = total // max(counts) - 1  # largest k whose cap fits max(counts)
    if hi < 0:
        return None

    def meets(k: int) -> bool:
        max_loss = total - quorum(total, k)
        return (
            survival_probability(counts, u, max_loss)
            >= target.min_availability
        )

    if not meets(hi):
        return None
    lo = 0
    while lo < hi:
        mid = (lo + hi) // 2
        if meets(mid):
            hi = mid
        else:
            lo = mid + 1
    return lo


# ------------------------------------------------------------------- target

@dataclass(frozen=True)
class SurvivabilityTarget:
    """A per-request reliability requirement attached to placement.

    Three kinds:

    * ``kind="node"`` — survive any ``k`` simultaneous *node* failures.
    * ``kind="rack"`` — survive any ``k`` simultaneous *rack* failures
      (the generalization of ``OnlineHeuristic(max_vms_per_rack=...)``).
    * ``kind="availability"`` — keep the quorum alive with probability at
      least ``min_availability`` under a per-domain MTBF/MTTR model;
      enforced at commit time by :func:`place_available`, which escalates
      the spread cap until the *achieved* placement's exact survival meets
      the promise (no compile-time ``k`` is sound — see the module
      docstring). ``scope`` names the domain granularity.

    ``mtbf``/``mttr`` are required for availability targets and optional
    for ``k``-kinds, where they let decisions report a promised
    availability alongside the structural guarantee.
    """

    kind: str
    k: int = 0
    min_availability: "float | None" = None
    scope: str = "rack"
    mtbf: "float | None" = None
    mttr: "float | None" = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValidationError(
                f"survivability kind must be one of {KINDS}, got {self.kind!r}"
            )
        if self.scope not in SCOPES:
            raise ValidationError(
                f"survivability scope must be one of {SCOPES}, got {self.scope!r}"
            )
        if (self.mtbf is None) != (self.mttr is None):
            raise ValidationError("mtbf and mttr must be given together")
        if self.mtbf is not None and (self.mtbf <= 0 or self.mttr <= 0):
            raise ValidationError("mtbf and mttr must be > 0")
        if self.kind == "availability":
            if self.min_availability is None:
                raise ValidationError(
                    "availability targets require min_availability"
                )
            if not (0.0 < self.min_availability < 1.0):
                raise ValidationError("min_availability must be in (0, 1)")
            if self.mtbf is None:
                raise ValidationError(
                    "availability targets require mtbf and mttr"
                )
            if self.k != 0:
                raise ValidationError(
                    "availability targets derive k; do not set it"
                )
        else:
            if self.min_availability is not None:
                raise ValidationError(
                    f"min_availability is only valid for availability "
                    f"targets, not kind={self.kind!r}"
                )
            if self.k < 0:
                raise ValidationError("k must be >= 0")
            # For k-kinds the scope IS the kind; normalize so domain_scope
            # and serialization never disagree.
            object.__setattr__(self, "scope", self.kind)

    # ------------------------------------------------------------ properties

    @property
    def domain_scope(self) -> str:
        """Failure-domain granularity: ``"node"`` or ``"rack"``."""
        return self.scope

    @property
    def unavailability(self) -> "float | None":
        """Per-domain steady-state down probability, if a model was given."""
        if self.mtbf is None:
            return None
        return steady_unavailability(self.mtbf, self.mttr)

    def is_trivial(self, total: int, num_domains: int) -> bool:
        """Whether the compiled constraint is vacuous (cap ≥ total).

        Trivial targets take the unconstrained placement path, which keeps
        ``k = 0`` requests bit-identical to target-free ones.
        """
        return self.spread_budget(total, num_domains) >= total

    # ------------------------------------------------------------ compilation

    def resolve_k(self, total: int, num_domains: int) -> int:
        """The effective tolerance ``k`` for a *total*-VM request.

        Only defined for the structural ``k``-kinds. Availability targets
        have no placement-independent tolerance — quorum survival is not
        monotone in how finely a cap-respecting placement spreads, so any
        compile-time ``k`` could promise an availability the committed
        placement then violates. Their ``k`` is fixed by the verified
        commit path instead (:func:`place_available` /
        :func:`verified_k`).
        """
        if total < 1:
            raise ValidationError("total must be >= 1")
        if self.kind == "availability":
            raise ValidationError(
                "availability targets have no compile-time k; commit paths "
                "derive it by verifying the achieved placement "
                "(place_available / verified_k)"
            )
        return self.k

    def spread_budget(self, total: int, num_domains: int) -> int:
        """The compiled per-domain VM cap for a *total*-VM request."""
        return spread_budget(total, self.resolve_k(total, num_domains))

    # ---------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        """Canonical JSON-ready form (stable key order, no ``None`` keys)."""
        doc: dict = {"kind": self.kind}
        if self.kind == "availability":
            doc["min_availability"] = float(self.min_availability)
            doc["scope"] = self.scope
        else:
            doc["k"] = int(self.k)
        if self.mtbf is not None:
            doc["mtbf"] = float(self.mtbf)
            doc["mttr"] = float(self.mttr)
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "SurvivabilityTarget":
        """Inverse of :meth:`to_dict` (strict: unknown keys are rejected)."""
        if not isinstance(doc, dict):
            raise ValidationError(
                f"survivability must be an object, got {type(doc).__name__}"
            )
        known = {"kind", "k", "min_availability", "scope", "mtbf", "mttr"}
        unknown = set(doc) - known
        if unknown:
            raise ValidationError(
                f"unknown survivability fields: {sorted(unknown)}"
            )
        return cls(
            kind=doc.get("kind", ""),
            k=int(doc.get("k", 0)),
            min_availability=doc.get("min_availability"),
            scope=doc.get("scope", "rack"),
            mtbf=doc.get("mtbf"),
            mttr=doc.get("mttr"),
        )


def domain_ids_for(scope: str, pool) -> np.ndarray:
    """Node → failure-domain map for *scope* over *pool*'s topology."""
    if scope == "node":
        return np.arange(pool.num_nodes, dtype=np.int64)
    if scope == "rack":
        return np.asarray(pool.topology.rack_ids, dtype=np.int64)
    raise ValidationError(f"unknown domain scope {scope!r}")


# ------------------------------------------------------- max-flow feasibility

class _Dinic:
    """Minimal Dinic max-flow on an adjacency-list residual graph."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.head: list[list[int]] = [[] for _ in range(n)]
        self.to: list[int] = []
        self.cap: list[int] = []

    def add_edge(self, u: int, v: int, cap: int) -> None:
        self.head[u].append(len(self.to))
        self.to.append(v)
        self.cap.append(cap)
        self.head[v].append(len(self.to))
        self.to.append(u)
        self.cap.append(0)

    def max_flow(self, source: int, sink: int, need: "int | None" = None) -> int:
        flow = 0
        while True:
            level = [-1] * self.n
            level[source] = 0
            queue = deque([source])
            while queue:
                u = queue.popleft()
                for e in self.head[u]:
                    v = self.to[e]
                    if self.cap[e] > 0 and level[v] < 0:
                        level[v] = level[u] + 1
                        queue.append(v)
            if level[sink] < 0:
                return flow
            it = [0] * self.n

            def dfs(u: int, pushed: int) -> int:
                if u == sink:
                    return pushed
                while it[u] < len(self.head[u]):
                    e = self.head[u][it[u]]
                    v = self.to[e]
                    if self.cap[e] > 0 and level[v] == level[u] + 1:
                        got = dfs(v, min(pushed, self.cap[e]))
                        if got > 0:
                            self.cap[e] -= got
                            self.cap[e ^ 1] += got
                            return got
                    it[u] += 1
                return 0

            while True:
                pushed = dfs(source, 1 << 60)
                if pushed == 0:
                    break
                flow += pushed
                if need is not None and flow >= need:
                    return flow


def max_spread_placement(
    demand: np.ndarray,
    capacity: np.ndarray,
    domain_ids: np.ndarray,
    cap: int,
) -> int:
    """Most request VMs placeable under the per-domain cap (exact, max-flow).

    Network: ``source → type_j (R_j) → node_i (L_ij) → domain_d → sink
    (cap)``. Integral capacities make the max flow an achievable integral
    placement, so ``== demand.sum()`` is *exactly* MILP feasibility of the
    cap-extended SD program.
    """
    demand = np.asarray(demand, dtype=np.int64)
    capacity = np.asarray(capacity, dtype=np.int64)
    domain_ids = np.asarray(domain_ids, dtype=np.int64)
    n, m = capacity.shape
    if demand.shape != (m,):
        raise ValidationError(f"demand must have {m} entries")
    if domain_ids.shape != (n,):
        raise ValidationError(f"domain_ids must have one entry per node ({n})")
    if cap < 0:
        raise ValidationError("cap must be >= 0")
    need = int(demand.sum())
    if cap == 0:
        return 0
    domains = np.unique(domain_ids)
    dindex = {int(d): p for p, d in enumerate(domains)}
    # node ids: 0 = source, 1..m = types, m+1..m+n = nodes, then domains, sink.
    source = 0
    type0 = 1
    node0 = type0 + m
    dom0 = node0 + n
    sink = dom0 + len(domains)
    graph = _Dinic(sink + 1)
    for j in range(m):
        if demand[j] > 0:
            graph.add_edge(source, type0 + j, int(demand[j]))
    # Per-node ceiling: a node can contribute at most min(its total supply
    # over demanded types, the domain cap) — fold the cap into the node →
    # domain arc so the type arcs stay simple.
    for i in range(n):
        node_total = 0
        for j in range(m):
            take = int(min(capacity[i, j], demand[j]))
            if take > 0:
                graph.add_edge(type0 + j, node0 + i, take)
                node_total += take
        if node_total > 0:
            graph.add_edge(
                node0 + i, dom0 + dindex[int(domain_ids[i])],
                min(node_total, cap),
            )
    for p in range(len(domains)):
        graph.add_edge(dom0 + p, sink, cap)
    return graph.max_flow(source, sink, need=need)


def spread_feasible(
    demand: np.ndarray,
    capacity: np.ndarray,
    domain_ids: np.ndarray,
    cap: int,
) -> bool:
    """Whether *demand* fits in *capacity* under the per-domain *cap*."""
    demand = np.asarray(demand, dtype=np.int64)
    need = int(demand.sum())
    # Cheap necessary screens before the flow: aggregate supply per type
    # and total domain headroom.
    if np.any(capacity.sum(axis=0) < demand):
        return False
    num_domains = int(np.unique(np.asarray(domain_ids)).shape[0])
    if cap * num_domains < need:
        return False
    return max_spread_placement(demand, capacity, domain_ids, cap) >= need


# --------------------------------------------------------- admission helpers

def compile_target(
    demand: np.ndarray, pool, target: SurvivabilityTarget
) -> "tuple[np.ndarray, int, int] | None":
    """Compile a ``k``-kind *target* to ``(domain_ids, cap, k)``.

    Returns ``None`` when the constraint is vacuous (``cap ≥ total``) —
    callers then take the unconstrained path, which is what keeps ``k=0``
    placements bit-identical to target-free ones. Raises
    :class:`InfeasibleRequestError` when the target is impossible for the
    request size (cap 0). Availability targets are rejected: they have no
    sound compile-time cap and go through :func:`place_available`.
    """
    demand = np.asarray(demand, dtype=np.int64)
    total = int(demand.sum())
    domain_ids = domain_ids_for(target.domain_scope, pool)
    num_domains = int(np.unique(domain_ids).shape[0])
    k = target.resolve_k(total, num_domains)
    cap = spread_budget(total, k)
    if cap >= total:
        return None
    if cap <= 0:
        raise InfeasibleRequestError(
            f"survivability target {target.to_dict()} is impossible for a "
            f"{total}-VM request (spread budget 0)"
        )
    return domain_ids, cap, k


def check_spread_admissible(
    demand: np.ndarray, pool, domain_ids: np.ndarray, cap: int
) -> bool:
    """The two admission rules, extended with the domain cap.

    Raises :class:`InfeasibleRequestError` when the demand cannot fit under
    the cap even in an *empty* pool (refuse); returns ``False`` when it
    fits at maximum capacity but not in the current free capacity (wait).
    Mirrors :func:`repro.core.placement.base.check_admissible`.
    """
    if not spread_feasible(demand, pool.max_capacity, domain_ids, cap):
        raise InfeasibleRequestError(
            f"request {np.asarray(demand).tolist()} cannot satisfy its "
            f"survivability spread (cap {cap}/domain) within maximum pool "
            "capacity"
        )
    return spread_feasible(demand, pool.remaining, domain_ids, cap)


def refusal_reason(
    demand: np.ndarray, pool, target: "SurvivabilityTarget | None"
) -> "str | None":
    """Why *demand* + *target* can never be served by *pool*, or ``None``.

    Exception-free admission screen for routing and service submit paths:
    checks plain maximum capacity first, then the compiled spread
    constraint against maximum capacity (``k``-kinds) or the
    every-placement availability ceiling
    (:func:`max_feasible_availability`, availability kind — whether a
    *specific* tolerance works is only decidable at commit time, so this
    screen refuses exactly the targets no placement can ever reach).
    """
    demand = np.asarray(demand, dtype=np.int64)
    if pool.exceeds_max_capacity(demand):
        return "demand exceeds maximum pool capacity"
    if target is None:
        return None
    total = int(demand.sum())
    domain_ids = domain_ids_for(target.domain_scope, pool)
    num_domains = int(np.unique(domain_ids).shape[0])
    if target.kind == "availability":
        bound = max_feasible_availability(
            num_domains, total, target.unavailability
        )
        if target.min_availability > bound:
            return (
                f"availability {target.min_availability} exceeds the "
                f"best any spread over {num_domains} {target.domain_scope} "
                f"domains can reach ({bound:.6g})"
            )
        return None
    try:
        compiled = compile_target(demand, pool, target)
        if compiled is None:
            return None
        domain_ids, cap, _k = compiled
        if not spread_feasible(demand, pool.max_capacity, domain_ids, cap):
            return (
                f"survivability spread (cap {cap}/{target.domain_scope}) "
                "cannot fit within maximum pool capacity"
            )
    except InfeasibleRequestError as exc:
        return str(exc)
    return None


def can_satisfy_target(
    demand: np.ndarray, pool, target: "SurvivabilityTarget | None"
) -> bool:
    """Whether *pool*'s *current* free capacity admits demand + target.

    ``False`` means wait (or, for a router, rank the shard as waitable);
    callers must have screened refusal separately via
    :func:`refusal_reason`. For availability targets the committed
    tolerance is placement-dependent, so this screens plain capacity only
    — a ranking signal, while correctness of the promise is enforced at
    commit by :func:`place_available`.
    """
    demand = np.asarray(demand, dtype=np.int64)
    if not pool.can_satisfy(demand):
        return False
    if target is None:
        return True
    if target.kind == "availability":
        return True
    try:
        compiled = compile_target(demand, pool, target)
    except InfeasibleRequestError:
        return False
    if compiled is None:
        return True
    domain_ids, cap, _k = compiled
    return spread_feasible(demand, pool.remaining, domain_ids, cap)


def place_available(demand: np.ndarray, pool, target: SurvivabilityTarget, attempt):
    """Verified-commit placement for ``kind="availability"`` targets.

    *attempt* is ``attempt(domain_ids, cap) -> Allocation | None`` — place
    under a per-domain cap (``cap is None`` means unconstrained). The
    driver escalates ``k = 0, 1, 2, …``, placing under each ``k``'s cap
    and committing **iff** the achieved placement verifies
    (:func:`verified_k`: some tolerance's exact quorum survival meets
    ``min_availability``). Escalation tightens the spread monotonically,
    so infeasibility against maximum capacity at any ``k`` is final —
    the request is refused (:class:`InfeasibleRequestError`), matching
    the refuse-iff-impossible rule for this escalation policy. ``None``
    means wait: some tolerance is feasible at maximum capacity but the
    current free capacity cannot realize a verifying placement.
    """
    demand = np.asarray(demand, dtype=np.int64)
    total = int(demand.sum())
    if target.kind != "availability":
        raise ValidationError("place_available needs an availability target")
    domain_ids = domain_ids_for(target.domain_scope, pool)
    num_domains = int(np.unique(domain_ids).shape[0])
    u = target.unavailability
    bound = max_feasible_availability(num_domains, total, u)
    if target.min_availability > bound:
        raise InfeasibleRequestError(
            f"availability {target.min_availability} exceeds the best any "
            f"spread over {num_domains} {target.domain_scope} domains can "
            f"reach ({bound:.6g}, u={u:.4g})"
        )
    if not check_admissible(demand, pool):
        return None
    waited = False
    for k in range(total):
        cap = spread_budget(total, k)
        if cap < 1 or cap * num_domains < total:
            break
        if cap < total:
            if not spread_feasible(demand, pool.max_capacity, domain_ids, cap):
                break  # tighter caps stay infeasible: no higher k can work
            if not spread_feasible(demand, pool.remaining, domain_ids, cap):
                waited = True
                continue
        allocation = attempt(domain_ids, cap if cap < total else None)
        if allocation is None:
            waited = True
            continue
        counts = placement_domain_counts(allocation.matrix, domain_ids)
        if verified_k(counts, total, target) is not None:
            return allocation
    if waited:
        return None
    raise InfeasibleRequestError(
        f"availability {target.min_availability} is unreachable for "
        f"{total} VMs over {num_domains} {target.domain_scope} domains: "
        "no spread-feasible tolerance produced a placement meeting the "
        f"target (u={u:.4g})"
    )


# ----------------------------------------------------- achieved survivability

def achieved_survivability(
    matrix: np.ndarray,
    pool,
    target: SurvivabilityTarget,
) -> dict:
    """JSON-ready report of what a committed placement actually guarantees.

    Carried on :class:`~repro.service.api.PlacementDecision` so callers can
    audit the promise: the effective tolerance ``k``, the compiled cap, the
    realized spread (domains used, largest domain share), the quorum, and —
    when an MTBF/MTTR model is present — the exact quorum-survival
    probability of *this* placement.

    For ``k``-kinds, ``k`` is the target's own tolerance. For availability
    targets ``k`` is re-derived from the achieved placement itself
    (:func:`verified_k` — the smallest tolerance whose cap the placement
    respects *and* whose quorum it keeps alive with the required
    probability, mirroring the commit rule of :func:`place_available`);
    ``meets_target`` records whether such a tolerance exists, and when it
    does not, ``k`` falls back to the largest structurally respected
    tolerance so the report still describes the shape honestly.
    """
    matrix = np.asarray(matrix, dtype=np.int64)
    total = int(matrix.sum())
    domain_ids = domain_ids_for(target.domain_scope, pool)
    num_domains = int(np.unique(domain_ids).shape[0])
    used = placement_domain_counts(matrix, domain_ids)
    meets: "bool | None" = None
    if target.kind == "availability":
        k_verified = verified_k(used, total, target)
        meets = k_verified is not None
        if k_verified is not None:
            k = k_verified
        else:
            k = max(0, total // int(used.max()) - 1)
    else:
        k = target.resolve_k(total, num_domains)
    doc = {
        "kind": target.kind,
        "scope": target.domain_scope,
        "k": int(k),
        "domain_cap": int(spread_budget(total, k)) if k > 0 else int(total),
        "quorum": int(quorum(total, k)),
        "domains_used": int(used.shape[0]),
        "max_domain_vms": int(used.max()) if used.size else 0,
    }
    u = target.unavailability
    if u is not None:
        max_loss = total - quorum(total, k)
        doc["promised_availability"] = survival_probability(
            used.tolist(), u, max_loss
        )
    if meets is not None:
        doc["min_availability"] = float(target.min_availability)
        doc["meets_target"] = bool(meets)
    return doc


# ------------------------------------------------------------- exact solver

def solve_sd_reliable(
    request,
    pool,
    target: "SurvivabilityTarget | None" = None,
    *,
    options=None,
):
    """Exact survivability-constrained SD: min ``DC`` s.t. the domain cap.

    With no target (or a vacuous one) this *is* :func:`solve_sd_exact` —
    same code path, bit-identical allocations. With a binding cap the
    per-center greedy sweep is no longer exact (the budget couples VM types
    across nodes), so the cap-extended MILP
    (:func:`repro.core.placement.ilp.solve_sd_milp` with ``domain_ids`` /
    ``domain_cap``) carries the optimality guarantee. Returns the optimal
    :class:`~repro.core.problem.Allocation`, ``None`` to wait, and raises
    :class:`InfeasibleRequestError` to refuse — for ``k``-kinds exactly
    iff the MILP is infeasible against maximum capacity (max-flow
    certified). Availability targets go through the verified-commit
    escalation (:func:`place_available`): each tolerance's MILP optimum is
    accepted only if its exact survival meets ``min_availability``.
    """
    from repro.core.placement.exact import solve_sd_exact
    from repro.core.placement.ilp import solve_sd_milp

    demand = normalize_request(request, pool.num_types)
    if target is None:
        return solve_sd_exact(demand, pool)
    if target.kind == "availability":

        def attempt(domain_ids, cap):
            if cap is None:
                return solve_sd_exact(demand, pool)
            return solve_sd_milp(
                demand,
                pool,
                options=options,
                domain_ids=domain_ids,
                domain_cap=cap,
            )

        return place_available(demand, pool, target, attempt)
    compiled = compile_target(demand, pool, target)
    if compiled is None:
        return solve_sd_exact(demand, pool)
    domain_ids, cap, _k = compiled
    if not check_admissible(demand, pool):
        return None
    if not check_spread_admissible(demand, pool, domain_ids, cap):
        return None
    return solve_sd_milp(
        demand, pool, options=options, domain_ids=domain_ids, domain_cap=cap
    )


class ReliablePlacement(PlacementAlgorithm):
    """Protocol adapter around the exact survivability-constrained solver.

    Reads the target from the request (``request.survivability``, with an
    optional constructor default for raw-vector requests) and defers to
    :func:`solve_sd_reliable`.
    """

    name = "reliable-exact"

    def __init__(self, *, target: "SurvivabilityTarget | None" = None, options=None) -> None:
        self.target = target
        self.options = options

    def _place(self, pool, request, *, rng=None, obs=None):
        target = getattr(request, "survivability", None)
        if target is None:
            target = self.target
        return solve_sd_reliable(request, pool, target, options=self.options)

"""Cross-feature integration: extensions composed together."""

import numpy as np
import pytest

from repro.cloud import (
    CloudProvider,
    CloudSimulator,
    PriceSheet,
    QueueDiscipline,
    RequestQueue,
    ReservingCloudProvider,
    TimedRequest,
    lease_cost,
    poisson_workload,
)
from repro.cluster import (
    DynamicResourcePool,
    Topology,
    VMTypeCatalog,
    infer_distance_matrix,
)
from repro.core import AnnealingConfig, AnnealingGsdSolver, OnlineHeuristic
from repro.core.problem import VirtualClusterRequest
from repro.mapreduce import (
    JobFlow,
    MapReduceEngine,
    NetworkModel,
    StragglerModel,
    VirtualCluster,
    grep,
    sort,
    wordcount,
)


@pytest.fixture(scope="module")
def catalog():
    return VMTypeCatalog.ec2_default()


class TestPriorityScheduling:
    def test_priority_requests_jump_the_queue(self, catalog):
        """A high-priority request admitted before earlier low-priority ones."""
        from tests.conftest import make_pool

        pool = make_pool(1, 1, capacity=(2, 0, 0))
        provider = CloudProvider(
            pool,
            OnlineHeuristic(),
            queue=RequestQueue(discipline=QueueDiscipline.PRIORITY),
        )

        def req(priority, arrival):
            return TimedRequest(
                request=VirtualClusterRequest(demand=[2, 0, 0]),
                arrival_time=arrival,
                duration=10.0,
                priority=priority,
            )

        first = provider.submit(req(5, 0.0), now=0.0)
        provider.submit(req(5, 1.0), now=1.0)  # low priority, earlier
        provider.submit(req(0, 2.0), now=2.0)  # high priority, later
        started = provider.release(first.request_id, now=10.0)
        assert len(started) == 1
        assert started[0].request.priority == 0


class TestMeasuredNetworkPipeline:
    def test_probe_to_placement_to_job(self, catalog):
        """Full pipeline on *measured* distances: probe, quantize, place,
        provision, run, bill."""
        from repro.cluster.distance import DistanceModel
        from repro.cluster.resources import ResourcePool

        topo = Topology.build(3, 4, capacity=[2, 2, 1])
        inferred, tiers = infer_distance_matrix(topo, num_tiers=2, seed=11)
        # Build a pool whose model matches the inferred tier values.
        model = DistanceModel(
            intra_rack=float(tiers[0]),
            inter_rack=float(tiers[1]),
            inter_cloud=float(tiers[1]) * 2,
        )
        pool = ResourcePool(topo, catalog, distance_model=model)
        alloc = OnlineHeuristic().place(np.array([4, 4, 2]), pool)
        pool.allocate(alloc.matrix)
        cluster = VirtualCluster.from_allocation(
            alloc, pool.distance_matrix, catalog
        )
        network = NetworkModel.from_tiers(tiers)
        flow = JobFlow(MapReduceEngine(cluster, network=network, seed=12), seed=12)
        result = flow.run([wordcount(input_bytes=512 * 1024 * 1024), grep(input_bytes=512 * 1024 * 1024)])
        assert result.makespan > 0
        prices = PriceSheet(catalog)
        request = TimedRequest(
            request=VirtualClusterRequest(demand=alloc.demand),
            arrival_time=0.0,
            duration=result.makespan,
        )
        from repro.cloud import Lease

        bill = lease_cost(
            Lease(request=request, allocation=alloc, start_time=0.0), prices
        )
        assert bill > 0


class TestResilientAnnealingProvider:
    def test_dynamic_pool_with_annealing_batch_drains(self, catalog):
        """Annealing batch policy over a dynamic pool survives a full run."""
        pool = DynamicResourcePool(Topology.build(2, 5, capacity=[2, 2, 1]), catalog)
        provider = CloudProvider(
            pool,
            OnlineHeuristic(),
            batch_policy=AnnealingGsdSolver(AnnealingConfig(iterations=500, seed=3)),
        )
        workload = poisson_workload(40, 3, demand_high=2, seed=14)
        CloudSimulator(provider).run(workload)
        assert provider.stats.placed == provider.stats.completed
        assert pool.allocated.sum() == 0


class TestSpeculationUnderContention:
    def test_stragglers_speculation_and_disk_contention_compose(self, catalog):
        from tests.conftest import make_pool

        pool = make_pool(3, 4, capacity=(2, 2, 1))
        alloc = OnlineHeuristic().place(np.array([4, 6, 2]), pool)
        cluster = VirtualCluster.from_allocation(alloc, pool.distance_matrix, catalog)
        engine = MapReduceEngine(
            cluster,
            disk_contention=1.0,
            stragglers=StragglerModel(probability=0.2, min_factor=2, max_factor=5),
            speculative_execution=True,
            seed=15,
        )
        result = engine.run(sort(input_bytes=512 * 1024 * 1024), hdfs_seed=15)
        assert result.runtime > 0
        assert len(result.map_records) == 8
        loc = result.locality()
        assert loc.total_maps == 8


class TestReservingProviderWithBatchPolicy:
    def test_reservations_and_global_optimizer_coexist(self, catalog):
        """ReservingCloudProvider inherits batch_policy-free drains; verify
        a plain run with realistic churn completes and stays consistent."""
        from tests.conftest import make_pool

        pool = make_pool(3, 5, capacity=(2, 1, 1))
        provider = ReservingCloudProvider(pool, OnlineHeuristic())
        workload = poisson_workload(
            80, 3, mean_interarrival=3.0, mean_duration=90.0, demand_high=3, seed=16
        )
        result = CloudSimulator(provider).run(workload)
        assert provider.stats.placed == provider.stats.completed
        assert pool.allocated.sum() == 0
        assert all(w >= 0 for w in result.waits)

"""The placement service: a long-lived allocator daemon.

:class:`PlacementService` wraps a :class:`~repro.service.state.ClusterState`
behind the serving loop the paper's online setting implies:

* **Admission control** — requests whose demand exceeds maximum pool capacity
  are refused outright (the paper's "refuse" outcome); when the bounded wait
  queue is full, arrivals are rejected with backpressure instead of queueing
  unboundedly.
* **Batching window** — the scheduler loop sleeps ``batch_window`` seconds
  after traffic appears so concurrent arrivals coalesce, then runs one
  :meth:`PlacementService.step`: the jointly satisfiable batch (the paper's
  ``getRequests``) is placed sequentially with Algorithm 1, and batches of
  two or more allocations go through Algorithm 2's pairwise Theorem-2
  transfer phase. Transfers are applied only when they strictly shrink the
  summed distance, so batching never does worse than per-request placement.
* **Graceful drain** — :meth:`drain` stops admission, keeps stepping until
  the queue empties or a deadline passes, and resolves whatever remains as
  ``dropped`` so no caller is left hanging.

The scheduler is exposed both as an explicit :meth:`step` (deterministic,
used by tests and benchmarks) and as a background thread
(:meth:`start`/:meth:`stop`) for live serving; both run the same code path.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass

from repro.cloud.queue import QueueDiscipline, RequestQueue
from repro.cloud.request import TimedRequest
from repro.core import reliability
from repro.core.placement.greedy import OnlineHeuristic
from repro.core.placement.transfer import transfer_pair
from repro.obs.registry import (
    COUNT_BUCKETS,
    DISTANCE_BUCKETS,
    MetricsRegistry,
    ensure_registry,
)
from repro.service.api import (
    DecisionStatus,
    PlaceRequest,
    PlacementDecision,
    ReleaseRequest,
    ReleaseResponse,
    decision_from_allocation,
)
from repro.service.state import ClusterState
from repro.util.errors import ReproError, ValidationError
from repro.util.timing import PhaseTimer

_log = logging.getLogger(__name__)

#: Sentinel duration for queue entries — the service learns true holding
#: times only when the client releases, so the queue's duration field is
#: never consulted.
_UNKNOWN_DURATION = 1.0


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """Tunables for one :class:`PlacementService`.

    ``batch_window`` only affects the background loop (how long it waits for
    concurrent arrivals to coalesce); ``max_batch`` caps how many requests a
    single :meth:`~PlacementService.step` may place — ``max_batch=1``
    degenerates to pure per-request Algorithm-1 serving.
    """

    queue_capacity: int = 256
    discipline: str = QueueDiscipline.FIFO
    batch_window: float = 0.005
    max_batch: int = 64
    enable_transfers: bool = True
    max_wait: float | None = None
    transfer_rounds: int = 10

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValidationError("queue_capacity must be >= 1")
        if self.batch_window < 0:
            raise ValidationError("batch_window must be >= 0")
        if self.max_batch < 1:
            raise ValidationError("max_batch must be >= 1")
        if self.max_wait is not None and self.max_wait <= 0:
            raise ValidationError("max_wait must be > 0 when set")
        if self.transfer_rounds < 1:
            raise ValidationError("transfer_rounds must be >= 1")


@dataclass
class ServiceStats:
    """Aggregate serving outcomes since service construction."""

    submitted: int = 0
    placed: int = 0
    refused: int = 0
    rejected: int = 0
    timed_out: int = 0
    dropped: int = 0
    cancelled: int = 0
    released: int = 0
    batches: int = 0
    step_errors: int = 0
    transfer_exchanges: int = 0
    transfer_gain: float = 0.0
    total_distance: float = 0.0

    @property
    def acceptance_rate(self) -> float:
        """Placed fraction of all submissions (0 when nothing submitted)."""
        return self.placed / self.submitted if self.submitted else 0.0

    @property
    def mean_distance(self) -> float:
        """Average committed cluster distance (post-transfer)."""
        return self.total_distance / self.placed if self.placed else 0.0

    def to_dict(self) -> dict:
        """JSON-ready view (for the transport's ``stats`` op)."""
        doc = {name: getattr(self, name) for name in self.__dataclass_fields__}
        doc["acceptance_rate"] = self.acceptance_rate
        doc["mean_distance"] = self.mean_distance
        return doc

    def to_metrics(self, registry) -> None:
        """Export every field through the unified ``repro_stats`` gauge
        (``source="service"``); see docs/OBSERVABILITY.md for the mapping."""
        gauge = registry.gauge(
            "repro_stats",
            "Unified stats-object export; one series per source and field.",
            labels=("source", "field"),
        )
        for field, value in self.to_dict().items():
            gauge.labels(source="service", field=field).set(float(value))


class Ticket:
    """Handle for one in-flight placement request.

    The service resolves the ticket exactly once with a terminal
    :class:`~repro.service.api.PlacementDecision`; :meth:`result` blocks
    until then.
    """

    __slots__ = ("request_id", "_event", "_decision", "_callbacks", "_cb_lock")

    def __init__(self, request_id: int) -> None:
        self.request_id = request_id
        self._event = threading.Event()
        self._decision: PlacementDecision | None = None
        self._callbacks: list = []
        self._cb_lock = threading.Lock()

    def _resolve(self, decision: PlacementDecision) -> bool:
        """Resolve once; later calls are ignored (first resolution wins).

        Failover can race a dying shard's late decision against the
        fabric's re-routed one — whichever resolves first is the answer
        the caller already saw, so the loser must be dropped, not applied.
        Returns whether *this* call won.
        """
        with self._cb_lock:
            if self._event.is_set():
                return False
            self._decision = decision
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(decision)
        return True

    def add_done_callback(self, callback) -> None:
        """Run ``callback(decision)`` on resolution (immediately if done)."""
        with self._cb_lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self._decision)

    @property
    def done(self) -> bool:
        return self._event.is_set()

    @property
    def decision(self) -> PlacementDecision | None:
        """The terminal decision, or ``None`` while still pending."""
        return self._decision

    def result(self, timeout: float | None = None) -> PlacementDecision | None:
        """Wait for the decision; ``None`` if *timeout* expires first."""
        if self._event.wait(timeout):
            return self._decision
        return None


class PlacementService:
    """Long-lived online placement daemon over a :class:`ClusterState`.

    Parameters
    ----------
    state:
        The incremental allocator state (owned by the service).
    policy:
        Single-request placement algorithm (default: Algorithm 1 with
        ``stop="best"``).
    config:
        Serving tunables; see :class:`ServiceConfig`.
    """

    def __init__(
        self,
        state: ClusterState,
        *,
        policy: OnlineHeuristic | None = None,
        config: ServiceConfig | None = None,
        obs: "MetricsRegistry | None" = None,
    ) -> None:
        self.state = state
        self.policy = policy or OnlineHeuristic()
        self.config = config or ServiceConfig()
        self.stats = ServiceStats()
        # Observability: all instruments come from one registry (the shared
        # null registry when obs is None — every recording below is then a
        # no-op and the serving path is unchanged).
        self.obs = ensure_registry(obs)
        self._m_queue_depth = self.obs.gauge(
            "repro_service_queue_depth", "Requests currently waiting in the queue."
        )
        self._m_admissions = self.obs.counter(
            "repro_service_admissions_total",
            "Admission-control outcomes at submit time.",
            labels=("outcome",),
        )
        self._m_decisions = self.obs.counter(
            "repro_service_decisions_total",
            "Terminal decisions by status.",
            labels=("status",),
        )
        self._m_wait = self.obs.histogram(
            "repro_service_wait_seconds",
            "Submit-to-decision latency of placed requests.",
        )
        self._m_step = self.obs.histogram(
            "repro_service_step_seconds", "Wall seconds per scheduler step."
        )
        self._m_batch = self.obs.histogram(
            "repro_service_batch_requests",
            "Requests admitted per scheduling batch.",
            buckets=COUNT_BUCKETS,
        )
        self._m_batch_gain = self.obs.histogram(
            "repro_service_batch_gain_distance",
            "Distance gained by the batch transfer phase, per batch with gain.",
            buckets=DISTANCE_BUCKETS,
        )
        self._m_releases = self.obs.counter(
            "repro_service_releases_total", "Leases released by clients."
        )
        self._m_checkpoint = self.obs.histogram(
            "repro_service_checkpoint_seconds",
            "Wall seconds to serialize a live checkpoint of the service state.",
        )
        # The batch transfer phase shares the repro_transfer_* series with
        # GlobalSubOptimizer.optimize_transfers — same semantics, same names.
        self._m_transfer_attempts = self.obs.counter(
            "repro_transfer_attempts_total",
            "Allocation pairs evaluated for a Theorem-2 transfer.",
        )
        self._m_transfer_applied = self.obs.counter(
            "repro_transfer_applied_total",
            "Pair transfers that improved the summed distance and were applied.",
        )
        self._m_transfer_exchanges = self.obs.counter(
            "repro_transfer_exchanges_total",
            "Individual VM exchanges applied across all accepted transfers.",
        )
        self._m_transfer_gain = self.obs.histogram(
            "repro_transfer_gain_distance",
            "Distance gained per accepted pair transfer.",
            buckets=DISTANCE_BUCKETS,
        )
        # One timer spans the whole pipeline: the policy's place() phases
        # (admission / center_sweep / fill) nest under the service's step
        # and transfer phases. Disabled (zero-overhead) unless a caller —
        # e.g. `repro loadgen --profile` — enables it.
        self.timer: PhaseTimer = getattr(self.policy, "timer", None) or PhaseTimer()
        self._lock = threading.RLock()
        self._wakeup = threading.Condition(self._lock)
        self._queue = RequestQueue(
            capacity=self.config.queue_capacity,
            discipline=self.config.discipline,
        )
        self._pending: dict[int, tuple[Ticket, float]] = {}
        self._accepting = True
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        # Supervision hooks (all None by default — the unsupervised serving
        # path is unchanged). ``fence`` simulates a process boundary: when it
        # returns False the worker is "dead" — submit rejects, step is a
        # no-op, release fails shard_unavailable — exactly what a crashed
        # worker process would do. ``on_commit(service)`` fires after any
        # state-changing operation commits (a scheduler step, a release) so
        # a supervisor can write-ahead-replicate the checkpoint; ``on_tick``
        # fires once per background-loop iteration for heartbeats.
        self.fence = None
        self.on_commit = None
        self.on_tick = None

    # ------------------------------------------------------------ submission

    def submit(self, request: PlaceRequest) -> Ticket:
        """Admit, refuse, or reject *request*; returns its ticket.

        Refusals (demand can never fit) and rejections (queue full, or the
        service is draining) resolve the ticket immediately; admitted
        requests resolve on a later :meth:`step`.
        """
        ticket = Ticket(request.request_id)
        if self.fence is not None and not self.fence():
            # A dead worker process would never answer; reject at the door
            # so the fabric's spillover path can try the next shard.
            ticket._resolve(
                PlacementDecision(
                    request_id=request.request_id,
                    status=DecisionStatus.REJECTED,
                    detail="shard worker is down",
                )
            )
            return ticket
        now = time.monotonic()
        with self._lock:
            self.stats.submitted += 1
            core = request.to_core()
            if not self._accepting:
                self.stats.rejected += 1
                self._m_admissions.labels(outcome="rejected_draining").inc()
                self._m_decisions.labels(status=DecisionStatus.REJECTED).inc()
                ticket._resolve(
                    PlacementDecision(
                        request_id=request.request_id,
                        status=DecisionStatus.REJECTED,
                        detail="service is draining",
                    )
                )
                return ticket
            if (
                request.request_id in self._pending
                or self.state.has_lease(request.request_id)
            ):
                # A duplicate id would orphan the first ticket (submit would
                # overwrite its _pending entry) and later blow up the
                # scheduler when allocate_lease sees the id twice — refuse it
                # at the door instead.
                self.stats.rejected += 1
                self._m_admissions.labels(outcome="rejected_duplicate").inc()
                self._m_decisions.labels(status=DecisionStatus.REJECTED).inc()
                ticket._resolve(
                    PlacementDecision(
                        request_id=request.request_id,
                        status=DecisionStatus.REJECTED,
                        detail="duplicate request id (pending or holding a lease)",
                    )
                )
                return ticket
            refusal = reliability.refusal_reason(
                core.demand, self.state, core.survivability
            )
            if refusal is not None:
                self.stats.refused += 1
                self._m_admissions.labels(outcome="refused").inc()
                self._m_decisions.labels(status=DecisionStatus.REFUSED).inc()
                ticket._resolve(
                    PlacementDecision(
                        request_id=request.request_id,
                        status=DecisionStatus.REFUSED,
                        detail=refusal,
                    )
                )
                return ticket
            timed = TimedRequest(
                request=core,
                arrival_time=now,
                duration=_UNKNOWN_DURATION,
                priority=request.priority,
            )
            if not self._queue.submit(timed):
                self.stats.rejected += 1
                self._m_admissions.labels(outcome="rejected_queue_full").inc()
                self._m_decisions.labels(status=DecisionStatus.REJECTED).inc()
                ticket._resolve(
                    PlacementDecision(
                        request_id=request.request_id,
                        status=DecisionStatus.REJECTED,
                        detail="wait queue at capacity",
                    )
                )
                return ticket
            self._pending[request.request_id] = (ticket, now)
            self._m_admissions.labels(outcome="admitted").inc()
            self._m_queue_depth.set(len(self._queue))
            self._wakeup.notify_all()
        return ticket

    def release(self, request: ReleaseRequest) -> ReleaseResponse:
        """Free the lease held by ``request.request_id`` (immediate).

        Freed capacity is visible to the next :meth:`step`; the background
        loop is woken so queued requests can be drained promptly.
        """
        if self.fence is not None and not self.fence():
            # Releasing against a dead worker must not mutate state that a
            # restore will discard — the lease would silently resurrect.
            return ReleaseResponse(
                request_id=request.request_id,
                status=DecisionStatus.SHARD_UNAVAILABLE,
            )
        with self._lock:
            try:
                allocation = self.state.release_lease(request.request_id)
            except ValidationError:
                return ReleaseResponse(
                    request_id=request.request_id,
                    status=DecisionStatus.UNKNOWN_LEASE,
                )
            self.stats.released += 1
            self._m_releases.inc()
            self._m_decisions.labels(status=DecisionStatus.RELEASED).inc()
            self._wakeup.notify_all()
            response = ReleaseResponse(
                request_id=request.request_id,
                status=DecisionStatus.RELEASED,
                freed_vms=allocation.total_vms,
            )
        self.notify_commit()
        return response

    # -------------------------------------------------------------- scheduler

    def step(self, now: float | None = None) -> list[PlacementDecision]:
        """Run one scheduling cycle; returns the decisions it produced.

        Expires over-age waiters, admits the jointly satisfiable batch (up to
        ``max_batch``), places it sequentially with the policy, then — for
        batches of at least two — runs the pairwise transfer phase and swaps
        in any strictly improved allocations.
        """
        if self.fence is not None and not self.fence():
            return []  # a dead worker's scheduler never runs
        if now is None:
            now = time.monotonic()
        started = time.perf_counter()
        try:
            return self._step_locked(now)
        finally:
            self._m_step.observe(time.perf_counter() - started)
            self.notify_commit()

    def notify_commit(self) -> None:
        """Fire the supervision commit hook (no-op when unsupervised).

        Called after every scheduler step and release — and by the fabric
        after a cross-shard rebalance mutates this shard's ledger directly —
        so write-ahead checkpoint replication sees every committed change.
        The hook must never take the scheduler down with it.
        """
        hook = self.on_commit
        if hook is None:
            return
        try:
            hook(self)
        except Exception:
            _log.exception("service on_commit hook failed")

    def _step_locked(self, now: float) -> list[PlacementDecision]:
        decisions: list[PlacementDecision] = []
        # Ticket resolutions collected under the lock, fired after it: a
        # resolution runs arbitrary caller callbacks (the fabric's decision
        # bookkeeping, the async endpoint's loop bridge, speculative-loser
        # cancellation on *other* shards' services), and running those while
        # holding this service's lock both serializes every waiting client
        # behind the scheduler and inverts lock order against cross-shard
        # work. Placements stay ahead of failures in the resolution order.
        resolutions: "list[tuple[Ticket, PlacementDecision]]" = []
        with self._lock, self.timer.phase("step"):
            decisions.extend(self._expire(now))
            batch = self._queue.peek_admissible(self.state.available)
            if len(batch) > self.config.max_batch:
                batch = batch[: self.config.max_batch]
            if not batch:
                self._m_queue_depth.set(len(self._queue))
                return decisions
            self.stats.batches += 1
            self._m_batch.observe(len(batch))
            placed: list[tuple[TimedRequest, object]] = []
            failed: list[tuple[TimedRequest, str]] = []
            for timed in batch:
                if not self.state.can_satisfy(timed.demand):
                    continue
                try:
                    allocation = self.policy.place(
                        self.state, timed.request, obs=self.obs
                    ).allocation
                    if allocation is None:
                        continue
                    self.state.allocate_lease(
                        timed.request_id,
                        allocation,
                        survivability=getattr(
                            timed.request, "survivability", None
                        ),
                    )
                except ReproError as exc:
                    # submit() refuses duplicate ids up front, but a bad
                    # request must fail alone — never abort the cycle (and,
                    # from the background loop, kill the scheduler thread).
                    failed.append((timed, f"placement failed: {exc}"))
                    continue
                placed.append((timed, allocation))
            if self.config.enable_transfers and len(placed) > 1:
                placed = self._optimize_batch(placed)
            done_requests = []
            for timed, allocation in placed:
                ticket, enqueued = self._pending.pop(
                    timed.request_id, (None, now)
                )
                latency = max(0.0, now - enqueued)
                target = getattr(timed.request, "survivability", None)
                decision = decision_from_allocation(
                    timed.request_id,
                    allocation,
                    latency=latency,
                    survivability=(
                        reliability.achieved_survivability(
                            allocation.matrix, self.state, target
                        )
                        if target is not None
                        else None
                    ),
                )
                self.stats.placed += 1
                self.stats.total_distance += allocation.distance
                self._m_decisions.labels(status=DecisionStatus.PLACED).inc()
                self._m_wait.observe(latency)
                done_requests.append(timed)
                decisions.append(decision)
                if ticket is not None:
                    resolutions.append((ticket, decision))
            # Failures resolve after placements, so a forced duplicate id in
            # the same batch cannot steal the ticket of the copy that placed.
            for timed, detail in failed:
                decisions.append(self._evict(timed, now, detail, resolutions))
                done_requests.append(timed)
            self._queue.remove_batch(done_requests)
            self._m_queue_depth.set(len(self._queue))
        for ticket, decision in resolutions:
            ticket._resolve(decision)
        return decisions

    def _evict(
        self,
        timed: TimedRequest,
        now: float,
        detail: str,
        resolutions: "list | None" = None,
    ) -> PlacementDecision:
        """Resolve a queued request as rejected (queue removal is the
        caller's job — :meth:`step` folds evictees into ``remove_batch``).
        With *resolutions*, the ticket resolution is deferred to that list
        instead of firing under the caller's lock."""
        entry = self._pending.pop(timed.request_id, None)
        self.stats.rejected += 1
        self._m_decisions.labels(status=DecisionStatus.REJECTED).inc()
        enqueued = entry[1] if entry else timed.arrival_time
        decision = PlacementDecision(
            request_id=timed.request_id,
            status=DecisionStatus.REJECTED,
            latency=max(0.0, now - enqueued),
            detail=detail,
        )
        if entry is not None:
            if resolutions is not None:
                resolutions.append((entry[0], decision))
            else:
                entry[0]._resolve(decision)
        return decision

    def cancel(self, request_id: int) -> bool:
        """Withdraw a still-queued request (the caller gave up waiting).

        Resolves its ticket as ``cancelled`` and removes the queue entry so
        the request cannot be placed later as a lease no caller tracks.
        Returns ``False`` when the request is not pending — never submitted,
        already decided, or already placed (an existing lease is *not*
        released; use :meth:`release` for that).
        """
        with self._lock:
            entry = self._pending.pop(request_id, None)
            if entry is None:
                return False
            self._queue.cancel(request_id)
            self.stats.cancelled += 1
            self._m_decisions.labels(status=DecisionStatus.CANCELLED).inc()
            self._m_queue_depth.set(len(self._queue))
            entry[0]._resolve(
                PlacementDecision(
                    request_id=request_id,
                    status=DecisionStatus.CANCELLED,
                    latency=max(0.0, time.monotonic() - entry[1]),
                    detail="withdrawn before placement",
                )
            )
            return True

    def _expire(self, now: float) -> list[PlacementDecision]:
        """Resolve queued requests that outwaited ``max_wait`` as timeouts."""
        if self.config.max_wait is None:
            return []
        expired: list[PlacementDecision] = []
        for timed in list(self._queue):
            entry = self._pending.get(timed.request_id)
            enqueued = entry[1] if entry else timed.arrival_time
            if now - enqueued <= self.config.max_wait:
                continue
            self._queue.cancel(timed.request_id)
            self.stats.timed_out += 1
            self._m_decisions.labels(status=DecisionStatus.TIMEOUT).inc()
            decision = PlacementDecision(
                request_id=timed.request_id,
                status=DecisionStatus.TIMEOUT,
                latency=max(0.0, now - enqueued),
                detail=f"exceeded max_wait={self.config.max_wait}",
            )
            if entry is not None:
                del self._pending[timed.request_id]
                entry[0]._resolve(decision)
            expired.append(decision)
        return expired

    def _optimize_batch(self, placed):
        """Algorithm 2 step 3 over the batch: apply improving transfers only.

        Exchanges are capacity-neutral pairwise, so each improved pair is
        swapped into the lease ledger via release-then-allocate; the summed
        distance can only shrink (``transfer_pair`` returns positive-gain
        results or leaves the pair untouched).

        Pairs are scheduled through the same change-stamp worklist as
        :meth:`repro.core.placement.global_opt.GlobalSubOptimizer.optimize_transfers`:
        ``transfer_pair`` is pure, so a pair whose allocations are unchanged
        since it last converged would return the same rejected result —
        skipping it leaves the committed leases and stats bit-identical.

        Survivability-constrained requests never participate: an exchange
        optimizes distance with no knowledge of failure-domain caps, so it
        could concentrate a spread placement back into one rack. Their
        decisions must report exactly what admission promised.
        """
        dist = self.state.distance_matrix
        entries = list(placed)
        gain_before = self.stats.transfer_gain
        stamps = [0] * len(entries)
        constrained = [
            getattr(t.request, "survivability", None) is not None
            for t, _a in entries
        ]
        converged: dict[tuple[int, int], tuple[int, int]] = {}
        with self.timer.phase("transfer"):
            for _ in range(self.config.transfer_rounds):
                changed = False
                for i in range(len(entries)):
                    for j in range(i + 1, len(entries)):
                        if constrained[i] or constrained[j]:
                            continue
                        t1, a1 = entries[i]
                        t2, a2 = entries[j]
                        if a1.center == a2.center:
                            continue
                        if converged.get((i, j)) == (stamps[i], stamps[j]):
                            continue
                        result = transfer_pair(a1, a2, dist)
                        self._m_transfer_attempts.inc()
                        if not result.improved or result.gain <= 1e-9:
                            converged[(i, j)] = (stamps[i], stamps[j])
                            continue
                        # Exchanges are capacity-neutral only for the *pair*,
                        # so both old leases must be freed before either new
                        # one is committed (a swapped VM may land on a slot
                        # the partner still holds).
                        self.state.release_lease(t1.request_id)
                        self.state.release_lease(t2.request_id)
                        self.state.allocate_lease(t1.request_id, result.first)
                        self.state.allocate_lease(t2.request_id, result.second)
                        entries[i] = (t1, result.first)
                        entries[j] = (t2, result.second)
                        stamps[i] += 1
                        stamps[j] += 1
                        # An accepted transfer_pair result is itself a pair
                        # fixpoint — mark it converged at the new stamps.
                        converged[(i, j)] = (stamps[i], stamps[j])
                        self.stats.transfer_exchanges += result.exchanges
                        self.stats.transfer_gain += result.gain
                        self._m_transfer_applied.inc()
                        self._m_transfer_exchanges.inc(result.exchanges)
                        self._m_transfer_gain.observe(result.gain)
                        changed = True
                if not changed:
                    break
        batch_gain = self.stats.transfer_gain - gain_before
        if batch_gain > 0:
            self._m_batch_gain.observe(batch_gain)
        return entries

    # ------------------------------------------------------------- lifecycle

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def queued(self) -> int:
        with self._lock:
            return len(self._queue)

    @property
    def backlog_hint(self) -> int:
        """Lock-free queue-depth hint for routing heuristics.

        Reads the deque length without the service lock (a single ``len``
        is atomic under the GIL). May be one arrival stale — callers use it
        only as an admission *hint* (e.g. the fabric's speculation gate),
        never for correctness.
        """
        return len(self._queue)

    @property
    def num_types(self) -> int:
        """VM types in the catalog (shard-transparent demand-vector length)."""
        return self.state.num_types

    @property
    def num_nodes(self) -> int:
        """Physical nodes under management (shard-transparent)."""
        return self.state.num_nodes

    def checkpoint_doc(self) -> dict:
        """A consistent checkpoint document of the live state.

        Part of the serving surface shared with the sharded fabric, so the
        transport's ``checkpoint`` op works against either.
        """
        from repro.service.checkpoint import checkpoint_to_dict

        started = time.perf_counter()
        with self._lock:
            doc = checkpoint_to_dict(self.state)
        self._m_checkpoint.observe(time.perf_counter() - started)
        return doc

    def describe_shards(self) -> list[dict]:
        """A one-entry shard summary: the unsharded service is shard 0."""
        with self._lock:
            return [
                {
                    "shard": 0,
                    "racks": list(range(self.state.topology.num_racks)),
                    "nodes": self.state.num_nodes,
                    "leases": self.state.num_leases,
                    "queued": len(self._queue),
                    "utilization": self.state.utilization,
                }
            ]

    def start(self) -> None:
        """Launch the background scheduler loop (idempotent)."""
        with self._lock:
            if self.running:
                return
            self._stop.clear()
            self._accepting = True
            self._thread = threading.Thread(
                target=self._loop, name="placement-service", daemon=True
            )
            self._thread.start()

    def _loop(self) -> None:
        made_progress = True
        while not self._stop.is_set():
            tick = self.on_tick
            if tick is not None:
                try:
                    tick(self)
                except Exception:
                    _log.exception("service on_tick hook failed")
            with self._wakeup:
                # Sleep while idle — and also after a no-progress step, when
                # the queue holds only waiters that nothing short of a
                # release or a new arrival can unblock (both notify the
                # condition); re-stepping immediately would busy-spin.
                if len(self._queue) == 0 or not made_progress:
                    self._wakeup.wait(timeout=0.05)
                queued = len(self._queue)
            if self._stop.is_set():
                break
            if queued == 0:
                made_progress = True
                continue
            if self.config.batch_window > 0:
                # The batching window: let concurrent arrivals coalesce.
                time.sleep(self.config.batch_window)
            try:
                made_progress = bool(self.step())
            except Exception:
                # One poisoned request must never kill the scheduler thread.
                self.stats.step_errors += 1
                _log.exception("placement service scheduler step failed")
                made_progress = False

    def stop(self) -> None:
        """Halt the background loop without touching queued requests."""
        self._stop.set()
        with self._lock:
            self._wakeup.notify_all()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=5.0)
        self._thread = None

    def drain(self, timeout: float = 5.0) -> list[PlacementDecision]:
        """Graceful shutdown: stop admission, serve what we can, drop the rest.

        Returns the decisions produced during the drain (placements plus the
        final ``dropped`` resolutions). The background loop, if running, is
        stopped first so the drain owns the scheduler.
        """
        with self._lock:
            self._accepting = False
        self.stop()
        deadline = time.monotonic() + timeout
        decisions: list[PlacementDecision] = []
        while time.monotonic() < deadline:
            with self._lock:
                if len(self._queue) == 0:
                    break
            produced = self.step()
            decisions.extend(produced)
            if not produced:
                # No forward progress is possible without new releases, and
                # none can arrive that we'd wait for — drop what remains.
                break
        with self._lock:
            for timed in list(self._queue):
                self._queue.cancel(timed.request_id)
                entry = self._pending.pop(timed.request_id, None)
                self.stats.dropped += 1
                self._m_decisions.labels(status=DecisionStatus.DROPPED).inc()
                decision = PlacementDecision(
                    request_id=timed.request_id,
                    status=DecisionStatus.DROPPED,
                    detail="service drained before placement",
                )
                if entry is not None:
                    entry[0]._resolve(decision)
                decisions.append(decision)
            self._m_queue_depth.set(len(self._queue))
        return decisions

    def __repr__(self) -> str:
        return (
            f"PlacementService(queued={self.queued}, "
            f"leases={self.state.num_leases}, running={self.running})"
        )

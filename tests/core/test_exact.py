"""Tests for the exact per-center transportation solver."""

import numpy as np
import pytest

from repro.core.placement.exact import ExactPlacement, fill_from_center, solve_sd_exact
from repro.util.errors import InfeasibleRequestError

from tests.conftest import make_pool


class TestFillFromCenter:
    def test_center_filled_first(self):
        remaining = np.array([[2, 1], [2, 1], [2, 1]])
        dist_row = np.array([0.0, 1.0, 2.0])
        alloc = fill_from_center(np.array([3, 1]), remaining, dist_row)
        assert alloc[0].tolist() == [2, 1]
        assert alloc[1].tolist() == [1, 0]
        assert alloc[2].tolist() == [0, 0]

    def test_insufficient_returns_none(self):
        remaining = np.array([[1, 0], [1, 0]])
        assert fill_from_center(np.array([3, 0]), remaining, np.array([0.0, 1.0])) is None

    def test_equal_distance_taken_in_index_order(self):
        remaining = np.array([[0, 0], [1, 0], [1, 0]])
        dist_row = np.array([0.0, 1.0, 1.0])
        alloc = fill_from_center(np.array([1, 0]), remaining, dist_row)
        assert alloc[1, 0] == 1 and alloc[2, 0] == 0

    def test_exact_demand_met(self):
        remaining = np.array([[3, 3], [3, 3]])
        alloc = fill_from_center(np.array([2, 1]), remaining, np.array([0.0, 1.0]))
        assert alloc.sum(axis=0).tolist() == [2, 1]


class TestSolveSDExact:
    def test_single_node_fit_gives_zero(self):
        pool = make_pool(2, 3, capacity=(3, 3, 2))
        alloc = solve_sd_exact([2, 2, 1], pool)
        assert alloc.distance == 0.0
        assert alloc.num_nodes_used == 1

    def test_demand_exactly_met(self):
        pool = make_pool(2, 3, capacity=(2, 2, 1))
        alloc = solve_sd_exact([3, 4, 2], pool)
        assert alloc.demand.tolist() == [3, 4, 2]

    def test_within_remaining(self):
        pool = make_pool(2, 3, capacity=(2, 2, 1))
        alloc = solve_sd_exact([3, 4, 2], pool)
        assert np.all(alloc.matrix <= pool.remaining)

    def test_prefers_single_rack(self):
        # 2 racks x 3 nodes with capacity 2 per type: 5 VMs of one type fit
        # in one rack (3 nodes x 2 = 6), so no cross-rack VM is needed.
        pool = make_pool(2, 3, capacity=(2, 2, 1))
        alloc = solve_sd_exact([5, 0, 0], pool)
        racks = {pool.topology.rack_of(int(i)) for i in alloc.used_nodes}
        assert len(racks) == 1

    def test_spans_racks_only_when_forced(self):
        pool = make_pool(2, 3, capacity=(2, 0, 0))
        # 8 smalls > one rack's 6: must cross racks, minimum 2 VMs outside.
        alloc = solve_sd_exact([8, 0, 0], pool)
        # Optimal: 6 in rack A (2 per node, distance 4*d1 from center)
        # wait - center node holds 2, 4 same-rack at d1, 2 cross at d2.
        assert alloc.distance == 4 * 1.0 + 2 * 2.0

    def test_infeasible_raises(self):
        pool = make_pool(1, 2, capacity=(1, 1, 1))
        with pytest.raises(InfeasibleRequestError):
            solve_sd_exact([5, 0, 0], pool)

    def test_wait_returns_none(self):
        pool = make_pool(1, 2, capacity=(1, 1, 1))
        pool.allocate(np.array([[1, 0, 0], [1, 0, 0]]))
        assert solve_sd_exact([1, 0, 0], pool) is None

    def test_does_not_mutate_pool(self):
        pool = make_pool(2, 3)
        before = pool.allocated
        solve_sd_exact([3, 2, 1], pool)
        assert np.array_equal(pool.allocated, before)

    def test_respects_prior_allocations(self):
        pool = make_pool(2, 2, capacity=(2, 0, 0))
        # Fill rack A completely; request must land in rack B.
        fill = np.zeros((4, 3), dtype=np.int64)
        fill[0, 0] = 2
        fill[1, 0] = 2
        pool.allocate(fill)
        alloc = solve_sd_exact([2, 0, 0], pool)
        racks = {pool.topology.rack_of(int(i)) for i in alloc.used_nodes}
        assert racks == {1}

    def test_multicloud_prefers_single_cloud(self):
        pool = make_pool(2, 2, capacity=(1, 1, 1), clouds=2)
        alloc = solve_sd_exact([4, 0, 0], pool)
        clouds = {pool.topology.cloud_of(int(i)) for i in alloc.used_nodes}
        assert len(clouds) == 1

    def test_adapter_class(self):
        pool = make_pool(2, 3)
        a = ExactPlacement().place([1, 1, 0], pool)
        b = solve_sd_exact([1, 1, 0], pool)
        assert a.distance == b.distance

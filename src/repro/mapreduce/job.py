"""MapReduce job specification.

A :class:`MapReduceJob` captures everything the engine needs to simulate one
job: input size and split granularity, the number of reduce tasks, per-byte
compute costs for the map and reduce functions, and the *map selectivity*
(intermediate bytes produced per input byte — the knob that distinguishes
WordCount from Sort from Grep and controls how shuffle-heavy a job is).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import ValidationError

MB = 1024 * 1024
GB = 1024 * MB


@dataclass(frozen=True, slots=True)
class MapReduceJob:
    """Specification of one MapReduce job.

    Attributes
    ----------
    name:
        Workload label (appears in results).
    input_bytes:
        Total input size in the DFS.
    block_size:
        Split/block size; the number of map tasks is
        ``ceil(input_bytes / block_size)``.
    num_reduces:
        Reduce task count (the paper's experiment uses 1).
    map_selectivity:
        Intermediate output bytes per map input byte (WordCount with a
        combiner ≈ 0.2, Sort = 1.0, Grep ≈ 0.01).
    reduce_selectivity:
        Final output bytes per reduce input byte.
    map_cost_s_per_mb / reduce_cost_s_per_mb:
        CPU seconds per megabyte processed by the user map/reduce function.
    combiner:
        Whether a combiner pre-aggregates map output locally (already folded
        into ``map_selectivity`` — kept as metadata for reporting).
    """

    name: str
    input_bytes: int
    block_size: int = 64 * MB
    num_reduces: int = 1
    map_selectivity: float = 1.0
    reduce_selectivity: float = 1.0
    map_cost_s_per_mb: float = 0.05
    reduce_cost_s_per_mb: float = 0.05
    combiner: bool = False

    def __post_init__(self) -> None:
        if self.input_bytes <= 0:
            raise ValidationError("input_bytes must be > 0")
        if self.block_size <= 0:
            raise ValidationError("block_size must be > 0")
        if self.num_reduces < 1:
            raise ValidationError("num_reduces must be >= 1")
        if self.map_selectivity < 0 or self.reduce_selectivity < 0:
            raise ValidationError("selectivities must be >= 0")
        if self.map_cost_s_per_mb < 0 or self.reduce_cost_s_per_mb < 0:
            raise ValidationError("compute costs must be >= 0")

    @property
    def num_maps(self) -> int:
        """Map task count = number of input splits."""
        return -(-self.input_bytes // self.block_size)  # ceil division

    def map_output_bytes(self, input_bytes: int) -> float:
        """Intermediate bytes produced by a map over *input_bytes*."""
        return input_bytes * self.map_selectivity

    def map_compute_time(self, input_bytes: int) -> float:
        """CPU seconds of the user map function over *input_bytes*."""
        return (input_bytes / MB) * self.map_cost_s_per_mb

    def reduce_compute_time(self, input_bytes: float) -> float:
        """CPU seconds of the user reduce function over *input_bytes*."""
        return (input_bytes / MB) * self.reduce_cost_s_per_mb

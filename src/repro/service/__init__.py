"""Online placement service: the long-lived serving layer.

The paper frames Algorithm 1 as an *online* procedure — "requests arrive
randomly, their service time are also random" — but the rest of this package
exercises it through one-shot batch simulations. This subpackage adds the
missing serving layer: a long-lived allocator daemon that keeps incremental
cluster state between requests, admits or rejects arrivals under bounded
queueing, groups concurrent arrivals into batches optimized with Algorithm 2's
pairwise transfers, checkpoints its state for restart, and ships with a load
generator for latency/throughput measurement.

Modules
-------
``state``
    :class:`ClusterState` — a :class:`~repro.cluster.resources.ResourcePool`
    with incrementally maintained free-capacity/rack aggregates, a lease
    ledger, and versioned snapshots.
``api``
    Typed request/decision dataclasses and the JSON wire codec.
``server``
    :class:`PlacementService` — admission control, batching window, transfer
    optimization, graceful drain.
``checkpoint``
    JSON snapshot/restore of the full allocator state.
``transports``
    The pluggable :class:`Transport`/:class:`Codec` protocol pair and the
    transport registry (``resolve_transport``).
``transport``
    The thread-per-connection transport: TCP endpoint and blocking client
    (stdlib only), codec-negotiating.
``aio``
    The asyncio transport: one event loop multiplexing every connection,
    bounded per-connection write buffers, cross-connection admission
    batching.
``codec``
    Wire codecs: line JSON and the compact binary framing, negotiated per
    connection at the hello exchange.
``factory``
    :func:`build_fabric` — the one construction path for every serving
    topology (thread/aio/proc workers, optional supervision/coordination).
``loadgen``
    Open-loop Poisson and closed-loop load generators with latency
    percentiles; :class:`WireLoadClient` drives a served endpoint over TCP.
``shard``
    :class:`ShardedPlacementFabric` — rack-aligned pool partitions, a
    scoring router with spillover, cross-shard rebalancing, and
    fabric-level checkpoint/restore (see :doc:`docs/SHARDING`).
``wire``
    Versioned length-prefixed line-JSON framing (with optional binary
    blobs) shared by the proc fabric and the networked coordination
    backend.
``coord``
    :class:`CoordinationBackend` — worker registry, TTL'd heartbeats and
    leases, and the write-ahead checkpoint store (in-memory reference
    implementation plus the :mod:`~repro.service.coord.net` TCP
    server/client pair).
``proc``
    :class:`ProcFabric` / :class:`ProcSupervisor` — the sharded fabric
    with every shard worker in its own spawned process, supervised via
    real heartbeats and respawned from replicated checkpoints (see
    :doc:`docs/RELIABILITY`).
``supervisor``
    :class:`FabricSupervisor` — supervised shard workers with heartbeat
    failure detection and byte-identical checkpoint failover (see
    :doc:`docs/RELIABILITY`).
``chaos``
    :class:`FabricChaosInjector` — seeded worker kills, heartbeat delays,
    and checkpoint write faults for chaos testing the supervised fabric.
"""

from repro.service.api import (
    DecisionStatus,
    PlaceRequest,
    PlacementDecision,
    ReleaseRequest,
    ReleaseResponse,
    decode_message,
    encode_message,
)
from repro.service.state import ClusterState, StateSnapshot
from repro.service.server import (
    PlacementService,
    ServiceConfig,
    ServiceStats,
    Ticket,
)
from repro.service.checkpoint import (
    CHECKPOINT_VERSION,
    checkpoint_bytes,
    checkpoint_to_dict,
    load_checkpoint,
    save_checkpoint,
    state_from_checkpoint,
)
from repro.service.transport import ServiceClient, ServiceEndpoint
from repro.service.transports import (
    TRANSPORTS,
    Codec,
    Connection,
    ServerHandle,
    Transport,
    resolve_transport,
)
from repro.service.codec import (
    CODECS,
    SUPPORTED_CODECS,
    BinaryCodec,
    JsonLineCodec,
    choose_codec,
    resolve_codec,
)
from repro.service.aio import AioServiceEndpoint
from repro.service.factory import BuiltFabric, build_fabric
from repro.service.loadgen import (
    LoadGenConfig,
    LoadReport,
    WireLoadClient,
    run_loadgen,
)
from repro.service.coord import (
    CoordinationBackend,
    InMemoryCoordinationBackend,
    LeaseRecord,
    WorkerRecord,
)
from repro.service.coord.net import (
    CoordinationServer,
    NetworkedCoordinationBackend,
    parse_coord_url,
)
from repro.service.proc import (
    ProcFabric,
    ProcSupervisor,
    ProcWorkerHandle,
    ProcWorkerProxy,
)
from repro.service.supervisor import (
    FabricSupervisor,
    FailoverEvent,
    ShardWorker,
    SupervisorConfig,
)
from repro.service.chaos import FabricChaosInjector
from repro.service.shard import (
    ByRackPlan,
    CapacityBalancedPlan,
    FabricConfig,
    FabricStats,
    RackGroupPlan,
    ShardedPlacementFabric,
    ShardPlan,
    ShardRouter,
    fabric_from_checkpoint,
    load_fabric_checkpoint,
    save_fabric_checkpoint,
)

__all__ = [
    "DecisionStatus",
    "PlaceRequest",
    "PlacementDecision",
    "ReleaseRequest",
    "ReleaseResponse",
    "decode_message",
    "encode_message",
    "ClusterState",
    "StateSnapshot",
    "PlacementService",
    "ServiceConfig",
    "ServiceStats",
    "Ticket",
    "CHECKPOINT_VERSION",
    "checkpoint_bytes",
    "checkpoint_to_dict",
    "load_checkpoint",
    "save_checkpoint",
    "state_from_checkpoint",
    "ServiceClient",
    "ServiceEndpoint",
    "AioServiceEndpoint",
    "Transport",
    "Codec",
    "Connection",
    "ServerHandle",
    "TRANSPORTS",
    "resolve_transport",
    "CODECS",
    "SUPPORTED_CODECS",
    "BinaryCodec",
    "JsonLineCodec",
    "choose_codec",
    "resolve_codec",
    "BuiltFabric",
    "build_fabric",
    "LoadGenConfig",
    "LoadReport",
    "WireLoadClient",
    "run_loadgen",
    "CoordinationBackend",
    "CoordinationServer",
    "InMemoryCoordinationBackend",
    "LeaseRecord",
    "NetworkedCoordinationBackend",
    "ProcFabric",
    "ProcSupervisor",
    "ProcWorkerHandle",
    "ProcWorkerProxy",
    "WorkerRecord",
    "parse_coord_url",
    "FabricSupervisor",
    "FailoverEvent",
    "ShardWorker",
    "SupervisorConfig",
    "FabricChaosInjector",
    "ByRackPlan",
    "CapacityBalancedPlan",
    "FabricConfig",
    "FabricStats",
    "RackGroupPlan",
    "ShardPlan",
    "ShardRouter",
    "ShardedPlacementFabric",
    "fabric_from_checkpoint",
    "load_fabric_checkpoint",
    "save_fabric_checkpoint",
]

"""Conformance suite for coordination backends (registry, leases, checkpoints).

Every test in the conformance classes runs twice — once against the
in-memory reference backend and once against a
:class:`NetworkedCoordinationBackend` talking to a real
:class:`CoordinationServer` over loopback TCP — so the wire path is held
to exactly the contract the in-process implementation defines, error
surfaces included. Net-only behaviors (URL parsing, reconnection, framing
rejection) live in their own classes at the bottom.
"""

import socket

import pytest

from repro.service import (
    CoordinationBackend,
    InMemoryCoordinationBackend,
    LeaseRecord,
)
from repro.service.coord.net import (
    CoordinationServer,
    NetworkedCoordinationBackend,
    parse_coord_url,
)
from repro.util.errors import TransportError, ValidationError

BACKENDS = ("memory", "net")


@pytest.fixture(params=BACKENDS)
def backend(request):
    if request.param == "memory":
        yield InMemoryCoordinationBackend()
        return
    with CoordinationServer() as server:
        client = NetworkedCoordinationBackend.from_url(server.url)
        try:
            yield client
        finally:
            client.close()


class TestWorkerRegistry:
    def test_satisfies_the_protocol(self, backend):
        assert isinstance(backend, CoordinationBackend)

    def test_register_returns_incarnation_one(self, backend):
        assert backend.register_worker("shard-0", 0, now=1.0) == 1
        record = backend.workers()["shard-0"]
        assert record.shard_id == 0
        assert record.registered_at == 1.0
        assert record.last_beat == 1.0

    def test_reregister_bumps_incarnation(self, backend):
        backend.register_worker("shard-0", 0, now=1.0)
        assert backend.register_worker("shard-0", 0, now=5.0) == 2
        assert backend.workers()["shard-0"].incarnation == 2

    def test_incarnation_survives_deregistration(self, backend):
        backend.register_worker("shard-0", 0, now=1.0)
        backend.deregister_worker("shard-0")
        assert "shard-0" not in backend.workers()
        # A worker id that comes back is a *new* incarnation, not a reset —
        # fencing logic depends on the counter being monotonic.
        assert backend.register_worker("shard-0", 0, now=9.0) == 2

    def test_empty_worker_id_rejected(self, backend):
        with pytest.raises((ValidationError, TransportError), match="non-empty"):
            backend.register_worker("", 0, now=0.0)


class TestHeartbeats:
    def test_beat_updates_last_beat(self, backend):
        backend.register_worker("shard-0", 0, now=1.0)
        backend.beat("shard-0", now=3.5)
        assert backend.last_beat("shard-0") == 3.5

    def test_beat_from_unregistered_worker_raises(self, backend):
        with pytest.raises((ValidationError, TransportError), match="unregistered"):
            backend.beat("ghost", now=0.0)

    def test_last_beat_of_unknown_worker_is_none(self, backend):
        assert backend.last_beat("ghost") is None


class TestLeaseLedger:
    def test_put_and_expiry(self, backend):
        backend.put_lease(7, "shard-1", now=10.0, ttl=5.0)
        record = backend.leases()[7]
        assert record == LeaseRecord(
            request_id=7, owner="shard-1", granted_at=10.0, expires_at=15.0
        )
        assert not record.expired(15.0)  # expiry is strict
        assert record.expired(15.1)

    def test_renew_pushes_only_the_owners_leases(self, backend):
        backend.put_lease(1, "shard-0", now=0.0, ttl=1.0)
        backend.put_lease(2, "shard-0", now=0.0, ttl=1.0)
        backend.put_lease(3, "shard-1", now=0.0, ttl=1.0)
        assert backend.renew_leases("shard-0", now=10.0, ttl=1.0) == 2
        leases = backend.leases()
        assert leases[1].expires_at == 11.0
        assert leases[2].expires_at == 11.0
        assert leases[3].expires_at == 1.0  # untouched: different owner

    def test_reput_reowns_a_lease(self, backend):
        backend.put_lease(7, "shard-0", now=0.0, ttl=1.0)
        backend.put_lease(7, "shard-2", now=4.0, ttl=1.0)
        record = backend.leases()[7]
        assert record.owner == "shard-2"
        assert record.granted_at == 4.0

    def test_drop_lease(self, backend):
        backend.put_lease(7, "shard-0", now=0.0, ttl=1.0)
        assert backend.drop_lease(7)
        assert not backend.drop_lease(7)
        assert backend.leases() == {}

    def test_expired_leases_sorted_oldest_first(self, backend):
        backend.put_lease(3, "shard-0", now=0.0, ttl=2.0)
        backend.put_lease(1, "shard-0", now=0.0, ttl=1.0)
        backend.put_lease(2, "shard-0", now=0.0, ttl=1.0)
        backend.put_lease(9, "shard-0", now=0.0, ttl=50.0)
        expired = backend.expired_leases(now=10.0)
        assert [r.request_id for r in expired] == [1, 2, 3]

    def test_nonpositive_ttl_rejected(self, backend):
        with pytest.raises((ValidationError, TransportError), match="ttl"):
            backend.put_lease(1, "shard-0", now=0.0, ttl=0.0)
        with pytest.raises((ValidationError, TransportError), match="ttl"):
            backend.renew_leases("shard-0", now=0.0, ttl=-1.0)


class TestCheckpointStore:
    def test_roundtrip_is_byte_exact(self, backend):
        payload = b'{"version": 3,\n "nodes": [1, 2]}'
        backend.put_checkpoint("shard-0", payload)
        assert backend.get_checkpoint("shard-0") == payload

    def test_overwrite_keeps_latest(self, backend):
        backend.put_checkpoint("shard-0", b"v1")
        backend.put_checkpoint("shard-0", b"v2")
        assert backend.get_checkpoint("shard-0") == b"v2"

    def test_empty_payload_roundtrips(self, backend):
        backend.put_checkpoint("shard-0", b"")
        assert backend.get_checkpoint("shard-0") == b""

    def test_missing_checkpoint_is_none(self, backend):
        assert backend.get_checkpoint("shard-9") is None

    def test_non_bytes_payload_rejected(self, backend):
        with pytest.raises((ValidationError, TypeError)):
            backend.put_checkpoint("shard-0", "not bytes")

    def test_binary_payload_roundtrips(self, backend):
        payload = bytes(range(256)) * 17
        backend.put_checkpoint("shard-0", payload)
        assert backend.get_checkpoint("shard-0") == payload

    def test_determinism_same_calls_same_state(self, backend):
        def drive(b):
            b.register_worker("shard-0", 0, now=0.0)
            b.beat("shard-0", now=0.5)
            b.put_lease(1, "shard-0", now=0.5, ttl=5.0)
            b.put_checkpoint("shard-0", b"{}")

        drive(backend)
        reference = InMemoryCoordinationBackend()
        drive(reference)
        assert backend.workers() == reference.workers()
        assert backend.leases() == reference.leases()
        assert backend.get_checkpoint("shard-0") == reference.get_checkpoint(
            "shard-0"
        )


class TestCoordUrl:
    def test_parse(self):
        assert parse_coord_url("tcp://127.0.0.1:7077") == ("127.0.0.1", 7077)

    @pytest.mark.parametrize(
        "url", ["http://x:1", "tcp://", "tcp://host", "tcp://host:notaport"]
    )
    def test_rejects_malformed(self, url):
        with pytest.raises(ValidationError):
            parse_coord_url(url)

    def test_server_url_round_trips(self):
        with CoordinationServer() as server:
            assert parse_coord_url(server.url) == server.address


class TestNetworkedBackend:
    def test_server_side_error_keeps_connection(self):
        """An op rejection is not a transport failure: no redial needed."""
        with CoordinationServer() as server:
            client = NetworkedCoordinationBackend.from_url(server.url)
            try:
                with pytest.raises(TransportError, match="unregistered"):
                    client.beat("ghost", now=0.0)
                # Same connection keeps working after the rejection.
                assert client.register_worker("shard-0", 0, now=1.0) == 1
                assert client.last_beat("shard-0") == 1.0
            finally:
                client.close()

    def test_reconnects_after_connection_drop(self):
        backing = InMemoryCoordinationBackend()
        with CoordinationServer(backend=backing) as server:
            client = NetworkedCoordinationBackend.from_url(server.url)
            try:
                client.register_worker("shard-0", 0, now=1.0)
                # Yank the client's socket out from under it; the next op
                # must redial transparently and see the same backing state.
                client._sock.shutdown(socket.SHUT_RDWR)
                assert client.last_beat("shard-0") == 1.0
            finally:
                client.close()

    def test_shared_state_across_clients(self):
        with CoordinationServer() as server:
            a = NetworkedCoordinationBackend.from_url(server.url)
            b = NetworkedCoordinationBackend.from_url(server.url)
            try:
                a.register_worker("shard-0", 0, now=1.0)
                a.put_checkpoint("shard-0", b"state-bytes")
                assert b.workers()["shard-0"].incarnation == 1
                assert b.get_checkpoint("shard-0") == b"state-bytes"
            finally:
                a.close()
                b.close()

    def test_unreachable_server_raises_transport_error(self):
        # Bind-then-close guarantees a dead port.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = NetworkedCoordinationBackend(
            "127.0.0.1", port, connect_timeout=0.3
        )
        with pytest.raises(TransportError):
            client.register_worker("shard-0", 0, now=0.0)

    def test_non_protocol_peer_is_rejected_cleanly(self):
        """A client speaking garbage must not wedge the server."""
        with CoordinationServer() as server:
            raw = socket.create_connection(server.address, timeout=2.0)
            raw.sendall(b"GET / HTTP/1.0\r\n\r\n")
            raw.close()
            client = NetworkedCoordinationBackend.from_url(server.url)
            try:
                assert client.register_worker("shard-0", 0, now=0.0) == 1
            finally:
                client.close()

"""Coordination backend: worker registry, heartbeats, lease TTLs, checkpoints.

The fault-tolerant fabric separates *serving* (the sharded placement fabric)
from *coordination* (who is alive, who owns which lease, and where the last
good copy of each shard's state lives). This module defines the
coordination contract and ships the in-memory reference implementation the
tests and the single-process supervisor use.

:class:`CoordinationBackend` is a :class:`~typing.Protocol` shaped after the
primitives a redis/etcd-style store offers — registration, TTL'd heartbeat
keys, a TTL'd lease ledger, and a per-worker checkpoint blob — so a
networked implementation can slot in without touching the supervisor:

* **worker registry** — each shard worker registers under a stable worker id
  (``shard-<id>``); re-registration after a crash bumps the *incarnation*
  counter, which distinguishes a restarted worker from a wedged original.
* **heartbeats** — workers call :meth:`~CoordinationBackend.beat`; the
  supervisor reads heartbeat *age* and declares a worker dead when the age
  exceeds the configured TTL. Time is injected by the caller (the supervisor
  owns the clock), keeping every record deterministic under test.
* **lease ledger** — one record per placed request, owned by a worker id,
  with an expiry the owner pushes forward on every beat. A worker that dies
  stops renewing, so its leases drift toward expiry — the supervisor reads
  :meth:`~CoordinationBackend.expired_leases` to enumerate at-risk leases
  during an outage.
* **checkpoint store** — the write-ahead replication target: workers push
  the canonical checkpoint bytes of their shard state after every batch
  commit, and recovery reads the last stored payload back. Payloads are
  opaque ``bytes``; byte-identity end-to-end is the recovery invariant,
  and keeping the type binary means a networked backend ships them over
  the wire without any re-encoding ambiguity.

The in-memory implementation keeps everything under one lock and never
reads a wall clock, so a trace replayed with the same injected timestamps
produces byte-identical backend state. The networked implementation lives
in :mod:`repro.service.coord.net`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Protocol, runtime_checkable

from repro.util.errors import ValidationError


@dataclass(frozen=True, slots=True)
class WorkerRecord:
    """One registered shard worker as the backend sees it.

    ``incarnation`` starts at 1 and increments every time the same worker id
    re-registers (i.e. after a restore); ``last_beat`` is the caller-supplied
    timestamp of the most recent heartbeat.
    """

    worker_id: str
    shard_id: int
    registered_at: float
    last_beat: float
    incarnation: int = 1


@dataclass(frozen=True, slots=True)
class LeaseRecord:
    """One TTL'd lease ledger entry: who owns a placed request, until when."""

    request_id: int
    owner: str
    granted_at: float
    expires_at: float

    def expired(self, now: float) -> bool:
        return now > self.expires_at


@runtime_checkable
class CoordinationBackend(Protocol):
    """The coordination contract the fabric supervisor programs against.

    All timestamps are caller-supplied floats on one monotonic axis; the
    backend never reads a clock. Implementations must be safe to call from
    multiple worker threads concurrently.
    """

    # -- worker registry --------------------------------------------------

    def register_worker(self, worker_id: str, shard_id: int, now: float) -> int:
        """Register (or re-register) a worker; returns its incarnation."""
        ...

    def deregister_worker(self, worker_id: str) -> None:
        """Forget a worker (graceful shutdown); its leases are untouched."""
        ...

    def workers(self) -> "dict[str, WorkerRecord]":
        """A snapshot of every registered worker."""
        ...

    # -- heartbeats -------------------------------------------------------

    def beat(self, worker_id: str, now: float) -> None:
        """Record a heartbeat for *worker_id* at time *now*."""
        ...

    def last_beat(self, worker_id: str) -> "float | None":
        """Timestamp of the worker's most recent beat, or ``None``."""
        ...

    # -- lease ledger -----------------------------------------------------

    def put_lease(
        self, request_id: int, owner: str, now: float, ttl: float
    ) -> None:
        """Record (or re-own) a lease expiring at ``now + ttl``."""
        ...

    def renew_leases(self, owner: str, now: float, ttl: float) -> int:
        """Push every lease owned by *owner* to ``now + ttl``; returns count."""
        ...

    def drop_lease(self, request_id: int) -> bool:
        """Remove a lease record; returns whether it existed."""
        ...

    def leases(self) -> "dict[int, LeaseRecord]":
        """A snapshot of the full lease ledger."""
        ...

    def expired_leases(self, now: float) -> "list[LeaseRecord]":
        """Every lease whose owner has let its TTL lapse, oldest-expiry first."""
        ...

    # -- checkpoint store -------------------------------------------------

    def put_checkpoint(self, worker_id: str, payload: bytes) -> None:
        """Store the worker's replicated checkpoint (opaque bytes)."""
        ...

    def get_checkpoint(self, worker_id: str) -> "bytes | None":
        """The last payload stored for *worker_id*, or ``None``."""
        ...


class InMemoryCoordinationBackend:
    """Single-process :class:`CoordinationBackend` (the test/reference impl).

    Deterministic by construction: state is exactly the sequence of calls
    applied to it, with no wall-clock reads and no background expiry sweeps
    (expiry is evaluated lazily against the caller's ``now``).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._workers: dict[str, WorkerRecord] = {}
        self._incarnations: dict[str, int] = {}
        self._leases: dict[int, LeaseRecord] = {}
        self._checkpoints: dict[str, bytes] = {}

    # -- worker registry --------------------------------------------------

    def register_worker(self, worker_id: str, shard_id: int, now: float) -> int:
        if not worker_id:
            raise ValidationError("worker_id must be non-empty")
        with self._lock:
            incarnation = self._incarnations.get(worker_id, 0) + 1
            self._incarnations[worker_id] = incarnation
            self._workers[worker_id] = WorkerRecord(
                worker_id=worker_id,
                shard_id=shard_id,
                registered_at=now,
                last_beat=now,
                incarnation=incarnation,
            )
            return incarnation

    def deregister_worker(self, worker_id: str) -> None:
        with self._lock:
            self._workers.pop(worker_id, None)

    def workers(self) -> "dict[str, WorkerRecord]":
        with self._lock:
            return dict(self._workers)

    # -- heartbeats -------------------------------------------------------

    def beat(self, worker_id: str, now: float) -> None:
        with self._lock:
            record = self._workers.get(worker_id)
            if record is None:
                raise ValidationError(
                    f"heartbeat from unregistered worker {worker_id!r}"
                )
            self._workers[worker_id] = replace(record, last_beat=now)

    def last_beat(self, worker_id: str) -> "float | None":
        with self._lock:
            record = self._workers.get(worker_id)
            return None if record is None else record.last_beat

    # -- lease ledger -----------------------------------------------------

    def put_lease(
        self, request_id: int, owner: str, now: float, ttl: float
    ) -> None:
        if ttl <= 0:
            raise ValidationError("lease ttl must be > 0")
        with self._lock:
            self._leases[int(request_id)] = LeaseRecord(
                request_id=int(request_id),
                owner=owner,
                granted_at=now,
                expires_at=now + ttl,
            )

    def renew_leases(self, owner: str, now: float, ttl: float) -> int:
        if ttl <= 0:
            raise ValidationError("lease ttl must be > 0")
        with self._lock:
            renewed = 0
            for rid, record in self._leases.items():
                if record.owner == owner:
                    self._leases[rid] = replace(record, expires_at=now + ttl)
                    renewed += 1
            return renewed

    def drop_lease(self, request_id: int) -> bool:
        with self._lock:
            return self._leases.pop(int(request_id), None) is not None

    def leases(self) -> "dict[int, LeaseRecord]":
        with self._lock:
            return dict(self._leases)

    def expired_leases(self, now: float) -> "list[LeaseRecord]":
        with self._lock:
            expired = [r for r in self._leases.values() if r.expired(now)]
        return sorted(expired, key=lambda r: (r.expires_at, r.request_id))

    # -- checkpoint store -------------------------------------------------

    def put_checkpoint(self, worker_id: str, payload: bytes) -> None:
        if not isinstance(payload, bytes):
            raise ValidationError("checkpoint payload must be bytes")
        with self._lock:
            self._checkpoints[worker_id] = payload

    def get_checkpoint(self, worker_id: str) -> "bytes | None":
        with self._lock:
            return self._checkpoints.get(worker_id)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"InMemoryCoordinationBackend(workers={len(self._workers)}, "
                f"leases={len(self._leases)}, "
                f"checkpoints={len(self._checkpoints)})"
            )

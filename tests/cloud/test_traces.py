"""Tests for trace serialization round-trips."""

import json

import numpy as np
import pytest

from repro.cloud.request import poisson_workload
from repro.cloud.traces import load_trace, save_trace
from repro.cluster.distance import DistanceModel
from repro.cluster.generators import PoolSpec, random_pool
from repro.cluster.vmtypes import VMTypeCatalog
from repro.util.errors import ValidationError


@pytest.fixture
def setup():
    catalog = VMTypeCatalog.ec2_default()
    pool = random_pool(
        PoolSpec(racks=2, nodes_per_rack=3, capacity_high=3),
        catalog,
        seed=4,
        distance_model=DistanceModel(1.0, 3.0, 9.0),
    )
    workload = poisson_workload(25, 3, seed=5)
    return pool, workload


class TestRoundTrip:
    def test_pool_restored(self, setup, tmp_path):
        pool, workload = setup
        path = tmp_path / "trace.json"
        save_trace(path, pool=pool, workload=workload)
        loaded_pool, _ = load_trace(path)
        assert loaded_pool.num_nodes == pool.num_nodes
        assert np.array_equal(loaded_pool.max_capacity, pool.max_capacity)
        assert np.array_equal(loaded_pool.distance_matrix, pool.distance_matrix)
        assert loaded_pool.catalog == pool.catalog

    def test_workload_restored(self, setup, tmp_path):
        pool, workload = setup
        path = tmp_path / "trace.json"
        save_trace(path, pool=pool, workload=workload)
        _, loaded = load_trace(path)
        assert len(loaded) == len(workload)
        for orig, back in zip(workload, loaded):
            assert np.array_equal(orig.demand, back.demand)
            assert back.arrival_time == orig.arrival_time
            assert back.duration == orig.duration
            assert back.priority == orig.priority

    def test_replay_gives_identical_simulation(self, setup, tmp_path):
        from repro.cloud.provider import CloudProvider
        from repro.cloud.simulator import CloudSimulator
        from repro.core.placement.greedy import OnlineHeuristic

        pool, workload = setup
        path = tmp_path / "trace.json"
        save_trace(path, pool=pool, workload=workload)
        loaded_pool, loaded_wl = load_trace(path)

        r1 = CloudSimulator(CloudProvider(pool, OnlineHeuristic())).run(workload)
        r2 = CloudSimulator(CloudProvider(loaded_pool, OnlineHeuristic())).run(loaded_wl)
        assert r1.distances == r2.distances
        assert r1.makespan == r2.makespan


class TestValidation:
    def test_bad_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError):
            load_trace(path)

    def test_wrong_version_rejected(self, setup, tmp_path):
        pool, workload = setup
        path = tmp_path / "trace.json"
        save_trace(path, pool=pool, workload=workload)
        doc = json.loads(path.read_text())
        doc["version"] = 99
        path.write_text(json.dumps(doc))
        with pytest.raises(ValidationError):
            load_trace(path)

    def test_node_order_normalized(self, setup, tmp_path):
        """Traces with shuffled node entries load into canonical order."""
        pool, workload = setup
        path = tmp_path / "trace.json"
        save_trace(path, pool=pool, workload=workload)
        doc = json.loads(path.read_text())
        doc["pool"]["nodes"] = list(reversed(doc["pool"]["nodes"]))
        path.write_text(json.dumps(doc))
        loaded_pool, _ = load_trace(path)
        assert np.array_equal(loaded_pool.max_capacity, pool.max_capacity)

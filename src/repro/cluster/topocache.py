"""Per-topology derived structures for the vectorized placement kernels.

A long-lived allocator knows one thing its per-request code never exploits:
the physical topology — and therefore the distance matrix ``D`` — is
immutable while allocations churn. Everything derivable from ``D`` alone can
be computed once and shared by every working copy of the pool:

* ``center_orders[c]`` — the node visit order around center ``c`` sorted by
  ``(D[i, c], i)``: the *stable per-center distance argsort*. Any
  distance-ascending order yields the same aggregate fill lower bound, so
  the sweep kernel prunes candidate centers without a single per-request
  sort.
* ``d_sorted[c]`` — ``D[:, c]`` in that order (nondecreasing), ready for
  cumulative-sum fills and bound dot products.
* ``tier_ranks[c, i]`` — the rank of ``D[i, c]`` among the distinct
  distance values of column ``c`` (0 = the center itself, 1 = its rack, …).
  A monotone integer transform of the distance column: sorting by
  ``(tier_ranks[c], -providable, index)`` reproduces the reference fill
  order ``(D[i, c], -providable, index)`` exactly, with cheap integer keys.
* ``tier_starts[c]`` — boundaries of the distance tiers inside
  ``center_orders[c]`` (``tier_starts[c][t]`` is the first position of tier
  ``t``; the slice up to ``tier_starts[c][1]`` is the center, up to
  ``tier_starts[c][2]`` its rack, and so on).

**Invariants.** A cache is valid for a pool exactly while the pool's
*effective* distance matrix is the cached one (``pool.distance_matrix is
cache.distance``). Allocation churn never invalidates it; anything that
changes effective distances does — :class:`~repro.cluster.dynamics.DynamicResourcePool`
returns a liveness-masked matrix, so such pools advertise no cache (the
kernels then sort from the live matrix instead). ``copy()``/``snapshot()``
share the cache: it is read-only and keyed by object identity of the
topology and equality of the distance model.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.distance import DistanceModel, build_distance_matrix
from repro.cluster.topology import Topology


class TopologyCache:
    """Immutable distance-derived lookups shared by all pools on a topology.

    Build via :meth:`build`; all arrays are read-only. See the module
    docstring for the field semantics and validity invariants.
    """

    __slots__ = (
        "topology",
        "model",
        "distance",
        "center_orders",
        "d_sorted",
        "tier_ranks",
        "tier_starts",
        "rack_ids",
    )

    def __init__(
        self,
        topology: Topology,
        model: DistanceModel,
        distance: np.ndarray,
        center_orders: np.ndarray,
        d_sorted: np.ndarray,
        tier_ranks: np.ndarray,
        tier_starts: tuple[np.ndarray, ...],
        rack_ids: np.ndarray,
    ) -> None:
        self.topology = topology
        self.model = model
        self.distance = distance
        self.center_orders = center_orders
        self.d_sorted = d_sorted
        self.tier_ranks = tier_ranks
        self.tier_starts = tier_starts
        self.rack_ids = rack_ids

    @classmethod
    def build(
        cls,
        topology: Topology,
        model: DistanceModel | None = None,
        *,
        distance: np.ndarray | None = None,
    ) -> "TopologyCache":
        """Derive the cache from *topology* (and *distance*, if prebuilt)."""
        model = model or DistanceModel()
        if distance is None:
            distance = build_distance_matrix(topology, model)
            distance.flags.writeable = False
        n = distance.shape[0]
        # D is symmetric, but take explicit columns so the cache stays
        # correct for any validated (symmetric) matrix a pool may carry.
        cols = np.ascontiguousarray(distance.T)  # row c == D[:, c]
        index_rows = np.broadcast_to(np.arange(n), (n, n))
        center_orders = np.lexsort((index_rows, cols), axis=-1)
        d_sorted = np.take_along_axis(cols, center_orders, axis=1)
        if n > 1:
            steps = (d_sorted[:, 1:] != d_sorted[:, :-1]).astype(np.int64)
            rank_in_order = np.concatenate(
                [np.zeros((n, 1), dtype=np.int64), np.cumsum(steps, axis=1)],
                axis=1,
            )
        else:
            rank_in_order = np.zeros((n, n), dtype=np.int64)
        tier_ranks = np.empty((n, n), dtype=np.int64)
        np.put_along_axis(tier_ranks, center_orders, rank_in_order, axis=1)
        tier_starts = tuple(
            np.concatenate(
                [[0], np.flatnonzero(rank_in_order[c, 1:] != rank_in_order[c, :-1]) + 1]
            )
            for c in range(n)
        )
        for arr in (center_orders, d_sorted, tier_ranks):
            arr.flags.writeable = False
        rack_ids = np.asarray(topology.rack_ids, dtype=np.int64)
        return cls(
            topology=topology,
            model=model,
            distance=distance,
            center_orders=center_orders,
            d_sorted=d_sorted,
            tier_ranks=tier_ranks,
            tier_starts=tier_starts,
            rack_ids=rack_ids,
        )

    def matches(self, topology: Topology, model: DistanceModel) -> bool:
        """Whether this cache was built for exactly this topology + model."""
        return self.topology is topology and self.model == model

    @property
    def num_nodes(self) -> int:
        return self.distance.shape[0]

    def __repr__(self) -> str:
        return f"TopologyCache(nodes={self.num_nodes})"

"""Load generators for the placement service.

Two standard shapes from serving-systems practice:

* **open-loop** — arrivals follow a Poisson process at a fixed offered rate,
  independent of how fast the service answers (the honest way to measure
  latency under load: a slow server cannot slow the arrival clock down);
* **closed-loop** — a fixed number of workers each keep exactly one request
  in flight (submit → decision → hold → release → repeat), which measures
  sustainable throughput at bounded concurrency.

The closed loop comes in two drivers. ``"closed"`` runs one thread per
logical client — faithful to how independent callers behave, but on small
hosts the client threads themselves contend with the service's scheduler
threads for the GIL, and that harness interference lands in the measured
*server* tail (a scheduler waiting behind N runnable client threads can
stall for N × the interpreter switch interval before it even sees a
drained batch). ``"closed-events"`` applies the same workload — identical
demands, holds, seeds, and in-flight bound — from a single event-driven
thread that submits the next request as each decision callback fires, so
the tail percentiles measure the serving path rather than the harness
(see ``docs/PERF.md``).

All modes report throughput, acceptance rate, decision-latency percentiles
(p50/p95/p99), and the mean committed cluster distance. Placed leases are
held for an exponential service time and then released, so the generator
exercises the allocate *and* release paths and the pool reaches a steady
state instead of simply filling up.
"""

from __future__ import annotations

import heapq
import queue
import threading
import time
from dataclasses import dataclass

from repro.analysis.stats import percentiles
from repro.obs.registry import MetricsRegistry
from repro.service.api import DecisionStatus, PlaceRequest, ReleaseRequest
from repro.service.server import PlacementService, Ticket
from repro.util.errors import ReproError, ValidationError
from repro.util.rng import ensure_rng

OPEN_LOOP = "open"
CLOSED_LOOP = "closed"
CLOSED_EVENTS = "closed-events"

MODES = (OPEN_LOOP, CLOSED_LOOP, CLOSED_EVENTS)


@dataclass(frozen=True, slots=True)
class LoadGenConfig:
    """Workload shape for one :func:`run_loadgen` run.

    ``rate`` is the offered arrival rate (requests/second) in open-loop
    mode; ``concurrency`` is the worker count in closed-loop mode.
    ``mean_hold`` is the mean of the exponential lease holding time —
    placed clusters are released that long after their decision.
    ``profile`` enables the service's phase timer for the run and attaches
    its breakdown (admission / center sweep / fill / transfer) to the
    report.
    """

    num_requests: int = 200
    mode: str = OPEN_LOOP
    rate: float = 500.0
    concurrency: int = 8
    mean_hold: float = 0.05
    demand_low: int = 0
    demand_high: int = 3
    decision_timeout: float = 30.0
    seed: "int | None" = None
    profile: bool = False

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValidationError(
                f"mode must be one of {MODES}, got {self.mode!r}"
            )
        if self.num_requests < 1:
            raise ValidationError("num_requests must be >= 1")
        if self.rate <= 0 or self.mean_hold <= 0:
            raise ValidationError("rate and mean_hold must be > 0")
        if self.concurrency < 1:
            raise ValidationError("concurrency must be >= 1")
        if not 0 <= self.demand_low <= self.demand_high:
            raise ValidationError(
                "need 0 <= demand_low <= demand_high, got "
                f"({self.demand_low}, {self.demand_high})"
            )


@dataclass(frozen=True, slots=True)
class LoadReport:
    """Measured outcome of one load-generation run.

    ``profile`` is the phase-timer report (``None`` unless the run was
    configured with ``profile=True``): total seconds spent inside
    :meth:`~repro.service.server.PlacementService.step` plus per-phase
    self/inclusive times whose self components sum to that total.
    """

    mode: str
    submitted: int
    placed: int
    refused: int
    rejected: int
    timed_out: int
    dropped: int
    duration: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    mean_distance: float
    transfer_gain: float
    #: Decisions that failed fast because only a dead shard could serve
    #: them (the fabric's degraded mode under failover).
    unavailable: int = 0
    #: Requests whose decision never arrived within ``decision_timeout`` —
    #: the *client's* clock, distinct from the service-side ``timed_out``.
    #: The generator cancels these instead of hanging on them.
    client_timeouts: int = 0
    profile: "dict | None" = None

    @property
    def acceptance_rate(self) -> float:
        return self.placed / self.submitted if self.submitted else 0.0

    @property
    def throughput(self) -> float:
        """Terminal decisions per second over the run."""
        return self.submitted / self.duration if self.duration > 0 else 0.0

    def to_dict(self) -> dict:
        doc = {name: getattr(self, name) for name in self.__dataclass_fields__}
        doc["acceptance_rate"] = self.acceptance_rate
        doc["throughput"] = self.throughput
        return doc


class _Releaser:
    """Background thread returning placed leases after their holding time."""

    def __init__(self, service: PlacementService) -> None:
        self._service = service
        self._heap: list[tuple[float, int]] = []
        self._cv = threading.Condition()
        self._done = False
        self._thread = threading.Thread(
            target=self._run, name="loadgen-releaser", daemon=True
        )
        self._thread.start()

    def schedule(self, request_id: int, hold: float) -> None:
        with self._cv:
            heapq.heappush(self._heap, (time.monotonic() + hold, request_id))
            self._cv.notify()

    def _run(self) -> None:
        while True:
            with self._cv:
                while not self._heap and not self._done:
                    self._cv.wait()
                if not self._heap and self._done:
                    return
                due, request_id = self._heap[0]
                wait = due - time.monotonic()
                if wait > 0:
                    self._cv.wait(timeout=wait)
                    continue
                heapq.heappop(self._heap)
            self._service.release(ReleaseRequest(request_id=request_id))

    def finish(self) -> None:
        """Release everything still scheduled, then stop."""
        with self._cv:
            pending = [rid for _, rid in self._heap]
            self._heap.clear()
            self._done = True
            self._cv.notify()
        self._thread.join(timeout=5.0)
        for request_id in pending:
            self._service.release(ReleaseRequest(request_id=request_id))


class _WireTicket:
    """Already-resolved ticket for a blocking wire round trip.

    The ``place`` op blocks server-side until the decision, so by the time
    ``submit`` returns there is nothing left to wait for; this adapter just
    replays the :class:`~repro.service.server.Ticket` surface the load
    generator consumes. ``decision`` is ``None`` when the round trip failed
    (transport timeout or error) — the generator counts that as a client
    timeout, exactly like an in-process ticket that never resolved.
    """

    __slots__ = ("request_id", "_decision")

    def __init__(self, request_id: int, decision) -> None:
        self.request_id = request_id
        self._decision = decision

    def add_done_callback(self, callback) -> None:
        callback(self._decision)

    def result(self, timeout=None):
        return self._decision


class _WireStats:
    """Attribute view over the server's ``stats`` op for the final report."""

    def __init__(self, doc: dict) -> None:
        self.mean_distance = float(doc.get("mean_distance", 0.0))
        self.transfer_gain = float(doc.get("transfer_gain", 0.0))


class WireLoadClient:
    """Drive a *served* endpoint with :func:`run_loadgen` over TCP.

    Presents the slice of the :class:`~repro.service.server.PlacementService`
    surface the load generator needs — ``submit``/``release``/``cancel``
    plus the ``running``/``obs``/``num_types``/``timer``/``stats``
    attributes — but executes every call as a wire round trip, so the
    measured latency includes codec and transport cost. Each generator
    thread gets its own connection (the blocking client is
    single-stream), created lazily and negotiated with *codec*
    (``"json"``, ``"binary"``, or ``"auto"``).

    Closed-loop only: the ``place`` op blocks its connection until the
    decision, which is exactly closed-loop semantics but would destroy an
    open-loop arrival clock.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        num_types: int,
        codec: str = "json",
        op_timeout: "float | None" = None,
    ) -> None:
        from repro.util.timing import PhaseTimer

        self._address = (host, port)
        self._codec = codec
        self._op_timeout = op_timeout
        self.num_types = int(num_types)
        self.running = True
        self.obs = MetricsRegistry()
        self.timer = PhaseTimer()
        self._local = threading.local()
        self._connections: list = []
        self._conn_lock = threading.Lock()

    def _client(self):
        from repro.service.transports import resolve_transport

        client = getattr(self._local, "client", None)
        if client is None:
            options = {"codec": self._codec}
            if self._op_timeout is not None:
                options["op_timeout"] = self._op_timeout
            client = resolve_transport("thread").connect(*self._address, **options)
            self._local.client = client
            with self._conn_lock:
                self._connections.append(client)
        return client

    @property
    def codec(self) -> str:
        """The codec this thread's connection negotiated."""
        return self._client().codec

    def submit(self, request: PlaceRequest) -> _WireTicket:
        try:
            decision = self._client().place(request)
        except ReproError:
            # Timed out or transport failure: surface as an unresolved
            # ticket; the server withdraws a still-queued request itself.
            return _WireTicket(request.request_id, None)
        return _WireTicket(request.request_id, decision)

    def release(self, request: ReleaseRequest):
        return self._client().release(request.request_id)

    def cancel(self, request_id: int) -> bool:
        # A failed place round trip is already withdrawn server-side
        # (the endpoint cancels before giving up); nothing to do here.
        return False

    @property
    def stats(self) -> _WireStats:
        return _WireStats(self._client().stats())

    def close(self) -> None:
        with self._conn_lock:
            connections, self._connections = self._connections, []
        for client in connections:
            client.close()

    def __enter__(self) -> "WireLoadClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _random_demands(config: LoadGenConfig, num_types: int, rng):
    demands = []
    for _ in range(config.num_requests):
        while True:
            demand = rng.integers(
                config.demand_low, config.demand_high + 1, size=num_types
            )
            if demand.sum() > 0:
                break
        demands.append(tuple(int(d) for d in demand))
    return demands


def run_loadgen(service: PlacementService, config: LoadGenConfig) -> LoadReport:
    """Drive *service* with the configured workload and measure it.

    The service's background loop must already be running (:meth:`start`);
    leases placed by the run are released by a background releaser as their
    holding time elapses (keeping the pool in steady state), and any still
    held at the end are drained so the pool returns to its pre-run
    utilization.
    """
    if not service.running:
        raise ValidationError("start the service before running the load generator")
    # Decision accounting flows through the metrics registry (the same one
    # `repro obs` scrapes); a service running with the null registry gets a
    # private live one so the report stays correct either way.
    registry = service.obs if service.obs.enabled else MetricsRegistry()
    decisions_total = registry.counter(
        "repro_loadgen_decisions_total",
        "Terminal decisions observed by the load generator, by status.",
        labels=("status",),
    )
    latency_hist = registry.histogram(
        "repro_loadgen_latency_seconds",
        "Decision latency observed by the load generator.",
    )
    cells = {
        status: decisions_total.labels(status=status)
        for status in DecisionStatus.TERMINAL_PLACE
    }
    # Delta snapshots let repeated runs against one service share the series.
    baseline = {status: cell.value for status, cell in cells.items()}
    rng = ensure_rng(config.seed)
    demands = _random_demands(config, service.num_types, rng)
    holds = [float(rng.exponential(config.mean_hold)) + 1e-6 for _ in demands]
    if config.profile:
        service.timer.enabled = True
        service.timer.reset()
    releaser = _Releaser(service)

    def release_on_placement(hold: float):
        def callback(decision) -> None:
            if decision is not None and decision.placed:
                releaser.schedule(decision.request_id, hold)
        return callback

    started = time.monotonic()
    tickets_by_index: dict[int, Ticket] = {}
    if config.mode == OPEN_LOOP:
        gaps = [float(rng.exponential(1.0 / config.rate)) for _ in demands]
        tickets: list[Ticket] = []
        for index, (demand, gap, hold) in enumerate(zip(demands, gaps, holds)):
            time.sleep(gap)
            ticket = service.submit(PlaceRequest(demand=demand))
            ticket.add_done_callback(release_on_placement(hold))
            tickets.append(ticket)
            tickets_by_index[index] = ticket
        decisions = [t.result(timeout=config.decision_timeout) for t in tickets]
    elif config.mode == CLOSED_EVENTS:
        # Same closed-loop workload, one driver thread: keep `concurrency`
        # requests in flight, submitting the next as each decision callback
        # arrives, so the harness never competes with the service's
        # scheduler threads for the interpreter.
        decisions = [None] * len(demands)
        done: "queue.Queue[tuple[int, object]]" = queue.Queue()
        next_index = 0

        def submit_next() -> None:
            nonlocal next_index
            if next_index >= len(demands):
                return
            i = next_index
            next_index += 1
            ticket = service.submit(PlaceRequest(demand=demands[i]))
            ticket.add_done_callback(release_on_placement(holds[i]))
            ticket.add_done_callback(lambda d, i=i: done.put((i, d)))
            tickets_by_index[i] = ticket

        for _ in range(min(config.concurrency, len(demands))):
            submit_next()
        completed = 0
        while completed < len(demands):
            try:
                i, decision = done.get(timeout=config.decision_timeout)
            except queue.Empty:
                # Nothing resolved for a full client deadline; everything
                # still outstanding is counted (and withdrawn) below.
                break
            decisions[i] = decision
            completed += 1
            submit_next()
    else:
        decisions = [None] * len(demands)
        next_index = 0
        index_lock = threading.Lock()

        def worker() -> None:
            nonlocal next_index
            while True:
                with index_lock:
                    if next_index >= len(demands):
                        return
                    i = next_index
                    next_index += 1
                ticket = service.submit(PlaceRequest(demand=demands[i]))
                ticket.add_done_callback(release_on_placement(holds[i]))
                tickets_by_index[i] = ticket
                decisions[i] = ticket.result(timeout=config.decision_timeout)

        workers = [
            threading.Thread(target=worker, name=f"loadgen-{w}", daemon=True)
            for w in range(config.concurrency)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()

    duration = time.monotonic() - started
    latencies: list[float] = []
    client_timeouts = 0
    for index, decision in enumerate(decisions):
        if decision is None:
            # The client-side deadline fired first. Withdraw the request so
            # a later placement cannot commit a lease no caller tracks; a
            # decision that raced the cancel is counted normally.
            client_timeouts += 1
            ticket = tickets_by_index.get(index)
            if ticket is not None:
                service.cancel(ticket.request_id)
            continue
        cells[decision.status].inc()
        latency_hist.observe(decision.latency)
        latencies.append(decision.latency)
    counts = {
        status: int(cell.value - baseline[status]) for status, cell in cells.items()
    }
    releaser.finish()
    pcts = percentiles(latencies)
    return LoadReport(
        mode=config.mode,
        submitted=len(demands),
        placed=counts[DecisionStatus.PLACED],
        refused=counts[DecisionStatus.REFUSED],
        rejected=counts[DecisionStatus.REJECTED],
        timed_out=counts[DecisionStatus.TIMEOUT],
        dropped=counts[DecisionStatus.DROPPED],
        unavailable=counts[DecisionStatus.SHARD_UNAVAILABLE],
        client_timeouts=client_timeouts,
        duration=duration,
        latency_p50=pcts[50.0],
        latency_p95=pcts[95.0],
        latency_p99=pcts[99.0],
        mean_distance=service.stats.mean_distance,
        transfer_gain=service.stats.transfer_gain,
        profile=service.timer.report() if config.profile else None,
    )

"""Instance pricing and provider economics.

The paper's introduction frames both sides of the market: "Users of cloud
services try to minimize the execution time of their submitted jobs without
exceeding a given budget ... while cloud providers try to maximize the use
of resources and achieve more profits." This module provides the accounting:

* :class:`PriceSheet` — per-hour prices per VM type (defaults mirror 2012
  EC2 on-demand pricing for the Table I instances);
* :func:`lease_cost` — what a lease bills (duration × Σ per-type price);
* :class:`BillingReport` — revenue, hours sold, and per-type breakdown for
  a finished simulation;
* :func:`within_budget` / :func:`max_affordable_duration` — the user-side
  checks the introduction describes.

A crucial consequence the README highlights: affinity-aware placement
changes *neither* side's bill (prices depend only on VM type and duration),
so the paper's optimization is a pure quality win — the provider serves the
same revenue at better delivered performance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.lease import Lease
from repro.cluster.vmtypes import VMTypeCatalog
from repro.util.errors import ValidationError
from repro.util.validation import as_int_vector

#: Approximate 2012 EC2 on-demand $/hour for small / medium / large.
DEFAULT_HOURLY_PRICES = (0.08, 0.16, 0.32)

SECONDS_PER_HOUR = 3600.0


class PriceSheet:
    """Per-hour price for each VM type in a catalog."""

    def __init__(
        self,
        catalog: VMTypeCatalog,
        hourly_prices: "tuple[float, ...] | list[float] | None" = None,
    ) -> None:
        if hourly_prices is None:
            if len(catalog) != len(DEFAULT_HOURLY_PRICES):
                raise ValidationError(
                    "default prices cover exactly the 3-type Table I catalog; "
                    f"supply hourly_prices for a {len(catalog)}-type catalog"
                )
            hourly_prices = DEFAULT_HOURLY_PRICES
        prices = np.asarray(hourly_prices, dtype=np.float64)
        if prices.shape != (len(catalog),):
            raise ValidationError(
                f"need one price per type ({len(catalog)}), got {prices.shape}"
            )
        if prices.min() <= 0:
            raise ValidationError("prices must be positive")
        self.catalog = catalog
        self._prices = prices
        self._prices.flags.writeable = False

    @property
    def hourly(self) -> np.ndarray:
        """Read-only $/hour vector in catalog order."""
        return self._prices

    def hourly_rate(self, demand) -> float:
        """$/hour of running one instance-set described by *demand*."""
        d = as_int_vector(demand, name="demand", length=len(self.catalog))
        return float(d @ self._prices)

    def cost(self, demand, duration_s: float) -> float:
        """Total bill for holding *demand* for *duration_s* seconds.

        Hours are billed fractionally (modern per-second billing); switch to
        ceil-hours with :func:`lease_cost`'s ``round_up_hours``.
        """
        if duration_s < 0:
            raise ValidationError("duration must be >= 0")
        return self.hourly_rate(demand) * duration_s / SECONDS_PER_HOUR


def lease_cost(
    lease: Lease, prices: PriceSheet, *, round_up_hours: bool = False
) -> float:
    """What one lease bills under *prices*."""
    duration = lease.request.duration
    if round_up_hours:
        duration = float(np.ceil(duration / SECONDS_PER_HOUR)) * SECONDS_PER_HOUR
    return prices.cost(lease.allocation.demand, duration)


def within_budget(
    demand, duration_s: float, budget: float, prices: PriceSheet
) -> bool:
    """User-side check: does this cluster for this long fit the budget?"""
    return prices.cost(demand, duration_s) <= budget + 1e-12


def max_affordable_duration(demand, budget: float, prices: PriceSheet) -> float:
    """Longest runtime *budget* buys for *demand* (seconds; inf if free-ish)."""
    rate = prices.hourly_rate(demand)
    if rate == 0:
        return float("inf")
    if budget < 0:
        raise ValidationError("budget must be >= 0")
    return budget / rate * SECONDS_PER_HOUR


@dataclass(frozen=True)
class BillingReport:
    """Provider-side revenue summary over a set of leases."""

    revenue: float
    instance_hours: float
    per_type_revenue: tuple[float, ...]
    leases: int

    @classmethod
    def from_leases(
        cls,
        leases: "list[Lease]",
        prices: PriceSheet,
        *,
        round_up_hours: bool = False,
    ) -> "BillingReport":
        """Aggregate revenue and instance-hours over finished *leases*."""
        m = len(prices.catalog)
        per_type = np.zeros(m)
        hours = 0.0
        total = 0.0
        for lease in leases:
            duration = lease.request.duration
            if round_up_hours:
                duration = (
                    float(np.ceil(duration / SECONDS_PER_HOUR)) * SECONDS_PER_HOUR
                )
            h = duration / SECONDS_PER_HOUR
            demand = lease.allocation.demand
            hours += float(demand.sum()) * h
            per_type += demand * prices.hourly * h
            total += float(demand @ prices.hourly) * h
        return cls(
            revenue=total,
            instance_hours=hours,
            per_type_revenue=tuple(float(x) for x in per_type),
            leases=len(leases),
        )

    @property
    def revenue_per_instance_hour(self) -> float:
        return self.revenue / self.instance_hours if self.instance_hours else 0.0

"""Cross-validation: all four SD solvers agree on the optimum.

The exact transportation solver, the MILP, the brute-force enumerator, and
the best-center online heuristic attack the same problem with completely
different machinery; Hypothesis drives them over random small instances and
they must return identical optimal distances. This is the strongest evidence
that (a) the MILP encoding is faithful, (b) the per-center greedy fill is
exactly optimal, and (c) Algorithm 1's best-center mode attains the optimum.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.resources import ResourcePool
from repro.cluster.topology import Topology
from repro.cluster.vmtypes import VMType, VMTypeCatalog
from repro.core.placement.bruteforce import solve_sd_bruteforce
from repro.core.placement.exact import solve_sd_exact
from repro.core.placement.greedy import OnlineHeuristic
from repro.core.placement.ilp import solve_gsd_milp, solve_sd_milp

TWO_TYPES = VMTypeCatalog(
    [
        VMType(name="a", memory_gb=1, cpu_units=1, storage_gb=10),
        VMType(name="b", memory_gb=2, cpu_units=2, storage_gb=20),
    ]
)


def build_pool(caps: list[list[int]], racks: int) -> ResourcePool:
    """Pool with explicit per-node capacities spread over *racks* racks."""
    from repro.cluster.node import PhysicalNode

    per_rack = -(-len(caps) // racks)
    nodes = [
        PhysicalNode(
            node_id=i,
            rack_id=min(i // per_rack, racks - 1),
            cloud_id=0,
            capacity=np.array(c),
        )
        for i, c in enumerate(caps)
    ]
    return ResourcePool(Topology(nodes), TWO_TYPES)


caps_strategy = st.lists(
    st.lists(st.integers(0, 2), min_size=2, max_size=2), min_size=4, max_size=6
)


@st.composite
def sd_instance(draw):
    caps = draw(caps_strategy)
    racks = draw(st.integers(1, 2))
    pool = build_pool(caps, racks)
    total = pool.available
    # Draw a feasible, non-empty demand.
    hi0, hi1 = int(total[0]), int(total[1])
    d0 = draw(st.integers(0, hi0))
    d1 = draw(st.integers(0, hi1))
    if d0 + d1 == 0:
        if hi0 > 0:
            d0 = 1
        elif hi1 > 0:
            d1 = 1
        else:
            return None
    return pool, np.array([d0, d1])


@settings(max_examples=60, deadline=None)
@given(instance=sd_instance())
def test_exact_equals_bruteforce(instance):
    if instance is None:
        return
    pool, demand = instance
    exact = solve_sd_exact(demand, pool)
    brute = solve_sd_bruteforce(demand, pool, limit=500_000)
    assert exact is not None and brute is not None
    assert exact.distance == pytest.approx(brute.distance)


@settings(max_examples=40, deadline=None)
@given(instance=sd_instance())
def test_milp_equals_exact(instance):
    if instance is None:
        return
    pool, demand = instance
    exact = solve_sd_exact(demand, pool)
    milp = solve_sd_milp(demand, pool)
    assert exact is not None and milp is not None
    assert milp.distance == pytest.approx(exact.distance)


@settings(max_examples=60, deadline=None)
@given(instance=sd_instance())
def test_heuristic_best_mode_equals_exact(instance):
    if instance is None:
        return
    pool, demand = instance
    exact = solve_sd_exact(demand, pool)
    heur = OnlineHeuristic(stop="best").place(demand, pool)
    assert exact is not None and heur is not None
    assert heur.distance == pytest.approx(exact.distance)


@settings(max_examples=60, deadline=None)
@given(instance=sd_instance())
def test_first_mode_never_beats_exact(instance):
    if instance is None:
        return
    pool, demand = instance
    exact = solve_sd_exact(demand, pool)
    first = OnlineHeuristic(stop="first").place(demand, pool)
    assert first is not None
    assert first.distance >= exact.distance - 1e-9


@settings(max_examples=25, deadline=None)
@given(instance=sd_instance(), data=st.data())
def test_gsd_lower_bounds_sequential(instance, data):
    """Exact GSD <= any sequential exact-SD placement of the same batch."""
    if instance is None:
        return
    pool, demand = instance
    # Split the demand into two sub-requests (both nonzero if possible).
    split0 = data.draw(st.integers(0, int(demand[0])))
    split1 = data.draw(st.integers(0, int(demand[1])))
    r1 = np.array([split0, split1])
    r2 = demand - r1
    if r1.sum() == 0 or r2.sum() == 0:
        return
    gsd = solve_gsd_milp([r1, r2], pool)
    assert gsd is not None
    work = pool.copy()
    seq = 0.0
    for r in (r1, r2):
        a = solve_sd_exact(r, work)
        assert a is not None
        work.allocate(a.matrix)
        seq += a.distance
    assert sum(a.distance for a in gsd) <= seq + 1e-6

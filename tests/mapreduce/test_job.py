"""Tests for job specifications and the workload library."""

import pytest

from repro.mapreduce.job import GB, MB, MapReduceJob
from repro.mapreduce.workloads import WORKLOADS, grep, join, sort, terasort, wordcount
from repro.util.errors import ValidationError


class TestMapReduceJob:
    def test_num_maps_ceil(self):
        job = MapReduceJob(name="x", input_bytes=130 * MB, block_size=64 * MB)
        assert job.num_maps == 3

    def test_num_maps_exact(self):
        job = MapReduceJob(name="x", input_bytes=2 * GB, block_size=64 * MB)
        assert job.num_maps == 32

    def test_map_output_scaling(self):
        job = MapReduceJob(name="x", input_bytes=MB, map_selectivity=0.5)
        assert job.map_output_bytes(100) == 50.0

    def test_map_compute_time(self):
        job = MapReduceJob(name="x", input_bytes=MB, map_cost_s_per_mb=2.0)
        assert job.map_compute_time(MB) == pytest.approx(2.0)

    def test_reduce_compute_time(self):
        job = MapReduceJob(name="x", input_bytes=MB, reduce_cost_s_per_mb=4.0)
        assert job.reduce_compute_time(2 * MB) == pytest.approx(8.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"input_bytes": 0},
            {"input_bytes": 1, "block_size": 0},
            {"input_bytes": 1, "num_reduces": 0},
            {"input_bytes": 1, "map_selectivity": -0.1},
            {"input_bytes": 1, "map_cost_s_per_mb": -1},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            MapReduceJob(name="x", **kwargs)


class TestWorkloads:
    def test_paper_wordcount_shape(self):
        """2 GiB / 64 MiB = the paper's 32 maps; 1 reduce."""
        job = wordcount()
        assert job.num_maps == 32
        assert job.num_reduces == 1

    def test_wordcount_combiner_reduces_shuffle(self):
        with_c = wordcount(combiner=True)
        without = wordcount(combiner=False)
        assert with_c.map_selectivity < without.map_selectivity

    def test_sort_is_shuffle_heaviest(self):
        assert sort().map_selectivity == 1.0
        assert sort().map_selectivity > wordcount().map_selectivity > grep().map_selectivity

    def test_join_expands_input(self):
        assert join().map_selectivity > 1.0

    def test_terasort_fan_out(self):
        assert terasort().num_reduces > 1

    def test_registry_complete(self):
        assert set(WORKLOADS) == {"wordcount", "sort", "grep", "terasort", "join"}
        for name, factory in WORKLOADS.items():
            assert factory().name == name

    def test_custom_sizes(self):
        job = wordcount(input_bytes=GB, block_size=128 * MB)
        assert job.num_maps == 8

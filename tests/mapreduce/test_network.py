"""Tests for the network transfer-time model."""

import pytest

from repro.mapreduce.network import DistanceBand, NetworkModel, classify_band
from repro.util.errors import ValidationError


class TestClassifyBand:
    def test_bands(self):
        assert classify_band(0.0, 1.0, 2.0) == DistanceBand.SAME_NODE
        assert classify_band(1.0, 1.0, 2.0) == DistanceBand.SAME_RACK
        assert classify_band(2.0, 1.0, 2.0) == DistanceBand.CROSS_RACK
        assert classify_band(4.0, 1.0, 2.0) == DistanceBand.CROSS_CLOUD

    def test_band_ordering(self):
        assert (
            DistanceBand.SAME_NODE
            < DistanceBand.SAME_RACK
            < DistanceBand.CROSS_RACK
            < DistanceBand.CROSS_CLOUD
        )

    def test_scaled_distances(self):
        # Works for non-unit d1/d2 too.
        assert classify_band(3.0, 3.0, 7.0) == DistanceBand.SAME_RACK
        assert classify_band(7.0, 3.0, 7.0) == DistanceBand.CROSS_RACK


class TestNetworkModel:
    def test_default_monotone_bandwidths(self):
        net = NetworkModel()
        bws = [net.bandwidth(b) for b in DistanceBand]
        assert bws == sorted(bws, reverse=True)

    def test_non_monotone_rejected(self):
        with pytest.raises(ValidationError):
            NetworkModel(same_rack_bps=1e6, cross_rack_bps=2e6)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValidationError):
            NetworkModel(cross_cloud_bps=0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValidationError):
            NetworkModel(latency_per_transfer_s=-0.1)

    def test_transfer_time_scales_with_bytes(self):
        net = NetworkModel(latency_per_transfer_s=0.0)
        t1 = net.transfer_time(1e6, DistanceBand.SAME_RACK)
        t2 = net.transfer_time(2e6, DistanceBand.SAME_RACK)
        assert t2 == pytest.approx(2 * t1)

    def test_farther_band_slower(self):
        net = NetworkModel()
        nbytes = 64e6
        times = [net.transfer_time(nbytes, b) for b in DistanceBand]
        assert times == sorted(times)

    def test_latency_added(self):
        net = NetworkModel(latency_per_transfer_s=0.5)
        assert net.transfer_time(0, DistanceBand.SAME_RACK) == pytest.approx(0.5)

    def test_zero_bytes_same_node_free(self):
        net = NetworkModel(latency_per_transfer_s=0.5)
        assert net.transfer_time(0, DistanceBand.SAME_NODE) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValidationError):
            NetworkModel().transfer_time(-1, DistanceBand.SAME_RACK)

"""Command-line interface: regenerate any paper experiment from the shell.

Usage::

    python -m repro fig1            # the Section III.A worked example
    python -m repro fig2            # central-node strategy comparison
    python -m repro fig5 --trials 10
    python -m repro fig7 --chart    # runtime bars per cluster distance
    python -m repro ablations
    python -m repro simulate --requests 200 --policy heuristic
    python -m repro serve --port 8571        # online placement service (TCP)
    python -m repro loadgen --requests 500 --mode open --rate 1000
    python -m repro obs --port 8571          # scrape a running service's metrics

Every command accepts ``--seed`` for reproducibility; figures default to the
seed-pinned paper configuration.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import format_series, format_table
from repro.analysis.charts import bar_chart
from repro.experiments import paperconfig as cfg


def _cmd_fig1(args) -> int:
    from repro.experiments.example_fig1 import run

    result = run()
    rows = [
        [label, dist, f"N{center}"]
        for label, dist, center in zip(result.labels, result.distances, result.centers)
    ]
    rows.append(["SD optimum", result.optimal_distance, "-"])
    print(format_table(["allocation", "DC", "central node"], rows,
                       title="Fig. 1 — worked example (d1=1, d2=2)"))
    return 0


def _cmd_fig2(args) -> int:
    from repro.experiments.center_experiments import run_center_study

    study = run_center_study(seed=args.seed)
    print("Fig. 2 — distance by central-node strategy")
    print(format_series("heuristic", study.heuristic_distances, float_fmt="{:.0f}"))
    print(format_series("random   ", study.random_center_distances, float_fmt="{:.0f}"))
    print(f"mean gap: {study.mean_gap:.2f}")
    return 0


def _cmd_fig3(args) -> int:
    from repro.experiments.center_experiments import run_center_study

    study = run_center_study(seed=args.seed)
    print("Fig. 3 — central node per request")
    print(format_series("center", study.centers))
    return 0


def _cmd_fig4(args) -> int:
    from repro.experiments.center_experiments import run_fig4

    result = run_fig4(seed=args.seed, request_index=args.request_index)
    print(f"Fig. 4 — center sweep for request {list(result.demand)}")
    print(format_series("distance", list(result.center_distances), float_fmt="{:.0f}"))
    print(f"best: node {result.best_center} ({result.best_distance:.0f}); "
          f"worst: {result.worst_distance:.0f}")
    return 0


def _run_global(scenario: str, args) -> int:
    from repro.experiments.global_experiments import run_comparison

    result = run_comparison(scenario, seed=args.seed, trials=args.trials)
    fig = "5" if scenario == "large" else "6"
    print(f"Fig. {fig} — online vs. global ({scenario} requests, "
          f"{args.trials} trial(s))")
    n = min(20, len(result.online_distances))
    print(format_series("online", list(result.online_distances[:n]), float_fmt="{:.0f}"))
    print(format_series("global", list(result.global_distances[:n]), float_fmt="{:.0f}"))
    print(f"online total {result.online_total:.0f}  global total "
          f"{result.global_total:.0f}  improvement {result.improvement_pct:.1f}%  "
          f"exchanges {result.exchanges}")
    return 0


def _cmd_fig5(args) -> int:
    return _run_global("large", args)


def _cmd_fig6(args) -> int:
    return _run_global("small", args)


def _cmd_fig78(args) -> int:
    from repro.experiments.mapreduce_experiments import run_fig78

    result = run_fig78(hdfs_seed=args.hdfs_seed)
    rows = [
        [r.distance, r.runtime, r.locality.non_data_local_maps, r.locality.non_local_flows]
        for r in result.runs
    ]
    print(format_table(
        ["cluster distance", "runtime (s)", "non-data-local maps", "non-local shuffles"],
        rows,
        title="Figs. 7–8 — WordCount under four topologies",
    ))
    if args.chart:
        print()
        print(bar_chart(
            [f"d={r.distance}" for r in result.runs],
            [r.runtime for r in result.runs],
            title="runtime (s)",
        ))
    return 0


def _cmd_ablations(args) -> int:
    from repro.experiments.ablations import (
        run_heuristic_gap,
        run_policy_comparison,
        run_scheduler_ablation,
        run_transfer_ablation,
    )

    gap = run_heuristic_gap(seed=args.seed)
    print(format_table(
        ["solver", "total distance", "gap (%)"],
        [
            ["exact", gap.exact_total, 0.0],
            ["Algorithm 1 (best)", gap.best_mode_total, gap.best_mode_gap_pct],
            ["Algorithm 1 (first)", gap.first_mode_total, gap.first_mode_gap_pct],
        ],
        title="Algorithm 1 optimality",
    ))
    transfer = run_transfer_ablation(seed=args.seed, trials=3)
    print()
    print(format_table(
        ["variant", "total distance", "improvement (%)"],
        [
            ["online", transfer.online_total, 0.0],
            ["paper transfer", transfer.paper_transfer_total, transfer.paper_improvement_pct],
            ["general transfer", transfer.general_transfer_total, transfer.general_improvement_pct],
        ],
        title="Theorem-2 transfer variants",
    ))
    print()
    print(format_table(
        ["policy", "distance", "runtime (s)"],
        [[r.policy, r.mean_distance, r.runtime] for r in run_policy_comparison(seed=args.seed)],
        title="Placement policies end to end",
    ))
    print()
    print(format_table(
        ["scheduler", "runtime (s)", "non-data-local maps"],
        [[r.scheduler, r.runtime, r.non_data_local_maps] for r in run_scheduler_ablation(seed=args.seed)],
        title="Map schedulers",
    ))
    return 0


def _cmd_simulate(args) -> int:
    from repro.cloud import CloudProvider, CloudSimulator, poisson_workload
    from repro.cluster import PoolSpec, random_pool
    from repro.core import (
        FirstFitPlacement,
        GlobalSubOptimizer,
        OnlineHeuristic,
        RandomPlacement,
        StripedPlacement,
    )

    policies = {
        "heuristic": lambda: OnlineHeuristic(),
        "first-fit": lambda: FirstFitPlacement(),
        "random": lambda: RandomPlacement(seed=args.seed),
        "striped": lambda: StripedPlacement(),
    }
    if args.policy not in policies:
        print(f"unknown policy {args.policy!r}; choose from {sorted(policies)}",
              file=sys.stderr)
        return 2
    pool = random_pool(
        PoolSpec(racks=args.racks, nodes_per_rack=args.nodes,
                 capacity_high=args.capacity),
        cfg.CATALOG,
        seed=args.seed,
        distance_model=cfg.DISTANCES,
    )
    workload = poisson_workload(
        args.requests, pool.num_types,
        mean_interarrival=args.interarrival,
        mean_duration=args.duration,
        demand_high=args.demand_high,
        seed=args.seed,
    )
    provider = CloudProvider(
        pool,
        policies[args.policy](),
        batch_policy=GlobalSubOptimizer() if args.batch else None,
    )
    result = CloudSimulator(provider).run(workload)
    stats = provider.stats
    print(format_table(
        ["metric", "value"],
        [
            ["placed", stats.placed],
            ["refused", stats.refused],
            ["queue-rejected", stats.queue_rejected],
            ["acceptance rate", result.acceptance_rate],
            ["mean cluster distance", stats.mean_distance],
            ["mean wait (s)", stats.mean_wait],
            ["wait p50 (s)", result.wait_p50],
            ["wait p95 (s)", result.wait_p95],
            ["wait p99 (s)", result.wait_p99],
            ["mean utilization", result.mean_utilization],
            ["makespan (s)", result.makespan],
        ],
        title=f"Cloud simulation — policy={args.policy}"
        + (" + Algorithm 2 drains" if args.batch else ""),
    ))
    return 0


def _build_service(args):
    """Assemble the serving stack the service flags describe.

    One thin shim over :func:`repro.service.build_fabric` — the CLI's only
    jobs are turning flags into a pool/plan/config and converting factory
    validation errors into flag-phrased exits.
    """
    from repro.cluster import PoolSpec, random_pool
    from repro.service import ServiceConfig, build_fabric
    from repro.service.shard import FabricConfig, resolve_plan
    from repro.service.supervisor import SupervisorConfig
    from repro.util.errors import ValidationError

    pool = random_pool(
        PoolSpec(racks=args.racks, nodes_per_rack=args.nodes,
                 capacity_high=args.capacity),
        cfg.CATALOG,
        seed=args.seed,
        distance_model=cfg.DISTANCES,
    )
    shards = getattr(args, "shards", 0)
    workers = getattr(args, "workers", "thread")
    if workers == "proc" and not shards:
        raise SystemExit("--workers proc requires --shards")
    config = FabricConfig(
        rebalance_interval=getattr(args, "rebalance_interval", None),
        speculation=getattr(args, "speculation", 1),
        service=ServiceConfig(
            queue_capacity=args.queue_capacity,
            batch_window=args.batch_window,
            max_batch=args.max_batch,
            enable_transfers=not args.no_transfers,
            max_wait=args.max_wait,
        ),
    )
    try:
        return build_fabric(
            pool,
            resolve_plan(args.shard_plan, shards) if shards else None,
            workers=workers,
            config=config,
            coord=getattr(args, "coord", None),
            supervise=getattr(args, "supervise", False),
            supervisor_config=SupervisorConfig(
                heartbeat_ttl=args.heartbeat_ttl,
                monitor_interval=args.monitor_interval,
            ),
            codec=getattr(args, "worker_codec", None),
        )
    except ValidationError as exc:
        raise SystemExit(str(exc))


def _shutdown_built(built) -> int:
    """Tear down a :class:`~repro.service.factory.BuiltFabric`; returns the
    propagated exit code, printing any nonzero proc-worker exit codes."""
    exit_code = built.shutdown()
    codes = getattr(built, "worker_exit_codes", None)
    if codes:
        bad = {s: c for s, c in codes.items() if c not in (0, None)}
        if bad:
            print(f"worker exit codes nonzero: {bad}")
    return exit_code


def _install_sigterm():
    """Translate SIGTERM into KeyboardInterrupt for graceful drains."""
    import signal

    def handler(signum, frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, handler)
    except ValueError:  # pragma: no cover - not the main thread
        pass


def _cmd_serve(args) -> int:
    import json
    import time
    from pathlib import Path

    _install_sigterm()
    built = _build_service(args)
    service = built.service
    endpoint = built.serve(
        host=args.host, port=args.port, transport=args.transport
    )
    endpoint.start()
    if built.supervisor is not None:
        built.supervisor.start()
    host, port = endpoint.address
    shards = getattr(service, "num_shards", 1)
    print(f"placement service listening on {host}:{port} "
          f"({service.num_nodes} nodes, {shards} shard(s), "
          f"{built.workers} workers, "
          f"{args.transport or built.transport} transport, "
          f"batch window {args.batch_window*1000:.1f} ms"
          f"{', supervised' if built.supervisor is not None else ''})")
    exit_code = 0
    try:
        if args.duration is not None:
            time.sleep(args.duration)
        else:
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        print("\ndraining...")
    finally:
        if built.supervisor is not None:
            built.supervisor.stop()
        endpoint.stop()
        if args.checkpoint:
            Path(args.checkpoint).write_text(
                json.dumps(service.checkpoint_doc(), indent=1)
            )
            print(f"wrote checkpoint to {args.checkpoint}")
        stats = service.stats
        exit_code = _shutdown_built(built)
    print(format_table(
        ["metric", "value"],
        [
            ["submitted", stats.submitted],
            ["placed", stats.placed],
            ["refused", stats.refused],
            ["rejected", stats.rejected],
            ["released", stats.released],
            ["acceptance rate", stats.acceptance_rate],
            ["mean cluster distance", stats.mean_distance],
            ["transfer gain", stats.transfer_gain],
        ],
        title="Placement service — final stats",
    ))
    return exit_code


def _cmd_loadgen(args) -> int:
    from repro.service import LoadGenConfig, run_loadgen

    _install_sigterm()
    if args.transport and args.mode != "closed":
        raise SystemExit(
            "--transport requires --mode closed (the wire 'place' op blocks "
            "per connection, which would distort an open-loop arrival clock "
            "and serialize the closed-events driver to one in-flight request)"
        )
    if args.codec != "json" and not args.transport:
        raise SystemExit("--codec requires --transport (it selects the wire "
                         "format the client negotiates)")
    built = _build_service(args)
    service = built.service
    built.start()
    config = LoadGenConfig(
        num_requests=args.requests,
        mode=args.mode,
        rate=args.rate,
        concurrency=args.concurrency,
        mean_hold=args.hold,
        demand_high=args.demand_high,
        seed=args.seed,
        profile=args.profile and not args.transport,
    )
    exit_code = 0
    endpoint = None
    target_desc = "in-process service"
    try:
        if args.transport:
            from repro.service import WireLoadClient

            endpoint = built.serve(port=0, transport=args.transport)
            endpoint.start()
            host, port = endpoint.address
            with WireLoadClient(
                host, port, num_types=service.num_types, codec=args.codec
            ) as client:
                report = run_loadgen(client, config)
                target_desc = (f"{args.transport} transport, "
                               f"{client.codec} codec")
        else:
            report = run_loadgen(service, config)
    finally:
        if built.supervisor is not None:
            built.supervisor.stop()
        if endpoint is not None:
            endpoint.stop()
        else:
            service.drain()
        exit_code = _shutdown_built(built)
    print(format_table(
        ["metric", "value"],
        [
            ["mode", report.mode],
            ["submitted", report.submitted],
            ["placed", report.placed],
            ["refused", report.refused],
            ["rejected", report.rejected],
            ["timed out", report.timed_out],
            ["unavailable", report.unavailable],
            ["client timeouts", report.client_timeouts],
            ["acceptance rate", report.acceptance_rate],
            ["throughput (req/s)", report.throughput],
            ["latency p50 (ms)", report.latency_p50 * 1000],
            ["latency p95 (ms)", report.latency_p95 * 1000],
            ["latency p99 (ms)", report.latency_p99 * 1000],
            ["mean cluster distance", report.mean_distance],
            ["transfer gain", report.transfer_gain],
        ],
        title=f"Load generator — {report.mode}-loop over {target_desc}",
    ))
    if report.profile is not None:
        phases = report.profile["phases"]
        rows = [
            [name, doc["count"], doc["self_s"] * 1000, doc["inclusive_s"] * 1000]
            for name, doc in sorted(
                phases.items(), key=lambda kv: -kv[1]["self_s"]
            )
        ]
        rows.append(["total", "", report.profile["total_s"] * 1000, ""])
        print(format_table(
            ["phase", "count", "self (ms)", "inclusive (ms)"],
            rows,
            title="Placement time breakdown",
        ))
    if args.json:
        import json
        from pathlib import Path

        Path(args.json).write_text(json.dumps(report.to_dict(), indent=1))
        print(f"wrote report to {args.json}")
    return exit_code


def _cmd_coordd(args) -> int:
    """Run a standalone coordination server until interrupted."""
    import time

    from repro.service.coord.net import CoordinationServer

    _install_sigterm()
    server = CoordinationServer(host=args.host, port=args.port)
    server.start()
    host, port = server.address
    print(f"coordination server listening on tcp://{host}:{port}")
    try:
        if args.duration is not None:
            time.sleep(args.duration)
        else:
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        print("\nshutting down...")
    finally:
        backend = server.backend
        server.stop()
        print(
            f"final registry: {len(backend.workers())} worker(s), "
            f"{len(backend.leases())} lease(s)"
        )
    return 0


def _cmd_obs(args) -> int:
    from repro.obs import parse_prometheus
    from repro.service import ServiceClient

    with ServiceClient(args.host, args.port) as client:
        body = client.metrics(format=args.format)
    if args.raw or args.format == "json":
        print(body, end="" if body.endswith("\n") else "\n")
        return 0
    rows = []
    for (name, labels), value in sorted(parse_prometheus(body).items()):
        if not args.buckets and any(k == "le" for k, _ in labels):
            continue
        rows.append([name, ",".join(f"{k}={v}" for k, v in labels), value])
    print(format_table(
        ["series", "labels", "value"],
        rows,
        title=f"metrics @ {args.host}:{args.port}",
    ))
    return 0


def _cmd_report(args) -> int:
    from pathlib import Path

    from repro.experiments.runner import render_markdown, run_all

    report = run_all(seed=args.seed, trials=args.trials)
    text = render_markdown(report)
    if args.out:
        Path(args.out).write_text(text)
        print(f"wrote report to {args.out}")
    else:
        print(text)
    return 0


def _cmd_trace(args) -> int:
    from repro.cloud import CloudProvider, CloudSimulator, poisson_workload
    from repro.cloud.traces import load_trace, save_trace
    from repro.cluster import PoolSpec, random_pool
    from repro.core import OnlineHeuristic

    if args.replay:
        pool, workload = load_trace(args.replay)
        provider = CloudProvider(pool, OnlineHeuristic())
        result = CloudSimulator(provider).run(workload)
        print(format_table(
            ["metric", "value"],
            [
                ["requests", len(workload)],
                ["placed", provider.stats.placed],
                ["mean cluster distance", provider.stats.mean_distance],
                ["makespan (s)", result.makespan],
            ],
            title=f"Replayed trace {args.replay}",
        ))
        return 0
    if not args.out:
        print("trace: pass --out FILE to record or --replay FILE to replay",
              file=sys.stderr)
        return 2
    pool = random_pool(
        PoolSpec(racks=args.racks, nodes_per_rack=args.nodes,
                 capacity_high=args.capacity),
        cfg.CATALOG,
        seed=args.seed,
        distance_model=cfg.DISTANCES,
    )
    workload = poisson_workload(
        args.requests, pool.num_types, demand_high=args.demand_high, seed=args.seed
    )
    save_trace(args.out, pool=pool, workload=workload)
    print(f"wrote {args.requests}-request trace over "
          f"{pool.num_nodes} nodes to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's experiments (CLUSTER 2012 affinity-aware VC optimization).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name, func, help_text):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--seed", type=int, default=cfg.MASTER_SEED)
        p.set_defaults(func=func)
        return p

    add("fig1", _cmd_fig1, "Section III.A worked example")
    add("fig2", _cmd_fig2, "heuristic vs random central node")
    add("fig3", _cmd_fig3, "central node per request")
    p4 = add("fig4", _cmd_fig4, "distance under each center for one request")
    p4.add_argument("--request-index", type=int, default=0)
    p5 = add("fig5", _cmd_fig5, "online vs global, ordinary requests")
    p5.add_argument("--trials", type=int, default=10)
    p6 = add("fig6", _cmd_fig6, "online vs global, small requests")
    p6.add_argument("--trials", type=int, default=10)
    for name in ("fig7", "fig8"):  # one experiment feeds both figures
        p78 = add(name, _cmd_fig78, "WordCount runtime + locality per topology")
        p78.add_argument("--hdfs-seed", type=int, default=52)
        p78.add_argument("--chart", action="store_true")
    add("ablations", _cmd_ablations, "all ablation tables")
    ps = add("simulate", _cmd_simulate, "event-driven cloud simulation")
    ps.add_argument("--requests", type=int, default=100)
    ps.add_argument("--racks", type=int, default=3)
    ps.add_argument("--nodes", type=int, default=10)
    ps.add_argument("--capacity", type=int, default=2)
    ps.add_argument("--interarrival", type=float, default=8.0)
    ps.add_argument("--duration", type=float, default=100.0)
    ps.add_argument("--demand-high", type=int, default=3)
    ps.add_argument("--policy", default="heuristic")
    ps.add_argument("--batch", action="store_true",
                    help="drain the queue with Algorithm 2 batches")
    def add_service_args(p):
        p.add_argument("--racks", type=int, default=3)
        p.add_argument("--nodes", type=int, default=10)
        p.add_argument("--capacity", type=int, default=4)
        p.add_argument("--queue-capacity", type=int, default=256)
        p.add_argument("--batch-window", type=float, default=0.005,
                       help="seconds the scheduler waits to coalesce arrivals")
        p.add_argument("--max-batch", type=int, default=64)
        p.add_argument("--max-wait", type=float, default=None,
                       help="time out queued requests after this many seconds")
        p.add_argument("--no-transfers", action="store_true",
                       help="skip the Algorithm-2 transfer phase on batches")
        p.add_argument("--shards", type=int, default=0,
                       help="run a sharded fabric with this many shards "
                            "(0 = single service)")
        p.add_argument("--shard-plan", default="rack-group",
                       choices=["by-rack", "rack-group", "capacity-balanced"],
                       help="how racks are assigned to shards")
        p.add_argument("--rebalance-interval", type=float, default=None,
                       help="seconds between cross-shard rebalance sweeps "
                            "(default: off)")
        p.add_argument("--workers", choices=["thread", "aio", "proc"],
                       default="thread",
                       help="where shard workers run: threads in this "
                            "process (thread/aio — aio also defaults the "
                            "serving transport to the asyncio endpoint), or "
                            "one spawned child process per shard (proc, "
                            "requires --shards)")
        p.add_argument("--speculation", type=int, default=1,
                       help="speculative placement fan-out for contended "
                            "requests (1 = off): admit on up to this many "
                            "top-ranked shards, first commit wins")
        p.add_argument("--coord", default=None, metavar="URL",
                       help="coordination server for proc workers: "
                            "tcp://HOST:PORT of a `repro coordd`, or "
                            "'auto' to run one in-process")
        p.add_argument("--worker-codec", choices=["auto", "json", "binary"],
                       default=None,
                       help="wire codec for proc workers' cmd/events "
                            "channels (default: auto — binary when both "
                            "ends speak it)")
        p.add_argument("--supervise", action="store_true",
                       help="run shard workers under the fault-tolerant "
                            "supervisor (requires --shards)")
        p.add_argument("--heartbeat-ttl", type=float, default=1.0,
                       help="declare a shard worker dead after this many "
                            "seconds without a heartbeat")
        p.add_argument("--monitor-interval", type=float, default=0.25,
                       help="seconds between supervisor failure-detection "
                            "sweeps")

    pserve = add("serve", _cmd_serve, "run the online placement service (TCP)")
    add_service_args(pserve)
    pserve.add_argument("--transport", choices=["thread", "aio"], default=None,
                        help="serving transport: thread-per-connection or "
                             "one asyncio loop (default: aio when --workers "
                             "aio, else thread)")
    pserve.add_argument("--host", default="127.0.0.1")
    pserve.add_argument("--port", type=int, default=0,
                        help="listen port (0 = ephemeral)")
    pserve.add_argument("--duration", type=float, default=None,
                        help="serve for this many seconds, then drain and exit")
    pserve.add_argument("--checkpoint",
                        help="write a state checkpoint to this file on shutdown")

    pl = add("loadgen", _cmd_loadgen, "drive an in-process service with load")
    add_service_args(pl)
    pl.add_argument("--transport", choices=["thread", "aio"], default=None,
                    help="serve the built fabric on loopback via this "
                         "transport and drive it over TCP instead of "
                         "in-process (closed-loop only)")
    pl.add_argument("--codec", choices=["json", "binary", "auto"],
                    default="json",
                    help="wire codec to negotiate when driving over "
                         "--transport")
    pl.add_argument("--requests", type=int, default=200)
    pl.add_argument("--mode", choices=["open", "closed", "closed-events"],
                    default="open",
                    help="open-loop Poisson arrivals, thread-per-client "
                         "closed loop, or the event-driven closed loop "
                         "(same workload, single driver thread — the "
                         "tail-latency methodology, see docs/PERF.md)")
    pl.add_argument("--rate", type=float, default=500.0,
                    help="open-loop offered arrival rate (req/s)")
    pl.add_argument("--concurrency", type=int, default=8,
                    help="closed-loop in-flight requests")
    pl.add_argument("--hold", type=float, default=0.05,
                    help="mean lease holding time (s)")
    pl.add_argument("--demand-high", type=int, default=3)
    pl.add_argument("--profile", action="store_true",
                    help="report where placement time goes "
                         "(admission / center sweep / fill / transfer)")
    pl.add_argument("--json", help="also write the report as JSON to this file")

    po = add("obs", _cmd_obs, "scrape metrics from a running placement service")
    po.add_argument("--host", default="127.0.0.1")
    po.add_argument("--port", type=int, required=True)
    po.add_argument("--format", choices=["prom", "json"], default="prom")
    po.add_argument("--raw", action="store_true",
                    help="print the exposition text verbatim")
    po.add_argument("--buckets", action="store_true",
                    help="include histogram bucket rows in the table")

    pc = sub.add_parser(
        "coordd", help="run a standalone coordination server (TCP)"
    )
    pc.add_argument("--host", default="127.0.0.1")
    pc.add_argument("--port", type=int, default=0,
                    help="listen port (0 = ephemeral)")
    pc.add_argument("--duration", type=float, default=None,
                    help="serve for this many seconds, then exit")
    pc.set_defaults(func=_cmd_coordd)

    pr = add("report", _cmd_report, "run every experiment, emit a markdown report")
    pr.add_argument("--out", help="write the report to this file (default: stdout)")
    pr.add_argument("--trials", type=int, default=5)
    pt = add("trace", _cmd_trace, "record or replay a pool+workload trace")
    pt.add_argument("--out", help="write a fresh random trace to this file")
    pt.add_argument("--replay", help="replay a previously recorded trace")
    pt.add_argument("--requests", type=int, default=50)
    pt.add_argument("--racks", type=int, default=3)
    pt.add_argument("--nodes", type=int, default=10)
    pt.add_argument("--capacity", type=int, default=2)
    pt.add_argument("--demand-high", type=int, default=3)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

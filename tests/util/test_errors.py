"""Tests for the exception hierarchy."""

import pytest

from repro.util.errors import (
    CapacityError,
    InfeasibleRequestError,
    ReproError,
    SolverError,
    ValidationError,
)


@pytest.mark.parametrize(
    "exc",
    [ValidationError, CapacityError, InfeasibleRequestError, SolverError],
)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)


def test_validation_error_is_value_error():
    # Callers using plain ValueError handling still catch validation issues.
    assert issubclass(ValidationError, ValueError)


def test_single_except_clause_catches_everything():
    for exc in (ValidationError, CapacityError, InfeasibleRequestError, SolverError):
        try:
            raise exc("boom")
        except ReproError as caught:
            assert "boom" in str(caught)

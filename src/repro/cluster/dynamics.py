"""Dynamic resource pools: node failure, recovery, and live distances.

The paper's conclusion names this as future work: "How to compute [distance]
values when some VMs are down or reconfigured is critical for the VM
placement policy." :class:`DynamicResourcePool` extends the static pool with
a per-node liveness mask:

* a **failed** node contributes no capacity (placements avoid it), and the
  VMs it hosted are reported as *lost* so the provider can re-place them
  (see :mod:`repro.core.migration`);
* the **effective distance matrix** marks failed nodes unreachable (a large
  finite sentinel — see :attr:`DynamicResourcePool.UNREACHABLE`), so
  distance-driven algorithms route around them without code changes — every
  solver in :mod:`repro.core` consumes whatever matrix the pool exposes;
* **reconfiguration** changes a live node's capacity row in place, modeling
  providers resizing their fleet.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.distance import DistanceModel
from repro.cluster.resources import ResourcePool
from repro.cluster.topology import Topology
from repro.cluster.vmtypes import VMTypeCatalog
from repro.util.errors import CapacityError, ValidationError
from repro.util.validation import as_int_vector


class DynamicResourcePool(ResourcePool):
    """A resource pool whose nodes can fail, recover, and be reconfigured.

    All base-class invariants hold over *live* nodes; failed nodes expose
    zero remaining capacity and infinite distance. Allocations recorded on a
    node when it fails remain tracked (the provider owns eviction policy) —
    :meth:`lost_vms` reports them.
    """

    def __init__(
        self,
        topology: Topology,
        catalog: VMTypeCatalog,
        *,
        distance_model: DistanceModel | None = None,
        allocated: np.ndarray | None = None,
        cache=None,
    ) -> None:
        super().__init__(
            topology,
            catalog,
            distance_model=distance_model,
            allocated=allocated,
            cache=cache,
        )
        self._active = np.ones(self.num_nodes, dtype=bool)
        self._reconfigured = self._max.copy()

    # ---------------------------------------------------------------- state

    @property
    def active_nodes(self) -> np.ndarray:
        """Boolean liveness mask (copy)."""
        return self._active.copy()

    @property
    def num_active_nodes(self) -> int:
        return int(self._active.sum())

    def is_active(self, node_id: int) -> bool:
        """True when *node_id* is live (not failed)."""
        return bool(self._active[node_id])

    # ------------------------------------------------------------- overrides

    @property
    def max_capacity(self) -> np.ndarray:
        """Effective ``M``: reconfigured capacities, zero on failed nodes."""
        eff = self._reconfigured * self._active[:, None]
        eff.flags.writeable = False
        return eff

    @property
    def remaining(self) -> np.ndarray:
        """Effective ``L``: failed nodes offer nothing; a live node whose
        reconfigured capacity dropped below its current allocation offers
        nothing (it is over-committed until leases drain)."""
        eff = self._reconfigured * self._active[:, None]
        return np.maximum(eff - self._alloc, 0)

    #: Distance assigned to failed nodes. A large *finite* value rather than
    #: ``inf`` because the vectorized DC computation multiplies distances by
    #: (possibly zero) VM counts, and ``0 * inf`` is NaN.
    UNREACHABLE: float = 1e9

    @property
    def distance_matrix(self) -> np.ndarray:
        """Effective ``D``: rows/columns of failed nodes are unreachable."""
        d = np.array(self._distance)  # writable copy of the static matrix
        dead = ~self._active
        if dead.any():
            d[dead, :] = self.UNREACHABLE
            d[:, dead] = self.UNREACHABLE
            np.fill_diagonal(d, 0.0)
        d.flags.writeable = False
        return d

    @property
    def static_distance_matrix(self) -> np.ndarray:
        """The underlying physical distances, ignoring liveness."""
        return self._distance

    def _topology_cache_valid(self) -> bool:
        """The cached sorted orders describe static distances, which match
        the effective matrix only while every node is live."""
        return bool(self._active.all())

    def allocate(self, allocation: np.ndarray) -> None:
        """Reject any allocation touching a failed node, then delegate."""
        a = np.asarray(allocation)
        if a.shape == (self.num_nodes, self.num_types):
            on_dead = a[~self._active]
            if on_dead.size and on_dead.sum() > 0:
                raise CapacityError("allocation places VMs on failed node(s)")
        super().allocate(allocation)

    # --------------------------------------------------------------- failure

    def fail_node(self, node_id: int) -> np.ndarray:
        """Mark *node_id* failed; returns the allocation row lost on it.

        Idempotent in effect but raises on double-failure so callers notice
        event bugs.
        """
        if not (0 <= node_id < self.num_nodes):
            raise ValidationError(f"node {node_id} out of range")
        if not self._active[node_id]:
            raise ValidationError(f"node {node_id} is already failed")
        self._active[node_id] = False
        return self._alloc[node_id].copy()

    def recover_node(self, node_id: int) -> None:
        """Bring a failed node back; its previous allocations were evicted
        by the provider, so its row of ``C`` must be zero by then."""
        if self._active[node_id]:
            raise ValidationError(f"node {node_id} is not failed")
        self._active[node_id] = True

    def evict_node(self, node_id: int) -> np.ndarray:
        """Zero the allocation row of a (typically failed) node and return
        what was evicted — the provider calls this when it re-places the
        lost VMs elsewhere."""
        lost = self._alloc[node_id].copy()
        self._alloc[node_id] = 0
        return lost

    def lost_vms(self) -> np.ndarray:
        """Allocation rows currently stranded on failed nodes (n × m)."""
        stranded = np.zeros_like(self._alloc)
        dead = ~self._active
        stranded[dead] = self._alloc[dead]
        return stranded

    # ---------------------------------------------------------- reconfigure

    def reconfigure_node(self, node_id: int, capacity) -> None:
        """Resize a node's per-type capacity row (the paper's
        "reconfigured" case). Shrinking below current allocation is allowed
        — the node simply offers no remaining capacity until leases drain."""
        cap = as_int_vector(capacity, name="capacity", length=self.num_types)
        if not self._active[node_id]:
            raise ValidationError(f"cannot reconfigure failed node {node_id}")
        self._reconfigured[node_id] = cap

    def copy(self) -> "DynamicResourcePool":
        """Deep copy carrying liveness and reconfiguration state."""
        clone = DynamicResourcePool(
            self._topology,
            self._catalog,
            distance_model=self._model,
            allocated=self._alloc,
            cache=self._cache,
        )
        clone._active = self._active.copy()
        clone._reconfigured = self._reconfigured.copy()
        return clone

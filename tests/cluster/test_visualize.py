"""Tests for ASCII topology/allocation rendering."""

import numpy as np
import pytest

from repro.cluster.topology import Topology
from repro.cluster.visualize import (
    render_allocation,
    render_topology,
    render_vm_counts,
)
from repro.util.errors import ValidationError


@pytest.fixture
def topo():
    return Topology.build(2, 2, capacity=[2, 1, 0])


class TestRenderTopology:
    def test_all_levels_present(self, topo):
        out = render_topology(topo)
        assert "cloud 0" in out
        assert "rack 0" in out and "rack 1" in out
        for n in range(4):
            assert f"N{n}" in out

    def test_capacities_shown(self, topo):
        assert "cap 3" in render_topology(topo)


class TestRenderAllocation:
    def test_vm_glyphs_match_counts(self, topo):
        alloc = np.zeros((4, 3), dtype=np.int64)
        alloc[0] = [2, 1, 0]  # 3 VMs on N0 (full)
        alloc[2] = [1, 0, 0]
        out = render_allocation(topo, alloc)
        assert "N0 ███" in out
        assert "N2 █··" in out
        assert "N1 ···" in out

    def test_center_marked(self, topo):
        alloc = np.zeros((4, 3), dtype=np.int64)
        alloc[1, 0] = 1
        out = render_allocation(topo, alloc, center=1)
        assert "N1*" in out

    def test_overflow_clipped(self, topo):
        alloc = np.zeros((4, 3), dtype=np.int64)
        alloc[0] = [2, 1, 0]
        out = render_allocation(topo, alloc, max_slots=2)
        assert "███" not in out

    def test_wrong_shape_rejected(self, topo):
        with pytest.raises(ValidationError):
            render_allocation(topo, np.zeros((3, 3), dtype=np.int64))


class TestRenderVmCounts:
    def test_per_rack_totals(self, topo):
        alloc = np.zeros((4, 3), dtype=np.int64)
        alloc[0, 0] = 2
        alloc[3, 0] = 1
        out = render_vm_counts(topo, alloc)
        assert "rack 0: 2 VMs" in out
        assert "rack 1: 1 VMs" in out

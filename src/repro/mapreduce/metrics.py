"""Job results and locality metrics (the paper's Fig. 7/8 measurements)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mapreduce.network import DistanceBand
from repro.mapreduce.tasks import MapTaskRecord, ReduceTaskRecord, ShuffleFlow


@dataclass(frozen=True, slots=True)
class LocalityReport:
    """Counts behind Fig. 8: map data locality and shuffle locality."""

    total_maps: int
    data_local_maps: int
    rack_local_maps: int
    remote_maps: int
    total_flows: int
    node_local_flows: int
    rack_local_flows: int
    remote_flows: int

    @property
    def non_data_local_maps(self) -> int:
        """Fig. 8's first series: maps that read their split over the network."""
        return self.total_maps - self.data_local_maps

    @property
    def non_local_flows(self) -> int:
        """Fig. 8's second series: shuffle transfers leaving the map's node."""
        return self.total_flows - self.node_local_flows

    @property
    def data_local_fraction(self) -> float:
        return self.data_local_maps / self.total_maps if self.total_maps else 0.0

    @property
    def local_shuffle_fraction(self) -> float:
        return self.node_local_flows / self.total_flows if self.total_flows else 0.0


@dataclass
class JobResult:
    """Complete record of one simulated job execution."""

    job_name: str
    cluster_affinity: float
    runtime: float
    map_records: list[MapTaskRecord] = field(default_factory=list)
    reduce_records: list[ReduceTaskRecord] = field(default_factory=list)

    @property
    def flows(self) -> list[ShuffleFlow]:
        return [f for r in self.reduce_records for f in r.flows]

    @property
    def map_phase_finish(self) -> float:
        """Instant the last map task completed."""
        return max((m.finish_time for m in self.map_records), default=0.0)

    @property
    def shuffle_finish(self) -> float:
        """Instant the last shuffle fetch completed."""
        return max((r.shuffle_finish_time for r in self.reduce_records), default=0.0)

    @property
    def total_shuffle_bytes(self) -> float:
        return float(sum(f.size_bytes for f in self.flows))

    def bytes_by_band(self) -> dict[DistanceBand, float]:
        """Shuffle bytes moved per distance band (traffic breakdown)."""
        out = {band: 0.0 for band in DistanceBand}
        for f in self.flows:
            out[f.band] += f.size_bytes
        return out

    def locality(self) -> LocalityReport:
        """Summarize task and flow locality (Fig. 8 rows)."""
        maps = self.map_records
        flows = self.flows
        return LocalityReport(
            total_maps=len(maps),
            data_local_maps=sum(1 for m in maps if m.locality == DistanceBand.SAME_NODE),
            rack_local_maps=sum(1 for m in maps if m.locality == DistanceBand.SAME_RACK),
            remote_maps=sum(
                1 for m in maps if m.locality is not None and m.locality >= DistanceBand.CROSS_RACK
            ),
            total_flows=len(flows),
            node_local_flows=sum(1 for f in flows if f.band == DistanceBand.SAME_NODE),
            rack_local_flows=sum(1 for f in flows if f.band == DistanceBand.SAME_RACK),
            remote_flows=sum(1 for f in flows if f.band >= DistanceBand.CROSS_RACK),
        )
